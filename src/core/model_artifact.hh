/**
 * @file
 * ModelArtifact: the versioned, self-contained unit the model lifecycle
 * produces and the serve layer consumes. One file bundles everything a
 * deployment needs to reproduce the trained predictor's exact outputs --
 * the MLP weights, the FeatureConfig it was trained against, the input
 * standardization statistics and feature mask (inside TrainedModel) --
 * plus the provenance to audit where it came from: the dataset manifest
 * hash, the full TrainConfig, the held-out error it shipped with, and
 * the code version that trained it.
 */

#ifndef CONCORDE_CORE_MODEL_ARTIFACT_HH
#define CONCORDE_CORE_MODEL_ARTIFACT_HH

#include <string>

#include "core/concorde.hh"

namespace concorde
{

/** Where a trained model came from (auditing / cache invalidation). */
struct ArtifactProvenance
{
    /** datasetManifestHash() of the training dataset; 0 = unknown. */
    uint64_t datasetManifestHash = 0;
    /** Training dataset location (informational, not load-bearing). */
    std::string datasetPath;
    /** `git describe` of the tree that trained it ("unknown" outside git). */
    std::string gitDescribe;
    TrainConfig trainConfig;
    uint64_t trainedEpochs = 0;
    /** Validation mean relative CPI error at ship time (<0 = unknown). */
    double heldOutRelErr = -1.0;
};

/**
 * Versioned trained-model bundle with save/load round-trip.
 *
 * Version history:
 *  - v1: features + model + provenance.
 *  - v2: appends an optional split-conformal calibration section
 *    (sorted conformity scores + feature envelope). v1 files still
 *    load -- they simply come back uncalibrated (calibrated() false)
 *    and the serve layer falls back to point-only predictions.
 */
struct ModelArtifact
{
    FeatureConfig features;
    TrainedModel model;
    ArtifactProvenance provenance;
    /** Conformal calibration; invalid/empty = uncalibrated artifact. */
    ConformalCalibration calibration;

    bool valid() const { return model.valid(); }
    bool calibrated() const { return calibration.valid(); }

    /** Build the ready-to-serve predictor this artifact describes. */
    ConcordePredictor predictor() const
    {
        return ConcordePredictor(model, features);
    }

    void save(const std::string &path) const;
    static ModelArtifact load(const std::string &path);
};

/** `git describe` of the built tree (compiled in; "unknown" if absent). */
std::string buildGitDescribe();

} // namespace concorde

#endif // CONCORDE_CORE_MODEL_ARTIFACT_HH
