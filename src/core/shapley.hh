/**
 * @file
 * Shapley-value performance attribution (paper Section 6): a fair,
 * order-independent attribution of the CPI difference between a baseline
 * and a target design to microarchitectural components, computed exactly
 * (all permutations) for small component sets or by Monte Carlo sampling
 * of ablation orders.
 */

#ifndef CONCORDE_CORE_SHAPLEY_HH
#define CONCORDE_CORE_SHAPLEY_HH

#include <functional>
#include <string>
#include <vector>

#include "uarch/params.hh"

namespace concorde
{

/** A "player": one or more Table-1 parameters moved together. */
struct ShapleyComponent
{
    std::string name;
    std::vector<ParamId> params;
};

/**
 * The 17 components used in Figure 16 (caches grouped; the branch
 * predictor type and Simple-BP rate grouped).
 */
const std::vector<ShapleyComponent> &attributionComponents();

/** Attribution knobs. */
struct ShapleyConfig
{
    int numPermutations = 64;   ///< Monte Carlo sample size
    uint64_t seed = 7;
    bool exhaustive = false;    ///< enumerate all d! orders (d <= 8)
};

/**
 * Batched CPI evaluator: maps n design points to n values in one call,
 * letting the attribution engine evaluate every step of every sampled
 * permutation in a single batched-inference pass (e.g. through
 * ConcordePredictor::predictCpiBatch).
 */
using BatchEval =
    std::function<std::vector<double>(const std::vector<UarchParams> &)>;

/**
 * Shapley values phi_i for moving each component from its `base` value to
 * its `target` value, with performance read through `eval`.
 * sum(phi) = eval(target) - eval(base) (efficiency) holds exactly for the
 * exhaustive mode and in expectation for Monte Carlo (each sampled
 * permutation's increments telescope, so it also holds per sample).
 */
std::vector<double> shapleyAttribution(
    const UarchParams &base, const UarchParams &target,
    const std::vector<ShapleyComponent> &components,
    const std::function<double(const UarchParams &)> &eval,
    const ShapleyConfig &config);

/**
 * Batched variant: all permutation scan points (the base plus every
 * prefix of every sampled order) are collected up front and evaluated
 * through one `eval` call. Same estimator and sampling sequence as the
 * scalar overload.
 */
std::vector<double> shapleyAttribution(
    const UarchParams &base, const UarchParams &target,
    const std::vector<ShapleyComponent> &components,
    const BatchEval &eval, const ShapleyConfig &config);

/**
 * Incremental contributions for one explicit ablation order (the biased
 * estimator Figure 15 warns about); `order` holds component indices.
 */
std::vector<double> orderedAblation(
    const UarchParams &base, const UarchParams &target,
    const std::vector<ShapleyComponent> &components,
    const std::vector<int> &order,
    const std::function<double(const UarchParams &)> &eval);

} // namespace concorde

#endif // CONCORDE_CORE_SHAPLEY_HH
