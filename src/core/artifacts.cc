#include "core/artifacts.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "common/stopwatch.hh"

namespace concorde
{
namespace artifacts
{

namespace
{

size_t
envSize(const char *name, size_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    const long long parsed = std::atoll(value);
    return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::mutex &
artifactMutex()
{
    static std::mutex m;
    return m;
}

/** Load-or-build a dataset cached on disk. */
Dataset
cachedDataset(const std::string &name, const DatasetConfig &config)
{
    const std::string path = dir() + "/" + name + "_"
        + std::to_string(config.numSamples) + ".bin";
    if (fileExists(path))
        return Dataset::load(path);
    inform("building dataset '%s' (%zu samples, %u-chunk regions)...",
           name.c_str(), config.numSamples, config.regionChunks);
    Stopwatch timer;
    Dataset data = buildDataset(config);
    inform("dataset '%s' built in %.1fs", name.c_str(), timer.seconds());
    data.save(path);
    return data;
}

} // anonymous namespace

std::string
dir()
{
    const char *override_dir = std::getenv("CONCORDE_ARTIFACTS");
    static const std::string path =
        override_dir && *override_dir ? override_dir : "artifacts";
    ensureDir(path);
    return path;
}

size_t trainSamples() { return envSize("CONCORDE_TRAIN_SAMPLES", 24000); }
size_t testSamples() { return envSize("CONCORDE_TEST_SAMPLES", 3000); }
size_t
longTrainSamples()
{
    return envSize("CONCORDE_LONG_TRAIN_SAMPLES", 16000);
}
size_t
longTestSamples()
{
    return envSize("CONCORDE_LONG_TEST_SAMPLES", 1200);
}
size_t specSamples() { return envSize("CONCORDE_SPEC_SAMPLES", 3000); }
size_t epochs() { return envSize("CONCORDE_EPOCHS", 60); }

FeatureConfig
featureConfig()
{
    return FeatureConfig{};
}

TrainConfig
trainConfig()
{
    TrainConfig config;
    config.epochs = epochs();
    return config;
}

const std::vector<int> &
specPrograms()
{
    static const std::vector<int> programs = [] {
        std::vector<int> ids;
        for (int i = 1; i <= 10; ++i) {
            const int id = programIdByCode("S" + std::to_string(i));
            panic_if(id < 0, "SPEC program S%d missing from corpus", i);
            ids.push_back(id);
        }
        return ids;
    }();
    return programs;
}

const Dataset &
mainTrain()
{
    std::lock_guard<std::mutex> lock(artifactMutex());
    static const Dataset data = [] {
        DatasetConfig config;
        config.numSamples = trainSamples();
        config.regionChunks = kShortRegionChunks;
        config.seed = 1001;
        config.features = featureConfig();
        return cachedDataset("train_main", config);
    }();
    return data;
}

const Dataset &
mainTest()
{
    std::lock_guard<std::mutex> lock(artifactMutex());
    static const Dataset data = [] {
        DatasetConfig config;
        config.numSamples = testSamples();
        config.regionChunks = kShortRegionChunks;
        config.seed = 2002;
        config.features = featureConfig();
        return cachedDataset("test_main", config);
    }();
    return data;
}

const Dataset &
longTrain()
{
    std::lock_guard<std::mutex> lock(artifactMutex());
    static const Dataset data = [] {
        DatasetConfig config;
        config.numSamples = longTrainSamples();
        config.regionChunks = kLongRegionChunks;
        config.seed = 3003;
        config.features = featureConfig();
        return cachedDataset("train_long", config);
    }();
    return data;
}

const Dataset &
longTest()
{
    std::lock_guard<std::mutex> lock(artifactMutex());
    static const Dataset data = [] {
        DatasetConfig config;
        config.numSamples = longTestSamples();
        config.regionChunks = kLongRegionChunks;
        config.seed = 4004;
        config.features = featureConfig();
        return cachedDataset("test_long", config);
    }();
    return data;
}

const Dataset &
specN1Train()
{
    std::lock_guard<std::mutex> lock(artifactMutex());
    static const Dataset data = [] {
        DatasetConfig config;
        config.numSamples = specSamples();
        config.regionChunks = kShortRegionChunks;
        config.seed = 5005;
        config.features = featureConfig();
        config.useFixedUarch = true;
        config.fixedUarch = UarchParams::armN1();
        config.programFilter = specPrograms();
        return cachedDataset("train_spec_n1", config);
    }();
    return data;
}

const Dataset &
specN1Test()
{
    std::lock_guard<std::mutex> lock(artifactMutex());
    static const Dataset data = [] {
        DatasetConfig config;
        config.numSamples = std::max<size_t>(specSamples() / 4, 200);
        config.regionChunks = kShortRegionChunks;
        config.seed = 6006;
        config.features = featureConfig();
        config.useFixedUarch = true;
        config.fixedUarch = UarchParams::armN1();
        config.programFilter = specPrograms();
        return cachedDataset("test_spec_n1", config);
    }();
    return data;
}

Dataset
onboardPool(int program_id, size_t samples)
{
    DatasetConfig config;
    config.numSamples = samples;
    config.regionChunks = kShortRegionChunks;
    config.seed = 7007 + static_cast<uint64_t>(program_id) * 131;
    config.features = featureConfig();
    config.programFilter = {program_id};
    return cachedDataset(
        "onboard_p" + std::to_string(program_id), config);
}

TrainedModel
trainOn(const Dataset &data, const std::string &cache_name,
        const std::vector<uint8_t> *mask,
        const std::vector<float> *labels_override)
{
    const std::string path = dir() + "/model_" + cache_name + "_"
        + std::to_string(data.size()) + "x" + std::to_string(epochs())
        + ".bin";
    if (fileExists(path))
        return TrainedModel::load(path);
    inform("training model '%s' on %zu samples...", cache_name.c_str(),
           data.size());
    Stopwatch timer;
    const auto &labels = labels_override ? *labels_override : data.labels;
    TrainedModel model =
        trainMlp(data.features, labels, data.dim, trainConfig(), mask);
    inform("model '%s' trained in %.1fs (train rel-err %.4f)",
           cache_name.c_str(), timer.seconds(),
           model.meanRelativeError(data.features, labels, data.dim));
    model.save(path);
    return model;
}

TrainedModel
untrainedModel(const FeatureConfig &config, uint64_t seed,
               const std::vector<size_t> &hidden)
{
    const FeatureLayout layout(config);
    std::vector<size_t> sizes;
    sizes.reserve(hidden.size() + 2);
    sizes.push_back(layout.dim());
    sizes.insert(sizes.end(), hidden.begin(), hidden.end());
    sizes.push_back(1);
    Mlp net(std::move(sizes), seed);
    std::vector<float> mean(layout.dim(), 0.0f);
    std::vector<float> stdev(layout.dim(), 1.0f);
    return TrainedModel(std::move(net), std::move(mean), std::move(stdev),
                        {});
}

const TrainedModel &
fullModel()
{
    static const TrainedModel model = trainOn(mainTrain(), "full");
    return model;
}

const TrainedModel &
longModel()
{
    static const TrainedModel model = trainOn(longTrain(), "long");
    return model;
}

const TrainedModel &
ablationModel(const std::string &name)
{
    const FeatureLayout layout(featureConfig());
    static std::map<std::string, TrainedModel> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(name);
    if (it != cache.end())
        return it->second;

    std::vector<FeatureGroup> groups;
    if (name == "base") {
        groups = {FeatureGroup::Primary, FeatureGroup::MispredRate,
                  FeatureGroup::Params};
    } else if (name == "base_branch") {
        groups = {FeatureGroup::Primary, FeatureGroup::MispredRate,
                  FeatureGroup::Stalls, FeatureGroup::Params};
    } else {
        fatal("unknown ablation '%s'", name.c_str());
    }
    const auto mask = layout.maskFor(groups);
    auto [pos, inserted] =
        cache.emplace(name, trainOn(mainTrain(), "ablation_" + name,
                                    &mask));
    return pos->second;
}

void
ensurePrepared()
{
    mainTrain();
    mainTest();
    fullModel();
    longTrain();
    longTest();
    longModel();
    specN1Train();
    specN1Test();
    ablationModel("base");
    ablationModel("base_branch");
}

} // namespace artifacts
} // namespace concorde
