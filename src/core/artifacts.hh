/**
 * @file
 * Artifact cache shared by benches, tests, and examples: datasets and
 * trained models are generated once (deterministically) and cached on
 * disk under `artifacts/` (override with CONCORDE_ARTIFACTS). Sizes are
 * env-tunable so the full paper evaluation can be scaled up or down:
 *
 *   CONCORDE_TRAIN_SAMPLES      (default 24000)   main 16k-instr dataset
 *   CONCORDE_TEST_SAMPLES       (default 3000)
 *   CONCORDE_LONG_TRAIN_SAMPLES (default 6000)    64k-instr dataset
 *   CONCORDE_LONG_TEST_SAMPLES  (default 800)
 *   CONCORDE_SPEC_SAMPLES       (default 3000)    SPEC@N1 (TAO comparison)
 *   CONCORDE_EPOCHS             (default 60)
 */

#ifndef CONCORDE_CORE_ARTIFACTS_HH
#define CONCORDE_CORE_ARTIFACTS_HH

#include <string>

#include "core/concorde.hh"
#include "core/dataset.hh"

namespace concorde
{
namespace artifacts
{

/** Artifact directory (created on demand). */
std::string dir();

/** Canonical feature configuration used by all shared artifacts. */
FeatureConfig featureConfig();

/** Canonical training configuration (epochs env-tunable). */
TrainConfig trainConfig();

/** Region lengths, in chunks: "100k-analogue" and "1M-analogue". */
constexpr uint32_t kShortRegionChunks = 8;   // 16,384 instructions
constexpr uint32_t kLongRegionChunks = 32;   // 65,536 instructions

// ---- datasets (memoized in memory, cached on disk) ----
const Dataset &mainTrain();
const Dataset &mainTest();
const Dataset &longTrain();
const Dataset &longTest();
/** SPEC programs at fixed ARM N1 (TAO's training/eval distribution). */
const Dataset &specN1Train();
const Dataset &specN1Test();
/** Per-program sample pool for the Figure-14 onboarding study. */
Dataset onboardPool(int program_id, size_t samples);

// ---- models ----
/** Concorde trained with all feature groups on mainTrain(). */
const TrainedModel &fullModel();
/** Concorde trained on the long-region dataset. */
const TrainedModel &longModel();
/**
 * Ablation variants (Figure 12): name is "base" (primary + mispredict
 * rate + params) or "base_branch" (+ pipeline-stall features).
 */
const TrainedModel &ablationModel(const std::string &name);

/** Train a model on an arbitrary dataset with the canonical config. */
TrainedModel trainOn(const Dataset &data, const std::string &cache_name,
                     const std::vector<uint8_t> *mask = nullptr,
                     const std::vector<float> *labels_override = nullptr);

/**
 * Deterministic untrained model over `config`'s feature layout: He-init
 * weights from `seed`, identity standardization, no mask. Exercises the
 * full prediction pipeline at the real per-request cost without any
 * training artifacts -- the smoke benches and the golden-reference
 * corpus are built on it.
 *
 * @param hidden hidden-layer widths ({192, 96} = the production layout)
 */
TrainedModel untrainedModel(const FeatureConfig &config, uint64_t seed,
                            const std::vector<size_t> &hidden = {192, 96});

/** Generate all shared artifacts up front (bench_00_prepare). */
void ensurePrepared();

// ---- env-tunable sizes ----
size_t trainSamples();
size_t testSamples();
size_t longTrainSamples();
size_t longTestSamples();
size_t specSamples();
size_t epochs();

/** The SPEC2017 program ids (S1..S10). */
const std::vector<int> &specPrograms();

} // namespace artifacts
} // namespace concorde

#endif // CONCORDE_CORE_ARTIFACTS_HH
