#include "core/shapley.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace concorde
{

const std::vector<ShapleyComponent> &
attributionComponents()
{
    static const std::vector<ShapleyComponent> components = {
        {"L1i/L1d/L2 caches",
         {ParamId::L1dSize, ParamId::L1iSize, ParamId::L2Size}},
        {"L1d stride prefetcher", {ParamId::PrefetchDegree}},
        {"ROB", {ParamId::RobSize}},
        {"Load queue", {ParamId::LqSize}},
        {"Store queue", {ParamId::SqSize}},
        {"Load pipes", {ParamId::LoadPipes}},
        {"Load-store pipes", {ParamId::LsPipes}},
        {"ALU issue width", {ParamId::AluWidth}},
        {"Floating-point issue width", {ParamId::FpWidth}},
        {"Load-store issue width", {ParamId::LsWidth}},
        {"Commit width", {ParamId::CommitWidth}},
        {"Branch predictor",
         {ParamId::BranchPredictor, ParamId::SimpleMispredictPct}},
        {"Maximum icache fills", {ParamId::MaxIcacheFills}},
        {"Fetch buffers", {ParamId::FetchBuffers}},
        {"Fetch width", {ParamId::FetchWidth}},
        {"Decode width", {ParamId::DecodeWidth}},
        {"Rename width", {ParamId::RenameWidth}},
    };
    return components;
}

namespace
{

void
applyComponent(UarchParams &params, const ShapleyComponent &component,
               const UarchParams &source)
{
    for (ParamId id : component.params)
        params.set(id, source.get(id));
}

/** Walk one permutation, accumulating each component's increment. */
void
walkPermutation(const UarchParams &base, const UarchParams &target,
                const std::vector<ShapleyComponent> &components,
                const std::vector<int> &order,
                const std::function<double(const UarchParams &)> &eval,
                std::vector<double> &acc)
{
    UarchParams current = base;
    double prev = eval(current);
    for (int idx : order) {
        applyComponent(current, components[idx], target);
        const double now = eval(current);
        acc[idx] += now - prev;
        prev = now;
    }
}

} // anonymous namespace

std::vector<double>
orderedAblation(const UarchParams &base, const UarchParams &target,
                const std::vector<ShapleyComponent> &components,
                const std::vector<int> &order,
                const std::function<double(const UarchParams &)> &eval)
{
    panic_if(order.size() != components.size(),
             "order must permute all components");
    std::vector<double> deltas(components.size(), 0.0);
    walkPermutation(base, target, components, order, eval, deltas);
    return deltas;
}

std::vector<double>
shapleyAttribution(const UarchParams &base, const UarchParams &target,
                   const std::vector<ShapleyComponent> &components,
                   const std::function<double(const UarchParams &)> &eval,
                   const ShapleyConfig &config)
{
    const size_t d = components.size();
    std::vector<double> acc(d, 0.0);
    std::vector<int> order(d);
    std::iota(order.begin(), order.end(), 0);

    size_t permutations = 0;
    if (config.exhaustive) {
        fatal_if(d > 8, "exhaustive Shapley is limited to d <= 8 (%zu)", d);
        std::sort(order.begin(), order.end());
        do {
            walkPermutation(base, target, components, order, eval, acc);
            ++permutations;
        } while (std::next_permutation(order.begin(), order.end()));
    } else {
        Rng rng(hashMix(config.seed, 0x5A91E7ULL));
        for (int s = 0; s < config.numPermutations; ++s) {
            for (size_t i = d - 1; i > 0; --i) {
                const size_t j = rng.nextBounded(i + 1);
                std::swap(order[i], order[j]);
            }
            walkPermutation(base, target, components, order, eval, acc);
            ++permutations;
        }
    }

    for (double &phi : acc)
        phi /= static_cast<double>(permutations);
    return acc;
}

} // namespace concorde
