#include "core/shapley.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace concorde
{

const std::vector<ShapleyComponent> &
attributionComponents()
{
    static const std::vector<ShapleyComponent> components = {
        {"L1i/L1d/L2 caches",
         {ParamId::L1dSize, ParamId::L1iSize, ParamId::L2Size}},
        {"L1d stride prefetcher", {ParamId::PrefetchDegree}},
        {"ROB", {ParamId::RobSize}},
        {"Load queue", {ParamId::LqSize}},
        {"Store queue", {ParamId::SqSize}},
        {"Load pipes", {ParamId::LoadPipes}},
        {"Load-store pipes", {ParamId::LsPipes}},
        {"ALU issue width", {ParamId::AluWidth}},
        {"Floating-point issue width", {ParamId::FpWidth}},
        {"Load-store issue width", {ParamId::LsWidth}},
        {"Commit width", {ParamId::CommitWidth}},
        {"Branch predictor",
         {ParamId::BranchPredictor, ParamId::SimpleMispredictPct}},
        {"Maximum icache fills", {ParamId::MaxIcacheFills}},
        {"Fetch buffers", {ParamId::FetchBuffers}},
        {"Fetch width", {ParamId::FetchWidth}},
        {"Decode width", {ParamId::DecodeWidth}},
        {"Rename width", {ParamId::RenameWidth}},
    };
    return components;
}

namespace
{

void
applyComponent(UarchParams &params, const ShapleyComponent &component,
               const UarchParams &source)
{
    for (ParamId id : component.params)
        params.set(id, source.get(id));
}

/** Walk one permutation, accumulating each component's increment. */
void
walkPermutation(const UarchParams &base, const UarchParams &target,
                const std::vector<ShapleyComponent> &components,
                const std::vector<int> &order,
                const std::function<double(const UarchParams &)> &eval,
                std::vector<double> &acc)
{
    UarchParams current = base;
    double prev = eval(current);
    for (int idx : order) {
        applyComponent(current, components[idx], target);
        const double now = eval(current);
        acc[idx] += now - prev;
        prev = now;
    }
}

/**
 * The permutation orders the estimator will walk: all d! orders in
 * exhaustive mode, or config.numPermutations Fisher-Yates draws (same
 * RNG sequence as the scalar estimator).
 */
std::vector<std::vector<int>>
sampleOrders(size_t d, const ShapleyConfig &config)
{
    std::vector<int> order(d);
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::vector<int>> orders;
    if (config.exhaustive) {
        fatal_if(d > 8, "exhaustive Shapley is limited to d <= 8 (%zu)", d);
        do {
            orders.push_back(order);
        } while (std::next_permutation(order.begin(), order.end()));
    } else {
        Rng rng(hashMix(config.seed, 0x5A91E7ULL));
        for (int s = 0; s < config.numPermutations; ++s) {
            for (size_t i = d; i > 1; --i) {
                const size_t j = rng.nextBounded(i);
                std::swap(order[i - 1], order[j]);
            }
            orders.push_back(order);
        }
    }
    return orders;
}

} // anonymous namespace

std::vector<double>
orderedAblation(const UarchParams &base, const UarchParams &target,
                const std::vector<ShapleyComponent> &components,
                const std::vector<int> &order,
                const std::function<double(const UarchParams &)> &eval)
{
    panic_if(order.size() != components.size(),
             "order must permute all components");
    std::vector<double> deltas(components.size(), 0.0);
    walkPermutation(base, target, components, order, eval, deltas);
    return deltas;
}

std::vector<double>
shapleyAttribution(const UarchParams &base, const UarchParams &target,
                   const std::vector<ShapleyComponent> &components,
                   const std::function<double(const UarchParams &)> &eval,
                   const ShapleyConfig &config)
{
    const size_t d = components.size();
    const auto orders = sampleOrders(d, config);
    std::vector<double> acc(d, 0.0);
    for (const auto &order : orders)
        walkPermutation(base, target, components, order, eval, acc);
    for (double &phi : acc)
        phi /= static_cast<double>(orders.size());
    return acc;
}

std::vector<double>
shapleyAttribution(const UarchParams &base, const UarchParams &target,
                   const std::vector<ShapleyComponent> &components,
                   const BatchEval &eval, const ShapleyConfig &config)
{
    const size_t d = components.size();
    const auto orders = sampleOrders(d, config);
    std::vector<double> acc(d, 0.0);

    // Every prefix of every order is evaluated through batched calls.
    // Orders are chunked so exhaustive mode (up to 8! orders) never
    // materializes a multi-gigabyte point list or feature matrix.
    const size_t max_points = 32768;
    const size_t orders_per_chunk =
        std::max<size_t>(1, max_points / std::max<size_t>(1, d));
    double base_value = 0.0;
    bool have_base = false;

    for (size_t begin = 0; begin < orders.size();
         begin += orders_per_chunk) {
        const size_t end =
            std::min(orders.size(), begin + orders_per_chunk);
        std::vector<UarchParams> points;
        points.reserve((end - begin) * d + (have_base ? 0 : 1));
        if (!have_base)
            points.push_back(base);
        for (size_t s = begin; s < end; ++s) {
            UarchParams current = base;
            for (int idx : orders[s]) {
                applyComponent(current, components[idx], target);
                points.push_back(current);
            }
        }

        const std::vector<double> values = eval(points);
        panic_if(values.size() != points.size(),
                 "batch eval returned %zu values for %zu points",
                 values.size(), points.size());

        size_t at = 0;
        if (!have_base) {
            base_value = values[at++];
            have_base = true;
        }
        for (size_t s = begin; s < end; ++s) {
            double prev = base_value;
            for (int idx : orders[s]) {
                acc[idx] += values[at] - prev;
                prev = values[at];
                ++at;
            }
        }
    }
    for (double &phi : acc)
        phi /= static_cast<double>(orders.size());
    return acc;
}

} // namespace concorde
