#include "core/concorde.hh"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "common/logging.hh"

namespace concorde
{

ConcordePredictor::ConcordePredictor(TrainedModel model,
                                     FeatureConfig feature_config)
    : trainedModel(std::move(model)), featureCfg(std::move(feature_config)),
      featureLayout(featureCfg)
{
    panic_if(trainedModel.valid()
             && trainedModel.inputDim() != featureLayout.dim(),
             "model input dim %zu != feature layout dim %zu",
             trainedModel.inputDim(), featureLayout.dim());
}

double
ConcordePredictor::predictCpi(FeatureProvider &provider,
                              const UarchParams &params) const
{
    thread_local std::vector<float> features;
    features.clear();
    provider.assemble(params, features);
    return trainedModel.predict(features.data());
}

double
ConcordePredictor::predictCpi(const RegionSpec &region,
                              const UarchParams &params) const
{
    FeatureProvider provider(region, featureCfg);
    return predictCpi(provider, params);
}

std::vector<double>
ConcordePredictor::predictCpiBatch(FeatureProvider &provider,
                                   const UarchParams *params, size_t n,
                                   size_t threads) const
{
    if (n == 0)
        return {};
    // Assembly is serial (the provider's memo caches are not
    // thread-safe), but every analytical-model run is memoized, so a
    // sweep touches each (resource, value, memory-config) once.
    std::vector<float> features;
    features.reserve(n * trainedModel.inputDim());
    for (size_t i = 0; i < n; ++i)
        provider.assemble(params[i], features);
    return predictCpiFromFeatures(features, n, threads);
}

std::vector<double>
ConcordePredictor::predictCpiBatch(FeatureProvider &provider,
                                   const std::vector<UarchParams> &pts,
                                   size_t threads) const
{
    return predictCpiBatch(provider, pts.data(), pts.size(), threads);
}

std::vector<double>
ConcordePredictor::predictSweep(const RegionSpec &region,
                                const UarchParams *params, size_t n,
                                size_t threads, AnalysisStore *store) const
{
    if (n == 0)
        return {};
    if (!store)
        store = &AnalysisStore::global();
    FeatureProvider provider(store->acquire(region), featureCfg);

    // Group the design points by their per-side analysis keys so that
    // consecutive assembles share sides: within a run of equal dSideKey
    // only the i-side/branch analyses change, so analyzeAll() re-analyzes
    // just the side whose parameters actually differ (and fuses whichever
    // sides a new design point does introduce into one trace sweep).
    // Every memoized value is order-independent, so scattering the rows
    // back to caller order keeps the output bitwise identical.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return std::make_tuple(params[a].memory.dSideKey(),
                                                params[a].memory.iSideKey(),
                                                params[a].branch.key())
                             < std::make_tuple(params[b].memory.dSideKey(),
                                               params[b].memory.iSideKey(),
                                               params[b].branch.key());
                     });

    const size_t dim = featureLayout.dim();
    std::vector<float> features(n * dim, 0.0f);
    std::vector<float> row;
    row.reserve(dim);
    for (size_t idx : order) {
        row.clear();
        provider.assemble(params[idx], row);
        panic_if(row.size() != dim, "assembled %zu features, dim %zu",
                 row.size(), dim);
        std::copy(row.begin(), row.end(), features.begin() + idx * dim);
    }
    return predictCpiFromFeatures(features, n, threads);
}

std::vector<double>
ConcordePredictor::predictSweep(const RegionSpec &region,
                                const std::vector<UarchParams> &pts,
                                size_t threads, AnalysisStore *store) const
{
    return predictSweep(region, pts.data(), pts.size(), threads, store);
}

std::vector<double>
ConcordePredictor::predictCpiFromFeatures(const std::vector<float> &rows,
                                          size_t n, size_t threads) const
{
    std::vector<double> out(n);
    if (n == 0)
        return out;
    panic_if(rows.size() != n * trainedModel.inputDim(),
             "feature rows hold %zu floats, expected %zu x %zu",
             rows.size(), n, trainedModel.inputDim());
    const auto preds =
        trainedModel.predictBatch(rows, trainedModel.inputDim(), threads);
    for (size_t i = 0; i < n; ++i)
        out[i] = preds[i];
    return out;
}

double
ConcordePredictor::predictLongProgram(const UarchParams &params,
                                      int program_id, int trace_id,
                                      uint64_t trace_chunks,
                                      int num_samples,
                                      uint32_t region_chunks,
                                      uint64_t seed) const
{
    panic_if(num_samples < 1, "need at least one sample");
    Rng rng(hashMix(seed, 0x10060ULL));
    // The long program's CPI prediction is the mean of region predictions
    // over uniformly sampled region offsets (Section 5.1). Offsets are
    // drawn with replacement, so revisited regions hit the shared
    // analysis store instead of re-analyzing the trace.
    AnalysisStore &store = AnalysisStore::global();
    double acc = 0.0;
    for (int s = 0; s < num_samples; ++s) {
        RegionSpec spec;
        spec.programId = program_id;
        spec.traceId = trace_id;
        spec.numChunks = region_chunks;
        const uint64_t max_start = trace_chunks > region_chunks
            ? trace_chunks - region_chunks : 0;
        spec.startChunk =
            max_start > 0 ? rng.nextBounded(max_start + 1) : 0;
        FeatureProvider provider(store.acquire(spec), featureCfg);
        acc += predictCpi(provider, params);
    }
    return acc / num_samples;
}

namespace
{

/** Header of the versioned predictor file format ("CONCORD1"). */
constexpr uint64_t kPredictorMagic = 0x3144524f434e4f43ULL;

} // anonymous namespace

void
ConcordePredictor::save(const std::string &path) const
{
    panic_if(!trainedModel.valid(), "save() on an empty predictor");
    BinaryWriter out(path);
    out.put<uint64_t>(kPredictorMagic);
    saveFeatureConfig(out, featureCfg);
    trainedModel.save(out);
}

ConcordePredictor
ConcordePredictor::load(const std::string &path)
{
    BinaryReader in(path);
    if (in.get<uint64_t>() != kPredictorMagic) {
        // Legacy headerless files hold just the model; they predate
        // FeatureConfig serialization, which always used the defaults.
        in.rewind();
        return ConcordePredictor(TrainedModel::load(in), FeatureConfig{});
    }
    FeatureConfig cfg = loadFeatureConfig(in);
    return ConcordePredictor(TrainedModel::load(in), std::move(cfg));
}

} // namespace concorde
