#include "core/concorde.hh"

#include "common/logging.hh"

namespace concorde
{

ConcordePredictor::ConcordePredictor(TrainedModel model,
                                     FeatureConfig feature_config)
    : trainedModel(std::move(model)), featureCfg(std::move(feature_config)),
      featureLayout(featureCfg)
{
    panic_if(trainedModel.valid()
             && trainedModel.inputDim() != featureLayout.dim(),
             "model input dim %zu != feature layout dim %zu",
             trainedModel.inputDim(), featureLayout.dim());
}

double
ConcordePredictor::predictCpi(FeatureProvider &provider,
                              const UarchParams &params) const
{
    thread_local std::vector<float> features;
    features.clear();
    provider.assemble(params, features);
    return trainedModel.predict(features.data());
}

double
ConcordePredictor::predictCpi(const RegionSpec &region,
                              const UarchParams &params) const
{
    FeatureProvider provider(region, featureCfg);
    return predictCpi(provider, params);
}

double
ConcordePredictor::predictLongProgram(const UarchParams &params,
                                      int program_id, int trace_id,
                                      uint64_t trace_chunks,
                                      int num_samples,
                                      uint32_t region_chunks,
                                      uint64_t seed) const
{
    panic_if(num_samples < 1, "need at least one sample");
    Rng rng(hashMix(seed, 0x10060ULL));
    // The long program's CPI prediction is the mean of region predictions
    // over uniformly sampled region offsets (Section 5.1).
    double acc = 0.0;
    for (int s = 0; s < num_samples; ++s) {
        RegionSpec spec;
        spec.programId = program_id;
        spec.traceId = trace_id;
        spec.numChunks = region_chunks;
        const uint64_t max_start = trace_chunks > region_chunks
            ? trace_chunks - region_chunks : 0;
        spec.startChunk =
            max_start > 0 ? rng.nextBounded(max_start + 1) : 0;
        acc += predictCpi(spec, params);
    }
    return acc / num_samples;
}

void
ConcordePredictor::save(const std::string &path) const
{
    trainedModel.save(path);
}

ConcordePredictor
ConcordePredictor::load(const std::string &path)
{
    return ConcordePredictor(TrainedModel::load(path), FeatureConfig{});
}

} // namespace concorde
