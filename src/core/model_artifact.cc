#include "core/model_artifact.hh"

#include "common/logging.hh"

// Build-time git-describe stamp (regenerated every build by the
// concorde_git_describe custom target; see cmake/git_describe.cmake).
#ifdef CONCORDE_GIT_HEADER_AVAILABLE
#include "concorde_git_describe.hh"
#endif

namespace concorde
{

namespace
{

/** "CNCART01" little-endian. */
constexpr uint64_t kArtifactMagic = 0x3130545241434e43ULL;
/** v2 = v1 + optional conformal-calibration section. */
constexpr uint32_t kArtifactVersion = 2;
constexpr uint32_t kMinArtifactVersion = 1;

} // anonymous namespace

void
ModelArtifact::save(const std::string &path) const
{
    panic_if(!model.valid(), "save() on an empty artifact");
    const std::string tmp = path + ".tmp";
    {
        BinaryWriter out(tmp);
        out.put<uint64_t>(kArtifactMagic);
        out.put<uint32_t>(kArtifactVersion);
        saveFeatureConfig(out, features);
        model.save(out);
        out.put<uint64_t>(provenance.datasetManifestHash);
        out.putString(provenance.datasetPath);
        out.putString(provenance.gitDescribe);
        saveTrainConfig(out, provenance.trainConfig);
        out.put<uint64_t>(provenance.trainedEpochs);
        out.put<double>(provenance.heldOutRelErr);
        out.put<uint8_t>(calibration.valid() ? 1 : 0);
        if (calibration.valid())
            calibration.save(out);
    }
    publishFile(tmp, path);
}

ModelArtifact
ModelArtifact::load(const std::string &path)
{
    BinaryReader in(path);
    fatal_if(in.get<uint64_t>() != kArtifactMagic,
             "'%s' is not a Concorde model artifact", path.c_str());
    const uint32_t version = in.get<uint32_t>();
    fatal_if(version < kMinArtifactVersion || version > kArtifactVersion,
             "'%s': unsupported artifact version %u", path.c_str(),
             version);
    ModelArtifact artifact;
    artifact.features = loadFeatureConfig(in);
    artifact.model = TrainedModel::load(in);
    artifact.provenance.datasetManifestHash = in.get<uint64_t>();
    artifact.provenance.datasetPath = in.getString();
    artifact.provenance.gitDescribe = in.getString();
    artifact.provenance.trainConfig = loadTrainConfig(in);
    artifact.provenance.trainedEpochs = in.get<uint64_t>();
    artifact.provenance.heldOutRelErr = in.get<double>();
    // v1 predates calibration: such artifacts load fine and simply
    // report uncalibrated (point-only serving).
    if (version >= 2 && in.get<uint8_t>() != 0)
        artifact.calibration = ConformalCalibration::load(in);
    return artifact;
}

std::string
buildGitDescribe()
{
#ifdef CONCORDE_GIT_DESCRIBE_STR
    return CONCORDE_GIT_DESCRIBE_STR;
#else
    return "unknown";
#endif
}

} // namespace concorde
