/**
 * @file
 * The public Concorde API: CPI prediction for (program region,
 * microarchitecture) pairs via the compositional analytical-ML pipeline
 * (Figure 3): trace analysis -> per-resource analytical models ->
 * performance distributions -> lightweight MLP.
 */

#ifndef CONCORDE_CORE_CONCORDE_HH
#define CONCORDE_CORE_CONCORDE_HH

#include <memory>
#include <string>

#include "analysis/analysis_store.hh"
#include "analytical/feature_provider.hh"
#include "ml/trainer.hh"
#include "trace/workloads.hh"
#include "uarch/params.hh"

namespace concorde
{

/** A trained Concorde CPI predictor. */
class ConcordePredictor
{
  public:
    ConcordePredictor(TrainedModel model, FeatureConfig feature_config);

    const TrainedModel &model() const { return trainedModel; }
    const FeatureConfig &featureConfig() const { return featureCfg; }
    const FeatureLayout &layout() const { return featureLayout; }

    /**
     * Predict CPI for a region on a design point, reusing a caller-owned
     * FeatureProvider (the fast path: analytical features are memoized in
     * the provider, so repeated predictions on the same region cost one
     * MLP evaluation each).
     */
    double predictCpi(FeatureProvider &provider,
                      const UarchParams &params) const;

    /** One-shot convenience: builds a fresh provider for the region. */
    double predictCpi(const RegionSpec &region,
                      const UarchParams &params) const;

    /**
     * Batched prediction for one region across many design points (the
     * design-space-exploration hot path): all feature rows are assembled
     * into one contiguous matrix, then evaluated in a single
     * thread-parallel blocked-GEMM pass. Matches predictCpi per element.
     *
     * @param params pointer to `n` design points
     * @param threads worker threads for the MLP pass (0 = hardware)
     */
    std::vector<double> predictCpiBatch(FeatureProvider &provider,
                                        const UarchParams *params, size_t n,
                                        size_t threads = 0) const;

    /** Convenience overload over a vector of design points. */
    std::vector<double> predictCpiBatch(FeatureProvider &provider,
                                        const std::vector<UarchParams> &pts,
                                        size_t threads = 0) const;

    /**
     * Design-space-sweep fast path (Section 5.2.3): acquire the region's
     * analysis from the shared AnalysisStore (so repeated sweeps -- and
     * any other layer touching the region -- reuse one trace analysis),
     * assemble every design point's row through one FeatureProvider
     * (each analytical-model run and encoded block computed at most
     * once), and evaluate all rows in a single batched GEMM. Matches a
     * per-config predictCpi(region, params) loop bitwise; the
     * bench_sweep_dse gate pins both the equality and the speedup.
     *
     * @param store analysis cache to share (default: the global store)
     */
    std::vector<double> predictSweep(const RegionSpec &region,
                                     const UarchParams *params, size_t n,
                                     size_t threads = 0,
                                     AnalysisStore *store = nullptr) const;

    /** Convenience overload over a vector of design points. */
    std::vector<double> predictSweep(const RegionSpec &region,
                                     const std::vector<UarchParams> &pts,
                                     size_t threads = 0,
                                     AnalysisStore *store = nullptr) const;

    /**
     * Batched prediction from `n` pre-assembled raw feature rows
     * (layout().dim() floats each). The serve layer assembles rows per
     * region under its own locking, mixes rows from different regions
     * into one batch, and evaluates them here in a single GEMM pass.
     * Matches predictCpi for rows produced by FeatureProvider::assemble.
     */
    std::vector<double> predictCpiFromFeatures(
        const std::vector<float> &rows, size_t n, size_t threads = 0) const;

    /**
     * Estimate the CPI of a long program by averaging predictions over
     * `num_samples` randomly sampled regions (Section 5.1, Figure 9).
     * Regions are sampled with replacement, so their analyses go through
     * the shared AnalysisStore: a revisited region costs one MLP
     * evaluation instead of a fresh trace analysis.
     */
    double predictLongProgram(const UarchParams &params, int program_id,
                              int trace_id, uint64_t trace_chunks,
                              int num_samples, uint32_t region_chunks,
                              uint64_t seed) const;

    /**
     * Serialize the predictor: a versioned header, the FeatureConfig it
     * was trained with, and the model. load() restores the exact feature
     * configuration (legacy headerless model files are still accepted and
     * get the default config).
     */
    void save(const std::string &path) const;
    static ConcordePredictor load(const std::string &path);

  private:
    TrainedModel trainedModel;
    FeatureConfig featureCfg;
    FeatureLayout featureLayout;
};

} // namespace concorde

#endif // CONCORDE_CORE_CONCORDE_HH
