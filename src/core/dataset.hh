/**
 * @file
 * Dataset construction (paper Section 4): independently sample a program
 * region and a microarchitecture per data point, extract Concorde's
 * features, and label with the reference cycle-level simulator's CPI
 * (plus occupancy metrics for Section 5.2.6 and diagnostics for
 * Figures 4 and 11).
 */

#ifndef CONCORDE_CORE_DATASET_HH
#define CONCORDE_CORE_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analytical/feature_provider.hh"
#include "trace/workloads.hh"
#include "uarch/params.hh"

namespace concorde
{

/** Per-sample metadata (POD; serialized alongside features). */
struct SampleMeta
{
    RegionSpec region;
    UarchParams params;
    float cpi = 0.0f;
    float avgRobOcc = 0.0f;     ///< % (Section 5.2.6 target)
    float avgRenameOcc = 0.0f;  ///< % (Section 5.2.6 target)
    uint32_t mispredicts = 0;   ///< Table 4 bucketing
    float execRatio = 1.0f;     ///< actual/estimated load time (Figure 11)
};

/** Feature matrix + CPI labels + metadata. */
struct Dataset
{
    size_t dim = 0;
    std::vector<float> features;    ///< size() x dim, row-major
    std::vector<float> labels;      ///< ground-truth CPI
    std::vector<SampleMeta> meta;

    size_t size() const { return labels.size(); }
    const float *row(size_t i) const { return features.data() + i * dim; }

    /** Alternative label vectors for Section 5.2.6. */
    std::vector<float> robOccLabels() const;
    std::vector<float> renameOccLabels() const;

    /** Subset by sample indices. */
    Dataset subset(const std::vector<size_t> &indices) const;

    void save(const std::string &path) const;
    static Dataset load(const std::string &path);
};

/** Knobs for dataset construction. */
struct DatasetConfig
{
    size_t numSamples = 1000;
    uint32_t regionChunks = 8;      ///< 8 x 2048 = 16k-instruction regions
    uint64_t seed = 99;
    FeatureConfig features;
    size_t threads = 0;

    /** Fixed microarchitecture (e.g. ARM N1) instead of random draws. */
    bool useFixedUarch = false;
    UarchParams fixedUarch;

    /** Restrict sampling to these programs (empty = whole corpus). */
    std::vector<int> programFilter;
};

/** Build a dataset (deterministic given config.seed). */
Dataset buildDataset(const DatasetConfig &config);

} // namespace concorde

#endif // CONCORDE_CORE_DATASET_HH
