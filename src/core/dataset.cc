#include "core/dataset.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/thread_pool.hh"
#include "sim/o3_core.hh"

namespace concorde
{

std::vector<float>
Dataset::robOccLabels() const
{
    std::vector<float> out(meta.size());
    for (size_t i = 0; i < meta.size(); ++i)
        out[i] = meta[i].avgRobOcc;
    return out;
}

std::vector<float>
Dataset::renameOccLabels() const
{
    std::vector<float> out(meta.size());
    for (size_t i = 0; i < meta.size(); ++i)
        out[i] = meta[i].avgRenameOcc;
    return out;
}

Dataset
Dataset::subset(const std::vector<size_t> &indices) const
{
    Dataset out;
    out.dim = dim;
    out.features.reserve(indices.size() * dim);
    out.labels.reserve(indices.size());
    out.meta.reserve(indices.size());
    for (size_t i : indices) {
        panic_if(i >= size(), "subset index out of range");
        out.features.insert(out.features.end(), row(i), row(i) + dim);
        out.labels.push_back(labels[i]);
        out.meta.push_back(meta[i]);
    }
    return out;
}

void
Dataset::save(const std::string &path) const
{
    BinaryWriter out(path);
    out.put<uint64_t>(0xC04C08DEULL);   // magic
    out.put<uint64_t>(dim);
    out.putVector(features);
    out.putVector(labels);
    out.putVector(meta);
}

Dataset
Dataset::load(const std::string &path)
{
    BinaryReader in(path);
    fatal_if(in.get<uint64_t>() != 0xC04C08DEULL,
             "'%s' is not a Concorde dataset", path.c_str());
    Dataset data;
    data.dim = in.get<uint64_t>();
    data.features = in.getVector<float>();
    data.labels = in.getVector<float>();
    data.meta = in.getVector<SampleMeta>();
    return data;
}

Dataset
buildDataset(const DatasetConfig &config)
{
    // Draw all (region, microarchitecture) pairs serially so the dataset
    // is independent of the thread count.
    Rng rng(hashMix(config.seed, 0xDA7A5E7ULL));
    std::vector<SampleMeta> specs(config.numSamples);
    for (auto &meta : specs) {
        if (config.programFilter.empty()) {
            meta.region = sampleRegion(rng, config.regionChunks);
        } else {
            const int program = config.programFilter[rng.nextBounded(
                config.programFilter.size())];
            meta.region = sampleRegionFromProgram(rng, program,
                                                  config.regionChunks);
        }
        meta.params = config.useFixedUarch ? config.fixedUarch
                                           : UarchParams::sampleRandom(rng);
    }

    const FeatureLayout layout(config.features);
    Dataset data;
    data.dim = layout.dim();
    data.features.assign(config.numSamples * layout.dim(), 0.0f);
    data.labels.assign(config.numSamples, 0.0f);
    data.meta = std::move(specs);

    parallelFor(config.numSamples, [&](size_t s) {
        SampleMeta &meta = data.meta[s];
        FeatureProvider provider(meta.region, config.features);

        // Features.
        std::vector<float> features;
        provider.assemble(meta.params, features);
        std::copy(features.begin(), features.end(),
                  data.features.begin() + s * layout.dim());

        // Ground-truth label from the cycle-level simulator.
        const SimResult sim =
            simulateRegion(meta.params, provider.analysis());
        meta.cpi = static_cast<float>(sim.cpi());
        meta.avgRobOcc = static_cast<float>(sim.avgRobOccupancy);
        meta.avgRenameOcc = static_cast<float>(sim.avgRenameQOccupancy);
        meta.mispredicts = static_cast<uint32_t>(sim.branchMispredicts);

        // Figure 11 diagnostic: actual vs trace-analysis load time.
        const auto &dside =
            provider.analysis().dside(meta.params.memory);
        uint64_t estimated = 0;
        const auto &region = provider.analysis().instrs();
        for (size_t i = 0; i < region.size(); ++i) {
            if (region[i].isLoad())
                estimated += static_cast<uint64_t>(dside.execLat[i]);
        }
        meta.execRatio = estimated > 0
            ? static_cast<float>(
                static_cast<double>(sim.actualLoadLatencySum)
                / static_cast<double>(estimated))
            : 1.0f;

        data.labels[s] = meta.cpi;
    }, config.threads);

    return data;
}

} // namespace concorde
