#include "core/dataset.hh"

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <tuple>

#include "analysis/analysis_store.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/thread_pool.hh"
#include "sim/o3_core.hh"

namespace concorde
{

namespace
{

/** Legacy (pre-v2) magic: raw-struct SampleMeta payload. */
constexpr uint64_t kDatasetMagicLegacy = 0xC04C08DEULL;
/** Versioned field-wise format: "CNCDAT02" little-endian. */
constexpr uint64_t kDatasetMagicV2 = 0x3230544144434e43ULL;
constexpr uint32_t kDatasetVersion = 2;

void
saveSampleMeta(BinaryWriter &out, const SampleMeta &meta)
{
    out.put<int32_t>(meta.region.programId);
    out.put<int32_t>(meta.region.traceId);
    out.put<uint64_t>(meta.region.startChunk);
    out.put<uint32_t>(meta.region.numChunks);
    meta.params.save(out);
    out.put<float>(meta.cpi);
    out.put<float>(meta.avgRobOcc);
    out.put<float>(meta.avgRenameOcc);
    out.put<uint32_t>(meta.mispredicts);
    out.put<float>(meta.execRatio);
}

SampleMeta
loadSampleMeta(BinaryReader &in)
{
    SampleMeta meta;
    meta.region.programId = in.get<int32_t>();
    meta.region.traceId = in.get<int32_t>();
    meta.region.startChunk = in.get<uint64_t>();
    meta.region.numChunks = in.get<uint32_t>();
    meta.params = UarchParams::load(in);
    meta.cpi = in.get<float>();
    meta.avgRobOcc = in.get<float>();
    meta.avgRenameOcc = in.get<float>();
    meta.mispredicts = in.get<uint32_t>();
    meta.execRatio = in.get<float>();
    return meta;
}

/**
 * Serial spec pass: draw every (region, microarchitecture) pair with one
 * RNG stream. A sample's spec depends only on (config, sample index), so
 * sharded, resumed, and monolithic builds all see identical specs.
 */
std::vector<SampleMeta>
drawSpecs(const DatasetConfig &config)
{
    Rng rng(hashMix(config.seed, 0xDA7A5E7ULL));
    std::vector<SampleMeta> specs(config.numSamples);
    for (auto &meta : specs) {
        if (config.programFilter.empty()) {
            meta.region = sampleRegion(rng, config.regionChunks);
        } else {
            const int program = config.programFilter[rng.nextBounded(
                config.programFilter.size())];
            meta.region = sampleRegionFromProgram(rng, program,
                                                  config.regionChunks);
        }
        meta.params = config.useFixedUarch ? config.fixedUarch
                                           : UarchParams::sampleRandom(rng);
    }
    return specs;
}

/**
 * Label one drawn sample through a caller-owned provider: features +
 * simulator ground truth. Every output is a pure function of
 * (meta.region, meta.params, config.features), so sharing the provider
 * (and its memo caches) across samples of one region is bitwise-neutral.
 */
void
labelSample(FeatureProvider &provider, SampleMeta &meta,
            std::vector<float> &row, float *feature_row, float &label,
            SimScratch &sim_scratch)
{
    // Features, assembled into a reused scratch row.
    row.clear();
    provider.assemble(meta.params, row);
    std::copy(row.begin(), row.end(), feature_row);

    // Ground-truth label from the cycle-level simulator, run through the
    // caller's reusable scratch (bitwise-identical to a fresh engine).
    const SimResult sim =
        simulateRegion(meta.params, provider.analysis(), 0, &sim_scratch);
    meta.cpi = static_cast<float>(sim.cpi());
    meta.avgRobOcc = static_cast<float>(sim.avgRobOccupancy);
    meta.avgRenameOcc = static_cast<float>(sim.avgRenameQOccupancy);
    meta.mispredicts = static_cast<uint32_t>(sim.branchMispredicts);

    // Figure 11 diagnostic: actual vs trace-analysis load time. The
    // estimate depends only on (region, d-side config); the provider
    // memoizes the sum.
    const uint64_t estimated =
        provider.estimatedLoadLatencySum(meta.params.memory);
    meta.execRatio = estimated > 0
        ? static_cast<float>(
            static_cast<double>(sim.actualLoadLatencySum)
            / static_cast<double>(estimated))
        : 1.0f;

    label = meta.cpi;
}

/**
 * Residency bound of a dataset build's AnalysisStore. Bulk generation
 * visits mostly-unique regions, so a large cache would pay RSS churn
 * for entries it never revisits (measured as a net slowdown on the CI
 * box when generation ran against the big global store) -- the store
 * here exists to dedup repeated regions, and a couple dozen resident
 * entries cover that.
 */
constexpr uint64_t kDatasetStoreResidentInstructions = 512u << 10;

/**
 * Label the spec range [begin, end) into a standalone Dataset.
 *
 * Samples are grouped by region, and each group is labeled through one
 * AnalysisStore-backed FeatureProvider: trace generation, warmup replay,
 * and the per-configuration trace analyses run once per region instead
 * of once per sample, and the provider's analytical-model memo caches
 * are shared across the group's design points. Grouping reorders *work*
 * only -- each sample's bytes land at its own (config, index) slot, so
 * shard content is unchanged (pinned by test_analysis_store).
 */
Dataset
labelRange(const DatasetConfig &config, const FeatureLayout &layout,
           const std::vector<SampleMeta> &specs, size_t begin, size_t end,
           AnalysisStore &store)
{
    const size_t count = end - begin;
    Dataset data;
    data.dim = layout.dim();
    data.features.assign(count * layout.dim(), 0.0f);
    data.labels.assign(count, 0.0f);
    data.meta.assign(specs.begin() + begin, specs.begin() + end);

    // Group sample indices by exact region identity (deterministic map
    // order, though output placement makes order irrelevant).
    using RegionKey = std::tuple<int, int, uint64_t, uint32_t>;
    std::map<RegionKey, std::vector<size_t>> groups;
    for (size_t s = 0; s < count; ++s) {
        const RegionSpec &r = data.meta[s].region;
        groups[{r.programId, r.traceId, r.startChunk, r.numChunks}]
            .push_back(s);
    }
    std::vector<const std::vector<size_t> *> group_list;
    group_list.reserve(groups.size());
    for (const auto &[key, members] : groups)
        group_list.push_back(&members);

    // parallelShards (not parallelFor) so each worker carries ONE
    // simulator scratch across every group it labels: the whole shard's
    // ground-truth simulation reuses a single allocation set.
    parallelShards(group_list.size(), [&](size_t, size_t gbegin,
                                          size_t gend) {
        SimScratch sim_scratch;
        std::vector<float> row;
        row.reserve(layout.dim());
        for (size_t g = gbegin; g < gend; ++g) {
            const std::vector<size_t> &members = *group_list[g];
            FeatureProvider provider(
                store.acquire(data.meta[members.front()].region),
                config.features);
            for (size_t s : members) {
                labelSample(provider, data.meta[s], row,
                            data.features.data() + s * layout.dim(),
                            data.labels[s], sim_scratch);
            }
        }
    }, config.threads);
    return data;
}

} // anonymous namespace

std::vector<float>
Dataset::robOccLabels() const
{
    std::vector<float> out(meta.size());
    for (size_t i = 0; i < meta.size(); ++i)
        out[i] = meta[i].avgRobOcc;
    return out;
}

std::vector<float>
Dataset::renameOccLabels() const
{
    std::vector<float> out(meta.size());
    for (size_t i = 0; i < meta.size(); ++i)
        out[i] = meta[i].avgRenameOcc;
    return out;
}

Dataset
Dataset::subset(const std::vector<size_t> &indices) const
{
    Dataset out;
    out.dim = dim;
    out.features.reserve(indices.size() * dim);
    out.labels.reserve(indices.size());
    out.meta.reserve(indices.size());
    for (size_t i : indices) {
        panic_if(i >= size(), "subset index out of range");
        out.features.insert(out.features.end(), row(i), row(i) + dim);
        out.labels.push_back(labels[i]);
        out.meta.push_back(meta[i]);
    }
    return out;
}

void
Dataset::append(const Dataset &other)
{
    if (size() == 0 && dim == 0)
        dim = other.dim;
    panic_if(other.dim != dim, "appending dataset of dim %zu to dim %zu",
             other.dim, dim);
    // Pre-reserve so repeated appends (shard concatenation) grow each
    // vector at most once per call instead of reallocating mid-insert.
    features.reserve(features.size() + other.features.size());
    labels.reserve(labels.size() + other.labels.size());
    meta.reserve(meta.size() + other.meta.size());
    features.insert(features.end(), other.features.begin(),
                    other.features.end());
    labels.insert(labels.end(), other.labels.begin(), other.labels.end());
    meta.insert(meta.end(), other.meta.begin(), other.meta.end());
}

void
Dataset::save(const std::string &path) const
{
    BinaryWriter out(path);
    out.put<uint64_t>(kDatasetMagicV2);
    out.put<uint32_t>(kDatasetVersion);
    out.put<uint64_t>(dim);
    out.putVector(features);
    out.putVector(labels);
    out.put<uint64_t>(meta.size());
    for (const auto &sample : meta)
        saveSampleMeta(out, sample);
}

Dataset
Dataset::load(const std::string &path)
{
    BinaryReader in(path);
    const uint64_t magic = in.get<uint64_t>();
    Dataset data;
    if (magic == kDatasetMagicLegacy) {
        // Pre-v2 cache files (e.g. committed bench-artifacts): raw
        // struct bytes, readable only by the ABI that wrote them.
        data.dim = in.get<uint64_t>();
        data.features = in.getVector<float>();
        data.labels = in.getVector<float>();
        data.meta = in.getVector<SampleMeta>();
        return data;
    }
    fatal_if(magic != kDatasetMagicV2, "'%s' is not a Concorde dataset",
             path.c_str());
    const uint32_t version = in.get<uint32_t>();
    fatal_if(version != kDatasetVersion,
             "'%s': unsupported dataset version %u", path.c_str(), version);
    data.dim = in.get<uint64_t>();
    data.features = in.getVector<float>();
    data.labels = in.getVector<float>();
    const uint64_t count = in.get<uint64_t>();
    data.meta.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        data.meta.push_back(loadSampleMeta(in));
    return data;
}

Dataset
buildDataset(const DatasetConfig &config)
{
    const FeatureLayout layout(config.features);
    AnalysisStore store(kDatasetStoreResidentInstructions);
    return labelRange(config, layout, drawSpecs(config), 0,
                      config.numSamples, store);
}

// ---- sharded generation ----

size_t
DatasetManifest::numShards() const
{
    panic_if(shardSamples == 0, "manifest with zero-sample shards");
    return static_cast<size_t>(
        (numSamples + shardSamples - 1) / shardSamples);
}

size_t
DatasetManifest::shardBegin(size_t shard) const
{
    return static_cast<size_t>(shard * shardSamples);
}

size_t
DatasetManifest::shardEnd(size_t shard) const
{
    return static_cast<size_t>(
        std::min<uint64_t>(numSamples, (shard + 1) * shardSamples));
}

std::string
DatasetManifest::shardFile(const std::string &dir, size_t shard)
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard_%05zu.bin", shard);
    return dir + "/" + name;
}

std::string
DatasetManifest::manifestFile(const std::string &dir)
{
    return dir + "/manifest.bin";
}

namespace
{

/** "CNCMAN01" little-endian. */
constexpr uint64_t kManifestMagic = 0x31304e414d434e43ULL;

} // anonymous namespace

void
DatasetManifest::save(const std::string &path) const
{
    const std::string tmp = uniqueTmpName(path);
    {
        BinaryWriter out(tmp);
        out.put<uint64_t>(kManifestMagic);
        out.put<uint64_t>(configFingerprint);
        out.put<uint64_t>(seed);
        out.put<uint64_t>(numSamples);
        out.put<uint64_t>(shardSamples);
        out.put<uint32_t>(regionChunks);
    }
    publishFile(tmp, path);
}

DatasetManifest
DatasetManifest::load(const std::string &path)
{
    BinaryReader in(path);
    fatal_if(in.get<uint64_t>() != kManifestMagic,
             "'%s' is not a Concorde dataset manifest", path.c_str());
    DatasetManifest manifest;
    manifest.configFingerprint = in.get<uint64_t>();
    manifest.seed = in.get<uint64_t>();
    manifest.numSamples = in.get<uint64_t>();
    manifest.shardSamples = in.get<uint64_t>();
    manifest.regionChunks = in.get<uint32_t>();
    return manifest;
}

uint64_t
datasetConfigFingerprint(const DatasetConfig &config, size_t shard_samples)
{
    uint64_t h = hashMix(0xDA7A5E7ULL, config.seed, config.numSamples);
    h = hashMix(h, config.regionChunks, shard_samples);
    h = hashMix(h, featureConfigFingerprint(config.features));
    h = hashMix(h, config.useFixedUarch ? 1 : 0,
                config.useFixedUarch ? config.fixedUarch.hashKey() : 0);
    for (int program : config.programFilter)
        h = hashMix(h, 3, static_cast<uint64_t>(program));
    return h;
}

DatasetManifest
ensureDatasetManifest(const DatasetConfig &config, const std::string &dir,
                      size_t shard_samples)
{
    fatal_if(shard_samples == 0, "shard size must be positive");
    fatal_if(config.numSamples == 0, "empty dataset");
    ensureDir(dir);

    const uint64_t fingerprint =
        datasetConfigFingerprint(config, shard_samples);
    const std::string manifest_path = DatasetManifest::manifestFile(dir);
    DatasetManifest manifest;
    if (fileExists(manifest_path)) {
        manifest = DatasetManifest::load(manifest_path);
        fatal_if(manifest.configFingerprint != fingerprint,
                 "'%s' was generated with a different dataset config; "
                 "refusing to mix shards (use a fresh directory)",
                 dir.c_str());
    } else {
        manifest.configFingerprint = fingerprint;
        manifest.seed = config.seed;
        manifest.numSamples = config.numSamples;
        manifest.shardSamples = shard_samples;
        manifest.regionChunks = config.regionChunks;
        manifest.save(manifest_path);
    }
    return manifest;
}

bool
datasetShardValid(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    uint64_t magic = 0;
    const bool got = std::fread(&magic, sizeof(magic), 1, f) == 1;
    std::fclose(f);
    return got
        && (magic == kDatasetMagicV2 || magic == kDatasetMagicLegacy);
}

namespace
{

/**
 * Writer pid embedded in a `<name>.tmp.<pid>.<n>` staging-file name
 * (see uniqueTmpName), or -1 if the name is not of that shape.
 */
pid_t
stagingFilePid(const std::string &name)
{
    const auto pos = name.rfind(".tmp.");
    if (pos == std::string::npos)
        return -1;
    const char *pid_str = name.c_str() + pos + 5;
    char *end = nullptr;
    const long pid = std::strtol(pid_str, &end, 10);
    if (end == pid_str || pid <= 0 || *end != '.')
        return -1;
    const char *counter_str = end + 1;
    char *counter_end = nullptr;
    (void)std::strtol(counter_str, &counter_end, 10);
    if (counter_end == counter_str || *counter_end != '\0')
        return -1;
    return static_cast<pid_t>(pid);
}

} // anonymous namespace

size_t
repairDatasetDir(const std::string &dir, const DatasetManifest &manifest)
{
    DIR *d = ::opendir(dir.c_str());
    fatal_if(!d, "cannot scan '%s': %s", dir.c_str(), std::strerror(errno));
    std::vector<std::string> stale;
    while (struct dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() > 4
            && name.compare(name.size() - 4, 4, ".tmp") == 0) {
            // Legacy fixed-name staging file: its writer is by
            // definition not running (current writers embed a pid).
            stale.push_back(name);
            continue;
        }
        const pid_t writer = stagingFilePid(name);
        if (writer < 0)
            continue;
        // Only ESRCH proves the writer is gone: EPERM would mean a live
        // process owned by another user, whose staging file must stay.
        if (::kill(writer, 0) != 0 && errno == ESRCH)
            stale.push_back(name);
    }
    ::closedir(d);

    size_t removed = 0;
    for (const auto &name : stale) {
        const std::string path = dir + "/" + name;
        warn("removing stale staging file '%s'", path.c_str());
        if (::unlink(path.c_str()) == 0)
            ++removed;
    }
    for (size_t shard = 0; shard < manifest.numShards(); ++shard) {
        const std::string path = DatasetManifest::shardFile(dir, shard);
        if (!fileExists(path) || datasetShardValid(path))
            continue;
        warn("removing corrupt shard '%s' (zero-length or bad magic); "
             "it will be regenerated", path.c_str());
        if (::unlink(path.c_str()) == 0)
            ++removed;
    }
    return removed;
}

std::vector<size_t>
missingDatasetShards(const std::string &dir, const DatasetManifest &manifest)
{
    std::vector<size_t> missing;
    for (size_t shard = 0; shard < manifest.numShards(); ++shard) {
        const std::string path = DatasetManifest::shardFile(dir, shard);
        if (!fileExists(path) || !datasetShardValid(path))
            missing.push_back(shard);
    }
    return missing;
}

ShardedBuildResult
buildDatasetShardSet(const DatasetConfig &config, const std::string &dir,
                     size_t shard_samples, const std::vector<size_t> &shards,
                     size_t max_shards_this_run)
{
    const DatasetManifest manifest =
        ensureDatasetManifest(config, dir, shard_samples);

    // The serial spec pass is cheap relative to labeling; redrawing it
    // on every (resumed) run keeps shard content a pure function of the
    // config.
    const std::vector<SampleMeta> specs = drawSpecs(config);
    const FeatureLayout layout(config.features);

    // One analysis store for the whole (possibly resumed) run, so a
    // region repeated across shard boundaries is analyzed once.
    AnalysisStore store(kDatasetStoreResidentInstructions);
    ShardedBuildResult result;
    for (size_t shard : shards) {
        fatal_if(shard >= manifest.numShards(),
                 "shard %zu out of range (dataset has %zu shards)", shard,
                 manifest.numShards());
        const std::string path = DatasetManifest::shardFile(dir, shard);
        if (fileExists(path) && datasetShardValid(path)) {
            ++result.shardsSkipped;
            continue;
        }
        if (max_shards_this_run > 0
            && result.shardsBuilt >= max_shards_this_run) {
            ++result.shardsRemaining;
            continue;
        }
        const Dataset data = labelRange(config, layout, specs,
                                        manifest.shardBegin(shard),
                                        manifest.shardEnd(shard), store);
        const std::string tmp = uniqueTmpName(path);
        data.save(tmp);
        publishFile(tmp, path);
        ++result.shardsBuilt;
    }
    return result;
}

ShardedBuildResult
buildDatasetShards(const DatasetConfig &config, const std::string &dir,
                   size_t shard_samples, size_t max_shards_this_run)
{
    const DatasetManifest manifest =
        ensureDatasetManifest(config, dir, shard_samples);
    repairDatasetDir(dir, manifest);
    std::vector<size_t> all(manifest.numShards());
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return buildDatasetShardSet(config, dir, shard_samples, all,
                                max_shards_this_run);
}

Dataset
loadDatasetShards(const std::string &dir)
{
    const DatasetManifest manifest =
        DatasetManifest::load(DatasetManifest::manifestFile(dir));
    Dataset data;
    for (size_t shard = 0; shard < manifest.numShards(); ++shard) {
        const std::string path = DatasetManifest::shardFile(dir, shard);
        fatal_if(!fileExists(path),
                 "dataset '%s' is incomplete (missing %s); rerun the "
                 "sharded build to resume", dir.c_str(), path.c_str());
        fatal_if(!datasetShardValid(path),
                 "shard '%s' is corrupt (zero-length or bad magic); "
                 "delete it and rerun the sharded build to regenerate it",
                 path.c_str());
        const Dataset shard_data = Dataset::load(path);
        const size_t expected =
            manifest.shardEnd(shard) - manifest.shardBegin(shard);
        fatal_if(shard_data.size() != expected,
                 "shard '%s' holds %zu samples, manifest expects %zu",
                 path.c_str(), shard_data.size(), expected);
        if (shard == 0) {
            // The manifest gives the total; the first shard gives the
            // feature dim. Reserve once so concatenation never
            // reallocates mid-build.
            data.features.reserve(manifest.numSamples * shard_data.dim);
            data.labels.reserve(manifest.numSamples);
            data.meta.reserve(manifest.numSamples);
        }
        data.append(shard_data);
    }
    fatal_if(data.size() != manifest.numSamples,
             "sharded dataset '%s' holds %zu samples, manifest expects "
             "%llu", dir.c_str(), data.size(),
             static_cast<unsigned long long>(manifest.numSamples));
    return data;
}

uint64_t
datasetManifestHash(const std::string &dir)
{
    return fileHash(DatasetManifest::manifestFile(dir));
}

} // namespace concorde
