/**
 * @file
 * Training harness for Concorde's MLP: input standardization, feature
 * masking (for the Figure-12 ablations), minibatch AdamW with a halving
 * learning-rate schedule (Section 4), and multithreaded gradient
 * accumulation.
 */

#ifndef CONCORDE_ML_TRAINER_HH
#define CONCORDE_ML_TRAINER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/calibration.hh"
#include "ml/mlp.hh"

namespace concorde
{

/** Training hyperparameters (paper Section 4, scaled to CPU training). */
struct TrainConfig
{
    std::vector<size_t> hiddenSizes = {192, 96};
    double learningRate = 1e-3;
    /** Fractions of total steps at which the LR halves. */
    std::vector<double> lrHalveAt = {0.5, 0.65, 0.8, 0.9};
    double weightDecay = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double adamEps = 1e-8;
    size_t batchSize = 512;
    size_t epochs = 60;
    uint64_t seed = 1234;
    size_t threads = 0;         ///< 0 = hardware concurrency
    bool verbose = false;
    /**
     * Fraction of samples held out for per-epoch validation (0 = train
     * on everything, no held-out metrics; standardization statistics
     * come from the training split only).
     */
    double valFraction = 0.0;
};

/** Field-wise TrainConfig serialization (checkpoints, artifacts). */
void saveTrainConfig(BinaryWriter &out, const TrainConfig &cfg);
TrainConfig loadTrainConfig(BinaryReader &in);

/**
 * A trained CPI predictor: the MLP plus its input pre-processing
 * (feature mask and standardization statistics).
 */
class TrainedModel
{
  public:
    TrainedModel() = default;
    TrainedModel(Mlp mlp, std::vector<float> mean, std::vector<float> stdev,
                 std::vector<uint8_t> mask);

    bool valid() const { return net != nullptr; }
    size_t inputDim() const { return featureMean.size(); }

    /** Predict from raw (unmasked, unstandardized) features. */
    float predict(const float *raw_features) const;

    /**
     * Batch prediction: the whole batch is standardized once into one
     * contiguous matrix, then evaluated through Mlp::forwardBatch as a
     * blocked GEMM, sharded across threads. Matches predict() per row.
     */
    std::vector<float> predictBatch(const std::vector<float> &features,
                                    size_t dim, size_t threads = 0) const;

    /** Mean relative error over a labeled set. */
    double meanRelativeError(const std::vector<float> &features,
                             const std::vector<float> &labels,
                             size_t dim) const;

    void save(const std::string &path) const;
    static TrainedModel load(const std::string &path);

    /** Stream variants, for embedding in larger artifact files. */
    void save(BinaryWriter &out) const;
    static TrainedModel load(BinaryReader &in);

  private:
    void buildInvStd();

    std::shared_ptr<const Mlp> net;
    std::vector<float> featureMean;
    std::vector<float> featureStd;
    std::vector<float> featureInvStd;   ///< 1/std, 0 for masked-out dims
    std::vector<size_t> maskedDims;     ///< indices forced to zero
    std::vector<uint8_t> featureMask;   ///< empty = keep everything
};

/** Held-out / training metrics of one completed epoch. */
struct EpochMetrics
{
    size_t epoch = 0;           ///< 0-based
    double trainRelErr = 0.0;   ///< mean relative error over the epoch
    double valRelErr = -1.0;    ///< held-out mean rel error (<0 = no split)
    double lr = 0.0;            ///< learning rate after the epoch
};

/** Result of a (possibly partial) training run. */
struct TrainRun
{
    TrainedModel model;         ///< state as of the last completed epoch
    std::vector<EpochMetrics> history;  ///< all completed epochs so far
    bool finished = false;      ///< config.epochs epochs are done
    /**
     * Split-conformal calibration fitted on the validation split
     * (scores from the held-out residuals, feature envelope from the
     * training split). Invalid/empty when valFraction == 0 -- the
     * model then ships uncalibrated and serves point predictions only.
     */
    ConformalCalibration calibration;

    size_t epochsCompleted() const { return history.size(); }
};

/**
 * Train an MLP CPI predictor.
 *
 * @param features n x dim row-major raw features
 * @param labels n CPI targets
 * @param mask optional keep-mask (masked-out dims are zeroed)
 */
TrainedModel trainMlp(const std::vector<float> &features,
                      const std::vector<float> &labels, size_t dim,
                      const TrainConfig &config,
                      const std::vector<uint8_t> *mask = nullptr);

/**
 * Checkpointable / resumable training with an optional validation split.
 *
 * If `checkpoint_path` is non-empty, the full optimizer state (weights,
 * AdamW moments and step, shuffle-RNG state, LR-schedule position,
 * metric history) is written there atomically after every epoch, and a
 * pre-existing checkpoint resumes training from its last completed
 * epoch. A resumed run is bitwise-identical to one that never stopped
 * -- the checkpoint stores the (data, config, thread-count) fingerprint
 * and refuses to resume against anything else, since gradient summation
 * order depends on the worker count.
 *
 * @param max_epochs_this_run stop (with a checkpoint on disk) after this
 *        many additional epochs; 0 = train to config.epochs
 */
TrainRun trainMlpResumable(const std::vector<float> &features,
                           const std::vector<float> &labels, size_t dim,
                           const TrainConfig &config,
                           const std::vector<uint8_t> *mask = nullptr,
                           const std::string &checkpoint_path = "",
                           size_t max_epochs_this_run = 0);

} // namespace concorde

#endif // CONCORDE_ML_TRAINER_HH
