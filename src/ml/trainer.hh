/**
 * @file
 * Training harness for Concorde's MLP: input standardization, feature
 * masking (for the Figure-12 ablations), minibatch AdamW with a halving
 * learning-rate schedule (Section 4), and multithreaded gradient
 * accumulation.
 */

#ifndef CONCORDE_ML_TRAINER_HH
#define CONCORDE_ML_TRAINER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/mlp.hh"

namespace concorde
{

/** Training hyperparameters (paper Section 4, scaled to CPU training). */
struct TrainConfig
{
    std::vector<size_t> hiddenSizes = {192, 96};
    double learningRate = 1e-3;
    /** Fractions of total steps at which the LR halves. */
    std::vector<double> lrHalveAt = {0.5, 0.65, 0.8, 0.9};
    double weightDecay = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double adamEps = 1e-8;
    size_t batchSize = 512;
    size_t epochs = 60;
    uint64_t seed = 1234;
    size_t threads = 0;         ///< 0 = hardware concurrency
    bool verbose = false;
};

/**
 * A trained CPI predictor: the MLP plus its input pre-processing
 * (feature mask and standardization statistics).
 */
class TrainedModel
{
  public:
    TrainedModel() = default;
    TrainedModel(Mlp mlp, std::vector<float> mean, std::vector<float> stdev,
                 std::vector<uint8_t> mask);

    bool valid() const { return net != nullptr; }
    size_t inputDim() const { return featureMean.size(); }

    /** Predict from raw (unmasked, unstandardized) features. */
    float predict(const float *raw_features) const;

    /**
     * Batch prediction: the whole batch is standardized once into one
     * contiguous matrix, then evaluated through Mlp::forwardBatch as a
     * blocked GEMM, sharded across threads. Matches predict() per row.
     */
    std::vector<float> predictBatch(const std::vector<float> &features,
                                    size_t dim, size_t threads = 0) const;

    /** Mean relative error over a labeled set. */
    double meanRelativeError(const std::vector<float> &features,
                             const std::vector<float> &labels,
                             size_t dim) const;

    void save(const std::string &path) const;
    static TrainedModel load(const std::string &path);

    /** Stream variants, for embedding in larger artifact files. */
    void save(BinaryWriter &out) const;
    static TrainedModel load(BinaryReader &in);

  private:
    void buildInvStd();

    std::shared_ptr<const Mlp> net;
    std::vector<float> featureMean;
    std::vector<float> featureStd;
    std::vector<float> featureInvStd;   ///< 1/std, 0 for masked-out dims
    std::vector<size_t> maskedDims;     ///< indices forced to zero
    std::vector<uint8_t> featureMask;   ///< empty = keep everything
};

/**
 * Train an MLP CPI predictor.
 *
 * @param features n x dim row-major raw features
 * @param labels n CPI targets
 * @param mask optional keep-mask (masked-out dims are zeroed)
 */
TrainedModel trainMlp(const std::vector<float> &features,
                      const std::vector<float> &labels, size_t dim,
                      const TrainConfig &config,
                      const std::vector<uint8_t> *mask = nullptr);

} // namespace concorde

#endif // CONCORDE_ML_TRAINER_HH
