#include "ml/trainer.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace concorde
{

TrainedModel::TrainedModel(Mlp mlp, std::vector<float> mean,
                           std::vector<float> stdev,
                           std::vector<uint8_t> mask)
    : net(std::make_shared<Mlp>(std::move(mlp))),
      featureMean(std::move(mean)), featureStd(std::move(stdev)),
      featureMask(std::move(mask))
{
    buildInvStd();
}

void
TrainedModel::buildInvStd()
{
    featureInvStd.resize(featureStd.size());
    maskedDims.clear();
    for (size_t i = 0; i < featureStd.size(); ++i) {
        const bool keep = featureMask.empty() || featureMask[i];
        featureInvStd[i] = keep ? 1.0f / featureStd[i] : 0.0f;
        if (!keep)
            maskedDims.push_back(i);
    }
}

float
TrainedModel::predict(const float *raw_features) const
{
    panic_if(!net, "predict() on an empty model");
    thread_local MlpScratch scratch;
    if (scratch.acts.empty() || scratch.acts[0].size() != inputDim())
        scratch = net->makeScratch();

    thread_local std::vector<float> x;
    x.resize(inputDim());
    for (size_t i = 0; i < inputDim(); ++i)
        x[i] = (raw_features[i] - featureMean[i]) * featureInvStd[i];
    // Masked-out inputs are forced to zero (a NaN/Inf raw value times
    // the 0 inverse-std above would otherwise poison the prediction).
    for (size_t i : maskedDims)
        x[i] = 0.0f;
    const float yhat = net->forward(x.data(), scratch);
    return std::max(yhat, 1e-3f);   // CPI is positive
}

std::vector<float>
TrainedModel::predictBatch(const std::vector<float> &features, size_t dim,
                           size_t threads) const
{
    panic_if(!net, "predictBatch() on an empty model");
    panic_if(dim != inputDim(), "feature dim mismatch: %zu vs %zu", dim,
             inputDim());
    const size_t n = features.size() / dim;
    std::vector<float> out(n);
    if (n == 0)
        return out;

    // Standardize the whole batch once into one contiguous matrix
    // (workspace reused across calls to avoid per-batch page faults).
    // NOTE: thread_local is resolved per executing thread, so the
    // parallel lambdas below must capture the owning thread's buffer
    // through a plain pointer, never name `x` directly.
    thread_local std::vector<float> x;
    x.resize(n * dim);
    float *xp = x.data();
    const float *mu = featureMean.data();
    const float *inv = featureInvStd.data();
    parallelFor(n, [&, xp](size_t i) {
        const float *src = features.data() + i * dim;
        float *dst = xp + i * dim;
        for (size_t d = 0; d < dim; ++d)
            dst[d] = (src[d] - mu[d]) * inv[d];
        for (size_t d : maskedDims)
            dst[d] = 0.0f;
    }, threads);

    // One blocked-GEMM pass per shard; each shard owns its workspace.
    parallelShards(n, [&, xp](size_t, size_t lo, size_t hi) {
        thread_local MlpBatchScratch scratch;
        net->forwardBatch(xp + lo * dim, hi - lo, out.data() + lo,
                          scratch);
    }, threads);
    for (float &y : out)
        y = std::max(y, 1e-3f);     // CPI is positive
    return out;
}

double
TrainedModel::meanRelativeError(const std::vector<float> &features,
                                const std::vector<float> &labels,
                                size_t dim) const
{
    const auto preds = predictBatch(features, dim);
    double acc = 0.0;
    for (size_t i = 0; i < preds.size(); ++i)
        acc += std::abs(preds[i] - labels[i]) / std::max(labels[i], 1e-6f);
    return preds.empty() ? 0.0 : acc / static_cast<double>(preds.size());
}

void
TrainedModel::save(const std::string &path) const
{
    // Check before opening: BinaryWriter truncates an existing file.
    panic_if(!net, "save() on an empty model");
    BinaryWriter out(path);
    save(out);
}

void
TrainedModel::save(BinaryWriter &out) const
{
    panic_if(!net, "save() on an empty model");
    net->save(out);
    out.putVector(featureMean);
    out.putVector(featureStd);
    out.putVector(featureMask);
}

TrainedModel
TrainedModel::load(const std::string &path)
{
    BinaryReader in(path);
    return load(in);
}

TrainedModel
TrainedModel::load(BinaryReader &in)
{
    Mlp mlp(in);
    TrainedModel model;
    model.net = std::make_shared<Mlp>(std::move(mlp));
    model.featureMean = in.getVector<float>();
    model.featureStd = in.getVector<float>();
    model.featureMask = in.getVector<uint8_t>();
    model.buildInvStd();
    return model;
}

TrainedModel
trainMlp(const std::vector<float> &features, const std::vector<float> &labels,
         size_t dim, const TrainConfig &config,
         const std::vector<uint8_t> *mask)
{
    fatal_if(dim == 0 || labels.empty(), "empty training set");
    fatal_if(features.size() != labels.size() * dim,
             "features/labels shape mismatch");
    const size_t n = labels.size();
    const size_t threads =
        config.threads == 0 ? defaultThreads() : config.threads;

    // ---- standardization statistics over kept dimensions ----
    std::vector<float> mean(dim, 0.0f);
    std::vector<float> stdev(dim, 1.0f);
    {
        std::vector<double> sum(dim, 0.0);
        std::vector<double> sum2(dim, 0.0);
        for (size_t i = 0; i < n; ++i) {
            const float *row = features.data() + i * dim;
            for (size_t d = 0; d < dim; ++d) {
                sum[d] += row[d];
                sum2[d] += static_cast<double>(row[d]) * row[d];
            }
        }
        for (size_t d = 0; d < dim; ++d) {
            const double mu = sum[d] / static_cast<double>(n);
            const double var =
                std::max(0.0, sum2[d] / static_cast<double>(n) - mu * mu);
            mean[d] = static_cast<float>(mu);
            stdev[d] = static_cast<float>(var > 1e-10 ? std::sqrt(var)
                                                      : 1.0);
        }
    }

    // ---- pre-processed training matrix ----
    std::vector<float> x(n * dim);
    parallelFor(n, [&](size_t i) {
        const float *src = features.data() + i * dim;
        float *dst = x.data() + i * dim;
        for (size_t d = 0; d < dim; ++d) {
            const bool keep = mask == nullptr || (*mask)[d];
            dst[d] = keep ? (src[d] - mean[d]) / stdev[d] : 0.0f;
        }
    }, threads);

    std::vector<size_t> layers;
    layers.push_back(dim);
    for (size_t h : config.hiddenSizes)
        layers.push_back(h);
    layers.push_back(1);
    Mlp mlp(layers, config.seed);

    const size_t steps_per_epoch =
        (n + config.batchSize - 1) / config.batchSize;
    const size_t total_steps = steps_per_epoch * config.epochs;
    std::vector<size_t> halve_steps;
    for (double frac : config.lrHalveAt)
        halve_steps.push_back(static_cast<size_t>(frac * total_steps));

    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    Rng shuffle_rng(hashMix(config.seed, 0x50FFULL));

    std::vector<GradBuffer> thread_grads;
    std::vector<MlpScratch> thread_scratch;
    for (size_t t = 0; t < threads; ++t) {
        thread_grads.push_back(mlp.makeGradBuffer());
        thread_scratch.push_back(mlp.makeScratch());
    }
    std::vector<double> thread_loss(threads, 0.0);

    double lr = config.learningRate;
    size_t step = 0;
    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
        // Fisher-Yates shuffle.
        for (size_t i = n - 1; i > 0; --i) {
            const size_t j = shuffle_rng.nextBounded(i + 1);
            std::swap(order[i], order[j]);
        }

        double epoch_loss = 0.0;
        size_t epoch_count = 0;
        for (size_t begin = 0; begin < n; begin += config.batchSize) {
            const size_t end = std::min(n, begin + config.batchSize);

            std::fill(thread_loss.begin(), thread_loss.end(), 0.0);
            // Threads that receive no shard must not contribute stale
            // gradients from the previous batch.
            for (auto &grads : thread_grads)
                grads.samples = 0;
            parallelShards(end - begin,
                           [&](size_t t, size_t lo, size_t hi) {
                thread_grads[t].zero();
                double loss = 0.0;
                for (size_t s = lo; s < hi; ++s) {
                    const size_t row = order[begin + s];
                    double sample_loss = 0.0;
                    mlp.forwardBackward(x.data() + row * dim, labels[row],
                                        thread_scratch[t], thread_grads[t],
                                        sample_loss);
                    loss += sample_loss;
                }
                thread_loss[t] = loss;
            }, threads);

            GradBuffer &total = thread_grads[0];
            for (size_t t = 1; t < threads; ++t) {
                if (thread_grads[t].samples > 0)
                    total.add(thread_grads[t]);
            }
            for (double l : thread_loss)
                epoch_loss += l;
            epoch_count += end - begin;

            // Halving LR schedule.
            ++step;
            for (size_t hs : halve_steps) {
                if (step == hs)
                    lr *= 0.5;
            }
            if (total.samples > 0) {
                mlp.adamwStep(total, lr, config.beta1, config.beta2,
                              config.adamEps, config.weightDecay);
            }
        }

        if (config.verbose && (epoch % 5 == 0
                               || epoch + 1 == config.epochs)) {
            inform("epoch %zu/%zu: train rel-err %.4f (lr %.2e)", epoch + 1,
                   config.epochs,
                   epoch_loss / static_cast<double>(epoch_count), lr);
        }
    }

    return TrainedModel(std::move(mlp), std::move(mean), std::move(stdev),
                        mask ? *mask : std::vector<uint8_t>{});
}

} // namespace concorde
