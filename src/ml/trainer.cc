#include "ml/trainer.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace concorde
{

TrainedModel::TrainedModel(Mlp mlp, std::vector<float> mean,
                           std::vector<float> stdev,
                           std::vector<uint8_t> mask)
    : net(std::make_shared<Mlp>(std::move(mlp))),
      featureMean(std::move(mean)), featureStd(std::move(stdev)),
      featureMask(std::move(mask))
{
    buildInvStd();
}

void
TrainedModel::buildInvStd()
{
    featureInvStd.resize(featureStd.size());
    maskedDims.clear();
    for (size_t i = 0; i < featureStd.size(); ++i) {
        const bool keep = featureMask.empty() || featureMask[i];
        featureInvStd[i] = keep ? 1.0f / featureStd[i] : 0.0f;
        if (!keep)
            maskedDims.push_back(i);
    }
}

float
TrainedModel::predict(const float *raw_features) const
{
    panic_if(!net, "predict() on an empty model");
    thread_local MlpScratch scratch;
    if (scratch.acts.empty() || scratch.acts[0].size() != inputDim())
        scratch = net->makeScratch();

    thread_local std::vector<float> x;
    x.resize(inputDim());
    for (size_t i = 0; i < inputDim(); ++i)
        x[i] = (raw_features[i] - featureMean[i]) * featureInvStd[i];
    // Masked-out inputs are forced to zero (a NaN/Inf raw value times
    // the 0 inverse-std above would otherwise poison the prediction).
    for (size_t i : maskedDims)
        x[i] = 0.0f;
    const float yhat = net->forward(x.data(), scratch);
    return std::max(yhat, 1e-3f);   // CPI is positive
}

std::vector<float>
TrainedModel::predictBatch(const std::vector<float> &features, size_t dim,
                           size_t threads) const
{
    panic_if(!net, "predictBatch() on an empty model");
    panic_if(dim != inputDim(), "feature dim mismatch: %zu vs %zu", dim,
             inputDim());
    const size_t n = features.size() / dim;
    std::vector<float> out(n);
    if (n == 0)
        return out;

    // Standardize the whole batch once into one contiguous matrix
    // (workspace reused across calls to avoid per-batch page faults).
    // NOTE: thread_local is resolved per executing thread, so the
    // parallel lambdas below must capture the owning thread's buffer
    // through a plain pointer, never name `x` directly.
    thread_local std::vector<float> x;
    x.resize(n * dim);
    float *xp = x.data();
    const float *mu = featureMean.data();
    const float *inv = featureInvStd.data();
    parallelFor(n, [&, xp](size_t i) {
        const float *src = features.data() + i * dim;
        float *dst = xp + i * dim;
        for (size_t d = 0; d < dim; ++d)
            dst[d] = (src[d] - mu[d]) * inv[d];
        for (size_t d : maskedDims)
            dst[d] = 0.0f;
    }, threads);

    // One blocked-GEMM pass per shard; each shard owns its workspace.
    parallelShards(n, [&, xp](size_t, size_t lo, size_t hi) {
        thread_local MlpBatchScratch scratch;
        net->forwardBatch(xp + lo * dim, hi - lo, out.data() + lo,
                          scratch);
    }, threads);
    for (float &y : out)
        y = std::max(y, 1e-3f);     // CPI is positive
    return out;
}

double
TrainedModel::meanRelativeError(const std::vector<float> &features,
                                const std::vector<float> &labels,
                                size_t dim) const
{
    const auto preds = predictBatch(features, dim);
    double acc = 0.0;
    for (size_t i = 0; i < preds.size(); ++i)
        acc += std::abs(preds[i] - labels[i]) / std::max(labels[i], 1e-6f);
    return preds.empty() ? 0.0 : acc / static_cast<double>(preds.size());
}

void
TrainedModel::save(const std::string &path) const
{
    // Check before opening: BinaryWriter truncates an existing file.
    panic_if(!net, "save() on an empty model");
    BinaryWriter out(path);
    save(out);
}

void
TrainedModel::save(BinaryWriter &out) const
{
    panic_if(!net, "save() on an empty model");
    net->save(out);
    out.putVector(featureMean);
    out.putVector(featureStd);
    out.putVector(featureMask);
}

TrainedModel
TrainedModel::load(const std::string &path)
{
    BinaryReader in(path);
    return load(in);
}

TrainedModel
TrainedModel::load(BinaryReader &in)
{
    Mlp mlp(in);
    TrainedModel model;
    model.net = std::make_shared<Mlp>(std::move(mlp));
    model.featureMean = in.getVector<float>();
    model.featureStd = in.getVector<float>();
    model.featureMask = in.getVector<uint8_t>();
    model.buildInvStd();
    return model;
}

void
saveTrainConfig(BinaryWriter &out, const TrainConfig &cfg)
{
    out.put<uint32_t>(1);   // TrainConfig format version
    out.putVector(cfg.hiddenSizes);
    out.put<double>(cfg.learningRate);
    out.putVector(cfg.lrHalveAt);
    out.put<double>(cfg.weightDecay);
    out.put<double>(cfg.beta1);
    out.put<double>(cfg.beta2);
    out.put<double>(cfg.adamEps);
    out.put<uint64_t>(cfg.batchSize);
    out.put<uint64_t>(cfg.epochs);
    out.put<uint64_t>(cfg.seed);
    out.put<uint64_t>(cfg.threads);
    out.put<double>(cfg.valFraction);
}

TrainConfig
loadTrainConfig(BinaryReader &in)
{
    const uint32_t version = in.get<uint32_t>();
    fatal_if(version != 1, "unsupported TrainConfig version %u", version);
    TrainConfig cfg;
    cfg.hiddenSizes = in.getVector<size_t>();
    cfg.learningRate = in.get<double>();
    cfg.lrHalveAt = in.getVector<double>();
    cfg.weightDecay = in.get<double>();
    cfg.beta1 = in.get<double>();
    cfg.beta2 = in.get<double>();
    cfg.adamEps = in.get<double>();
    cfg.batchSize = in.get<uint64_t>();
    cfg.epochs = in.get<uint64_t>();
    cfg.seed = in.get<uint64_t>();
    cfg.threads = in.get<uint64_t>();
    cfg.valFraction = in.get<double>();
    return cfg;
}

namespace
{

/** Training-checkpoint file header: "CNCCKP01" little-endian. */
constexpr uint64_t kCheckpointMagic = 0x3130504b43434e43ULL;
constexpr uint32_t kCheckpointVersion = 1;

uint64_t
mixDouble(uint64_t h, double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return hashMix(h, bits);
}

/**
 * Fingerprint of everything a checkpoint must match to resume bitwise:
 * the raw data, the hyperparameters, and the resolved worker count
 * (gradient summation order depends on the shard split).
 */
uint64_t
trainFingerprint(const std::vector<float> &features,
                 const std::vector<float> &labels, size_t dim,
                 const TrainConfig &config,
                 const std::vector<uint8_t> *mask, size_t threads)
{
    uint64_t h = hashBytes(features.data(),
                           features.size() * sizeof(float));
    h = hashBytes(labels.data(), labels.size() * sizeof(float), h);
    h = hashMix(h, dim, labels.size());
    for (size_t hidden : config.hiddenSizes)
        h = hashMix(h, 1, hidden);
    h = mixDouble(h, config.learningRate);
    for (double frac : config.lrHalveAt)
        h = mixDouble(h, frac);
    h = mixDouble(h, config.weightDecay);
    h = mixDouble(h, config.beta1);
    h = mixDouble(h, config.beta2);
    h = mixDouble(h, config.adamEps);
    h = mixDouble(h, config.valFraction);
    h = hashMix(h, config.batchSize, config.epochs);
    h = hashMix(h, config.seed, threads);
    if (mask)
        h = hashBytes(mask->data(), mask->size(), h);
    return h;
}

/** Mean relative error of the net over pre-standardized rows. */
double
relErrOverRows(const Mlp &mlp, const std::vector<float> &x,
               const std::vector<float> &y)
{
    if (y.empty())
        return 0.0;
    MlpBatchScratch scratch;
    std::vector<float> preds(y.size());
    mlp.forwardBatch(x.data(), y.size(), preds.data(), scratch);
    double acc = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
        const float yhat = std::max(preds[i], 1e-3f);
        acc += std::abs(yhat - y[i]) / std::max(y[i], 1e-6f);
    }
    return acc / static_cast<double>(y.size());
}

/** Mutable optimizer state a checkpoint round-trips. */
struct TrainState
{
    Mlp mlp;
    Rng shuffleRng;
    size_t nextEpoch = 0;
    size_t step = 0;
    double lr = 0.0;
    std::vector<float> mean;
    std::vector<float> stdev;
    /**
     * Minibatch sample order. Each epoch's Fisher-Yates pass permutes
     * the *previous* epoch's order, so the permutation composes across
     * epochs and is genuine optimizer state: resuming with a fresh
     * identity order would diverge from an uninterrupted run.
     */
    std::vector<size_t> order;
    std::vector<EpochMetrics> history;
};

void
saveCheckpointFile(const std::string &path, uint64_t fingerprint,
                   const TrainState &state)
{
    const std::string tmp = path + ".tmp";
    {
        BinaryWriter out(tmp);
        out.put<uint64_t>(kCheckpointMagic);
        out.put<uint32_t>(kCheckpointVersion);
        out.put<uint64_t>(fingerprint);
        out.put<uint64_t>(state.nextEpoch);
        out.put<uint64_t>(state.step);
        out.put<double>(state.lr);
        state.shuffleRng.saveState(out);
        out.putVector(state.mean);
        out.putVector(state.stdev);
        out.putVector(state.order);
        out.put<uint64_t>(state.history.size());
        for (const auto &m : state.history) {
            out.put<uint64_t>(m.epoch);
            out.put<double>(m.trainRelErr);
            out.put<double>(m.valRelErr);
            out.put<double>(m.lr);
        }
        state.mlp.saveCheckpoint(out);
    }
    publishFile(tmp, path);
}

/**
 * Load a checkpoint into `state`; fatal() if it belongs to a different
 * (data, config, threads) combination.
 */
void
loadCheckpointFile(const std::string &path, uint64_t fingerprint,
                   TrainState &state)
{
    BinaryReader in(path);
    fatal_if(in.get<uint64_t>() != kCheckpointMagic,
             "'%s' is not a Concorde training checkpoint", path.c_str());
    const uint32_t version = in.get<uint32_t>();
    fatal_if(version != kCheckpointVersion,
             "'%s': unsupported checkpoint version %u", path.c_str(),
             version);
    const uint64_t stored = in.get<uint64_t>();
    fatal_if(stored != fingerprint,
             "checkpoint '%s' was written for different data, config, or "
             "thread count; refusing to resume (bitwise reproducibility "
             "would be lost)", path.c_str());
    state.nextEpoch = in.get<uint64_t>();
    state.step = in.get<uint64_t>();
    state.lr = in.get<double>();
    state.shuffleRng = Rng::loadState(in);
    state.mean = in.getVector<float>();
    state.stdev = in.getVector<float>();
    state.order = in.getVector<size_t>();
    const uint64_t entries = in.get<uint64_t>();
    state.history.clear();
    for (uint64_t i = 0; i < entries; ++i) {
        EpochMetrics m;
        m.epoch = in.get<uint64_t>();
        m.trainRelErr = in.get<double>();
        m.valRelErr = in.get<double>();
        m.lr = in.get<double>();
        state.history.push_back(m);
    }
    state.mlp = Mlp::loadCheckpoint(in);
}

} // anonymous namespace

TrainRun
trainMlpResumable(const std::vector<float> &features,
                  const std::vector<float> &labels, size_t dim,
                  const TrainConfig &config,
                  const std::vector<uint8_t> *mask,
                  const std::string &checkpoint_path,
                  size_t max_epochs_this_run)
{
    fatal_if(dim == 0 || labels.empty(), "empty training set");
    fatal_if(features.size() != labels.size() * dim,
             "features/labels shape mismatch");
    const size_t n = labels.size();
    const size_t threads =
        config.threads == 0 ? defaultThreads() : config.threads;

    // ---- deterministic train/validation split ----
    // Identity order when there is no split, so valFraction == 0
    // reproduces the historical single-split training bit-for-bit.
    fatal_if(config.valFraction < 0.0 || config.valFraction >= 1.0,
             "valFraction must be in [0, 1)");
    size_t n_val =
        static_cast<size_t>(config.valFraction * static_cast<double>(n));
    std::vector<size_t> train_idx;
    std::vector<size_t> val_idx;
    if (n_val > 0) {
        fatal_if(n_val >= n, "validation split leaves no training data");
        std::vector<size_t> perm(n);
        std::iota(perm.begin(), perm.end(), 0);
        Rng split_rng(hashMix(config.seed, 0x5B117ULL));
        for (size_t i = n - 1; i > 0; --i) {
            const size_t j = split_rng.nextBounded(i + 1);
            std::swap(perm[i], perm[j]);
        }
        val_idx.assign(perm.begin(), perm.begin() + n_val);
        train_idx.assign(perm.begin() + n_val, perm.end());
    } else {
        train_idx.resize(n);
        std::iota(train_idx.begin(), train_idx.end(), 0);
    }
    const size_t n_train = train_idx.size();

    // The data hash is only consumed by checkpoint files; don't make
    // every plain training run pay for hashing the feature matrix.
    const uint64_t fingerprint = checkpoint_path.empty()
        ? 0
        : trainFingerprint(features, labels, dim, config, mask, threads);
    TrainState state;
    const bool resuming =
        !checkpoint_path.empty() && fileExists(checkpoint_path);
    if (resuming) {
        loadCheckpointFile(checkpoint_path, fingerprint, state);
        fatal_if(state.mean.size() != dim,
                 "checkpoint '%s' trained on %zu-dim features, got %zu",
                 checkpoint_path.c_str(), state.mean.size(), dim);
        fatal_if(state.order.size() != n_train,
                 "checkpoint '%s' holds %zu-sample order, expected %zu",
                 checkpoint_path.c_str(), state.order.size(), n_train);
    } else {
        // ---- standardization statistics over the training split ----
        state.mean.assign(dim, 0.0f);
        state.stdev.assign(dim, 1.0f);
        std::vector<double> sum(dim, 0.0);
        std::vector<double> sum2(dim, 0.0);
        for (size_t i : train_idx) {
            const float *row = features.data() + i * dim;
            for (size_t d = 0; d < dim; ++d) {
                sum[d] += row[d];
                sum2[d] += static_cast<double>(row[d]) * row[d];
            }
        }
        for (size_t d = 0; d < dim; ++d) {
            const double mu = sum[d] / static_cast<double>(n_train);
            const double var = std::max(
                0.0, sum2[d] / static_cast<double>(n_train) - mu * mu);
            state.mean[d] = static_cast<float>(mu);
            state.stdev[d] = static_cast<float>(var > 1e-10
                                                ? std::sqrt(var) : 1.0);
        }

        std::vector<size_t> layers;
        layers.push_back(dim);
        for (size_t h : config.hiddenSizes)
            layers.push_back(h);
        layers.push_back(1);
        state.mlp = Mlp(layers, config.seed);
        state.shuffleRng = Rng(hashMix(config.seed, 0x50FFULL));
        state.lr = config.learningRate;
        state.order.resize(n_train);
        std::iota(state.order.begin(), state.order.end(), 0);
    }

    // ---- pre-processed training/validation matrices ----
    const auto standardize = [&](const std::vector<size_t> &rows,
                                 std::vector<float> &x,
                                 std::vector<float> &y) {
        x.resize(rows.size() * dim);
        y.resize(rows.size());
        parallelFor(rows.size(), [&](size_t i) {
            const float *src = features.data() + rows[i] * dim;
            float *dst = x.data() + i * dim;
            for (size_t d = 0; d < dim; ++d) {
                const bool keep = mask == nullptr || (*mask)[d];
                dst[d] = keep
                    ? (src[d] - state.mean[d]) / state.stdev[d] : 0.0f;
            }
            y[i] = labels[rows[i]];
        }, threads);
    };
    std::vector<float> x, y_train, xval, y_val;
    standardize(train_idx, x, y_train);
    if (n_val > 0)
        standardize(val_idx, xval, y_val);

    const size_t steps_per_epoch =
        (n_train + config.batchSize - 1) / config.batchSize;
    const size_t total_steps = steps_per_epoch * config.epochs;
    std::vector<size_t> halve_steps;
    for (double frac : config.lrHalveAt)
        halve_steps.push_back(static_cast<size_t>(frac * total_steps));

    std::vector<size_t> &order = state.order;

    std::vector<GradBuffer> thread_grads;
    std::vector<MlpScratch> thread_scratch;
    for (size_t t = 0; t < threads; ++t) {
        thread_grads.push_back(state.mlp.makeGradBuffer());
        thread_scratch.push_back(state.mlp.makeScratch());
    }
    std::vector<double> thread_loss(threads, 0.0);

    size_t ran_this_call = 0;
    for (size_t epoch = state.nextEpoch; epoch < config.epochs; ++epoch) {
        if (max_epochs_this_run > 0
            && ran_this_call >= max_epochs_this_run) {
            break;
        }
        // Fisher-Yates shuffle.
        for (size_t i = n_train - 1; i > 0; --i) {
            const size_t j = state.shuffleRng.nextBounded(i + 1);
            std::swap(order[i], order[j]);
        }

        double epoch_loss = 0.0;
        size_t epoch_count = 0;
        for (size_t begin = 0; begin < n_train;
             begin += config.batchSize) {
            const size_t end = std::min(n_train, begin + config.batchSize);

            std::fill(thread_loss.begin(), thread_loss.end(), 0.0);
            // Threads that receive no shard must not contribute stale
            // gradients from the previous batch.
            for (auto &grads : thread_grads)
                grads.samples = 0;
            parallelShards(end - begin,
                           [&](size_t t, size_t lo, size_t hi) {
                thread_grads[t].zero();
                double loss = 0.0;
                for (size_t s = lo; s < hi; ++s) {
                    const size_t row = order[begin + s];
                    double sample_loss = 0.0;
                    state.mlp.forwardBackward(x.data() + row * dim,
                                              y_train[row],
                                              thread_scratch[t],
                                              thread_grads[t],
                                              sample_loss);
                    loss += sample_loss;
                }
                thread_loss[t] = loss;
            }, threads);

            GradBuffer &total = thread_grads[0];
            for (size_t t = 1; t < threads; ++t) {
                if (thread_grads[t].samples > 0)
                    total.add(thread_grads[t]);
            }
            for (double l : thread_loss)
                epoch_loss += l;
            epoch_count += end - begin;

            // Halving LR schedule.
            ++state.step;
            for (size_t hs : halve_steps) {
                if (state.step == hs)
                    state.lr *= 0.5;
            }
            if (total.samples > 0) {
                state.mlp.adamwStep(total, state.lr, config.beta1,
                                    config.beta2, config.adamEps,
                                    config.weightDecay);
            }
        }

        EpochMetrics metrics;
        metrics.epoch = epoch;
        metrics.trainRelErr =
            epoch_loss / static_cast<double>(epoch_count);
        metrics.lr = state.lr;
        if (n_val > 0)
            metrics.valRelErr = relErrOverRows(state.mlp, xval, y_val);
        state.history.push_back(metrics);
        state.nextEpoch = epoch + 1;
        ++ran_this_call;

        if (!checkpoint_path.empty())
            saveCheckpointFile(checkpoint_path, fingerprint, state);

        if (config.verbose && (epoch % 5 == 0
                               || epoch + 1 == config.epochs)) {
            if (n_val > 0) {
                inform("epoch %zu/%zu: train rel-err %.4f, val rel-err "
                       "%.4f (lr %.2e)", epoch + 1, config.epochs,
                       metrics.trainRelErr, metrics.valRelErr, state.lr);
            } else {
                inform("epoch %zu/%zu: train rel-err %.4f (lr %.2e)",
                       epoch + 1, config.epochs, metrics.trainRelErr,
                       state.lr);
            }
        }
    }

    TrainRun run;
    run.finished = state.nextEpoch >= config.epochs;
    run.history = std::move(state.history);
    run.model = TrainedModel(std::move(state.mlp), std::move(state.mean),
                             std::move(state.stdev),
                             mask ? *mask : std::vector<uint8_t>{});

    // Split-conformal calibration on the held-out split: the val rows
    // were never trained on, so their residuals are exchangeable with
    // a fresh request's. The feature envelope comes from the training
    // split -- the distribution the model actually fitted -- so the
    // serve layer can flag requests outside it. Deterministic given
    // (data, config), so resumed runs reproduce it bitwise.
    if (n_val > 0) {
        std::vector<float> val_raw(n_val * dim);
        std::vector<float> val_y(n_val);
        for (size_t i = 0; i < n_val; ++i) {
            const float *src = features.data() + val_idx[i] * dim;
            std::copy(src, src + dim, val_raw.data() + i * dim);
            val_y[i] = labels[val_idx[i]];
        }
        const auto preds = run.model.predictBatch(val_raw, dim, threads);
        std::vector<float> train_raw(n_train * dim);
        for (size_t i = 0; i < n_train; ++i) {
            const float *src = features.data() + train_idx[i] * dim;
            std::copy(src, src + dim, train_raw.data() + i * dim);
        }
        run.calibration =
            fitConformalCalibration(preds, val_y, train_raw, dim);
    }
    return run;
}

TrainedModel
trainMlp(const std::vector<float> &features, const std::vector<float> &labels,
         size_t dim, const TrainConfig &config,
         const std::vector<uint8_t> *mask)
{
    return trainMlpResumable(features, labels, dim, config, mask).model;
}

} // namespace concorde
