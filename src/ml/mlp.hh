/**
 * @file
 * Minimal dense MLP with ReLU activations and a scalar output -- the
 * paper's lightweight ML model (Section 3.3). Implemented from scratch
 * (forward, backward, AdamW) so the repository is self-contained.
 */

#ifndef CONCORDE_ML_MLP_HH
#define CONCORDE_ML_MLP_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/serialize.hh"

namespace concorde
{

/** Per-thread workspace for forward/backward passes. */
struct MlpScratch
{
    std::vector<std::vector<float>> acts;   ///< activations per layer
    std::vector<std::vector<float>> deltas; ///< gradients per layer
};

/**
 * Per-thread workspace for batched forward passes: two ping-pong
 * activation matrices, grown on demand to [batch x widest layer].
 */
struct MlpBatchScratch
{
    std::vector<float> in;      ///< current layer activations, row-major
    std::vector<float> out;     ///< next layer activations, row-major
    std::vector<float> xt;      ///< transposed row block (GEMM kernel)
};

/** Gradient accumulator with the same shape as the parameters. */
struct GradBuffer
{
    std::vector<std::vector<float>> weightGrads;
    std::vector<std::vector<float>> biasGrads;
    size_t samples = 0;

    void zero();
    void add(const GradBuffer &other);
};

/** Fully-connected ReLU network with linear scalar output. */
class Mlp
{
  public:
    /** Empty (invalid) network; assign or load before use. */
    Mlp() = default;

    /**
     * @param layer_sizes {input, hidden..., 1}
     * @param seed He-style weight initialization seed
     */
    Mlp(std::vector<size_t> layer_sizes, uint64_t seed);

    /** Deserialize. */
    explicit Mlp(BinaryReader &in);

    size_t inputDim() const { return layerSizes.front(); }
    size_t numLayers() const { return weights.size(); }
    size_t parameterCount() const;

    /** Forward pass (thread-safe with caller-owned scratch). */
    float forward(const float *x, MlpScratch &scratch) const;

    /**
     * Batched forward pass: evaluates `n` inputs (row-major, n x inputDim)
     * and writes `n` scalar outputs to `out`. Each layer is computed as a
     * blocked row-major GEMM, so the weight matrix is traversed once per
     * row block instead of once per sample. Accumulation order per output
     * matches forward(), so results agree with the scalar path.
     * Thread-safe with caller-owned scratch.
     */
    void forwardBatch(const float *xs, size_t n, float *out,
                      MlpBatchScratch &scratch) const;

    /**
     * Forward + backward with the paper's relative-error loss
     * Loss = |yhat - y| / y (Eq. 7). Accumulates into `grads`.
     * @return the prediction.
     */
    float forwardBackward(const float *x, float target, MlpScratch &scratch,
                          GradBuffer &grads, double &loss_out) const;

    /** One AdamW step over all parameters with mean gradients. */
    void adamwStep(const GradBuffer &grads, double lr, double beta1,
                   double beta2, double eps, double weight_decay);

    GradBuffer makeGradBuffer() const;
    MlpScratch makeScratch() const;

    /** Serialize the weights (inference artifact; resets Adam on load). */
    void save(BinaryWriter &out) const;

    /**
     * Checkpoint the full training state -- weights plus the AdamW
     * moments and step counter -- so training resumed from a checkpoint
     * is bitwise-identical to a run that never stopped.
     */
    void saveCheckpoint(BinaryWriter &out) const;
    static Mlp loadCheckpoint(BinaryReader &in);

  private:
    void initAdamState();

    std::vector<size_t> layerSizes;
    /** weights[l]: [out x in] row-major; biases[l]: [out]. */
    std::vector<std::vector<float>> weights;
    std::vector<std::vector<float>> biases;

    // AdamW state.
    std::vector<std::vector<float>> mW, vW, mB, vB;
    uint64_t adamStep = 0;
};

} // namespace concorde

#endif // CONCORDE_ML_MLP_HH
