/**
 * @file
 * Split-conformal prediction intervals around Concorde's CPI predictions
 * -- the uncertainty-quantification direction the paper's final remarks
 * point to (Section 8, refs [9, 10]): "Future work on providing
 * confidence bounds would allow designers to detect predictions with
 * high potential errors and crosscheck them with other tools."
 *
 * Method: split conformal with the symmetric relative residual
 * s = |y - yhat| / yhat as the conformity score. Calibrating on n held-out
 * samples gives the (1-alpha)-quantile q of the scores (with the standard
 * ceil((n+1)(1-alpha))/n finite-sample correction); the interval
 * [yhat (1 - q), yhat (1 + q)] then covers the true CPI with probability
 * at least 1-alpha under exchangeability.
 */

#ifndef CONCORDE_ML_CONFORMAL_HH
#define CONCORDE_ML_CONFORMAL_HH

#include <vector>

#include "ml/calibration.hh"
#include "ml/trainer.hh"

namespace concorde
{

/** A calibrated conformal wrapper around a TrainedModel. */
class ConformalPredictor
{
  public:
    /** Prediction interval with its point estimate. */
    struct Interval
    {
        float point = 0.0f;
        float lo = 0.0f;
        float hi = 0.0f;

        bool contains(float y) const { return y >= lo && y <= hi; }
        float relativeWidth() const
        {
            return point > 0 ? (hi - lo) / point : 0.0f;
        }
    };

    /**
     * Calibrate on a held-out set (never used for training).
     * @param features calibration features, n x dim row-major
     * @param labels ground-truth CPIs
     */
    ConformalPredictor(TrainedModel model,
                       const std::vector<float> &features,
                       const std::vector<float> &labels, size_t dim);

    /**
     * Wrap a model around a previously fitted calibration (the
     * serve-side path: the calibration rode in from a ModelArtifact).
     */
    ConformalPredictor(TrainedModel model, ConformalCalibration cal);

    const TrainedModel &model() const { return trainedModel; }
    const ConformalCalibration &calibration() const { return cal; }
    size_t calibrationSize() const { return cal.scores.size(); }

    /**
     * Conformity-score quantile for miscoverage alpha, with the
     * finite-sample correction. alpha in (0, 1).
     */
    double quantile(double alpha) const;

    /** Point prediction plus a (1-alpha) interval. */
    Interval predictInterval(const float *raw_features,
                             double alpha) const;

    /**
     * Empirical coverage of (1-alpha) intervals on a labeled set
     * (for validation; should be >= 1-alpha up to sampling noise).
     */
    double empiricalCoverage(const std::vector<float> &features,
                             const std::vector<float> &labels, size_t dim,
                             double alpha) const;

  private:
    TrainedModel trainedModel;
    ConformalCalibration cal;
};

} // namespace concorde

#endif // CONCORDE_ML_CONFORMAL_HH
