#include "ml/conformal.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace concorde
{

ConformalPredictor::ConformalPredictor(TrainedModel model,
                                       const std::vector<float> &features,
                                       const std::vector<float> &labels,
                                       size_t dim)
    : trainedModel(std::move(model))
{
    fatal_if(labels.empty(), "empty calibration set");
    fatal_if(features.size() != labels.size() * dim,
             "calibration features/labels shape mismatch");

    const auto preds = trainedModel.predictBatch(features, dim);
    cal = fitConformalCalibration(preds, labels, features, dim);
}

ConformalPredictor::ConformalPredictor(TrainedModel model,
                                       ConformalCalibration calibration)
    : trainedModel(std::move(model)), cal(std::move(calibration))
{
    fatal_if(!cal.valid(), "empty calibration set");
}

double
ConformalPredictor::quantile(double alpha) const
{
    return cal.quantile(alpha);
}

ConformalPredictor::Interval
ConformalPredictor::predictInterval(const float *raw_features,
                                    double alpha) const
{
    Interval interval;
    interval.point = trainedModel.predict(raw_features);
    double lo, hi;
    cal.intervalAround(interval.point, alpha, lo, hi);
    interval.lo = static_cast<float>(lo);
    interval.hi = static_cast<float>(hi);
    return interval;
}

double
ConformalPredictor::empiricalCoverage(const std::vector<float> &features,
                                      const std::vector<float> &labels,
                                      size_t dim, double alpha) const
{
    panic_if(features.size() != labels.size() * dim,
             "evaluation features/labels shape mismatch");
    size_t covered = 0;
    for (size_t i = 0; i < labels.size(); ++i) {
        const Interval interval =
            predictInterval(features.data() + i * dim, alpha);
        covered += interval.contains(labels[i]);
    }
    return labels.empty()
        ? 0.0
        : static_cast<double>(covered)
            / static_cast<double>(labels.size());
}

} // namespace concorde
