#include "ml/conformal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace concorde
{

ConformalPredictor::ConformalPredictor(TrainedModel model,
                                       const std::vector<float> &features,
                                       const std::vector<float> &labels,
                                       size_t dim)
    : trainedModel(std::move(model))
{
    fatal_if(labels.empty(), "empty calibration set");
    fatal_if(features.size() != labels.size() * dim,
             "calibration features/labels shape mismatch");

    const auto preds = trainedModel.predictBatch(features, dim);
    scores.resize(labels.size());
    for (size_t i = 0; i < labels.size(); ++i) {
        const double yhat = std::max(preds[i], 1e-6f);
        scores[i] = std::abs(labels[i] - preds[i]) / yhat;
    }
    std::sort(scores.begin(), scores.end());
}

double
ConformalPredictor::quantile(double alpha) const
{
    panic_if(alpha <= 0.0 || alpha >= 1.0, "alpha must be in (0, 1)");
    const size_t n = scores.size();
    // Finite-sample corrected rank: ceil((n + 1) (1 - alpha)).
    const double raw_rank =
        std::ceil((static_cast<double>(n) + 1.0) * (1.0 - alpha));
    const size_t rank = static_cast<size_t>(raw_rank);
    if (rank == 0)
        return scores.front();
    if (rank > n)
        return scores.back() * 1.5 + 0.05;  // beyond calibration support
    return scores[rank - 1];
}

ConformalPredictor::Interval
ConformalPredictor::predictInterval(const float *raw_features,
                                    double alpha) const
{
    Interval interval;
    interval.point = trainedModel.predict(raw_features);
    const double q = quantile(alpha);
    interval.lo = static_cast<float>(
        std::max(0.0, interval.point * (1.0 - q)));
    interval.hi = static_cast<float>(interval.point * (1.0 + q));
    return interval;
}

double
ConformalPredictor::empiricalCoverage(const std::vector<float> &features,
                                      const std::vector<float> &labels,
                                      size_t dim, double alpha) const
{
    panic_if(features.size() != labels.size() * dim,
             "evaluation features/labels shape mismatch");
    size_t covered = 0;
    for (size_t i = 0; i < labels.size(); ++i) {
        const Interval interval =
            predictInterval(features.data() + i * dim, alpha);
        covered += interval.contains(labels[i]);
    }
    return labels.empty()
        ? 0.0
        : static_cast<double>(covered)
            / static_cast<double>(labels.size());
}

} // namespace concorde
