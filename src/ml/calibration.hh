/**
 * @file
 * ConformalCalibration: the serializable product of split-conformal
 * calibration -- the sorted conformity scores from a held-out split
 * plus a per-dimension envelope of the calibration features. This is
 * the piece that travels: trainMlpResumable fits it, ModelArtifact
 * ships it (versioned, optional -- old artifacts load as
 * "uncalibrated"), and the serve layer turns it into per-request
 * intervals and an out-of-distribution flag without ever touching the
 * model again.
 *
 * Interval math (split conformal, symmetric relative residual):
 * with scores s_i = |y_i - yhat_i| / max(yhat_i, eps) sorted ascending,
 * the (1-alpha) quantile q uses the finite-sample corrected rank
 * ceil((n+1)(1-alpha)); the interval around a point prediction p is
 * [max(0, p(1-q)), p(1+q)] and covers the true value with probability
 * >= 1-alpha under exchangeability.
 *
 * OOD score: the fraction of feature dimensions that fall outside the
 * [featLo, featHi] envelope observed during calibration. Features the
 * model never saw anything like score high; in-distribution requests
 * score 0. It is a cheap guardrail, not a density estimate -- the
 * serve layer treats it as "route this one to the simulator", exactly
 * the crosscheck the paper's Section 8 asks for.
 */

#ifndef CONCORDE_ML_CALIBRATION_HH
#define CONCORDE_ML_CALIBRATION_HH

#include <cstddef>
#include <vector>

#include "common/serialize.hh"

namespace concorde
{

/** Serializable split-conformal calibration state. */
struct ConformalCalibration
{
    /** Conformity scores from the held-out split, sorted ascending. */
    std::vector<double> scores;
    /** Per-dimension min of the calibration-distribution features. */
    std::vector<float> featLo;
    /** Per-dimension max (same length as featLo; may both be empty). */
    std::vector<float> featHi;

    /** True when a calibration split was actually fitted. */
    bool valid() const { return !scores.empty(); }
    size_t size() const { return scores.size(); }

    /**
     * Conformity-score quantile for miscoverage alpha with the
     * finite-sample correction ceil((n+1)(1-alpha)). alpha in (0, 1);
     * panics on an empty calibration. A rank beyond the calibration
     * support returns an inflated top score (the interval widens
     * instead of silently under-covering).
     */
    double quantile(double alpha) const;

    /** The (1-alpha) interval around a point prediction; lo >= 0. */
    void intervalAround(double point, double alpha, double &lo,
                        double &hi) const;

    /**
     * Fraction of dimensions outside the calibration envelope, in
     * [0, 1]. Returns 0 when no envelope was recorded.
     */
    double oodScore(const float *row, size_t dim) const;

    /** Stream serialization (embedded in ModelArtifact v2). */
    void save(BinaryWriter &out) const;
    static ConformalCalibration load(BinaryReader &in);
};

/**
 * Fit a calibration from predictions + labels of a held-out split,
 * with the feature envelope taken over `envelope_features` (row-major,
 * `dim` wide; typically the *training* split -- the distribution the
 * model actually saw). Pass an empty envelope matrix to skip the
 * envelope (no OOD scoring).
 */
ConformalCalibration
fitConformalCalibration(const std::vector<float> &preds,
                        const std::vector<float> &labels,
                        const std::vector<float> &envelope_features,
                        size_t dim);

} // namespace concorde

#endif // CONCORDE_ML_CALIBRATION_HH
