#include "ml/mlp.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace concorde
{

void
GradBuffer::zero()
{
    for (auto &g : weightGrads)
        std::fill(g.begin(), g.end(), 0.0f);
    for (auto &g : biasGrads)
        std::fill(g.begin(), g.end(), 0.0f);
    samples = 0;
}

void
GradBuffer::add(const GradBuffer &other)
{
    for (size_t l = 0; l < weightGrads.size(); ++l) {
        for (size_t i = 0; i < weightGrads[l].size(); ++i)
            weightGrads[l][i] += other.weightGrads[l][i];
        for (size_t i = 0; i < biasGrads[l].size(); ++i)
            biasGrads[l][i] += other.biasGrads[l][i];
    }
    samples += other.samples;
}

Mlp::Mlp(std::vector<size_t> layer_sizes, uint64_t seed)
    : layerSizes(std::move(layer_sizes))
{
    fatal_if(layerSizes.size() < 2, "need at least input and output layers");
    fatal_if(layerSizes.back() != 1, "scalar output expected");

    Rng rng(seed);
    for (size_t l = 0; l + 1 < layerSizes.size(); ++l) {
        const size_t in = layerSizes[l];
        const size_t out = layerSizes[l + 1];
        weights.emplace_back(in * out);
        biases.emplace_back(out, 0.0f);
        // He initialization for ReLU layers.
        const double scale = std::sqrt(2.0 / static_cast<double>(in));
        for (auto &w : weights.back())
            w = static_cast<float>(rng.nextGaussian() * scale);
    }
    initAdamState();
}

Mlp::Mlp(BinaryReader &in)
{
    layerSizes = in.getVector<size_t>();
    const size_t layers = layerSizes.size() - 1;
    for (size_t l = 0; l < layers; ++l) {
        weights.push_back(in.getVector<float>());
        biases.push_back(in.getVector<float>());
    }
    initAdamState();
}

void
Mlp::save(BinaryWriter &out) const
{
    out.putVector(layerSizes);
    for (size_t l = 0; l < weights.size(); ++l) {
        out.putVector(weights[l]);
        out.putVector(biases[l]);
    }
}

void
Mlp::saveCheckpoint(BinaryWriter &out) const
{
    out.putVector(layerSizes);
    for (size_t l = 0; l < weights.size(); ++l) {
        out.putVector(weights[l]);
        out.putVector(biases[l]);
        out.putVector(mW[l]);
        out.putVector(vW[l]);
        out.putVector(mB[l]);
        out.putVector(vB[l]);
    }
    out.put<uint64_t>(adamStep);
}

Mlp
Mlp::loadCheckpoint(BinaryReader &in)
{
    Mlp mlp;
    mlp.layerSizes = in.getVector<size_t>();
    fatal_if(mlp.layerSizes.size() < 2, "malformed MLP checkpoint");
    const size_t layers = mlp.layerSizes.size() - 1;
    for (size_t l = 0; l < layers; ++l) {
        mlp.weights.push_back(in.getVector<float>());
        mlp.biases.push_back(in.getVector<float>());
        mlp.mW.push_back(in.getVector<float>());
        mlp.vW.push_back(in.getVector<float>());
        mlp.mB.push_back(in.getVector<float>());
        mlp.vB.push_back(in.getVector<float>());
    }
    mlp.adamStep = in.get<uint64_t>();
    return mlp;
}

void
Mlp::initAdamState()
{
    mW.clear(); vW.clear(); mB.clear(); vB.clear();
    for (size_t l = 0; l < weights.size(); ++l) {
        mW.emplace_back(weights[l].size(), 0.0f);
        vW.emplace_back(weights[l].size(), 0.0f);
        mB.emplace_back(biases[l].size(), 0.0f);
        vB.emplace_back(biases[l].size(), 0.0f);
    }
    adamStep = 0;
}

size_t
Mlp::parameterCount() const
{
    size_t count = 0;
    for (size_t l = 0; l < weights.size(); ++l)
        count += weights[l].size() + biases[l].size();
    return count;
}

MlpScratch
Mlp::makeScratch() const
{
    MlpScratch scratch;
    scratch.acts.resize(layerSizes.size());
    scratch.deltas.resize(layerSizes.size());
    for (size_t l = 0; l < layerSizes.size(); ++l) {
        scratch.acts[l].resize(layerSizes[l]);
        scratch.deltas[l].resize(layerSizes[l]);
    }
    return scratch;
}

GradBuffer
Mlp::makeGradBuffer() const
{
    GradBuffer grads;
    for (size_t l = 0; l < weights.size(); ++l) {
        grads.weightGrads.emplace_back(weights[l].size(), 0.0f);
        grads.biasGrads.emplace_back(biases[l].size(), 0.0f);
    }
    return grads;
}

float
Mlp::forward(const float *x, MlpScratch &scratch) const
{
    const size_t layers = weights.size();
    std::copy(x, x + layerSizes[0], scratch.acts[0].begin());
    for (size_t l = 0; l < layers; ++l) {
        const size_t in = layerSizes[l];
        const size_t out = layerSizes[l + 1];
        const float *src = scratch.acts[l].data();
        float *dst = scratch.acts[l + 1].data();
        const float *w = weights[l].data();
        const bool relu = l + 1 < layers;
        for (size_t o = 0; o < out; ++o) {
            const float *row = w + o * in;
            float acc = biases[l][o];
            for (size_t i = 0; i < in; ++i)
                acc += row[i] * src[i];
            dst[o] = relu && acc < 0.0f ? 0.0f : acc;
        }
    }
    return scratch.acts.back()[0];
}

namespace
{

/**
 * Fallback tile: dot-product accumulation for a ragged [rows x outs]
 * corner of the batch GEMM. Accumulation order per output matches the
 * 4x4 kernel and Mlp::forward.
 */
void
gemmCorner(const float *X, const float *w, const float *b, float *Y,
           size_t in, size_t od, size_t r0, size_t rows, size_t o0,
           size_t outs, bool relu)
{
    for (size_t r = r0; r < r0 + rows; ++r) {
        const float *x = X + r * in;
        float *y = Y + r * od;
        size_t o = o0;
        // Four output units per sweep: four independent accumulator
        // chains instead of one latency-bound one. Each (row, output)
        // chain still walks i in order, exactly as Mlp::forward, so
        // results match the scalar path. This matters beyond the block
        // remainder: batches smaller than kRowBlock (e.g. one span's
        // regions) are evaluated entirely here.
        for (; o + 4 <= o0 + outs; o += 4) {
            const float *w0 = w + (o + 0) * in;
            const float *w1 = w + (o + 1) * in;
            const float *w2 = w + (o + 2) * in;
            const float *w3 = w + (o + 3) * in;
            float a0 = b[o + 0];
            float a1 = b[o + 1];
            float a2 = b[o + 2];
            float a3 = b[o + 3];
            for (size_t i = 0; i < in; ++i) {
                const float x_i = x[i];
                a0 += w0[i] * x_i;
                a1 += w1[i] * x_i;
                a2 += w2[i] * x_i;
                a3 += w3[i] * x_i;
            }
            y[o + 0] = relu && a0 < 0.0f ? 0.0f : a0;
            y[o + 1] = relu && a1 < 0.0f ? 0.0f : a1;
            y[o + 2] = relu && a2 < 0.0f ? 0.0f : a2;
            y[o + 3] = relu && a3 < 0.0f ? 0.0f : a3;
        }
        for (; o < o0 + outs; ++o) {
            const float *row = w + o * in;
            float acc = b[o];
            for (size_t i = 0; i < in; ++i)
                acc += row[i] * x[i];
            y[o] = relu && acc < 0.0f ? 0.0f : acc;
        }
    }
}

/** Batch rows processed per transposed block. */
constexpr size_t kRowBlock = 16;

#if defined(__GNUC__) || defined(__clang__)
#define CONCORDE_RESTRICT __restrict
#else
#define CONCORDE_RESTRICT
#endif

/**
 * One dense layer over a batch: Y[n x od] = relu?(X[n x in] * W^T + b).
 * Rows are processed in blocks of kRowBlock: the block is transposed
 * once so the batch dimension is contiguous, then every output unit
 * accumulates a kRowBlock-wide FMA per weight element. The weight
 * matrix is streamed n/kRowBlock times instead of n times, the
 * transposed block stays in L1, and the contiguous independent lanes
 * vectorize. Per (row, output) the accumulation order over inputs is
 * identical to Mlp::forward, so results match the scalar path.
 */
void
gemmLayer(const float *CONCORDE_RESTRICT X,
          const float *CONCORDE_RESTRICT w,
          const float *CONCORDE_RESTRICT b, float *CONCORDE_RESTRICT Y,
          float *CONCORDE_RESTRICT xt, size_t n, size_t in, size_t od,
          bool relu)
{
    constexpr size_t RB = kRowBlock;
    auto act = [relu](float v) { return relu && v < 0.0f ? 0.0f : v; };
    size_t r0 = 0;
    for (; r0 + RB <= n; r0 += RB) {
        // Transpose the block: xt[i * RB + r] = X[(r0 + r) * in + i].
        for (size_t r = 0; r < RB; ++r) {
            const float *CONCORDE_RESTRICT x = X + (r0 + r) * in;
            for (size_t i = 0; i < in; ++i)
                xt[i * RB + r] = x[i];
        }
        // 4-output x RB-row register tile: four weight rows stream per
        // sweep and each transposed input column is reused fourfold,
        // with 4*RB independent accumulator chains for ILP. Per
        // (row, output) the accumulation walks i in order, exactly as
        // Mlp::forward does, so results match the scalar path.
        size_t o = 0;
        for (; o + 4 <= od; o += 4) {
            const float *CONCORDE_RESTRICT w0 = w + (o + 0) * in;
            const float *CONCORDE_RESTRICT w1 = w + (o + 1) * in;
            const float *CONCORDE_RESTRICT w2 = w + (o + 2) * in;
            const float *CONCORDE_RESTRICT w3 = w + (o + 3) * in;
            float a0[RB], a1[RB], a2[RB], a3[RB];
            for (size_t r = 0; r < RB; ++r) {
                a0[r] = b[o + 0];
                a1[r] = b[o + 1];
                a2[r] = b[o + 2];
                a3[r] = b[o + 3];
            }
            for (size_t i = 0; i < in; ++i) {
                const float v0 = w0[i], v1 = w1[i], v2 = w2[i],
                            v3 = w3[i];
                const float *CONCORDE_RESTRICT xv = xt + i * RB;
                for (size_t r = 0; r < RB; ++r) {
                    const float x = xv[r];
                    a0[r] += v0 * x;
                    a1[r] += v1 * x;
                    a2[r] += v2 * x;
                    a3[r] += v3 * x;
                }
            }
            for (size_t r = 0; r < RB; ++r) {
                float *CONCORDE_RESTRICT y = Y + (r0 + r) * od + o;
                y[0] = act(a0[r]);
                y[1] = act(a1[r]);
                y[2] = act(a2[r]);
                y[3] = act(a3[r]);
            }
        }
        // Leftover outputs: one weight row at a time.
        for (; o < od; ++o) {
            const float *CONCORDE_RESTRICT row = w + o * in;
            float acc[RB];
            for (size_t r = 0; r < RB; ++r)
                acc[r] = b[o];
            for (size_t i = 0; i < in; ++i) {
                const float wv = row[i];
                const float *CONCORDE_RESTRICT xv = xt + i * RB;
                for (size_t r = 0; r < RB; ++r)
                    acc[r] += wv * xv[r];
            }
            for (size_t r = 0; r < RB; ++r)
                Y[(r0 + r) * od + o] = act(acc[r]);
        }
    }
    if (r0 < n)
        gemmCorner(X, w, b, Y, in, od, r0, n - r0, 0, od, relu);
}

} // anonymous namespace

void
Mlp::forwardBatch(const float *xs, size_t n, float *out,
                  MlpBatchScratch &scratch) const
{
    if (n == 0)
        return;
    const size_t layers = weights.size();
    // The ping-pong buffers only ever hold layer *outputs*; the input
    // matrix is read in place from `xs`.
    size_t widest_out = 1, widest_in = 1;
    for (size_t l = 0; l < layerSizes.size(); ++l) {
        if (l > 0)
            widest_out = std::max(widest_out, layerSizes[l]);
        if (l + 1 < layerSizes.size())
            widest_in = std::max(widest_in, layerSizes[l]);
    }
    scratch.in.resize(n * widest_out);
    scratch.out.resize(n * widest_out);
    scratch.xt.resize(widest_in * kRowBlock);

    const float *X = xs;
    float *cur = scratch.in.data();
    float *nxt = scratch.out.data();
    for (size_t l = 0; l < layers; ++l) {
        const size_t in = layerSizes[l];
        const size_t od = layerSizes[l + 1];
        const bool relu = l + 1 < layers;
        gemmLayer(X, weights[l].data(), biases[l].data(), nxt,
                  scratch.xt.data(), n, in, od, relu);
        X = nxt;
        std::swap(cur, nxt);
    }
    // The output layer is scalar, so the final activation matrix is
    // [n x 1] contiguous.
    std::copy(X, X + n, out);
}

float
Mlp::forwardBackward(const float *x, float target, MlpScratch &scratch,
                     GradBuffer &grads, double &loss_out) const
{
    const float yhat = forward(x, scratch);

    // Relative-error loss (Eq. 7): dL/dyhat = sign(yhat - y) / y.
    const float safe_y = target > 1e-6f ? target : 1e-6f;
    loss_out = std::abs(yhat - target) / safe_y;
    const float dl = (yhat >= target ? 1.0f : -1.0f) / safe_y;

    const size_t layers = weights.size();
    scratch.deltas.back()[0] = dl;
    for (size_t l = layers; l-- > 0;) {
        const size_t in = layerSizes[l];
        const size_t out = layerSizes[l + 1];
        const float *src = scratch.acts[l].data();
        const float *act_out = scratch.acts[l + 1].data();
        float *delta_out = scratch.deltas[l + 1].data();
        float *delta_in = scratch.deltas[l].data();
        const float *w = weights[l].data();
        float *gw = grads.weightGrads[l].data();
        float *gb = grads.biasGrads[l].data();
        const bool relu = l + 1 < layers;

        if (l > 0)
            std::fill(delta_in, delta_in + in, 0.0f);
        for (size_t o = 0; o < out; ++o) {
            float d = delta_out[o];
            if (relu && act_out[o] <= 0.0f)
                d = 0.0f;
            if (d == 0.0f)
                continue;
            const float *row = w + o * in;
            float *grow = gw + o * in;
            gb[o] += d;
            for (size_t i = 0; i < in; ++i)
                grow[i] += d * src[i];
            if (l > 0) {
                for (size_t i = 0; i < in; ++i)
                    delta_in[i] += d * row[i];
            }
        }
    }
    ++grads.samples;
    return yhat;
}

void
Mlp::adamwStep(const GradBuffer &grads, double lr, double beta1,
               double beta2, double eps, double weight_decay)
{
    panic_if(grads.samples == 0, "adamwStep with empty gradient buffer");
    ++adamStep;
    const double inv_n = 1.0 / static_cast<double>(grads.samples);
    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(adamStep));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(adamStep));

    auto update = [&](std::vector<float> &param,
                      const std::vector<float> &grad, std::vector<float> &m,
                      std::vector<float> &v, bool decay) {
        for (size_t i = 0; i < param.size(); ++i) {
            const double g = grad[i] * inv_n;
            m[i] = static_cast<float>(beta1 * m[i] + (1.0 - beta1) * g);
            v[i] = static_cast<float>(beta2 * v[i] + (1.0 - beta2) * g * g);
            const double mhat = m[i] / bc1;
            const double vhat = v[i] / bc2;
            double step = lr * mhat / (std::sqrt(vhat) + eps);
            if (decay)
                step += lr * weight_decay * param[i];
            param[i] = static_cast<float>(param[i] - step);
        }
    };

    for (size_t l = 0; l < weights.size(); ++l) {
        update(weights[l], grads.weightGrads[l], mW[l], vW[l], true);
        update(biases[l], grads.biasGrads[l], mB[l], vB[l], false);
    }
}

} // namespace concorde
