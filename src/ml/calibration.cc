#include "ml/calibration.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace concorde
{

double
ConformalCalibration::quantile(double alpha) const
{
    panic_if(alpha <= 0.0 || alpha >= 1.0, "alpha must be in (0, 1)");
    panic_if(scores.empty(), "quantile() on an empty calibration");
    const size_t n = scores.size();
    // Finite-sample corrected rank: ceil((n + 1) (1 - alpha)).
    const double raw_rank =
        std::ceil((static_cast<double>(n) + 1.0) * (1.0 - alpha));
    const size_t rank = static_cast<size_t>(raw_rank);
    if (rank == 0)
        return scores.front();
    if (rank > n)
        return scores.back() * 1.5 + 0.05;  // beyond calibration support
    return scores[rank - 1];
}

void
ConformalCalibration::intervalAround(double point, double alpha,
                                     double &lo, double &hi) const
{
    const double q = quantile(alpha);
    lo = std::max(0.0, point * (1.0 - q));
    hi = point * (1.0 + q);
}

double
ConformalCalibration::oodScore(const float *row, size_t dim) const
{
    if (featLo.size() != dim || featHi.size() != dim || dim == 0)
        return 0.0;
    size_t outside = 0;
    for (size_t d = 0; d < dim; ++d) {
        if (row[d] < featLo[d] || row[d] > featHi[d])
            ++outside;
    }
    return static_cast<double>(outside) / static_cast<double>(dim);
}

void
ConformalCalibration::save(BinaryWriter &out) const
{
    out.putVector(scores);
    out.putVector(featLo);
    out.putVector(featHi);
}

ConformalCalibration
ConformalCalibration::load(BinaryReader &in)
{
    ConformalCalibration cal;
    cal.scores = in.getVector<double>();
    cal.featLo = in.getVector<float>();
    cal.featHi = in.getVector<float>();
    fatal_if(cal.featLo.size() != cal.featHi.size(),
             "calibration envelope lo/hi length mismatch");
    fatal_if(!std::is_sorted(cal.scores.begin(), cal.scores.end()),
             "calibration scores not sorted");
    return cal;
}

ConformalCalibration
fitConformalCalibration(const std::vector<float> &preds,
                        const std::vector<float> &labels,
                        const std::vector<float> &envelope_features,
                        size_t dim)
{
    fatal_if(preds.size() != labels.size(),
             "calibration preds/labels size mismatch");
    fatal_if(labels.empty(), "empty calibration set");
    fatal_if(dim == 0 || envelope_features.size() % dim != 0,
             "envelope features not a multiple of dim");

    ConformalCalibration cal;
    cal.scores.resize(labels.size());
    for (size_t i = 0; i < labels.size(); ++i) {
        const double yhat = std::max(preds[i], 1e-6f);
        cal.scores[i] = std::abs(labels[i] - preds[i]) / yhat;
    }
    std::sort(cal.scores.begin(), cal.scores.end());

    const size_t rows = envelope_features.size() / dim;
    if (rows > 0) {
        cal.featLo.assign(envelope_features.begin(),
                          envelope_features.begin() + dim);
        cal.featHi = cal.featLo;
        for (size_t i = 1; i < rows; ++i) {
            const float *row = envelope_features.data() + i * dim;
            for (size_t d = 0; d < dim; ++d) {
                cal.featLo[d] = std::min(cal.featLo[d], row[d]);
                cal.featHi[d] = std::max(cal.featHi[d], row[d]);
            }
        }
    }
    return cal;
}

} // namespace concorde
