/**
 * @file
 * Single-level set-associative cache with tree-PLRU replacement, modeled
 * after gem5's TreePLRURP (paper footnote 2). Tag-only: no data is stored.
 */

#ifndef CONCORDE_MEMORY_CACHE_HH
#define CONCORDE_MEMORY_CACHE_HH

#include <cstdint>
#include <vector>

namespace concorde
{

/**
 * Tag array with tree-PLRU replacement. Addresses are line indices
 * (byte address >> 6). Sets and ways must be powers of two.
 */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity (power of two)
     * @param ways associativity (power of two)
     */
    Cache(uint64_t size_bytes, uint32_t ways);

    /**
     * Reinitialize to the state of a fresh Cache(size_bytes, ways):
     * every entry invalid, PLRU trees zeroed. Reuses the tag and PLRU
     * storage when the geometry shrinks or stays the same.
     */
    void reset(uint64_t size_bytes, uint32_t ways);

    /** Probe without updating replacement state. */
    bool lookup(uint64_t line) const;

    /** Access: on hit update PLRU and return true; on miss return false. */
    bool touch(uint64_t line);

    /**
     * Allocate a line (evicting the PLRU victim if needed).
     * @return the evicted line index, or kNoLine if none was evicted.
     * @param dirty mark the installed line dirty (write allocation)
     * @param evicted_dirty set to true when the victim was dirty
     */
    uint64_t fill(uint64_t line, bool dirty, bool &evicted_dirty);

    /** touch(); on miss, fill(). @return true on hit. */
    bool access(uint64_t line, bool is_write);

    /** Mark a resident line dirty (no-op on miss). */
    void markDirty(uint64_t line);

    /** Drop a line if resident (back-invalidation). */
    void invalidate(uint64_t line);

    uint64_t sizeBytes() const { return numSets * numWays * 64ULL; }
    uint32_t ways() const { return numWays; }
    uint64_t sets() const { return numSets; }

    static constexpr uint64_t kNoLine = ~0ULL;

  private:
    uint64_t setOf(uint64_t line) const { return line & (numSets - 1); }
    uint64_t tagOf(uint64_t line) const { return line >> setShift; }

    /** PLRU victim way within a set. */
    uint32_t victimWay(uint64_t set) const;
    /** Update the PLRU tree to protect `way`. */
    void touchWay(uint64_t set, uint32_t way);

    uint64_t numSets;
    uint32_t numWays;
    uint32_t setShift;

    struct Entry
    {
        uint64_t tag = ~0ULL;
        bool valid = false;
        bool dirty = false;
    };
    std::vector<Entry> entries;       ///< numSets * numWays
    std::vector<uint8_t> plruBits;    ///< (numWays - 1) bits per set
};

} // namespace concorde

#endif // CONCORDE_MEMORY_CACHE_HH
