/**
 * @file
 * PC-indexed stride prefetcher for the L1 data cache (Table 1's
 * "L1d stride prefetcher degree" parameter: 0 = off, 4 = on).
 */

#ifndef CONCORDE_MEMORY_PREFETCHER_HH
#define CONCORDE_MEMORY_PREFETCHER_HH

#include <cstdint>
#include <vector>

namespace concorde
{

/**
 * Classic reference-prediction-table stride prefetcher. On a confident
 * stride match it emits `degree` prefetch addresses ahead of the demand
 * access.
 */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(int degree, uint32_t table_entries = 256);

    /**
     * Reinitialize to the state of a fresh StridePrefetcher(degree) with
     * the same table size, reusing the table storage.
     */
    void reset(int degree);

    /**
     * Observe a demand load and collect prefetch addresses (byte
     * addresses) into `out` (cleared first).
     */
    void observe(uint64_t pc, uint64_t addr, std::vector<uint64_t> &out);

    int degree() const { return prefetchDegree; }
    bool enabled() const { return prefetchDegree > 0; }

  private:
    struct Entry
    {
        uint64_t tag = ~0ULL;
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        int confidence = 0;
    };

    int prefetchDegree;
    uint32_t mask;
    std::vector<Entry> table;

    static constexpr int kConfMax = 3;
    static constexpr int kConfThreshold = 2;
};

} // namespace concorde

#endif // CONCORDE_MEMORY_PREFETCHER_HH
