#include "memory/cache.hh"

#include "common/logging.hh"

namespace concorde
{

namespace
{

bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

uint32_t
log2u(uint64_t x)
{
    uint32_t n = 0;
    while ((1ULL << n) < x)
        ++n;
    return n;
}

} // anonymous namespace

Cache::Cache(uint64_t size_bytes, uint32_t ways)
{
    reset(size_bytes, ways);
}

void
Cache::reset(uint64_t size_bytes, uint32_t ways)
{
    numSets = size_bytes / 64 / ways;
    numWays = ways;
    fatal_if(size_bytes < 64 * ways, "cache too small: %llu bytes",
             static_cast<unsigned long long>(size_bytes));
    fatal_if(!isPow2(numSets) || !isPow2(numWays),
             "sets (%llu) and ways (%u) must be powers of two",
             static_cast<unsigned long long>(numSets), numWays);
    setShift = log2u(numSets);
    entries.assign(numSets * numWays, Entry{});
    plruBits.assign(numSets * (numWays > 1 ? numWays - 1 : 1), 0);
}

bool
Cache::lookup(uint64_t line) const
{
    const uint64_t set = setOf(line);
    const uint64_t tag = tagOf(line);
    const Entry *row = &entries[set * numWays];
    for (uint32_t w = 0; w < numWays; ++w) {
        if (row[w].valid && row[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::touch(uint64_t line)
{
    const uint64_t set = setOf(line);
    const uint64_t tag = tagOf(line);
    Entry *row = &entries[set * numWays];
    for (uint32_t w = 0; w < numWays; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            touchWay(set, w);
            return true;
        }
    }
    return false;
}

uint64_t
Cache::fill(uint64_t line, bool dirty, bool &evicted_dirty)
{
    const uint64_t set = setOf(line);
    const uint64_t tag = tagOf(line);
    Entry *row = &entries[set * numWays];
    evicted_dirty = false;

    // Already resident: just update state.
    for (uint32_t w = 0; w < numWays; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].dirty |= dirty;
            touchWay(set, w);
            return kNoLine;
        }
    }
    // Prefer an invalid way.
    for (uint32_t w = 0; w < numWays; ++w) {
        if (!row[w].valid) {
            row[w] = {tag, true, dirty};
            touchWay(set, w);
            return kNoLine;
        }
    }
    // Evict the PLRU victim.
    const uint32_t w = victimWay(set);
    const uint64_t victim_line = (row[w].tag << setShift) | set;
    evicted_dirty = row[w].dirty;
    row[w] = {tag, true, dirty};
    touchWay(set, w);
    return victim_line;
}

bool
Cache::access(uint64_t line, bool is_write)
{
    if (touch(line)) {
        if (is_write)
            markDirty(line);
        return true;
    }
    bool evicted_dirty = false;
    fill(line, is_write, evicted_dirty);
    return false;
}

void
Cache::markDirty(uint64_t line)
{
    const uint64_t set = setOf(line);
    const uint64_t tag = tagOf(line);
    Entry *row = &entries[set * numWays];
    for (uint32_t w = 0; w < numWays; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].dirty = true;
            return;
        }
    }
}

void
Cache::invalidate(uint64_t line)
{
    const uint64_t set = setOf(line);
    const uint64_t tag = tagOf(line);
    Entry *row = &entries[set * numWays];
    for (uint32_t w = 0; w < numWays; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].valid = false;
            row[w].dirty = false;
            return;
        }
    }
}

uint32_t
Cache::victimWay(uint64_t set) const
{
    if (numWays == 1)
        return 0;
    const uint8_t *bits = &plruBits[set * (numWays - 1)];
    // Walk the binary tree: bit==0 means "go left", following the
    // least-recently-protected direction.
    uint32_t node = 0;
    while (node < numWays - 1)
        node = 2 * node + 1 + (bits[node] ? 1 : 0);
    return node - (numWays - 1);
}

void
Cache::touchWay(uint64_t set, uint32_t way)
{
    if (numWays == 1)
        return;
    uint8_t *bits = &plruBits[set * (numWays - 1)];
    // Flip internal nodes to point away from the accessed leaf.
    uint32_t node = way + (numWays - 1);
    while (node > 0) {
        const uint32_t parent = (node - 1) / 2;
        const bool went_right = (node == 2 * parent + 2);
        bits[parent] = went_right ? 0 : 1;
        node = parent;
    }
}

} // namespace concorde
