/**
 * @file
 * Timed memory system for the reference cycle-level simulator: the
 * functional hierarchy plus timing-dependent behavior the in-order trace
 * analysis cannot see -- same-line miss merging, limited MSHRs, DRAM
 * bandwidth queueing, prefetch timing, and a shared L2/LLC between the
 * instruction and data sides.
 *
 * These effects are a deliberate source of discrepancy between trace
 * analysis and ground truth (paper Section 5.2.1, Figure 11).
 */

#ifndef CONCORDE_MEMORY_TIMING_MEMORY_HH
#define CONCORDE_MEMORY_TIMING_MEMORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "memory/prefetcher.hh"

namespace concorde
{

/** Result of a timed access. */
struct MemResponse
{
    uint64_t readyCycle = 0;    ///< data/line available at this cycle
    CacheLevel level = CacheLevel::L1;
    bool isFill = false;        ///< required a fill from below L1
};

/**
 * Cycle-addressable memory model. Requests must arrive in non-decreasing
 * cycle order (the out-of-order core issues them in simulation-time order).
 */
class TimingMemory
{
  public:
    explicit TimingMemory(const MemoryConfig &config);

    /**
     * Reinitialize to the exact state of a freshly constructed
     * TimingMemory(config), reusing all existing allocations (cache tag
     * arrays, hash-map buckets, heap storage). The simulator scratch path
     * resets one instance per run instead of reconstructing it.
     */
    void reset(const MemoryConfig &config);

    /** Timed demand load. */
    MemResponse load(uint64_t pc, uint64_t addr, uint64_t cycle);

    /**
     * Store performed at commit (write-back, allocate-on-write). Timing
     * cost is absorbed by the store buffer; this updates cache state and
     * charges write-back bandwidth.
     */
    void store(uint64_t pc, uint64_t addr, uint64_t cycle);

    /** Timed instruction-line fetch. */
    MemResponse fetchLine(uint64_t line, uint64_t cycle);

    /**
     * Would a fetch of this line at `cycle` start a new fill (consume an
     * I-cache fill slot)? Pure query; no state change.
     */
    bool instLineNeedsFill(uint64_t line, uint64_t cycle) const;

    const HierarchyStats &dataStats() const { return dStats; }
    const HierarchyStats &instStats() const { return iStats; }

    /** DRAM line-transfer gap in cycles (37 GB/s at ~2 GHz, 64B lines). */
    static constexpr uint64_t kDramGap = 4;
    /** Extra DRAM latency beyond LLC (paper: 90 ns ~ 200 cycles total). */
    static constexpr uint64_t kDramLat = 200;
    static constexpr int kMshrs = 16;

  private:
    /**
     * Look up the data-side levels and fill upward; returns serving level.
     * Pure state transition; timing handled by callers.
     */
    CacheLevel dataLookupFill(uint64_t line, bool is_write, bool sequential);
    CacheLevel instLookupFill(uint64_t line, bool sequential);

    /** DRAM queue: next service completion for a request at `cycle`. */
    uint64_t dramService(uint64_t cycle);

    /** MSHR gate: returns the cycle at which a new miss may start. */
    uint64_t mshrAdmit(uint64_t cycle);
    void mshrRetire(uint64_t completion);

    Cache l1d;
    Cache l1i;
    Cache l2;
    Cache llc;
    StridePrefetcher prefetcher;

    HierarchyStats dStats;
    HierarchyStats iStats;

    uint64_t lastDataLine = ~0ULL;
    uint64_t lastInstLine = ~0ULL;
    uint64_t dramNextFree = 0;

    /** In-flight fills (demand or prefetch): line -> completion cycle. */
    std::unordered_map<uint64_t, uint64_t> inflightData;
    std::unordered_map<uint64_t, uint64_t> inflightInst;

    /**
     * Outstanding data-miss completions: a min-heap over a plain vector
     * (std::push_heap/pop_heap), capped at kMshrs, so reset() keeps the
     * storage.
     */
    std::vector<uint64_t> mshrHeap;

    std::vector<uint64_t> prefetchBuf;
};

} // namespace concorde

#endif // CONCORDE_MEMORY_TIMING_MEMORY_HH
