#include "memory/prefetcher.hh"

#include <algorithm>

#include "common/logging.hh"

namespace concorde
{

StridePrefetcher::StridePrefetcher(int degree, uint32_t table_entries)
    : prefetchDegree(degree), mask(table_entries - 1), table(table_entries)
{
    fatal_if(table_entries == 0 || (table_entries & mask) != 0,
             "table entries must be a power of two");
    fatal_if(degree < 0, "negative prefetch degree");
}

void
StridePrefetcher::reset(int degree)
{
    fatal_if(degree < 0, "negative prefetch degree");
    prefetchDegree = degree;
    std::fill(table.begin(), table.end(), Entry{});
}

void
StridePrefetcher::observe(uint64_t pc, uint64_t addr,
                          std::vector<uint64_t> &out)
{
    out.clear();
    if (!enabled())
        return;

    Entry &e = table[(pc >> 2) & mask];
    const uint64_t tag = pc;
    if (e.tag != tag) {
        e = {tag, addr, 0, 0};
        return;
    }

    const int64_t stride = static_cast<int64_t>(addr)
        - static_cast<int64_t>(e.lastAddr);
    if (stride == e.stride && stride != 0) {
        if (e.confidence < kConfMax)
            ++e.confidence;
    } else {
        if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = stride;
        }
    }
    e.lastAddr = addr;

    if (e.confidence >= kConfThreshold && e.stride != 0) {
        // Sub-line strides still need to cover upcoming lines: prefetch at
        // line granularity in the stride's direction.
        const int64_t step = e.stride > 0
            ? std::max<int64_t>(e.stride, 64)
            : std::min<int64_t>(e.stride, -64);
        for (int d = 1; d <= prefetchDegree; ++d) {
            const int64_t target = static_cast<int64_t>(addr) + step * d;
            if (target >= 0)
                out.push_back(static_cast<uint64_t>(target));
        }
    }
}

} // namespace concorde
