/**
 * @file
 * Functional (order-sensitive, untimed) cache hierarchy used by trace
 * analysis (Section 3.1's "simple in-order cache simulation") and embedded
 * inside the timing memory of the reference simulator.
 *
 * Structure per the paper's reference architecture (footnote 2): private
 * L1i / L1d, unified L2, 4MB LLC; write-back everywhere; allocate on reads
 * and writebacks; no allocation on sequential access in L2/LLC.
 */

#ifndef CONCORDE_MEMORY_HIERARCHY_HH
#define CONCORDE_MEMORY_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "memory/cache.hh"
#include "memory/prefetcher.hh"
#include "trace/instruction.hh"

namespace concorde
{

/** The memory-side design parameters from Table 1 (plus fixed LLC). */
struct MemoryConfig
{
    uint32_t l1dKb = 64;        ///< {16,32,64,128,256}
    uint32_t l1iKb = 64;        ///< {16,32,64,128,256}
    uint32_t l2Kb = 1024;       ///< {512,1024,2048,4096}
    int prefetchDegree = 0;     ///< {0 (off), 4 (on)}

    static constexpr uint32_t kLlcKb = 4096;   ///< fixed (footnote 2)

    bool operator==(const MemoryConfig &o) const
    {
        return l1dKb == o.l1dKb && l1iKb == o.l1iKb && l2Kb == o.l2Kb
            && prefetchDegree == o.prefetchDegree;
    }

    /** Dense key for memoization tables. */
    uint32_t key() const;

    /** The 40 distinct D-side configs (5 L1d x 4 L2 x 2 prefetch). */
    uint32_t dSideKey() const;
    /** The 20 distinct I-side configs (5 L1i x 4 L2). */
    uint32_t iSideKey() const;
};

/** Counters for cache experiments and tests. */
struct HierarchyStats
{
    uint64_t l1Hits = 0;
    uint64_t l2Hits = 0;
    uint64_t llcHits = 0;
    uint64_t ramAccesses = 0;
    uint64_t prefetchesIssued = 0;
    uint64_t writebacks = 0;

    uint64_t accesses() const
    {
        return l1Hits + l2Hits + llcHits + ramAccesses;
    }
};

/**
 * In-order functional simulation of the data-side hierarchy. Returns the
 * level that served each access and updates the state of every level.
 */
class DataHierarchy
{
  public:
    explicit DataHierarchy(const MemoryConfig &config);

    /**
     * Demand access (load or store).
     * @param pc of the memory instruction (trains the prefetcher)
     * @param addr byte address
     */
    CacheLevel access(uint64_t pc, uint64_t addr, bool is_write);

    const HierarchyStats &stats() const { return hierarchyStats; }

  private:
    CacheLevel lookupFill(uint64_t line, bool is_write, bool sequential);

    Cache l1d;
    Cache l2;
    Cache llc;
    StridePrefetcher prefetcher;
    HierarchyStats hierarchyStats;
    uint64_t lastLine = ~0ULL;
    std::vector<uint64_t> prefetchBuf;
};

/** In-order functional simulation of the instruction-side hierarchy. */
class InstHierarchy
{
  public:
    explicit InstHierarchy(const MemoryConfig &config);

    /** Fetch access for one instruction-cache line. */
    CacheLevel access(uint64_t line);

    const HierarchyStats &stats() const { return hierarchyStats; }

  private:
    Cache l1i;
    Cache l2;       ///< I-side view of the shared L2 (modeled private)
    Cache llc;
    HierarchyStats hierarchyStats;
    uint64_t lastLine = ~0ULL;
};

/** All 40 D-side configurations, in a stable order. */
std::vector<MemoryConfig> allDataConfigs();
/** All 20 I-side configurations, in a stable order. */
std::vector<MemoryConfig> allInstConfigs();

} // namespace concorde

#endif // CONCORDE_MEMORY_HIERARCHY_HH
