#include "memory/hierarchy.hh"

#include "common/logging.hh"

namespace concorde
{

namespace
{

constexpr uint32_t kL1Ways = 4;
constexpr uint32_t kL2Ways = 8;
constexpr uint32_t kLlcWays = 16;

uint32_t
l1SizeIndex(uint32_t kb)
{
    switch (kb) {
      case 16: return 0;
      case 32: return 1;
      case 64: return 2;
      case 128: return 3;
      case 256: return 4;
      default: fatal("invalid L1 size %u kB", kb);
    }
}

uint32_t
l2SizeIndex(uint32_t kb)
{
    switch (kb) {
      case 512: return 0;
      case 1024: return 1;
      case 2048: return 2;
      case 4096: return 3;
      default: fatal("invalid L2 size %u kB", kb);
    }
}

} // anonymous namespace

uint32_t
MemoryConfig::key() const
{
    return l1SizeIndex(l1dKb) | (l1SizeIndex(l1iKb) << 3)
        | (l2SizeIndex(l2Kb) << 6) | ((prefetchDegree > 0 ? 1 : 0) << 9);
}

uint32_t
MemoryConfig::dSideKey() const
{
    return l1SizeIndex(l1dKb) | (l2SizeIndex(l2Kb) << 3)
        | ((prefetchDegree > 0 ? 1 : 0) << 6);
}

uint32_t
MemoryConfig::iSideKey() const
{
    return l1SizeIndex(l1iKb) | (l2SizeIndex(l2Kb) << 3);
}

DataHierarchy::DataHierarchy(const MemoryConfig &config)
    : l1d(config.l1dKb * 1024ULL, kL1Ways),
      l2(config.l2Kb * 1024ULL, kL2Ways),
      llc(MemoryConfig::kLlcKb * 1024ULL, kLlcWays),
      prefetcher(config.prefetchDegree)
{
}

CacheLevel
DataHierarchy::lookupFill(uint64_t line, bool is_write, bool sequential)
{
    if (l1d.touch(line)) {
        if (is_write)
            l1d.markDirty(line);
        return CacheLevel::L1;
    }

    CacheLevel level;
    if (l2.touch(line)) {
        level = CacheLevel::L2;
    } else if (llc.touch(line)) {
        level = CacheLevel::LLC;
    } else {
        level = CacheLevel::Ram;
    }

    // Fill path: always allocate in L1 (standard allocation policy);
    // skip L2/LLC allocation on sequential (streaming) access.
    bool evicted_dirty = false;
    const uint64_t victim = l1d.fill(line, is_write, evicted_dirty);
    if (victim != Cache::kNoLine && evicted_dirty) {
        // Write-back allocates below (paper: allocate on writebacks).
        ++hierarchyStats.writebacks;
        bool wb_dirty = false;
        l2.fill(victim, true, wb_dirty);
        if (wb_dirty)
            llc.fill(victim, true, wb_dirty);
    }
    if (!sequential) {
        if (level == CacheLevel::Ram || level == CacheLevel::LLC) {
            bool d = false;
            l2.fill(line, false, d);
            if (d)
                llc.fill(line, true, d);
        }
        if (level == CacheLevel::Ram) {
            bool d = false;
            llc.fill(line, false, d);
        }
    }
    return level;
}

CacheLevel
DataHierarchy::access(uint64_t pc, uint64_t addr, bool is_write)
{
    const uint64_t line = addr >> 6;
    const bool sequential = (line == lastLine + 1);
    lastLine = line;

    const CacheLevel level = lookupFill(line, is_write, sequential);
    switch (level) {
      case CacheLevel::L1: ++hierarchyStats.l1Hits; break;
      case CacheLevel::L2: ++hierarchyStats.l2Hits; break;
      case CacheLevel::LLC: ++hierarchyStats.llcHits; break;
      default: ++hierarchyStats.ramAccesses; break;
    }

    // Stride prefetching into L1d (trained by loads only).
    if (!is_write && prefetcher.enabled()) {
        prefetcher.observe(pc, addr, prefetchBuf);
        for (uint64_t pf_addr : prefetchBuf) {
            const uint64_t pf_line = pf_addr >> 6;
            if (!l1d.lookup(pf_line)) {
                ++hierarchyStats.prefetchesIssued;
                lookupFill(pf_line, false, false);
            }
        }
    }
    return level;
}

InstHierarchy::InstHierarchy(const MemoryConfig &config)
    : l1i(config.l1iKb * 1024ULL, kL1Ways),
      l2(config.l2Kb * 1024ULL, kL2Ways),
      llc(MemoryConfig::kLlcKb * 1024ULL, kLlcWays)
{
}

CacheLevel
InstHierarchy::access(uint64_t line)
{
    const bool sequential = (line == lastLine + 1);
    lastLine = line;

    if (l1i.touch(line)) {
        ++hierarchyStats.l1Hits;
        return CacheLevel::L1;
    }
    CacheLevel level;
    if (l2.touch(line)) {
        level = CacheLevel::L2;
        ++hierarchyStats.l2Hits;
    } else if (llc.touch(line)) {
        level = CacheLevel::LLC;
        ++hierarchyStats.llcHits;
    } else {
        level = CacheLevel::Ram;
        ++hierarchyStats.ramAccesses;
    }

    bool d = false;
    l1i.fill(line, false, d);
    if (!sequential) {
        if (level == CacheLevel::Ram || level == CacheLevel::LLC)
            l2.fill(line, false, d);
        if (level == CacheLevel::Ram)
            llc.fill(line, false, d);
    }
    return level;
}

std::vector<MemoryConfig>
allDataConfigs()
{
    std::vector<MemoryConfig> configs;
    for (uint32_t l1d : {16, 32, 64, 128, 256}) {
        for (uint32_t l2 : {512, 1024, 2048, 4096}) {
            for (int pf : {0, 4}) {
                MemoryConfig c;
                c.l1dKb = l1d;
                c.l2Kb = l2;
                c.prefetchDegree = pf;
                configs.push_back(c);
            }
        }
    }
    return configs;
}

std::vector<MemoryConfig>
allInstConfigs()
{
    std::vector<MemoryConfig> configs;
    for (uint32_t l1i : {16, 32, 64, 128, 256}) {
        for (uint32_t l2 : {512, 1024, 2048, 4096}) {
            MemoryConfig c;
            c.l1iKb = l1i;
            c.l2Kb = l2;
            configs.push_back(c);
        }
    }
    return configs;
}

} // namespace concorde
