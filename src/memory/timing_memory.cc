#include "memory/timing_memory.hh"

#include <algorithm>
#include <functional>

namespace concorde
{

namespace
{

constexpr uint32_t kL1Ways = 4;
constexpr uint32_t kL2Ways = 8;
constexpr uint32_t kLlcWays = 16;

} // anonymous namespace

TimingMemory::TimingMemory(const MemoryConfig &config)
    : l1d(config.l1dKb * 1024ULL, kL1Ways),
      l1i(config.l1iKb * 1024ULL, kL1Ways),
      l2(config.l2Kb * 1024ULL, kL2Ways),
      llc(MemoryConfig::kLlcKb * 1024ULL, kLlcWays),
      prefetcher(config.prefetchDegree)
{
}

void
TimingMemory::reset(const MemoryConfig &config)
{
    l1d.reset(config.l1dKb * 1024ULL, kL1Ways);
    l1i.reset(config.l1iKb * 1024ULL, kL1Ways);
    l2.reset(config.l2Kb * 1024ULL, kL2Ways);
    llc.reset(MemoryConfig::kLlcKb * 1024ULL, kLlcWays);
    prefetcher.reset(config.prefetchDegree);
    dStats = HierarchyStats{};
    iStats = HierarchyStats{};
    lastDataLine = ~0ULL;
    lastInstLine = ~0ULL;
    dramNextFree = 0;
    inflightData.clear();
    inflightInst.clear();
    mshrHeap.clear();
    prefetchBuf.clear();
}

CacheLevel
TimingMemory::dataLookupFill(uint64_t line, bool is_write, bool sequential)
{
    if (l1d.touch(line)) {
        if (is_write)
            l1d.markDirty(line);
        return CacheLevel::L1;
    }
    CacheLevel level;
    if (l2.touch(line)) {
        level = CacheLevel::L2;
    } else if (llc.touch(line)) {
        level = CacheLevel::LLC;
    } else {
        level = CacheLevel::Ram;
    }

    bool evicted_dirty = false;
    const uint64_t victim = l1d.fill(line, is_write, evicted_dirty);
    if (victim != Cache::kNoLine && evicted_dirty) {
        ++dStats.writebacks;
        bool wb_dirty = false;
        l2.fill(victim, true, wb_dirty);
        if (wb_dirty) {
            llc.fill(victim, true, wb_dirty);
            if (wb_dirty)
                dramNextFree += kDramGap;   // LLC victim write-back
        }
    }
    if (!sequential) {
        bool d = false;
        if (level == CacheLevel::Ram || level == CacheLevel::LLC)
            l2.fill(line, false, d);
        if (level == CacheLevel::Ram)
            llc.fill(line, false, d);
    }
    return level;
}

CacheLevel
TimingMemory::instLookupFill(uint64_t line, bool sequential)
{
    if (l1i.touch(line))
        return CacheLevel::L1;
    CacheLevel level;
    if (l2.touch(line)) {
        level = CacheLevel::L2;
    } else if (llc.touch(line)) {
        level = CacheLevel::LLC;
    } else {
        level = CacheLevel::Ram;
    }
    bool d = false;
    l1i.fill(line, false, d);
    if (!sequential) {
        if (level == CacheLevel::Ram || level == CacheLevel::LLC)
            l2.fill(line, false, d);
        if (level == CacheLevel::Ram)
            llc.fill(line, false, d);
    }
    return level;
}

uint64_t
TimingMemory::dramService(uint64_t cycle)
{
    const uint64_t start = std::max(cycle, dramNextFree);
    dramNextFree = start + kDramGap;
    return start + kDramLat;
}

uint64_t
TimingMemory::mshrAdmit(uint64_t cycle)
{
    const auto cmp = std::greater<uint64_t>();
    while (!mshrHeap.empty() && mshrHeap.front() <= cycle) {
        std::pop_heap(mshrHeap.begin(), mshrHeap.end(), cmp);
        mshrHeap.pop_back();
    }
    if (mshrHeap.size() < static_cast<size_t>(kMshrs))
        return cycle;
    const uint64_t free_at = mshrHeap.front();
    std::pop_heap(mshrHeap.begin(), mshrHeap.end(), cmp);
    mshrHeap.pop_back();
    return free_at;
}

void
TimingMemory::mshrRetire(uint64_t completion)
{
    mshrHeap.push_back(completion);
    std::push_heap(mshrHeap.begin(), mshrHeap.end(),
                   std::greater<uint64_t>());
}

MemResponse
TimingMemory::load(uint64_t pc, uint64_t addr, uint64_t cycle)
{
    const uint64_t line = addr >> 6;
    MemResponse resp;

    // Merge with an in-flight fill for the same line (principle 1 of
    // Algorithm 1, realized in the ground-truth simulator).
    auto it = inflightData.find(line);
    if (it != inflightData.end() && it->second > cycle) {
        resp.readyCycle = it->second;
        resp.level = CacheLevel::L1;    // will be an L1 hit once filled
        resp.isFill = false;
        // Keep replacement state warm.
        l1d.touch(line);
        return resp;
    }

    const bool sequential = (line == lastDataLine + 1);
    lastDataLine = line;
    const CacheLevel level = dataLookupFill(line, false, sequential);
    switch (level) {
      case CacheLevel::L1: ++dStats.l1Hits; break;
      case CacheLevel::L2: ++dStats.l2Hits; break;
      case CacheLevel::LLC: ++dStats.llcHits; break;
      default: ++dStats.ramAccesses; break;
    }

    resp.level = level;
    if (level == CacheLevel::L1) {
        resp.readyCycle = cycle + loadLatency(CacheLevel::L1);
    } else {
        const uint64_t start = mshrAdmit(cycle);
        uint64_t done;
        if (level == CacheLevel::Ram)
            done = dramService(start);
        else
            done = start + loadLatency(level);
        mshrRetire(done);
        // `it` is still valid: nothing was inserted since the find above.
        if (it != inflightData.end())
            it->second = done;
        else
            inflightData.emplace(line, done);
        resp.readyCycle = done;
        resp.isFill = true;
    }

    // Prefetching: trained by demand loads, issued in timing order.
    if (prefetcher.enabled()) {
        prefetcher.observe(pc, addr, prefetchBuf);
        for (uint64_t pf_addr : prefetchBuf) {
            const uint64_t pf_line = pf_addr >> 6;
            if (l1d.lookup(pf_line))
                continue;
            auto in = inflightData.find(pf_line);
            if (in != inflightData.end() && in->second > cycle)
                continue;
            ++dStats.prefetchesIssued;
            const bool pf_seq = (pf_line == lastDataLine + 1);
            lastDataLine = pf_line;
            const CacheLevel pf_level =
                dataLookupFill(pf_line, false, pf_seq);
            uint64_t done;
            if (pf_level == CacheLevel::Ram)
                done = dramService(cycle);
            else
                done = cycle + loadLatency(pf_level);
            if (in != inflightData.end())
                in->second = done;
            else
                inflightData.emplace(pf_line, done);
        }
    }
    return resp;
}

void
TimingMemory::store(uint64_t pc, uint64_t addr, uint64_t cycle)
{
    (void)pc;
    const uint64_t line = addr >> 6;
    const bool sequential = (line == lastDataLine + 1);
    lastDataLine = line;
    const CacheLevel level = dataLookupFill(line, true, sequential);
    switch (level) {
      case CacheLevel::L1: ++dStats.l1Hits; break;
      case CacheLevel::L2: ++dStats.l2Hits; break;
      case CacheLevel::LLC: ++dStats.llcHits; break;
      default: ++dStats.ramAccesses; break;
    }
    if (level == CacheLevel::Ram)
        dramNextFree += kDramGap;   // fill bandwidth for the write allocate
    (void)cycle;
}

bool
TimingMemory::instLineNeedsFill(uint64_t line, uint64_t cycle) const
{
    if (l1i.lookup(line))
        return false;
    auto it = inflightInst.find(line);
    return !(it != inflightInst.end() && it->second > cycle);
}

MemResponse
TimingMemory::fetchLine(uint64_t line, uint64_t cycle)
{
    MemResponse resp;
    auto it = inflightInst.find(line);
    if (it != inflightInst.end() && it->second > cycle) {
        resp.readyCycle = it->second;
        resp.level = CacheLevel::L1;
        resp.isFill = false;
        l1i.touch(line);
        return resp;
    }

    const bool sequential = (line == lastInstLine + 1);
    lastInstLine = line;
    const CacheLevel level = instLookupFill(line, sequential);
    switch (level) {
      case CacheLevel::L1: ++iStats.l1Hits; break;
      case CacheLevel::L2: ++iStats.l2Hits; break;
      case CacheLevel::LLC: ++iStats.llcHits; break;
      default: ++iStats.ramAccesses; break;
    }

    resp.level = level;
    if (level == CacheLevel::L1) {
        resp.readyCycle = cycle + 1;
    } else {
        uint64_t done;
        if (level == CacheLevel::Ram)
            done = dramService(cycle);
        else
            done = cycle + loadLatency(level);
        if (it != inflightInst.end())
            it->second = done;
        else
            inflightInst.emplace(line, done);
        resp.readyCycle = done;
        resp.isFill = true;
    }
    return resp;
}

} // namespace concorde
