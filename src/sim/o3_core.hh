/**
 * @file
 * Reference cycle-level simulator: a generic parameterized out-of-order
 * core in the style of gem5's O3 CPU (paper Section 3), used as the
 * ground-truth oracle f(x, p) that Concorde learns.
 *
 * Modeled structure:
 *  - Fetch: in-order line fetch along the (known) correct path, limited by
 *    fetch buffers, maximum outstanding I-cache fills, and fetch width;
 *    redirects on mispredicted branches (resolved at execute) and ISB
 *    pipeline drains (resolved at commit).
 *  - Decode / rename: width-limited queues (the rename queue's occupancy
 *    is one of the Section 5.2.6 alternative targets).
 *  - Backend: ROB / load queue / store queue dispatch, per-class issue
 *    widths (ALU, FP, load-store), load and load-store pipes,
 *    dependency-driven wakeup, store-to-load forwarding, and in-order
 *    commit with commit width.
 *  - Memory: TimingMemory (shared L2/LLC, MSHRs, DRAM bandwidth, stride
 *    prefetcher), accessed in issue order -- deliberately richer than the
 *    in-order trace analysis so that Figure 11's discrepancies arise.
 *
 * Two implementations share these semantics cycle for cycle:
 *  - the fast path (simulateTrace / simulateRegion): every per-call
 *    container lives in a caller-owned SimScratch, queues are fixed-cap
 *    ring buffers, heaps are reused vectors, and the timing memory is
 *    reset in place -- labeling N design points of one region allocates
 *    once, not N times;
 *  - the reference path (simulateTraceReference): the original
 *    fresh-containers-per-call engine, kept verbatim as the bitwise A/B
 *    oracle (tests/test_sim_labeler, bench/bench_sim_labeler).
 */

#ifndef CONCORDE_SIM_O3_CORE_HH
#define CONCORDE_SIM_O3_CORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/trace_analyzer.hh"
#include "trace/instruction.hh"
#include "uarch/params.hh"

namespace concorde
{

/** Ground-truth metrics for one simulated region. */
struct SimResult
{
    uint64_t cycles = 0;            ///< region cycles (warmup excluded)
    uint64_t instructions = 0;      ///< region instructions
    double avgRobOccupancy = 0.0;   ///< mean ROB entries / capacity (%)
    double avgRenameQOccupancy = 0.0; ///< mean rename-queue fill (%)
    double avgLqOccupancy = 0.0;    ///< mean LQ entries / capacity (%)
    uint64_t branchMispredicts = 0;
    /** Sum of actual issued-load latencies (Figure 11 numerator). */
    uint64_t actualLoadLatencySum = 0;
    /** Number of region loads (Figure 11 denominator pairing). */
    uint64_t loadCount = 0;
    /**
     * Region commit cycle at each window boundary (when a window length
     * was requested); yields the ground-truth per-window IPC of Figure 1.
     */
    std::vector<uint64_t> windowCommitCycles;

    double
    cpi() const
    {
        return instructions
            ? static_cast<double>(cycles)
                / static_cast<double>(instructions)
            : 0.0;
    }
    double ipc() const { return cpi() > 0 ? 1.0 / cpi() : 0.0; }
};

/**
 * Reusable simulator working set (the RobModelScratch idiom): all of the
 * engine's per-run state -- per-instruction arrays, wakeup edge chains,
 * fetch/decode/rename ring buffers, ready and event heaps, and the
 * TimingMemory itself -- owned by the caller and threaded through
 * simulateTrace / simulateRegion. One instance reused across runs keeps
 * the hot labeling loop free of per-sample allocation once warm; a fresh
 * instance per call reproduces the old behavior exactly (results are
 * bitwise-identical either way).
 *
 * Not thread-safe: one scratch per thread. Safe to reuse across regions
 * and design points in any interleaving.
 */
struct SimScratch
{
    SimScratch();
    ~SimScratch();
    SimScratch(const SimScratch &) = delete;
    SimScratch &operator=(const SimScratch &) = delete;

    struct Impl;
    std::unique_ptr<Impl> impl;
};

/**
 * Simulate `region` (preceded by `warmup`, which fills caches and timing
 * state but is excluded from all statistics).
 *
 * @param mispredict_flags one flag per region instruction (from trace
 *        analysis with the same BranchConfig as `params.branch`)
 * @param window_k when > 0, record region commit cycles every window_k
 *        committed region instructions (per-window IPC ground truth)
 * @param scratch optional reusable working set; null = per-call local
 */
SimResult simulateTrace(const UarchParams &params,
                        const std::vector<Instruction> &warmup,
                        const std::vector<Instruction> &region,
                        const std::vector<uint8_t> &mispredict_flags,
                        int window_k = 0, SimScratch *scratch = nullptr);

/**
 * Simulate a prebuilt warmup+region concatenation whose region deps are
 * already rebased (RegionAnalysis::combinedInstrs / combinedFlags): the
 * allocation-free labeling hot path -- no per-call trace rebuild at all.
 */
SimResult simulateCombined(const UarchParams &params,
                           const std::vector<Instruction> &all,
                           const std::vector<uint8_t> &flags,
                           size_t warmup_count, int window_k,
                           SimScratch &scratch);

/**
 * Convenience wrapper: pulls the cached combined trace and flags from the
 * analysis (building them on first use) and runs the fast path.
 */
SimResult simulateRegion(const UarchParams &params, RegionAnalysis &analysis,
                         int window_k = 0, SimScratch *scratch = nullptr);

/**
 * The original implementation, kept verbatim: rebuilds the concatenated
 * trace and every engine container per call. Exists solely as the bitwise
 * oracle for the fast path; new callers want simulateTrace.
 */
SimResult simulateTraceReference(const UarchParams &params,
                                 const std::vector<Instruction> &warmup,
                                 const std::vector<Instruction> &region,
                                 const std::vector<uint8_t>
                                     &mispredict_flags,
                                 int window_k = 0);

} // namespace concorde

#endif // CONCORDE_SIM_O3_CORE_HH
