/**
 * @file
 * Reference cycle-level simulator: a generic parameterized out-of-order
 * core in the style of gem5's O3 CPU (paper Section 3), used as the
 * ground-truth oracle f(x, p) that Concorde learns.
 *
 * Modeled structure:
 *  - Fetch: in-order line fetch along the (known) correct path, limited by
 *    fetch buffers, maximum outstanding I-cache fills, and fetch width;
 *    redirects on mispredicted branches (resolved at execute) and ISB
 *    pipeline drains (resolved at commit).
 *  - Decode / rename: width-limited queues (the rename queue's occupancy
 *    is one of the Section 5.2.6 alternative targets).
 *  - Backend: ROB / load queue / store queue dispatch, per-class issue
 *    widths (ALU, FP, load-store), load and load-store pipes,
 *    dependency-driven wakeup, store-to-load forwarding, and in-order
 *    commit with commit width.
 *  - Memory: TimingMemory (shared L2/LLC, MSHRs, DRAM bandwidth, stride
 *    prefetcher), accessed in issue order -- deliberately richer than the
 *    in-order trace analysis so that Figure 11's discrepancies arise.
 */

#ifndef CONCORDE_SIM_O3_CORE_HH
#define CONCORDE_SIM_O3_CORE_HH

#include <cstdint>
#include <vector>

#include "analysis/trace_analyzer.hh"
#include "trace/instruction.hh"
#include "uarch/params.hh"

namespace concorde
{

/** Ground-truth metrics for one simulated region. */
struct SimResult
{
    uint64_t cycles = 0;            ///< region cycles (warmup excluded)
    uint64_t instructions = 0;      ///< region instructions
    double avgRobOccupancy = 0.0;   ///< mean ROB entries / capacity (%)
    double avgRenameQOccupancy = 0.0; ///< mean rename-queue fill (%)
    double avgLqOccupancy = 0.0;    ///< mean LQ entries / capacity (%)
    uint64_t branchMispredicts = 0;
    /** Sum of actual issued-load latencies (Figure 11 numerator). */
    uint64_t actualLoadLatencySum = 0;
    /** Number of region loads (Figure 11 denominator pairing). */
    uint64_t loadCount = 0;
    /**
     * Region commit cycle at each window boundary (when a window length
     * was requested); yields the ground-truth per-window IPC of Figure 1.
     */
    std::vector<uint64_t> windowCommitCycles;

    double
    cpi() const
    {
        return instructions
            ? static_cast<double>(cycles)
                / static_cast<double>(instructions)
            : 0.0;
    }
    double ipc() const { return cpi() > 0 ? 1.0 / cpi() : 0.0; }
};

/**
 * Simulate `region` (preceded by `warmup`, which fills caches and timing
 * state but is excluded from all statistics).
 *
 * @param mispredict_flags one flag per region instruction (from trace
 *        analysis with the same BranchConfig as `params.branch`)
 * @param window_k when > 0, record region commit cycles every window_k
 *        committed region instructions (per-window IPC ground truth)
 */
SimResult simulateTrace(const UarchParams &params,
                        const std::vector<Instruction> &warmup,
                        const std::vector<Instruction> &region,
                        const std::vector<uint8_t> &mispredict_flags,
                        int window_k = 0);

/** Convenience wrapper: pulls warmup, region, and flags from an analysis. */
SimResult simulateRegion(const UarchParams &params, RegionAnalysis &analysis,
                         int window_k = 0);

} // namespace concorde

#endif // CONCORDE_SIM_O3_CORE_HH
