#include "sim/o3_core.hh"

#include <algorithm>
#include <deque>
#include <optional>
#include <queue>
#include <utility>

#include "common/logging.hh"
#include "memory/timing_memory.hh"

namespace concorde
{

/**
 * Internal simulator plumbing shared by the fast engine and SimScratch.
 * Named (not anonymous) so SimScratch::Impl -- an externally visible type
 * -- may hold these as members without internal-linkage subobjects.
 */
namespace simdetail
{

/** Frontend refill penalty after a branch redirect (cycles). */
constexpr uint64_t kRedirectPenalty = 6;
/** Decode-to-rename pipeline latency. */
constexpr uint64_t kDecodeLat = 1;
/** Capacity of the decode and rename queues. */
constexpr size_t kDecodeQCap = 48;
constexpr size_t kRenameQCap = 32;
/** Store-to-load forwarding latency. */
constexpr uint64_t kForwardLat = 1;
/** Runaway guard: no region should take this many cycles per instruction. */
constexpr uint64_t kMaxCpi = 2000;

constexpr uint64_t kNever = ~0ULL;

/** A run of consecutive instructions sharing one I-cache line. */
struct LineRun
{
    uint32_t begin;
    uint32_t end;       // exclusive
    uint64_t line;
};

/** A fetch buffer holding a requested line run. */
struct ActiveRun
{
    uint32_t runIdx;
    uint64_t ready;
};

/**
 * Fixed-capacity ring buffer over a reused backing vector. Capacity is
 * enforced by the engine's own occupancy guards (queue caps, ROB size,
 * fetch buffers), so push never checks; the backing store only ever
 * grows, and reset() is O(1).
 */
template <typename T>
class RingBuf
{
  public:
    void
    reset(size_t cap)
    {
        if (buf.size() < cap)
            buf.resize(cap);
        head = 0;
        count = 0;
    }

    bool empty() const { return count == 0; }
    size_t size() const { return count; }
    const T &front() const { return buf[head]; }
    const T &back() const { return buf[wrap(head + count - 1)]; }
    void push_back(const T &v) { buf[wrap(head + count)] = v; ++count; }

    void
    pop_front()
    {
        head = wrap(head + 1);
        --count;
    }

    void pop_back() { --count; }

  private:
    size_t
    wrap(size_t i) const
    {
        // Occupancy never exceeds buf.size(), so one conditional subtract
        // replaces a modulo.
        return i >= buf.size() ? i - buf.size() : i;
    }

    std::vector<T> buf;
    size_t head = 0;
    size_t count = 0;
};

/**
 * Min-heap over a reused vector. std::priority_queue is specified in
 * terms of push_heap/pop_heap, so the pop/push order here is identical
 * to std::priority_queue<T, std::vector<T>, std::greater<T>> -- only the
 * backing allocation is reused across runs.
 */
template <typename T>
class MinHeap
{
  public:
    void clear() { v.clear(); }
    bool empty() const { return v.empty(); }
    size_t size() const { return v.size(); }
    const T &top() const { return v.front(); }

    void
    push(const T &x)
    {
        v.push_back(x);
        std::push_heap(v.begin(), v.end(), std::greater<T>());
    }

    void
    pop()
    {
        std::pop_heap(v.begin(), v.end(), std::greater<T>());
        v.pop_back();
    }

  private:
    std::vector<T> v;
};

} // namespace simdetail

/**
 * The fast engine's entire working set: per-instruction arrays, wakeup
 * edges, frontend geometry, rings, heaps, staging buffers for the
 * rebased trace, and the timing memory itself (reset in place between
 * runs). Every container is resized/assigned at run start and reused,
 * so a warm scratch makes a simulation allocation-free.
 */
struct SimScratch::Impl
{
    // Staging for simulateTrace's warmup+region rebase (the cached-trace
    // entry points bypass these entirely).
    std::vector<Instruction> stagedAll;
    std::vector<uint8_t> stagedFlags;

    // Per-instruction dynamic state.
    std::vector<uint64_t> readyCycle;
    std::vector<uint8_t> finished;
    std::vector<uint8_t> committedFlag;
    std::vector<int8_t> depCount;
    std::vector<int32_t> waiterHead;
    std::vector<int32_t> edgeWaiter;
    std::vector<int32_t> edgeNext;
    std::vector<uint8_t> dispatched;
    std::vector<uint64_t> dispatchCycle;

    // Frontend geometry.
    std::vector<simdetail::LineRun> runs;
    std::vector<uint32_t> runOf;
    std::vector<uint32_t> horizonEvents;

    // Queues and heaps.
    simdetail::RingBuf<simdetail::ActiveRun> activeRuns;
    simdetail::RingBuf<std::pair<uint64_t, uint32_t>> decodeQ;
    simdetail::RingBuf<std::pair<uint64_t, uint32_t>> renameQ;
    simdetail::RingBuf<uint32_t> rob;
    simdetail::MinHeap<uint64_t> fillHeap;
    simdetail::MinHeap<uint32_t> readyAlu;
    simdetail::MinHeap<uint32_t> readyFp;
    simdetail::MinHeap<uint32_t> readyLs;
    std::vector<uint32_t> deferred;
    simdetail::MinHeap<std::pair<uint64_t, uint32_t>> events;

    /** Constructed on first run, reset in place on every later run. */
    std::optional<TimingMemory> mem;
};

SimScratch::SimScratch() : impl(std::make_unique<Impl>()) {}
SimScratch::~SimScratch() = default;

namespace
{

using namespace simdetail;

/**
 * The original reference engine, kept verbatim: every container is
 * freshly constructed per call. Bitwise oracle for FastEngine.
 */
struct Engine
{
    const UarchParams &p;
    const std::vector<Instruction> &instrs;   // warmup + region
    const std::vector<uint8_t> &mispredict;   // aligned with instrs
    const size_t warmupCount;

    TimingMemory mem;

    // ---- per-instruction dynamic state ----
    std::vector<uint64_t> readyCycle;   // kNever until finished
    std::vector<uint8_t> finished;
    std::vector<uint8_t> committedFlag;
    std::vector<int8_t> depCount;
    std::vector<uint64_t> issuedAt;

    // Wakeup edges: per producer, an intrusive chain of waiting consumers.
    std::vector<int32_t> waiterHead;    // producer -> first edge (-1)
    std::vector<int32_t> edgeWaiter;    // edge -> consumer index
    std::vector<int32_t> edgeNext;      // edge -> next edge
    int32_t edgeCount = 0;

    // ---- frontend ----
    std::vector<LineRun> runs;
    std::vector<uint32_t> runOf;        // instruction -> run index
    std::vector<uint32_t> horizonEvents; // mispredicted branches and ISBs
    size_t horizonPtr = 0;

    std::deque<ActiveRun> activeRuns;   // fetch buffers in flight
    uint32_t nextRunToRequest = 0;
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>> fillHeap;

    uint32_t deliverPtr = 0;            // next instruction to fetch-deliver
    int64_t blockedBranch = -1;         // mispredicted branch awaiting exec
    uint64_t branchResumeCycle = kNever;
    int64_t blockedIsb = -1;            // ISB awaiting commit

    std::deque<std::pair<uint64_t, uint32_t>> decodeQ; // (readyAt, idx)
    std::deque<std::pair<uint64_t, uint32_t>> renameQ;

    // ---- backend ----
    std::deque<uint32_t> rob;           // dispatched, not committed
    uint32_t lqOcc = 0;
    uint32_t sqOcc = 0;

    // Age-ordered ready queues per issue class.
    using ReadyQ = std::priority_queue<uint32_t, std::vector<uint32_t>,
                                       std::greater<uint32_t>>;
    ReadyQ readyAlu, readyFp, readyLs;

    std::vector<uint8_t> dispatched;
    std::vector<uint64_t> dispatchCycle;

    // Completion events (cycle, instruction).
    using Event = std::pair<uint64_t, uint32_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events;

    uint32_t committed = 0;
    uint64_t cycle = 0;
    int windowK = 0;

    // ---- statistics ----
    bool inRegion = false;              // all warmup committed
    uint64_t regionStartCycle = 0;
    uint64_t occSamples = 0;
    uint64_t robOccSum = 0;
    uint64_t renameOccSum = 0;
    uint64_t lqOccSum = 0;
    SimResult result;

    Engine(const UarchParams &params,
           const std::vector<Instruction> &all,
           const std::vector<uint8_t> &flags, size_t warmup_count)
        : p(params), instrs(all), mispredict(flags),
          warmupCount(warmup_count), mem(params.memory)
    {
        const size_t n = instrs.size();
        readyCycle.assign(n, kNever);
        finished.assign(n, 0);
        committedFlag.assign(n, 0);
        depCount.assign(n, 0);
        issuedAt.assign(n, 0);
        waiterHead.assign(n, -1);
        edgeWaiter.resize((kMaxSrcDeps + 1) * n);
        edgeNext.resize((kMaxSrcDeps + 1) * n);
        dispatched.assign(n, 0);
        dispatchCycle.assign(n, 0);
        buildRuns();
        buildHorizon();
        if (warmupCount == 0) {
            inRegion = true;
            regionStartCycle = 0;
        }
    }

    void
    buildRuns()
    {
        runOf.resize(instrs.size());
        uint64_t cur_line = ~0ULL;
        for (uint32_t i = 0; i < instrs.size(); ++i) {
            const uint64_t line = instrs[i].instLine();
            if (line != cur_line) {
                runs.push_back({i, i + 1, line});
                cur_line = line;
            } else {
                runs.back().end = i + 1;
            }
            runOf[i] = static_cast<uint32_t>(runs.size() - 1);
        }
    }

    void
    buildHorizon()
    {
        for (uint32_t i = 0; i < instrs.size(); ++i) {
            if (mispredict[i] || instrs[i].isIsb())
                horizonEvents.push_back(i);
        }
    }

    /** Highest instruction index fetch may request lines for (inclusive). */
    uint32_t
    fetchHorizon()
    {
        while (horizonPtr < horizonEvents.size()
               && horizonEvents[horizonPtr] < deliverPtr) {
            ++horizonPtr;
        }
        // Unresolved control event: cannot fetch past it. The event's own
        // run is allowed.
        if (horizonPtr < horizonEvents.size()) {
            const uint32_t ev = horizonEvents[horizonPtr];
            if (ev < instrs.size() && !resolvedControl(ev))
                return ev;
        }
        return static_cast<uint32_t>(instrs.size() - 1);
    }

    bool
    resolvedControl(uint32_t i)
    {
        if (instrs[i].isIsb())
            return committedFlag[i];
        return finished[i];
    }

    size_t
    outstandingFills()
    {
        while (!fillHeap.empty() && fillHeap.top() <= cycle)
            fillHeap.pop();
        return fillHeap.size();
    }

    // ------------------------------------------------------------------
    // Pipeline stages (called newest-to-oldest each cycle).
    // ------------------------------------------------------------------

    bool
    commitStage()
    {
        bool any = false;
        for (int w = 0; w < p.commitWidth && !rob.empty(); ++w) {
            const uint32_t head = rob.front();
            if (!finished[head] || readyCycle[head] > cycle)
                break;
            rob.pop_front();
            committedFlag[head] = 1;
            ++committed;
            any = true;
            const Instruction &instr = instrs[head];
            if (instr.isLoad()) {
                --lqOcc;
            } else if (instr.isStore()) {
                --sqOcc;
                mem.store(instr.pc, instr.memAddr, cycle);
            }
            if (!inRegion && committed == warmupCount) {
                inRegion = true;
                regionStartCycle = cycle;
            }
            if (windowK > 0 && committed > warmupCount
                && (committed - warmupCount)
                    % static_cast<uint32_t>(windowK) == 0) {
                result.windowCommitCycles.push_back(
                    cycle - regionStartCycle);
            }
        }
        return any;
    }

    bool
    writebackStage()
    {
        bool any = false;
        while (!events.empty() && events.top().first <= cycle) {
            const uint32_t i = events.top().second;
            events.pop();
            finished[i] = 1;
            any = true;
            // Wake waiters.
            for (int32_t e = waiterHead[i]; e >= 0; e = edgeNext[e]) {
                const int32_t w = edgeWaiter[e];
                if (--depCount[w] == 0 && dispatched[w])
                    pushReady(static_cast<uint32_t>(w));
            }
            waiterHead[i] = -1;
        }
        return any;
    }

    void
    pushReady(uint32_t i)
    {
        switch (issueClassOf(instrs[i].type)) {
          case IssueClass::Alu: readyAlu.push(i); break;
          case IssueClass::Fp: readyFp.push(i); break;
          case IssueClass::LoadStore: readyLs.push(i); break;
        }
    }

    void
    execute(uint32_t i)
    {
        const Instruction &instr = instrs[i];
        issuedAt[i] = cycle;
        uint64_t done;
        if (instr.isLoad()) {
            if (instr.memDep >= 0 && !committedFlag[instr.memDep]) {
                // Store-to-load forwarding from the store buffer.
                done = cycle + kForwardLat;
            } else {
                done = mem.load(instr.pc, instr.memAddr, cycle).readyCycle;
            }
            if (inRegion) {
                result.actualLoadLatencySum += done - cycle;
                ++result.loadCount;
            }
        } else {
            done = cycle + static_cast<uint64_t>(fixedLatency(instr.type));
        }
        readyCycle[i] = done;
        if (done <= cycle) {
            finished[i] = 1;
        } else {
            events.emplace(done, i);
        }
    }

    bool
    issueStage()
    {
        bool any = false;
        auto drain = [&](ReadyQ &q, int width) {
            int issued = 0;
            while (issued < width && !q.empty()) {
                const uint32_t i = q.top();
                if (dispatchCycle[i] >= cycle)
                    break;      // dispatched this cycle; issue next cycle
                q.pop();
                execute(i);
                ++issued;
                any = true;
            }
            return issued;
        };

        drain(readyAlu, p.aluWidth);
        drain(readyFp, p.fpWidth);

        // Load-store class: issue width plus pipe constraints. Stores may
        // only use load-store pipes; loads prefer load pipes.
        {
            int issued = 0;
            int ls_pipes_used = 0;
            int load_pipes_used = 0;
            std::vector<uint32_t> deferred;
            while (issued < p.lsWidth && !readyLs.empty()) {
                const uint32_t i = readyLs.top();
                if (dispatchCycle[i] >= cycle)
                    break;
                const bool is_store = instrs[i].isStore();
                bool can_issue;
                if (is_store) {
                    can_issue = ls_pipes_used < p.lsPipes;
                } else {
                    can_issue = load_pipes_used < p.loadPipes
                        || ls_pipes_used < p.lsPipes;
                }
                if (!can_issue) {
                    // Pipe-starved; skip this op and look for one of the
                    // other kind (out-of-order selection).
                    deferred.push_back(i);
                    readyLs.pop();
                    continue;
                }
                readyLs.pop();
                if (is_store) {
                    ++ls_pipes_used;
                } else if (load_pipes_used < p.loadPipes) {
                    ++load_pipes_used;
                } else {
                    ++ls_pipes_used;
                }
                execute(i);
                ++issued;
                any = true;
            }
            for (uint32_t i : deferred)
                readyLs.push(i);
        }
        return any;
    }

    bool
    renameStage()
    {
        bool any = false;
        for (int w = 0; w < p.renameWidth && !renameQ.empty(); ++w) {
            const auto [ready_at, i] = renameQ.front();
            if (ready_at > cycle)
                break;
            const Instruction &instr = instrs[i];
            if (rob.size() >= static_cast<size_t>(p.robSize))
                break;
            if (instr.isLoad() && lqOcc >= static_cast<uint32_t>(p.lqSize))
                break;
            if (instr.isStore() && sqOcc >= static_cast<uint32_t>(p.sqSize))
                break;
            renameQ.pop_front();
            rob.push_back(i);
            if (instr.isLoad())
                ++lqOcc;
            if (instr.isStore())
                ++sqOcc;
            dispatched[i] = 1;
            dispatchCycle[i] = cycle;

            // Register dependency edges for unfinished producers.
            int deps = 0;
            auto add_dep = [&](int32_t d) {
                if (d >= 0 && !finished[d]) {
                    edgeWaiter[edgeCount] = static_cast<int32_t>(i);
                    edgeNext[edgeCount] = waiterHead[d];
                    waiterHead[d] = edgeCount;
                    ++edgeCount;
                    ++deps;
                }
            };
            for (int s = 0; s < kMaxSrcDeps; ++s)
                add_dep(instr.srcDeps[s]);
            if (instr.memDep >= 0)
                add_dep(instr.memDep);
            depCount[i] = static_cast<int8_t>(deps);
            if (deps == 0)
                pushReady(i);
            any = true;
        }
        return any;
    }

    bool
    decodeStage()
    {
        bool any = false;
        for (int w = 0; w < p.decodeWidth && !decodeQ.empty(); ++w) {
            const auto [fetched_at, i] = decodeQ.front();
            if (fetched_at > cycle || renameQ.size() >= kRenameQCap)
                break;
            decodeQ.pop_front();
            renameQ.emplace_back(cycle + kDecodeLat, i);
            any = true;
        }
        return any;
    }

    bool
    fetchStage()
    {
        bool any = false;

        // Resolve frontend blocks.
        if (blockedBranch >= 0) {
            if (branchResumeCycle == kNever && finished[blockedBranch]) {
                branchResumeCycle =
                    std::max(readyCycle[blockedBranch] + kRedirectPenalty,
                             cycle);
            }
            if (branchResumeCycle != kNever && cycle >= branchResumeCycle) {
                blockedBranch = -1;
                branchResumeCycle = kNever;
            }
        }
        if (blockedIsb >= 0 && committedFlag[blockedIsb])
            blockedIsb = -1;
        const bool blocked = blockedBranch >= 0 || blockedIsb >= 0;

        // Request line fetches ahead of delivery.
        if (!blocked) {
            const uint32_t horizon = fetchHorizon();
            while (nextRunToRequest < runs.size()
                   && runs[nextRunToRequest].begin <= horizon
                   && activeRuns.size()
                      < static_cast<size_t>(p.fetchBuffers)) {
                const LineRun &run = runs[nextRunToRequest];
                if (mem.instLineNeedsFill(run.line, cycle)
                    && outstandingFills()
                       >= static_cast<size_t>(p.maxIcacheFills)) {
                    break;
                }
                const MemResponse resp = mem.fetchLine(run.line, cycle);
                if (resp.isFill)
                    fillHeap.push(resp.readyCycle);
                activeRuns.push_back({nextRunToRequest, resp.readyCycle});
                ++nextRunToRequest;
                any = true;
            }
        }

        // Deliver instructions in order.
        if (!blocked) {
            for (int w = 0; w < p.fetchWidth; ++w) {
                if (deliverPtr >= instrs.size()
                    || decodeQ.size() >= kDecodeQCap) {
                    break;
                }
                if (activeRuns.empty()
                    || runs[activeRuns.front().runIdx].begin > deliverPtr) {
                    break;  // line not requested yet
                }
                const ActiveRun &front = activeRuns.front();
                panic_if(runOf[deliverPtr] != front.runIdx,
                         "fetch run desync");
                if (front.ready > cycle)
                    break;  // line still in flight

                const uint32_t i = deliverPtr;
                decodeQ.emplace_back(cycle + 1, i);
                ++deliverPtr;
                any = true;
                if (deliverPtr >= runs[front.runIdx].end)
                    activeRuns.pop_front();

                if (mispredict[i]) {
                    if (i >= warmupCount)
                        ++result.branchMispredicts;
                    blockedBranch = i;
                    branchResumeCycle = kNever;
                    squashFetchAhead();
                    break;
                }
                if (instrs[i].isIsb()) {
                    blockedIsb = i;
                    squashFetchAhead();
                    break;
                }
            }
        }
        return any;
    }

    /**
     * Drop fetched-ahead lines past the current delivery point (redirect /
     * drain): wholly undelivered runs give their fetch buffers back and
     * will be re-requested after the frontend resumes.
     */
    void
    squashFetchAhead()
    {
        while (!activeRuns.empty()
               && runs[activeRuns.back().runIdx].begin >= deliverPtr) {
            activeRuns.pop_back();
        }
        if (!activeRuns.empty())
            nextRunToRequest = activeRuns.back().runIdx + 1;
        else if (deliverPtr < instrs.size())
            nextRunToRequest = runOf[deliverPtr];
    }

    /** Earliest future cycle at which anything can happen. */
    uint64_t
    nextInterestingCycle()
    {
        uint64_t next = kNever;
        if (!events.empty())
            next = std::min(next, events.top().first);
        if (!activeRuns.empty())
            next = std::min(next, activeRuns.front().ready);
        if (!fillHeap.empty())
            next = std::min(next, fillHeap.top());
        if (blockedBranch >= 0 && branchResumeCycle != kNever)
            next = std::min(next, branchResumeCycle);
        if (!renameQ.empty())
            next = std::min(next, renameQ.front().first);
        if (!decodeQ.empty())
            next = std::min(next, decodeQ.front().first);
        return next == kNever ? cycle + 1 : std::max(next, cycle + 1);
    }

    SimResult
    run()
    {
        const uint64_t limit =
            static_cast<uint64_t>(instrs.size()) * kMaxCpi + 100000;
        while (committed < instrs.size()) {
            panic_if(cycle > limit, "simulator runaway at cycle %llu "
                     "(%u/%zu committed)",
                     static_cast<unsigned long long>(cycle), committed,
                     instrs.size());
            bool any = false;
            any |= commitStage();
            any |= writebackStage();
            any |= issueStage();
            any |= renameStage();
            any |= decodeStage();
            any |= fetchStage();

            if (inRegion) {
                ++occSamples;
                robOccSum += rob.size();
                renameOccSum += renameQ.size();
                lqOccSum += lqOcc;
            }

            if (any) {
                ++cycle;
            } else {
                cycle = nextInterestingCycle();
            }
        }

        result.instructions = instrs.size() - warmupCount;
        result.cycles = cycle - regionStartCycle;
        if (occSamples > 0) {
            const double samples = static_cast<double>(occSamples);
            result.avgRobOccupancy =
                100.0 * static_cast<double>(robOccSum) / samples / p.robSize;
            result.avgRenameQOccupancy =
                100.0 * static_cast<double>(renameOccSum) / samples
                / static_cast<double>(kRenameQCap);
            result.avgLqOccupancy =
                100.0 * static_cast<double>(lqOccSum) / samples / p.lqSize;
        }
        return result;
    }
};

/**
 * The scratch-backed engine: stage-for-stage the same state machine as
 * Engine above (same iteration order, same comparators, same tie-breaks,
 * so results are bitwise-identical), with every container replaced by a
 * reused member of SimScratch::Impl -- rings instead of deques, reused
 * heap vectors instead of priority_queues, and an in-place TimingMemory
 * reset instead of reconstruction. The write-only issuedAt array of the
 * reference is dropped (unobservable).
 */
struct FastEngine
{
    const UarchParams &p;
    const std::vector<Instruction> &instrs;   // warmup + region
    const std::vector<uint8_t> &mispredict;   // aligned with instrs
    const size_t warmupCount;

    TimingMemory &mem;

    // ---- per-instruction dynamic state (scratch-backed) ----
    std::vector<uint64_t> &readyCycle;  // kNever until finished
    std::vector<uint8_t> &finished;
    std::vector<uint8_t> &committedFlag;
    std::vector<int8_t> &depCount;

    // Wakeup edges: per producer, an intrusive chain of waiting consumers.
    std::vector<int32_t> &waiterHead;   // producer -> first edge (-1)
    std::vector<int32_t> &edgeWaiter;   // edge -> consumer index
    std::vector<int32_t> &edgeNext;     // edge -> next edge
    int32_t edgeCount = 0;

    // ---- frontend ----
    std::vector<LineRun> &runs;
    std::vector<uint32_t> &runOf;       // instruction -> run index
    std::vector<uint32_t> &horizonEvents; // mispredicted branches and ISBs
    size_t horizonPtr = 0;

    RingBuf<ActiveRun> &activeRuns;     // fetch buffers in flight
    uint32_t nextRunToRequest = 0;
    MinHeap<uint64_t> &fillHeap;

    uint32_t deliverPtr = 0;            // next instruction to fetch-deliver
    int64_t blockedBranch = -1;         // mispredicted branch awaiting exec
    uint64_t branchResumeCycle = kNever;
    int64_t blockedIsb = -1;            // ISB awaiting commit

    RingBuf<std::pair<uint64_t, uint32_t>> &decodeQ; // (readyAt, idx)
    RingBuf<std::pair<uint64_t, uint32_t>> &renameQ;

    // ---- backend ----
    RingBuf<uint32_t> &rob;             // dispatched, not committed
    uint32_t lqOcc = 0;
    uint32_t sqOcc = 0;

    // Age-ordered ready queues per issue class.
    MinHeap<uint32_t> &readyAlu;
    MinHeap<uint32_t> &readyFp;
    MinHeap<uint32_t> &readyLs;

    std::vector<uint8_t> &dispatched;
    std::vector<uint64_t> &dispatchCycle;
    std::vector<uint32_t> &deferred;    // issueStage pipe-starved ops

    // Completion events (cycle, instruction).
    MinHeap<std::pair<uint64_t, uint32_t>> &events;

    uint32_t committed = 0;
    uint64_t cycle = 0;
    int windowK = 0;

    // ---- statistics ----
    bool inRegion = false;              // all warmup committed
    uint64_t regionStartCycle = 0;
    uint64_t occSamples = 0;
    uint64_t robOccSum = 0;
    uint64_t renameOccSum = 0;
    uint64_t lqOccSum = 0;
    SimResult result;

    static TimingMemory &
    ensureMem(SimScratch::Impl &sc, const MemoryConfig &config)
    {
        if (!sc.mem)
            sc.mem.emplace(config);
        else
            sc.mem->reset(config);
        return *sc.mem;
    }

    FastEngine(const UarchParams &params,
               const std::vector<Instruction> &all,
               const std::vector<uint8_t> &flags, size_t warmup_count,
               SimScratch::Impl &sc)
        : p(params), instrs(all), mispredict(flags),
          warmupCount(warmup_count), mem(ensureMem(sc, params.memory)),
          readyCycle(sc.readyCycle), finished(sc.finished),
          committedFlag(sc.committedFlag), depCount(sc.depCount),
          waiterHead(sc.waiterHead), edgeWaiter(sc.edgeWaiter),
          edgeNext(sc.edgeNext), runs(sc.runs), runOf(sc.runOf),
          horizonEvents(sc.horizonEvents), activeRuns(sc.activeRuns),
          fillHeap(sc.fillHeap), decodeQ(sc.decodeQ), renameQ(sc.renameQ),
          rob(sc.rob), readyAlu(sc.readyAlu), readyFp(sc.readyFp),
          readyLs(sc.readyLs), dispatched(sc.dispatched),
          dispatchCycle(sc.dispatchCycle), deferred(sc.deferred),
          events(sc.events)
    {
        const size_t n = instrs.size();
        readyCycle.assign(n, kNever);
        finished.assign(n, 0);
        committedFlag.assign(n, 0);
        depCount.assign(n, 0);
        waiterHead.assign(n, -1);
        edgeWaiter.resize((kMaxSrcDeps + 1) * n);
        edgeNext.resize((kMaxSrcDeps + 1) * n);
        dispatched.assign(n, 0);
        dispatchCycle.assign(n, 0);
        buildRuns();
        buildHorizon();
        activeRuns.reset(static_cast<size_t>(p.fetchBuffers));
        decodeQ.reset(kDecodeQCap);
        renameQ.reset(kRenameQCap);
        rob.reset(static_cast<size_t>(p.robSize));
        fillHeap.clear();
        readyAlu.clear();
        readyFp.clear();
        readyLs.clear();
        deferred.clear();
        events.clear();
        if (warmupCount == 0) {
            inRegion = true;
            regionStartCycle = 0;
        }
    }

    void
    buildRuns()
    {
        runs.clear();
        runOf.resize(instrs.size());
        uint64_t cur_line = ~0ULL;
        for (uint32_t i = 0; i < instrs.size(); ++i) {
            const uint64_t line = instrs[i].instLine();
            if (line != cur_line) {
                runs.push_back({i, i + 1, line});
                cur_line = line;
            } else {
                runs.back().end = i + 1;
            }
            runOf[i] = static_cast<uint32_t>(runs.size() - 1);
        }
    }

    void
    buildHorizon()
    {
        horizonEvents.clear();
        for (uint32_t i = 0; i < instrs.size(); ++i) {
            if (mispredict[i] || instrs[i].isIsb())
                horizonEvents.push_back(i);
        }
    }

    /** Highest instruction index fetch may request lines for (inclusive). */
    uint32_t
    fetchHorizon()
    {
        while (horizonPtr < horizonEvents.size()
               && horizonEvents[horizonPtr] < deliverPtr) {
            ++horizonPtr;
        }
        // Unresolved control event: cannot fetch past it. The event's own
        // run is allowed.
        if (horizonPtr < horizonEvents.size()) {
            const uint32_t ev = horizonEvents[horizonPtr];
            if (ev < instrs.size() && !resolvedControl(ev))
                return ev;
        }
        return static_cast<uint32_t>(instrs.size() - 1);
    }

    bool
    resolvedControl(uint32_t i)
    {
        if (instrs[i].isIsb())
            return committedFlag[i];
        return finished[i];
    }

    size_t
    outstandingFills()
    {
        while (!fillHeap.empty() && fillHeap.top() <= cycle)
            fillHeap.pop();
        return fillHeap.size();
    }

    // ------------------------------------------------------------------
    // Pipeline stages (called newest-to-oldest each cycle).
    // ------------------------------------------------------------------

    bool
    commitStage()
    {
        bool any = false;
        for (int w = 0; w < p.commitWidth && !rob.empty(); ++w) {
            const uint32_t head = rob.front();
            if (!finished[head] || readyCycle[head] > cycle)
                break;
            rob.pop_front();
            committedFlag[head] = 1;
            ++committed;
            any = true;
            const Instruction &instr = instrs[head];
            if (instr.isLoad()) {
                --lqOcc;
            } else if (instr.isStore()) {
                --sqOcc;
                mem.store(instr.pc, instr.memAddr, cycle);
            }
            if (!inRegion && committed == warmupCount) {
                inRegion = true;
                regionStartCycle = cycle;
            }
            if (windowK > 0 && committed > warmupCount
                && (committed - warmupCount)
                    % static_cast<uint32_t>(windowK) == 0) {
                result.windowCommitCycles.push_back(
                    cycle - regionStartCycle);
            }
        }
        return any;
    }

    bool
    writebackStage()
    {
        bool any = false;
        while (!events.empty() && events.top().first <= cycle) {
            const uint32_t i = events.top().second;
            events.pop();
            finished[i] = 1;
            any = true;
            // Wake waiters.
            for (int32_t e = waiterHead[i]; e >= 0; e = edgeNext[e]) {
                const int32_t w = edgeWaiter[e];
                if (--depCount[w] == 0 && dispatched[w])
                    pushReady(static_cast<uint32_t>(w));
            }
            waiterHead[i] = -1;
        }
        return any;
    }

    void
    pushReady(uint32_t i)
    {
        switch (issueClassOf(instrs[i].type)) {
          case IssueClass::Alu: readyAlu.push(i); break;
          case IssueClass::Fp: readyFp.push(i); break;
          case IssueClass::LoadStore: readyLs.push(i); break;
        }
    }

    void
    execute(uint32_t i)
    {
        const Instruction &instr = instrs[i];
        uint64_t done;
        if (instr.isLoad()) {
            if (instr.memDep >= 0 && !committedFlag[instr.memDep]) {
                // Store-to-load forwarding from the store buffer.
                done = cycle + kForwardLat;
            } else {
                done = mem.load(instr.pc, instr.memAddr, cycle).readyCycle;
            }
            if (inRegion) {
                result.actualLoadLatencySum += done - cycle;
                ++result.loadCount;
            }
        } else {
            done = cycle + static_cast<uint64_t>(fixedLatency(instr.type));
        }
        readyCycle[i] = done;
        if (done <= cycle) {
            finished[i] = 1;
        } else {
            events.push({done, i});
        }
    }

    bool
    issueStage()
    {
        bool any = false;
        auto drain = [&](MinHeap<uint32_t> &q, int width) {
            int issued = 0;
            while (issued < width && !q.empty()) {
                const uint32_t i = q.top();
                if (dispatchCycle[i] >= cycle)
                    break;      // dispatched this cycle; issue next cycle
                q.pop();
                execute(i);
                ++issued;
                any = true;
            }
            return issued;
        };

        drain(readyAlu, p.aluWidth);
        drain(readyFp, p.fpWidth);

        // Load-store class: issue width plus pipe constraints. Stores may
        // only use load-store pipes; loads prefer load pipes.
        {
            int issued = 0;
            int ls_pipes_used = 0;
            int load_pipes_used = 0;
            deferred.clear();
            while (issued < p.lsWidth && !readyLs.empty()) {
                const uint32_t i = readyLs.top();
                if (dispatchCycle[i] >= cycle)
                    break;
                const bool is_store = instrs[i].isStore();
                bool can_issue;
                if (is_store) {
                    can_issue = ls_pipes_used < p.lsPipes;
                } else {
                    can_issue = load_pipes_used < p.loadPipes
                        || ls_pipes_used < p.lsPipes;
                }
                if (!can_issue) {
                    // Pipe-starved; skip this op and look for one of the
                    // other kind (out-of-order selection).
                    deferred.push_back(i);
                    readyLs.pop();
                    continue;
                }
                readyLs.pop();
                if (is_store) {
                    ++ls_pipes_used;
                } else if (load_pipes_used < p.loadPipes) {
                    ++load_pipes_used;
                } else {
                    ++ls_pipes_used;
                }
                execute(i);
                ++issued;
                any = true;
            }
            for (uint32_t i : deferred)
                readyLs.push(i);
        }
        return any;
    }

    bool
    renameStage()
    {
        bool any = false;
        for (int w = 0; w < p.renameWidth && !renameQ.empty(); ++w) {
            const auto [ready_at, i] = renameQ.front();
            if (ready_at > cycle)
                break;
            const Instruction &instr = instrs[i];
            if (rob.size() >= static_cast<size_t>(p.robSize))
                break;
            if (instr.isLoad() && lqOcc >= static_cast<uint32_t>(p.lqSize))
                break;
            if (instr.isStore() && sqOcc >= static_cast<uint32_t>(p.sqSize))
                break;
            renameQ.pop_front();
            rob.push_back(i);
            if (instr.isLoad())
                ++lqOcc;
            if (instr.isStore())
                ++sqOcc;
            dispatched[i] = 1;
            dispatchCycle[i] = cycle;

            // Register dependency edges for unfinished producers.
            int deps = 0;
            auto add_dep = [&](int32_t d) {
                if (d >= 0 && !finished[d]) {
                    edgeWaiter[edgeCount] = static_cast<int32_t>(i);
                    edgeNext[edgeCount] = waiterHead[d];
                    waiterHead[d] = edgeCount;
                    ++edgeCount;
                    ++deps;
                }
            };
            for (int s = 0; s < kMaxSrcDeps; ++s)
                add_dep(instr.srcDeps[s]);
            if (instr.memDep >= 0)
                add_dep(instr.memDep);
            depCount[i] = static_cast<int8_t>(deps);
            if (deps == 0)
                pushReady(i);
            any = true;
        }
        return any;
    }

    bool
    decodeStage()
    {
        bool any = false;
        for (int w = 0; w < p.decodeWidth && !decodeQ.empty(); ++w) {
            const auto [fetched_at, i] = decodeQ.front();
            if (fetched_at > cycle || renameQ.size() >= kRenameQCap)
                break;
            decodeQ.pop_front();
            renameQ.push_back({cycle + kDecodeLat, i});
            any = true;
        }
        return any;
    }

    bool
    fetchStage()
    {
        bool any = false;

        // Resolve frontend blocks.
        if (blockedBranch >= 0) {
            if (branchResumeCycle == kNever && finished[blockedBranch]) {
                branchResumeCycle =
                    std::max(readyCycle[blockedBranch] + kRedirectPenalty,
                             cycle);
            }
            if (branchResumeCycle != kNever && cycle >= branchResumeCycle) {
                blockedBranch = -1;
                branchResumeCycle = kNever;
            }
        }
        if (blockedIsb >= 0 && committedFlag[blockedIsb])
            blockedIsb = -1;
        const bool blocked = blockedBranch >= 0 || blockedIsb >= 0;

        // Request line fetches ahead of delivery.
        if (!blocked) {
            const uint32_t horizon = fetchHorizon();
            while (nextRunToRequest < runs.size()
                   && runs[nextRunToRequest].begin <= horizon
                   && activeRuns.size()
                      < static_cast<size_t>(p.fetchBuffers)) {
                const LineRun &run = runs[nextRunToRequest];
                if (mem.instLineNeedsFill(run.line, cycle)
                    && outstandingFills()
                       >= static_cast<size_t>(p.maxIcacheFills)) {
                    break;
                }
                const MemResponse resp = mem.fetchLine(run.line, cycle);
                if (resp.isFill)
                    fillHeap.push(resp.readyCycle);
                activeRuns.push_back({nextRunToRequest, resp.readyCycle});
                ++nextRunToRequest;
                any = true;
            }
        }

        // Deliver instructions in order.
        if (!blocked) {
            for (int w = 0; w < p.fetchWidth; ++w) {
                if (deliverPtr >= instrs.size()
                    || decodeQ.size() >= kDecodeQCap) {
                    break;
                }
                if (activeRuns.empty()
                    || runs[activeRuns.front().runIdx].begin > deliverPtr) {
                    break;  // line not requested yet
                }
                const ActiveRun &front = activeRuns.front();
                panic_if(runOf[deliverPtr] != front.runIdx,
                         "fetch run desync");
                if (front.ready > cycle)
                    break;  // line still in flight

                const uint32_t i = deliverPtr;
                decodeQ.push_back({cycle + 1, i});
                ++deliverPtr;
                any = true;
                if (deliverPtr >= runs[front.runIdx].end)
                    activeRuns.pop_front();

                if (mispredict[i]) {
                    if (i >= warmupCount)
                        ++result.branchMispredicts;
                    blockedBranch = i;
                    branchResumeCycle = kNever;
                    squashFetchAhead();
                    break;
                }
                if (instrs[i].isIsb()) {
                    blockedIsb = i;
                    squashFetchAhead();
                    break;
                }
            }
        }
        return any;
    }

    /**
     * Drop fetched-ahead lines past the current delivery point (redirect /
     * drain): wholly undelivered runs give their fetch buffers back and
     * will be re-requested after the frontend resumes.
     */
    void
    squashFetchAhead()
    {
        while (!activeRuns.empty()
               && runs[activeRuns.back().runIdx].begin >= deliverPtr) {
            activeRuns.pop_back();
        }
        if (!activeRuns.empty())
            nextRunToRequest = activeRuns.back().runIdx + 1;
        else if (deliverPtr < instrs.size())
            nextRunToRequest = runOf[deliverPtr];
    }

    /**
     * Idle advance after a no-op iteration, batched where the reference
     * crawls.
     *
     * The reference nextInterestingCycle() includes queue fronts whose
     * ready cycle is already in the past (an instruction ready to rename
     * behind a full ROB, a fetched line behind a full decode queue, a
     * satisfied fill still sitting in fillHeap), which clamps the advance
     * to cycle+1: a stalled machine re-runs the whole stage ladder once
     * per cycle, each iteration a provable no-op that only samples the
     * frozen occupancies. No stage condition besides those past-ready
     * comparisons depends on the cycle number, so the machine state
     * cannot change before the earliest FUTURE trigger (completion
     * event, line arrival, fill landing, redirect resume, queue-front
     * ready cycle). This jumps there in one step and accumulates the
     * k skipped per-iteration samples in closed form -- the occupancy
     * accumulators are integer sums, so the multiply is exact and the
     * final averages are bitwise-identical to the crawl.
     *
     * When no past-ready front exists, the reference takes a single
     * un-sampled jump to the same future minimum; that case is
     * reproduced verbatim (no synthetic samples).
     */
    uint64_t
    idleAdvance(uint64_t limit)
    {
        // A satisfied fill entry still sitting under fillHeap.top() is a
        // past source too: the reference only pops them lazily inside
        // outstandingFills(), so a stale top keeps clamping its advance.
        // fillHeap must NOT be popped here -- the pops must stay on the
        // shared fetchStage path so both engines' heaps (and therefore
        // their crawl decisions) remain in lockstep. A stale top also
        // hides any future entries beneath it, but those can only act
        // through the fetch-request gate, which is unreachable until one
        // of the tracked triggers fires first (and which pops the stale
        // entries identically in both engines once reached).
        const bool has_past =
            (!renameQ.empty() && renameQ.front().first <= cycle)
            || (!decodeQ.empty() && decodeQ.front().first <= cycle)
            || (!activeRuns.empty() && activeRuns.front().ready <= cycle)
            || (!fillHeap.empty() && fillHeap.top() <= cycle);

        uint64_t next = kNever;
        if (!events.empty())
            next = std::min(next, events.top().first);
        if (!activeRuns.empty() && activeRuns.front().ready > cycle)
            next = std::min(next, activeRuns.front().ready);
        if (!fillHeap.empty() && fillHeap.top() > cycle)
            next = std::min(next, fillHeap.top());
        if (blockedBranch >= 0 && branchResumeCycle != kNever)
            next = std::min(next, branchResumeCycle);
        if (!renameQ.empty() && renameQ.front().first > cycle)
            next = std::min(next, renameQ.front().first);
        if (!decodeQ.empty() && decodeQ.front().first > cycle)
            next = std::min(next, decodeQ.front().first);

        if (!has_past)
            return next == kNever ? cycle + 1 : std::max(next, cycle + 1);

        // Crawl batching. Clamp to limit+1 so the runaway guard fires at
        // the same cycle the reference's one-per-cycle crawl reaches it.
        const uint64_t target =
            std::max(std::min(next, limit + 1), cycle + 1);
        if (inRegion) {
            const uint64_t k = target - cycle - 1;
            occSamples += k;
            robOccSum += k * rob.size();
            renameOccSum += k * renameQ.size();
            lqOccSum += k * lqOcc;
        }
        return target;
    }

    SimResult
    run()
    {
        const uint64_t limit =
            static_cast<uint64_t>(instrs.size()) * kMaxCpi + 100000;
        while (committed < instrs.size()) {
            panic_if(cycle > limit, "simulator runaway at cycle %llu "
                     "(%u/%zu committed)",
                     static_cast<unsigned long long>(cycle), committed,
                     instrs.size());
            bool any = false;
            any |= commitStage();
            any |= writebackStage();
            any |= issueStage();
            any |= renameStage();
            any |= decodeStage();
            any |= fetchStage();

            if (inRegion) {
                ++occSamples;
                robOccSum += rob.size();
                renameOccSum += renameQ.size();
                lqOccSum += lqOcc;
            }

            if (any) {
                ++cycle;
            } else {
                cycle = idleAdvance(limit);
            }
        }

        result.instructions = instrs.size() - warmupCount;
        result.cycles = cycle - regionStartCycle;
        if (occSamples > 0) {
            const double samples = static_cast<double>(occSamples);
            result.avgRobOccupancy =
                100.0 * static_cast<double>(robOccSum) / samples / p.robSize;
            result.avgRenameQOccupancy =
                100.0 * static_cast<double>(renameOccSum) / samples
                / static_cast<double>(kRenameQCap);
            result.avgLqOccupancy =
                100.0 * static_cast<double>(lqOccSum) / samples / p.lqSize;
        }
        return result;
    }
};

} // anonymous namespace

SimResult
simulateCombined(const UarchParams &params,
                 const std::vector<Instruction> &all,
                 const std::vector<uint8_t> &flags, size_t warmup_count,
                 int window_k, SimScratch &scratch)
{
    panic_if(flags.size() != all.size(),
             "flags (%zu) != combined trace size (%zu)",
             flags.size(), all.size());
    panic_if(warmup_count > all.size(),
             "warmup count (%zu) > combined trace size (%zu)",
             warmup_count, all.size());
    FastEngine engine(params, all, flags, warmup_count, *scratch.impl);
    engine.windowK = window_k;
    return engine.run();
}

SimResult
simulateTrace(const UarchParams &params,
              const std::vector<Instruction> &warmup,
              const std::vector<Instruction> &region,
              const std::vector<uint8_t> &mispredict_flags, int window_k,
              SimScratch *scratch)
{
    panic_if(mispredict_flags.size() != region.size(),
             "mispredict flags (%zu) != region size (%zu)",
             mispredict_flags.size(), region.size());
    if (!scratch) {
        SimScratch local;
        return simulateTrace(params, warmup, region, mispredict_flags,
                             window_k, &local);
    }

    // Concatenate warmup + region with zero flags for warmup, reusing the
    // scratch staging buffers (warmup only exists to fill timing state).
    SimScratch::Impl &sc = *scratch->impl;
    sc.stagedAll.clear();
    sc.stagedAll.reserve(warmup.size() + region.size());
    sc.stagedAll.insert(sc.stagedAll.end(), warmup.begin(), warmup.end());
    const int32_t offset = static_cast<int32_t>(warmup.size());
    for (Instruction instr : region) {
        for (int d = 0; d < kMaxSrcDeps; ++d) {
            if (instr.srcDeps[d] >= 0)
                instr.srcDeps[d] += offset;
        }
        if (instr.memDep >= 0)
            instr.memDep += offset;
        sc.stagedAll.push_back(instr);
    }
    sc.stagedFlags.assign(sc.stagedAll.size(), 0);
    std::copy(mispredict_flags.begin(), mispredict_flags.end(),
              sc.stagedFlags.begin() + offset);

    return simulateCombined(params, sc.stagedAll, sc.stagedFlags,
                            warmup.size(), window_k, *scratch);
}

SimResult
simulateRegion(const UarchParams &params, RegionAnalysis &analysis,
               int window_k, SimScratch *scratch)
{
    // The combined trace and flags layout are cached on the analysis, so
    // every design point over a region shares one rebased concatenation.
    const std::vector<Instruction> &all = analysis.combinedInstrs();
    const std::vector<uint8_t> &flags =
        analysis.combinedFlags(params.branch);
    if (scratch) {
        return simulateCombined(params, all, flags, analysis.warmupSize(),
                                window_k, *scratch);
    }
    SimScratch local;
    return simulateCombined(params, all, flags, analysis.warmupSize(),
                            window_k, local);
}

SimResult
simulateTraceReference(const UarchParams &params,
                       const std::vector<Instruction> &warmup,
                       const std::vector<Instruction> &region,
                       const std::vector<uint8_t> &mispredict_flags,
                       int window_k)
{
    panic_if(mispredict_flags.size() != region.size(),
             "mispredict flags (%zu) != region size (%zu)",
             mispredict_flags.size(), region.size());

    // Concatenate warmup + region with zero flags for warmup: warmup only
    // exists to fill caches and timing state.
    std::vector<Instruction> all;
    all.reserve(warmup.size() + region.size());
    all.insert(all.end(), warmup.begin(), warmup.end());
    const int32_t offset = static_cast<int32_t>(warmup.size());
    for (Instruction instr : region) {
        for (int d = 0; d < kMaxSrcDeps; ++d) {
            if (instr.srcDeps[d] >= 0)
                instr.srcDeps[d] += offset;
        }
        if (instr.memDep >= 0)
            instr.memDep += offset;
        all.push_back(instr);
    }
    std::vector<uint8_t> flags(all.size(), 0);
    std::copy(mispredict_flags.begin(), mispredict_flags.end(),
              flags.begin() + offset);

    Engine engine(params, all, flags, warmup.size());
    engine.windowK = window_k;
    return engine.run();
}

} // namespace concorde
