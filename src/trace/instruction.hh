/**
 * @file
 * The per-instruction trace record consumed by trace analysis, the
 * analytical models, and the reference cycle-level simulator.
 *
 * This is the repo's analogue of a post-processed DynamoRIO drmemtrace
 * record (paper Section 3.1): program counter, effective address, register
 * and memory dependencies, instruction class, and branch metadata.
 */

#ifndef CONCORDE_TRACE_INSTRUCTION_HH
#define CONCORDE_TRACE_INSTRUCTION_HH

#include <cstdint>

namespace concorde
{

/** Coarse opcode classes; enough to drive latency and issue-port modeling. */
enum class InstrType : uint8_t
{
    IntAlu = 0,
    IntMul,
    IntDiv,
    FpAlu,
    FpDiv,
    Load,
    Store,
    Branch,
    Isb,        ///< instruction synchronization barrier (pipeline drain)
    NumTypes,
};

/** Branch categories from Section 3.1. */
enum class BranchKind : uint8_t
{
    None = 0,
    DirectUncond,
    DirectCond,
    Indirect,
};

/** Issue-port class: which issue-width / pipe parameters constrain a type. */
enum class IssueClass : uint8_t
{
    Alu = 0,    ///< integer ALU + branches + barriers
    Fp,
    LoadStore,
};

/** Maximum register source dependencies tracked per instruction. */
constexpr int kMaxSrcDeps = 2;

/**
 * One dynamic instruction. Dependency fields hold absolute indices into the
 * enclosing region's instruction vector (-1 when absent); region generation
 * guarantees dep < own index.
 */
struct Instruction
{
    uint64_t pc = 0;                ///< byte address (4-byte instructions)
    uint64_t memAddr = 0;           ///< effective address for Load/Store
    int32_t srcDeps[kMaxSrcDeps] = {-1, -1};
    int32_t memDep = -1;            ///< producing Store for this Load, if any
    InstrType type = InstrType::IntAlu;
    BranchKind branchKind = BranchKind::None;
    bool taken = false;             ///< branch outcome
    uint16_t targetId = 0;          ///< indirect-branch target selector

    bool isLoad() const { return type == InstrType::Load; }
    bool isStore() const { return type == InstrType::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return type == InstrType::Branch; }
    bool isIsb() const { return type == InstrType::Isb; }

    /** Data-cache line index for memory instructions. */
    uint64_t dataLine() const { return memAddr >> 6; }
    /** Instruction-cache line index. */
    uint64_t instLine() const { return pc >> 6; }
};

/**
 * Fixed execution latency (cycles) for non-load types; loads take their
 * latency from the cache level (Section 3.1).
 */
inline int
fixedLatency(InstrType type)
{
    switch (type) {
      case InstrType::IntAlu: return 1;
      case InstrType::IntMul: return 3;
      case InstrType::IntDiv: return 18;
      case InstrType::FpAlu: return 3;
      case InstrType::FpDiv: return 20;
      case InstrType::Store: return 2;   // write-back with store forwarding
      case InstrType::Branch: return 1;
      case InstrType::Isb: return 1;
      case InstrType::Load: return 4;    // placeholder: L1 hit
      default: return 1;
    }
}

/** Cache-level → load latency map (paper Section 3.1 example values). */
enum class CacheLevel : uint8_t { L1 = 0, L2, LLC, Ram, NumLevels };

inline int
loadLatency(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L1: return 4;
      case CacheLevel::L2: return 10;
      case CacheLevel::LLC: return 30;
      case CacheLevel::Ram: return 200;
      default: return 4;
    }
}

inline IssueClass
issueClassOf(InstrType type)
{
    switch (type) {
      case InstrType::FpAlu:
      case InstrType::FpDiv:
        return IssueClass::Fp;
      case InstrType::Load:
      case InstrType::Store:
        return IssueClass::LoadStore;
      default:
        return IssueClass::Alu;
    }
}

/** True for types whose result can be a register source of a later instr. */
inline bool
producesValue(InstrType type)
{
    switch (type) {
      case InstrType::IntAlu:
      case InstrType::IntMul:
      case InstrType::IntDiv:
      case InstrType::FpAlu:
      case InstrType::FpDiv:
      case InstrType::Load:
        return true;
      default:
        return false;
    }
}

} // namespace concorde

#endif // CONCORDE_TRACE_INSTRUCTION_HH
