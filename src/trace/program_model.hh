/**
 * @file
 * Synthetic program model: deterministic, seeded generation of dynamic
 * instruction traces with controllable instruction mix, dependency
 * structure, memory-access behavior (streams, strided, random working set,
 * pointer chasing, store-to-load forwarding), branch behavior (loops,
 * biased and random conditionals, indirect branches), code footprint, and
 * phase structure.
 *
 * This substitutes for the paper's DynamoRIO traces of proprietary / cloud /
 * open / SPEC2017 programs (Table 2). Traces are never stored: a trace is a
 * sequence of fixed-size chunks, and every chunk is a pure function of
 * (program seed, trace id, chunk index), so regions of any length can be
 * materialized from any chunk-aligned offset in O(length).
 */

#ifndef CONCORDE_TRACE_PROGRAM_MODEL_HH
#define CONCORDE_TRACE_PROGRAM_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/instruction.hh"
#include "trace/trace_columns.hh"

namespace concorde
{

/** Instructions per generation chunk; regions are chunk-aligned. */
constexpr uint32_t kChunkLen = 2048;

/**
 * One memory-behavior phase. A program cycles deterministically through its
 * phases as a function of chunk index, reproducing the phase behavior that
 * Figure 17 of the paper highlights.
 */
struct PhaseProfile
{
    double seqFrac = 0.25;      ///< loads from sequential (line) streams
    double strideFrac = 0.0;    ///< loads from strided streams
    double chaseFrac = 0.0;     ///< dependent pointer-chase loads
    double forwardFrac = 0.05;  ///< loads reading a recent store (forwarding)
    // remaining loads: random accesses within the working set
    uint64_t wsBytes = 1 << 20; ///< random/chase working-set size
    double wsZipf = 0.6;        ///< skew of random WS accesses
    int strideBytes = 256;      ///< stride of strided streams
    double storeSeqFrac = 0.5;  ///< stores to write streams vs random WS
};

/** Full workload profile: one per Table-2 program. */
struct WorkloadProfile
{
    std::string name;           ///< e.g. "S1.505.mcf_r"
    std::string group;          ///< Proprietary / Cloud / Open / SPEC2017

    // Instruction mix (fractions of non-branch body instructions).
    double fracLoad = 0.25;
    double fracStore = 0.10;
    double fracFp = 0.05;       ///< of ALU-ish instructions, share that is FP
    double fracMulDiv = 0.05;   ///< of int ALU instructions, share mul/div
    double fracDivOfFp = 0.1;   ///< of FP instructions, share that is FpDiv
    double isbPer1k = 0.0;      ///< barriers per 1000 instructions

    // Dependency structure.
    double depMeanDist = 6.0;   ///< geometric mean distance (in producers)
    double secondSrcProb = 0.4;

    // Branch behavior.
    double branchEvery = 8.0;   ///< mean basic-block length (instructions)
    double loopFrac = 0.55;     ///< branches that are loop back-edges
    double meanTrip = 12.0;     ///< mean loop trip count
    double condBias = 0.85;     ///< taken-bias of plain conditionals
    double condRandomFrac = 0.1;///< conditionals with 50/50 outcomes
    double uncondFrac = 0.10;   ///< direct unconditional (calls/jumps)
    double indirectFrac = 0.02; ///< indirect branches
    int indirectTargets = 4;    ///< fan-out of indirect branches
    double indirectZipf = 0.9;  ///< skew of indirect target selection
    double indirectRepeat = 0.65; ///< probability the last target repeats

    // Code footprint.
    uint32_t numBlocks = 128;   ///< basic blocks in the binary
    uint32_t blockCapacity = 16;///< max instructions per static block
    double hotGroupFrac = 0.25; ///< fraction of blocks forming the hot set
    double coldJumpProb = 0.04; ///< probability a control transfer leaves
                                ///< the hot set (instruction-cache pressure)

    // Phases.
    std::vector<PhaseProfile> phases{PhaseProfile{}};
    uint32_t chunksPerPhase = 32;
};

/** Identifies a region of a program trace (chunk granularity). */
struct RegionSpec
{
    int programId = 0;      ///< index into the workload corpus
    int traceId = 0;        ///< which trace of the program
    uint64_t startChunk = 0;
    uint32_t numChunks = 8; ///< region length = numChunks * kChunkLen

    uint64_t numInstructions() const
    {
        return static_cast<uint64_t>(numChunks) * kChunkLen;
    }
    uint64_t startInstr() const { return startChunk * kChunkLen; }
};

/**
 * A contiguous, chunk-aligned span of one program trace: the unit of work
 * of the end-to-end pipeline, which shards a span into consecutive
 * RegionSpecs (see shardSpan).
 */
struct TraceSpan
{
    int programId = 0;      ///< index into the workload corpus
    int traceId = 0;        ///< which trace of the program
    uint64_t startChunk = 0;
    uint64_t numChunks = 64;

    uint64_t numInstructions() const { return numChunks * kChunkLen; }

    bool operator==(const TraceSpan &o) const
    {
        return programId == o.programId && traceId == o.traceId
            && startChunk == o.startChunk && numChunks == o.numChunks;
    }
};

/**
 * Shard a span into consecutive regions of `region_chunks` chunks each
 * (the final region takes the remainder). The regions tile the span
 * exactly: concatenating them in order reproduces the span's trace.
 */
std::vector<RegionSpec> shardSpan(const TraceSpan &span,
                                  uint32_t region_chunks);

/**
 * Reusable per-chunk generation scratch: flat per-static-slot stream
 * cursors and per-block dynamic histories, invalidated wholesale at each
 * chunk boundary by an epoch counter instead of being reallocated. One
 * instance may be threaded through many generateChunk calls (it carries
 * no cross-chunk state), which keeps region generation free of
 * per-instruction and per-chunk allocation.
 */
struct GenScratch
{
    std::vector<uint64_t> streamPos;        ///< per static slot
    std::vector<uint32_t> streamEpoch;
    std::vector<uint16_t> lastIndirect;     ///< per block
    std::vector<uint32_t> indirectEpoch;
    std::vector<uint32_t> loopVisits;       ///< per block
    std::vector<uint32_t> loopEpoch;
    uint32_t epoch = 0;
};

/**
 * Generator for a single program. Stateless between calls: chunk content is
 * fully determined by (seed, traceId, chunkIndex). The static half of the
 * generator -- per-block personas and per-slot opcode/role/stream draws,
 * which are pure functions of (seed, block id) -- is tabulated once at
 * construction, so the per-chunk loop replays tables instead of re-drawing
 * the static RNG sequence at every block visit.
 */
class ProgramModel
{
  public:
    ProgramModel(WorkloadProfile profile, uint64_t seed);

    const WorkloadProfile &profile() const { return prof; }

    /** Phase index active during a given chunk. */
    size_t phaseOf(uint64_t chunk_index) const;

    /**
     * Append exactly kChunkLen instructions for the given chunk.
     * Dependency indices are relative to `base` (the index the chunk's
     * first instruction will occupy in the caller's vector).
     */
    void generateChunk(int trace_id, uint64_t chunk_index,
                       std::vector<Instruction> &out, int64_t base) const;

    /** Columnar variant with caller-owned scratch (the cold hot path). */
    void generateChunk(int trace_id, uint64_t chunk_index,
                       TraceColumns &out, int64_t base,
                       GenScratch &scratch) const;

    /** Materialize a contiguous region (numChunks chunks from startChunk). */
    std::vector<Instruction> generateRegion(const RegionSpec &spec) const;

    /** Columnar region materialization (bitwise-equal to generateRegion). */
    TraceColumns generateRegionColumns(const RegionSpec &spec) const;
    void generateRegionColumns(const RegionSpec &spec, TraceColumns &out,
                               GenScratch &scratch) const;

  private:
    /** Static branch personality of one basic block. */
    enum class BranchKindStatic : uint8_t { Cond, Uncond, Indirect,
                                            LoopTail };

    /** Static (seed, block)-determined state of one body slot. */
    struct StaticSlot
    {
        uint64_t pc;
        uint64_t streamId;      ///< hashMix(seed, pc, salt)
        uint64_t streamBase;    ///< (streamId % 1024) * kStreamSpacing
        double roleU;           ///< memory-role draw
        InstrType type;
    };

    /** Static personality of one basic block (tabulated in the ctor). */
    struct StaticBlock
    {
        uint32_t bodyLen;
        BranchKindStatic kind;
        double bias;            ///< taken-probability of the Cond branch
        bool randomBranch;      ///< 50/50 conditional
        uint32_t loopLen;       ///< LoopTail: blocks in the loop body
        int64_t baseTrips;      ///< LoopTail: nominal trip count
        uint16_t indirectTarget;///< Indirect: static default target
        uint64_t branchPc;
        uint32_t slotBegin;     ///< first entry in `slots`
    };

    template <typename Emit>
    void generateChunkImpl(int trace_id, uint64_t chunk_index,
                           int64_t base, GenScratch &scratch,
                           Emit &&emit) const;

    void buildStaticTables();

    WorkloadProfile prof;
    uint64_t seed;
    std::vector<StaticBlock> blocks;
    std::vector<StaticSlot> slots;
};

} // namespace concorde

#endif // CONCORDE_TRACE_PROGRAM_MODEL_HH
