#include "trace/trace_columns.hh"

namespace concorde
{

void
TraceColumns::clear()
{
    pc.clear();
    memAddr.clear();
    instLine.clear();
    srcDep0.clear();
    srcDep1.clear();
    memDep.clear();
    type.clear();
    branchKind.clear();
    taken.clear();
    targetId.clear();
}

void
TraceColumns::reserve(size_t n)
{
    pc.reserve(n);
    memAddr.reserve(n);
    instLine.reserve(n);
    srcDep0.reserve(n);
    srcDep1.reserve(n);
    memDep.reserve(n);
    type.reserve(n);
    branchKind.reserve(n);
    taken.reserve(n);
    targetId.reserve(n);
}

void
TraceColumns::append(const Instruction &instr)
{
    pc.push_back(instr.pc);
    memAddr.push_back(instr.memAddr);
    instLine.push_back(instr.instLine());
    srcDep0.push_back(instr.srcDeps[0]);
    srcDep1.push_back(instr.srcDeps[1]);
    memDep.push_back(instr.memDep);
    type.push_back(instr.type);
    branchKind.push_back(instr.branchKind);
    taken.push_back(instr.taken ? 1 : 0);
    targetId.push_back(instr.targetId);
}

void
TraceColumns::appendSlice(const TraceColumns &other, size_t begin,
                          size_t end)
{
    auto slice = [begin, end](auto &dst, const auto &src) {
        dst.insert(dst.end(), src.begin() + begin, src.begin() + end);
    };
    slice(pc, other.pc);
    slice(memAddr, other.memAddr);
    slice(instLine, other.instLine);
    slice(srcDep0, other.srcDep0);
    slice(srcDep1, other.srcDep1);
    slice(memDep, other.memDep);
    slice(type, other.type);
    slice(branchKind, other.branchKind);
    slice(taken, other.taken);
    slice(targetId, other.targetId);
}

Instruction
TraceColumns::get(size_t i) const
{
    Instruction instr;
    instr.pc = pc[i];
    instr.memAddr = memAddr[i];
    instr.srcDeps[0] = srcDep0[i];
    instr.srcDeps[1] = srcDep1[i];
    instr.memDep = memDep[i];
    instr.type = type[i];
    instr.branchKind = branchKind[i];
    instr.taken = taken[i] != 0;
    instr.targetId = targetId[i];
    return instr;
}

std::vector<Instruction>
TraceColumns::toInstructions() const
{
    std::vector<Instruction> out;
    out.reserve(size());
    for (size_t i = 0; i < size(); ++i)
        out.push_back(get(i));
    return out;
}

TraceColumns
TraceColumns::fromInstructions(const std::vector<Instruction> &instrs)
{
    TraceColumns cols;
    cols.reserve(instrs.size());
    for (const Instruction &instr : instrs)
        cols.append(instr);
    return cols;
}

} // namespace concorde
