/**
 * @file
 * The workload corpus: 29 synthetic programs mirroring Table 2 of the paper
 * (13 proprietary, 2 cloud, 4 open, 10 SPEC2017). Each entry pairs a
 * WorkloadProfile tuned to echo its namesake's qualitative character with
 * trace-count / trace-length metadata used for region sampling.
 */

#ifndef CONCORDE_TRACE_WORKLOADS_HH
#define CONCORDE_TRACE_WORKLOADS_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "trace/program_model.hh"

namespace concorde
{

/** Corpus entry: a program, its traces, and its generator seed. */
struct ProgramInfo
{
    WorkloadProfile profile;
    int numTraces = 2;
    uint64_t chunksPerTrace = 256;  ///< trace length in kChunkLen units
    uint64_t seed = 0;

    /** Short code used in the paper's plots, e.g. "S1". */
    std::string code() const;
};

/** The 29-program corpus (stable order; index = program id). */
const std::vector<ProgramInfo> &workloadCorpus();

/** Cached ProgramModel for a corpus entry. */
const ProgramModel &programModel(int program_id);

/** Materialize the instructions of a region. */
std::vector<Instruction> generateRegion(const RegionSpec &spec);

/**
 * Sample a random region of the given length: program uniform over traces
 * weighted by trace length (paper Section 4), then a uniform chunk-aligned
 * offset within the trace.
 */
RegionSpec sampleRegion(Rng &rng, uint32_t num_chunks);

/** Sample a region from a specific program. */
RegionSpec sampleRegionFromProgram(Rng &rng, int program_id,
                                   uint32_t num_chunks);

/** Program id for a short code like "S1" or "P9"; -1 if unknown. */
int programIdByCode(const std::string &code);

} // namespace concorde

#endif // CONCORDE_TRACE_WORKLOADS_HH
