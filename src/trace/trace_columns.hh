/**
 * @file
 * Columnar (structure-of-arrays) trace layout for the cold analysis path.
 *
 * The per-instruction sweeps -- trace analysis, the ROB/LSQ analytical
 * models, window counting -- each touch only a few Instruction fields, so
 * the array-of-structs layout drags ~40 bytes per instruction through the
 * cache per pass. TraceColumns stores each field in its own parallel
 * array: pc, memAddr (plus the derived instruction-cache line index),
 * dependency indices, type, and branch metadata, so a pass streams only
 * the columns it reads. Element i of every column describes dynamic
 * instruction i; get()/toInstructions() reconstruct the AoS record
 * bitwise for consumers that still want it (the reference simulator, the
 * TAO baseline, dataset labeling).
 */

#ifndef CONCORDE_TRACE_TRACE_COLUMNS_HH
#define CONCORDE_TRACE_TRACE_COLUMNS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/instruction.hh"

namespace concorde
{

/** SoA mirror of std::vector<Instruction>; one entry per column. */
struct TraceColumns
{
    std::vector<uint64_t> pc;
    std::vector<uint64_t> memAddr;
    /** Instruction-cache line index (pc >> 6), precomputed per entry. */
    std::vector<uint64_t> instLine;
    std::vector<int32_t> srcDep0;
    std::vector<int32_t> srcDep1;
    std::vector<int32_t> memDep;
    std::vector<InstrType> type;
    std::vector<BranchKind> branchKind;
    std::vector<uint8_t> taken;
    std::vector<uint16_t> targetId;

    size_t size() const { return type.size(); }
    bool empty() const { return type.empty(); }

    void clear();
    void reserve(size_t n);

    void append(const Instruction &instr);
    /** Append entries [begin, end) of another column set. */
    void appendSlice(const TraceColumns &other, size_t begin, size_t end);

    /** Reconstruct the AoS record of entry i (bitwise round trip). */
    Instruction get(size_t i) const;

    std::vector<Instruction> toInstructions() const;
    static TraceColumns fromInstructions(
        const std::vector<Instruction> &instrs);

    bool isLoad(size_t i) const { return type[i] == InstrType::Load; }
    bool isStore(size_t i) const { return type[i] == InstrType::Store; }
    bool isMem(size_t i) const { return isLoad(i) || isStore(i); }
    bool isBranch(size_t i) const { return type[i] == InstrType::Branch; }
    bool isIsb(size_t i) const { return type[i] == InstrType::Isb; }

    /** Data-cache line index of a memory entry. */
    uint64_t dataLine(size_t i) const { return memAddr[i] >> 6; }
};

} // namespace concorde

#endif // CONCORDE_TRACE_TRACE_COLUMNS_HH
