#include "trace/workloads.hh"

#include <map>
#include <memory>
#include <mutex>

#include "common/logging.hh"

namespace concorde
{

std::string
ProgramInfo::code() const
{
    const auto dot = profile.name.find('.');
    return dot == std::string::npos ? profile.name
                                    : profile.name.substr(0, dot);
}

namespace
{

PhaseProfile
phase(double seq, double stride, double chase, uint64_t ws_bytes,
      double zipf = 0.6, int stride_bytes = 256, double fwd = 0.05,
      double store_seq = 0.5)
{
    PhaseProfile p;
    p.seqFrac = seq;
    p.strideFrac = stride;
    p.chaseFrac = chase;
    p.forwardFrac = fwd;
    p.wsBytes = ws_bytes;
    p.wsZipf = zipf;
    p.strideBytes = stride_bytes;
    p.storeSeqFrac = store_seq;
    return p;
}

constexpr uint64_t KB = 1024;
constexpr uint64_t MB = 1024 * 1024;

std::vector<ProgramInfo>
buildCorpus()
{
    std::vector<ProgramInfo> corpus;
    uint64_t next_seed = 0xC0C0'0001ULL;

    auto add = [&](WorkloadProfile p, int traces, uint64_t chunks) {
        ProgramInfo info;
        info.profile = std::move(p);
        info.numTraces = traces;
        info.chunksPerTrace = chunks;
        info.seed = next_seed;
        next_seed += 0x9e3779b9ULL;
        corpus.push_back(std::move(info));
    };

    // ---------------- Proprietary ----------------
    {
        // P1 Compression: streaming reads/writes, predictable branches,
        // match-loop locality.
        WorkloadProfile p;
        p.name = "P1.Compression";
        p.group = "Proprietary";
        p.fracLoad = 0.28; p.fracStore = 0.14; p.fracFp = 0.02;
        p.depMeanDist = 4.0; p.branchEvery = 10.0;
        p.loopFrac = 0.7; p.meanTrip = 24.0; p.condBias = 0.97;
        p.condRandomFrac = 0.01; p.numBlocks = 96;
        p.phases = {phase(0.55, 0.05, 0.0, 256 * KB, 1.2, 256, 0.1, 0.8)};
        add(p, 2, 3840);
    }
    {
        // P2 Search1: hash-table probes over a large heap; branchy.
        WorkloadProfile p;
        p.name = "P2.Search1";
        p.group = "Proprietary";
        p.fracLoad = 0.32; p.fracStore = 0.08; p.fracFp = 0.02;
        p.depMeanDist = 5.0; p.branchEvery = 6.0;
        p.condBias = 0.94; p.condRandomFrac = 0.04; p.meanTrip = 6.0;
        p.numBlocks = 768; p.hotGroupFrac = 0.15; p.coldJumpProb = 0.05;
        p.phases = {phase(0.1, 0.0, 0.1, 8 * MB, 1.1)};
        add(p, 4, 6144);
    }
    {
        // P3 Search4: as P2, hotter working set and heavier scoring loops.
        WorkloadProfile p;
        p.name = "P3.Search4";
        p.group = "Proprietary";
        p.fracLoad = 0.30; p.fracStore = 0.08; p.fracFp = 0.10;
        p.depMeanDist = 6.0; p.branchEvery = 7.0;
        p.condBias = 0.94; p.condRandomFrac = 0.04;
        p.numBlocks = 512; p.hotGroupFrac = 0.2;
        p.phases = {phase(0.15, 0.05, 0.08, 4 * MB, 1.15)};
        add(p, 4, 6144);
    }
    {
        // P4 Disk: block copies and checksum loops with barriers.
        WorkloadProfile p;
        p.name = "P4.Disk";
        p.group = "Proprietary";
        p.fracLoad = 0.30; p.fracStore = 0.18; p.fracFp = 0.0;
        p.isbPer1k = 0.6; p.depMeanDist = 5.0; p.branchEvery = 12.0;
        p.loopFrac = 0.75; p.meanTrip = 32.0; p.condBias = 0.97;
        p.condRandomFrac = 0.01;
        p.numBlocks = 128;
        p.phases = {phase(0.6, 0.1, 0.0, 512 * KB, 1.1, 512, 0.08, 0.9)};
        add(p, 3, 6144);
    }
    {
        // P5 Video: FP-heavy strided kernels, prefetch friendly, high ILP.
        WorkloadProfile p;
        p.name = "P5.Video";
        p.group = "Proprietary";
        p.fracLoad = 0.30; p.fracStore = 0.12; p.fracFp = 0.45;
        p.fracDivOfFp = 0.03; p.depMeanDist = 10.0; p.secondSrcProb = 0.5;
        p.branchEvery = 14.0; p.loopFrac = 0.8; p.meanTrip = 40.0;
        p.condBias = 0.985; p.condRandomFrac = 0.005; p.numBlocks = 160;
        p.phases = {phase(0.35, 0.35, 0.0, 1 * MB, 1.0, 128, 0.02, 0.9)};
        add(p, 4, 6144);
    }
    {
        // P6 NoSQL Database1: pointer-rich index walks, forwarding-heavy.
        WorkloadProfile p;
        p.name = "P6.NoSQLDatabase1";
        p.group = "Proprietary";
        p.fracLoad = 0.33; p.fracStore = 0.12; p.fracFp = 0.01;
        p.depMeanDist = 4.5; p.branchEvery = 6.5;
        p.condBias = 0.93; p.condRandomFrac = 0.05;
        p.numBlocks = 1024; p.hotGroupFrac = 0.12; p.coldJumpProb = 0.06;
        p.phases = {phase(0.08, 0.0, 0.12, 16 * MB, 1.05, 256, 0.1)};
        add(p, 4, 6144);
    }
    {
        // P7 Search2: mid-size working set, scoring FP sprinkled in.
        WorkloadProfile p;
        p.name = "P7.Search2";
        p.group = "Proprietary";
        p.fracLoad = 0.31; p.fracStore = 0.09; p.fracFp = 0.08;
        p.depMeanDist = 5.5; p.branchEvery = 6.0;
        p.condBias = 0.94; p.condRandomFrac = 0.04;
        p.numBlocks = 640; p.hotGroupFrac = 0.18;
        p.phases = {phase(0.12, 0.04, 0.1, 6 * MB, 1.1)};
        add(p, 3, 7680);
    }
    {
        // P8 MapReduce1: streaming aggregation, small hot dictionary.
        WorkloadProfile p;
        p.name = "P8.MapReduce1";
        p.group = "Proprietary";
        p.fracLoad = 0.29; p.fracStore = 0.13; p.fracFp = 0.04;
        p.depMeanDist = 6.0; p.branchEvery = 9.0;
        p.loopFrac = 0.7; p.meanTrip = 20.0; p.condBias = 0.965;
        p.condRandomFrac = 0.015;
        p.numBlocks = 192;
        p.phases = {phase(0.5, 0.08, 0.0, 2 * MB, 1.2, 256, 0.06, 0.85)};
        add(p, 3, 7680);
    }
    {
        // P9 Search3: mostly compute-hot phases with a ~10% slice of
        // cache-hostile scatter phases (Figure 17's phase behavior).
        WorkloadProfile p;
        p.name = "P9.Search3";
        p.group = "Proprietary";
        p.fracLoad = 0.31; p.fracStore = 0.09; p.fracFp = 0.05;
        p.depMeanDist = 5.0; p.branchEvery = 6.5;
        p.condBias = 0.94; p.condRandomFrac = 0.04;
        p.numBlocks = 512; p.hotGroupFrac = 0.2;
        PhaseProfile hot = phase(0.2, 0.05, 0.04, 192 * KB, 1.2);
        PhaseProfile scatter = phase(0.05, 0.0, 0.3, 24 * MB, 0.9);
        p.phases = {hot, hot, hot, hot, hot, hot, hot, hot, hot, scatter};
        p.chunksPerPhase = 8;
        add(p, 6, 9216);
    }
    {
        // P10 Logs: string scanning, branch dense, large code footprint.
        WorkloadProfile p;
        p.name = "P10.Logs";
        p.group = "Proprietary";
        p.fracLoad = 0.30; p.fracStore = 0.10; p.fracFp = 0.0;
        p.depMeanDist = 3.5; p.branchEvery = 5.0;
        p.condBias = 0.9; p.condRandomFrac = 0.08; p.meanTrip = 8.0;
        p.numBlocks = 2048; p.hotGroupFrac = 0.08; p.coldJumpProb = 0.08;
        p.indirectFrac = 0.04; p.indirectTargets = 8;
        p.phases = {phase(0.3, 0.0, 0.02, 1 * MB, 1.2)};
        add(p, 3, 7680);
    }
    {
        // P11 NoSQL Database2: RAM-resident store, the most memory-bound
        // proprietary workload.
        WorkloadProfile p;
        p.name = "P11.NoSQLDatabase2";
        p.group = "Proprietary";
        p.fracLoad = 0.35; p.fracStore = 0.12; p.fracFp = 0.0;
        p.depMeanDist = 4.0; p.branchEvery = 7.0;
        p.condBias = 0.93; p.condRandomFrac = 0.04;
        p.numBlocks = 1024; p.hotGroupFrac = 0.1; p.coldJumpProb = 0.05;
        p.phases = {phase(0.05, 0.0, 0.22, 32 * MB, 0.95, 256, 0.08)};
        add(p, 3, 7680);
    }
    {
        // P12 MapReduce2: shuffle-heavy variant, more stores and streams.
        WorkloadProfile p;
        p.name = "P12.MapReduce2";
        p.group = "Proprietary";
        p.fracLoad = 0.28; p.fracStore = 0.16; p.fracFp = 0.03;
        p.depMeanDist = 7.0; p.branchEvery = 10.0;
        p.loopFrac = 0.72; p.meanTrip = 24.0; p.condBias = 0.97;
        p.condRandomFrac = 0.01;
        p.numBlocks = 224;
        p.phases = {phase(0.55, 0.1, 0.0, 3 * MB, 1.2, 512, 0.05, 0.9)};
        add(p, 3, 9216);
    }
    {
        // P13 Query Engine & Database: alternating scan / join phases over
        // a big footprint; the corpus's largest program.
        WorkloadProfile p;
        p.name = "P13.QueryEngineDB";
        p.group = "Proprietary";
        p.fracLoad = 0.32; p.fracStore = 0.11; p.fracFp = 0.06;
        p.depMeanDist = 5.5; p.branchEvery = 7.0;
        p.condBias = 0.94; p.condRandomFrac = 0.04;
        p.numBlocks = 1536; p.hotGroupFrac = 0.1; p.coldJumpProb = 0.05;
        p.indirectFrac = 0.03; p.indirectTargets = 12;
        PhaseProfile scan = phase(0.55, 0.1, 0.0, 1 * MB, 1.1, 256, 0.04,
                                  0.9);
        PhaseProfile join = phase(0.08, 0.0, 0.15, 12 * MB, 1.0);
        p.phases = {scan, join, scan, join};
        p.chunksPerPhase = 24;
        add(p, 8, 12288);
    }

    // ---------------- Cloud benchmarks ----------------
    {
        // C1 Memcached: GET-dominated hash lookups in a huge slab heap.
        WorkloadProfile p;
        p.name = "C1.Memcached";
        p.group = "Cloud";
        p.fracLoad = 0.33; p.fracStore = 0.10; p.fracFp = 0.0;
        p.depMeanDist = 4.5; p.branchEvery = 6.0;
        p.condBias = 0.94; p.condRandomFrac = 0.03;
        p.numBlocks = 384; p.hotGroupFrac = 0.2;
        p.phases = {phase(0.1, 0.0, 0.12, 16 * MB, 1.05, 256, 0.1)};
        add(p, 2, 4608);
    }
    {
        // C2 MySQL: B-tree descent plus row materialization; big code.
        WorkloadProfile p;
        p.name = "C2.MySQL";
        p.group = "Cloud";
        p.fracLoad = 0.31; p.fracStore = 0.12; p.fracFp = 0.02;
        p.depMeanDist = 4.5; p.branchEvery = 6.0;
        p.condBias = 0.93; p.condRandomFrac = 0.05;
        p.numBlocks = 2560; p.hotGroupFrac = 0.06; p.coldJumpProb = 0.08;
        p.indirectFrac = 0.05; p.indirectTargets = 10;
        p.phases = {phase(0.12, 0.0, 0.08, 8 * MB, 1.1, 256, 0.1)};
        add(p, 3, 6144);
    }

    // ---------------- Open benchmarks ----------------
    {
        // O1 Dhrystone: tiny footprint, highly predictable, high IPC.
        WorkloadProfile p;
        p.name = "O1.Dhrystone";
        p.group = "Open";
        p.fracLoad = 0.22; p.fracStore = 0.10; p.fracFp = 0.0;
        p.depMeanDist = 5.0; p.branchEvery = 8.0;
        p.loopFrac = 0.8; p.meanTrip = 50.0; p.condBias = 0.99;
        p.condRandomFrac = 0.002; p.numBlocks = 24;
        p.phases = {phase(0.2, 0.0, 0.0, 16 * KB, 1.0, 256, 0.15, 0.5)};
        add(p, 1, 2304);
    }
    {
        // O2 CoreMark: list/matrix/state-machine mix, small data.
        WorkloadProfile p;
        p.name = "O2.CoreMark";
        p.group = "Open";
        p.fracLoad = 0.25; p.fracStore = 0.10; p.fracFp = 0.0;
        p.fracMulDiv = 0.12; p.depMeanDist = 4.0; p.branchEvery = 6.0;
        p.loopFrac = 0.65; p.meanTrip = 16.0; p.condBias = 0.96;
        p.condRandomFrac = 0.02; p.numBlocks = 64;
        p.phases = {phase(0.25, 0.05, 0.03, 64 * KB, 1.0)};
        add(p, 1, 3072);
    }
    {
        // O3 MMU: synthetic memory stress -- dependent scatter reads over a
        // RAM-sized set; by far the highest CPI in the corpus (the paper's
        // hardest OOD case).
        WorkloadProfile p;
        p.name = "O3.MMU";
        p.group = "Open";
        p.fracLoad = 0.45; p.fracStore = 0.08; p.fracFp = 0.0;
        p.depMeanDist = 2.5; p.branchEvery = 16.0;
        p.loopFrac = 0.8; p.meanTrip = 64.0; p.condBias = 0.99;
        p.condRandomFrac = 0.002; p.numBlocks = 16;
        p.isbPer1k = 0.3;
        p.phases = {phase(0.0, 0.0, 0.55, 64 * MB, 0.2, 4096, 0.0)};
        add(p, 2, 4608);
    }
    {
        // O4 CPUtest: serial dependency chains testing execution latency;
        // regular and synthetic.
        WorkloadProfile p;
        p.name = "O4.CPUtest";
        p.group = "Open";
        p.fracLoad = 0.12; p.fracStore = 0.05; p.fracFp = 0.2;
        p.fracDivOfFp = 0.25; p.fracMulDiv = 0.2;
        p.depMeanDist = 1.3; p.secondSrcProb = 0.2;
        p.branchEvery = 24.0; p.loopFrac = 0.9; p.meanTrip = 100.0;
        p.condBias = 0.995; p.condRandomFrac = 0.0; p.numBlocks = 12;
        p.phases = {phase(0.3, 0.0, 0.0, 32 * KB, 1.0)};
        add(p, 2, 4608);
    }

    // ---------------- SPEC2017 ----------------
    {
        // S1 505.mcf_r: pointer-chasing over a many-MB network; the
        // corpus's most cache-size-sensitive program.
        WorkloadProfile p;
        p.name = "S1.505.mcf_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.36; p.fracStore = 0.09; p.fracFp = 0.0;
        p.depMeanDist = 3.5; p.branchEvery = 7.0;
        p.condBias = 0.93; p.condRandomFrac = 0.05;
        p.numBlocks = 96;
        p.phases = {phase(0.05, 0.0, 0.32, 24 * MB, 0.95, 256, 0.03)};
        add(p, 2, 9216);
    }
    {
        // S2 520.omnetpp_r: discrete-event simulation; heap walks plus
        // virtual dispatch.
        WorkloadProfile p;
        p.name = "S2.520.omnetpp_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.31; p.fracStore = 0.12; p.fracFp = 0.01;
        p.depMeanDist = 4.0; p.branchEvery = 5.5;
        p.condBias = 0.93; p.condRandomFrac = 0.06;
        p.numBlocks = 1280; p.hotGroupFrac = 0.1; p.coldJumpProb = 0.06;
        p.indirectFrac = 0.06; p.indirectTargets = 12;
        p.phases = {phase(0.08, 0.0, 0.12, 10 * MB, 1.05)};
        add(p, 2, 9216);
    }
    {
        // S3 523.xalancbmk_r: XML transform; instruction-cache hostile.
        WorkloadProfile p;
        p.name = "S3.523.xalancbmk_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.30; p.fracStore = 0.10; p.fracFp = 0.0;
        p.depMeanDist = 4.0; p.branchEvery = 5.0;
        p.condBias = 0.94; p.condRandomFrac = 0.04;
        p.numBlocks = 4096; p.hotGroupFrac = 0.05; p.coldJumpProb = 0.1;
        p.indirectFrac = 0.05; p.indirectTargets = 16;
        p.phases = {phase(0.15, 0.0, 0.05, 2 * MB, 1.15)};
        add(p, 2, 9216);
    }
    {
        // S4 541.leela_r: MCTS chess(go) engine; mispredict bound.
        WorkloadProfile p;
        p.name = "S4.541.leela_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.26; p.fracStore = 0.08; p.fracFp = 0.05;
        p.depMeanDist = 4.5; p.branchEvery = 5.0;
        p.loopFrac = 0.3; p.meanTrip = 5.0;
        p.condBias = 0.88; p.condRandomFrac = 0.15;
        p.numBlocks = 256; p.hotGroupFrac = 0.3;
        p.phases = {phase(0.1, 0.0, 0.05, 512 * KB, 1.2)};
        add(p, 2, 9216);
    }
    {
        // S5 548.exchange2_r: integer puzzle solver; tiny data footprint,
        // deep loop nests.
        WorkloadProfile p;
        p.name = "S5.548.exchange2_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.18; p.fracStore = 0.09; p.fracFp = 0.0;
        p.depMeanDist = 5.0; p.branchEvery = 6.5;
        p.loopFrac = 0.7; p.meanTrip = 9.0; p.condBias = 0.95;
        p.condRandomFrac = 0.04; p.numBlocks = 80;
        p.phases = {phase(0.1, 0.0, 0.0, 96 * KB, 1.0, 256, 0.12)};
        add(p, 2, 9216);
    }
    {
        // S6 531.deepsjeng_r: alpha-beta chess; hash probes + mispredicts.
        WorkloadProfile p;
        p.name = "S6.531.deepsjeng_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.27; p.fracStore = 0.09; p.fracFp = 0.0;
        p.fracMulDiv = 0.08; p.depMeanDist = 4.5; p.branchEvery = 5.5;
        p.condBias = 0.9; p.condRandomFrac = 0.1;
        p.numBlocks = 320; p.hotGroupFrac = 0.25;
        p.phases = {phase(0.08, 0.0, 0.07, 4 * MB, 1.1)};
        add(p, 2, 9216);
    }
    {
        // S7 557.xz_r: LZMA; mixed streaming and match-finder scatter.
        WorkloadProfile p;
        p.name = "S7.557.xz_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.29; p.fracStore = 0.12; p.fracFp = 0.0;
        p.depMeanDist = 3.8; p.branchEvery = 7.5;
        p.loopFrac = 0.6; p.meanTrip = 14.0; p.condBias = 0.94;
        p.condRandomFrac = 0.05; p.numBlocks = 112;
        p.phases = {phase(0.35, 0.05, 0.06, 8 * MB, 1.1, 256, 0.08, 0.8)};
        add(p, 3, 9216);
    }
    {
        // S8 500.perlbench_r: interpreter; indirect-branch and icache heavy.
        WorkloadProfile p;
        p.name = "S8.500.perlbench_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.29; p.fracStore = 0.13; p.fracFp = 0.0;
        p.depMeanDist = 4.0; p.branchEvery = 5.5;
        p.condBias = 0.94; p.condRandomFrac = 0.03;
        p.numBlocks = 3072; p.hotGroupFrac = 0.06; p.coldJumpProb = 0.07;
        p.indirectFrac = 0.09; p.indirectTargets = 24; p.indirectZipf = 0.7;
        p.phases = {phase(0.15, 0.0, 0.06, 1 * MB, 1.2, 256, 0.12)};
        add(p, 3, 9216);
    }
    {
        // S9 525.x264_r: video encode; strided FP/SIMD kernels, very
        // prefetch friendly, high ILP.
        WorkloadProfile p;
        p.name = "S9.525.x264_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.29; p.fracStore = 0.11; p.fracFp = 0.4;
        p.fracDivOfFp = 0.02; p.depMeanDist = 12.0; p.secondSrcProb = 0.55;
        p.branchEvery = 16.0; p.loopFrac = 0.85; p.meanTrip = 32.0;
        p.condBias = 0.985; p.condRandomFrac = 0.005; p.numBlocks = 192;
        p.phases = {phase(0.3, 0.4, 0.0, 2 * MB, 1.0, 192, 0.02, 0.9)};
        add(p, 3, 9216);
    }
    {
        // S10 502.gcc_r: compiler; large code, mid-size data, branchy.
        WorkloadProfile p;
        p.name = "S10.502.gcc_r";
        p.group = "SPEC2017";
        p.fracLoad = 0.30; p.fracStore = 0.12; p.fracFp = 0.0;
        p.depMeanDist = 4.2; p.branchEvery = 5.5;
        p.condBias = 0.93; p.condRandomFrac = 0.06;
        p.numBlocks = 3584; p.hotGroupFrac = 0.05; p.coldJumpProb = 0.09;
        p.indirectFrac = 0.04; p.indirectTargets = 12;
        p.phases = {phase(0.12, 0.0, 0.08, 6 * MB, 1.05)};
        add(p, 4, 12288);
    }

    return corpus;
}

std::vector<std::unique_ptr<ProgramModel>> &
modelCache()
{
    static std::vector<std::unique_ptr<ProgramModel>> cache(
        workloadCorpus().size());
    return cache;
}

std::mutex &
modelMutex()
{
    static std::mutex m;
    return m;
}

} // anonymous namespace

const std::vector<ProgramInfo> &
workloadCorpus()
{
    static const std::vector<ProgramInfo> corpus = buildCorpus();
    return corpus;
}

const ProgramModel &
programModel(int program_id)
{
    const auto &corpus = workloadCorpus();
    panic_if(program_id < 0
             || static_cast<size_t>(program_id) >= corpus.size(),
             "bad program id %d", program_id);
    std::lock_guard<std::mutex> lock(modelMutex());
    auto &slot = modelCache()[program_id];
    if (!slot) {
        slot = std::make_unique<ProgramModel>(corpus[program_id].profile,
                                              corpus[program_id].seed);
    }
    return *slot;
}

std::vector<Instruction>
generateRegion(const RegionSpec &spec)
{
    return programModel(spec.programId).generateRegion(spec);
}

RegionSpec
sampleRegion(Rng &rng, uint32_t num_chunks)
{
    const auto &corpus = workloadCorpus();
    // Weight programs by total trace length, like the paper's
    // length-proportional trace sampling.
    uint64_t total = 0;
    for (const auto &info : corpus)
        total += info.numTraces * info.chunksPerTrace;
    uint64_t pick = rng.nextBounded(total);
    int program_id = 0;
    for (size_t i = 0; i < corpus.size(); ++i) {
        const uint64_t w = corpus[i].numTraces * corpus[i].chunksPerTrace;
        if (pick < w) {
            program_id = static_cast<int>(i);
            break;
        }
        pick -= w;
    }
    return sampleRegionFromProgram(rng, program_id, num_chunks);
}

RegionSpec
sampleRegionFromProgram(Rng &rng, int program_id, uint32_t num_chunks)
{
    const auto &info = workloadCorpus()[program_id];
    RegionSpec spec;
    spec.programId = program_id;
    spec.traceId = static_cast<int>(rng.nextBounded(info.numTraces));
    spec.numChunks = num_chunks;
    const uint64_t max_start =
        info.chunksPerTrace > num_chunks
        ? info.chunksPerTrace - num_chunks : 0;
    spec.startChunk = max_start > 0 ? rng.nextBounded(max_start + 1) : 0;
    return spec;
}

int
programIdByCode(const std::string &code)
{
    const auto &corpus = workloadCorpus();
    for (size_t i = 0; i < corpus.size(); ++i) {
        if (corpus[i].code() == code)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace concorde
