#include "trace/program_model.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "common/rng.hh"

namespace concorde
{

namespace
{

// Fixed virtual-address layout. Every analysis / simulation run owns its own
// cold cache state, so traces never share a cache and can share a layout.
constexpr uint64_t kCodeBase = 0x40000000ULL;
constexpr uint64_t kWsBase = 0x80000000ULL;
constexpr uint64_t kSeqBase = 0x100000000ULL;
constexpr uint64_t kStrideBase = 0x800000000ULL;
constexpr uint64_t kWriteBase = 0xF00000000ULL;

/** Per-static-slot private streams (so the stride prefetcher can train). */
constexpr uint64_t kStreamSpacing = 16ULL << 20;   // 16MB per stream
constexpr uint64_t kStreamLines = (16ULL << 20) / 64;

constexpr size_t kProducerRing = 512;
constexpr size_t kStoreRing = 16;

/**
 * Static per-block personality: everything TAGE / the I-cache / the
 * prefetcher could learn about a block is a pure function of
 * (program seed, block id).
 */
struct BlockPersona
{
    enum class Kind : uint8_t { Cond, Uncond, Indirect, LoopTail };

    uint32_t bodyLen;
    Kind kind;
    double bias;            ///< taken-probability of the Cond branch
    bool randomBranch;      ///< 50/50 conditional
    uint32_t loopLen;       ///< LoopTail: blocks in the loop body (0=self)
    int64_t baseTrips;      ///< LoopTail: nominal trip count
};

/** Mutable generation state, reset at every chunk boundary. */
struct ChunkState
{
    // Control flow.
    uint32_t curBlock = 0;
    bool loopActive = false;
    uint32_t loopHead = 0;
    uint32_t loopTail = 0;
    int64_t tripsLeft = 0;

    // Dependency tracking (absolute instruction indices).
    int64_t producers[kProducerRing];
    size_t numProducers = 0;
    int64_t lastChase = -1;

    // Recent stores for forwarding loads: (index, address).
    int64_t storeIdx[kStoreRing];
    uint64_t storeAddr[kStoreRing];
    size_t numStores = 0;

    // Per-static-slot stream cursors and per-block dynamic history.
    std::unordered_map<uint64_t, uint64_t> streamCursor;
    std::unordered_map<uint32_t, uint16_t> lastIndirect;
    std::unordered_map<uint32_t, uint32_t> loopVisits;

    // Pointer-chase state.
    uint64_t chaseState = 0;
};

} // anonymous namespace

ProgramModel::ProgramModel(WorkloadProfile profile, uint64_t seed_in)
    : prof(std::move(profile)), seed(seed_in)
{
    fatal_if(prof.phases.empty(), "workload '%s' has no phases",
             prof.name.c_str());
    fatal_if(prof.numBlocks < 4, "workload '%s': need >= 4 blocks",
             prof.name.c_str());
}

size_t
ProgramModel::phaseOf(uint64_t chunk_index) const
{
    const uint64_t period = std::max<uint32_t>(1, prof.chunksPerPhase);
    return (chunk_index / period) % prof.phases.size();
}

std::vector<Instruction>
ProgramModel::generateRegion(const RegionSpec &spec) const
{
    std::vector<Instruction> out;
    out.reserve(spec.numInstructions());
    for (uint32_t c = 0; c < spec.numChunks; ++c) {
        generateChunk(spec.traceId, spec.startChunk + c, out,
                      static_cast<int64_t>(out.size()));
    }
    return out;
}

std::vector<RegionSpec>
shardSpan(const TraceSpan &span, uint32_t region_chunks)
{
    panic_if(region_chunks == 0, "region_chunks must be positive");
    std::vector<RegionSpec> regions;
    regions.reserve((span.numChunks + region_chunks - 1) / region_chunks);
    for (uint64_t at = 0; at < span.numChunks; at += region_chunks) {
        RegionSpec spec;
        spec.programId = span.programId;
        spec.traceId = span.traceId;
        spec.startChunk = span.startChunk + at;
        spec.numChunks = static_cast<uint32_t>(
            std::min<uint64_t>(region_chunks, span.numChunks - at));
        regions.push_back(spec);
    }
    return regions;
}

void
ProgramModel::generateChunk(int trace_id, uint64_t chunk_index,
                            std::vector<Instruction> &out,
                            int64_t base) const
{
    const PhaseProfile &phase = prof.phases[phaseOf(chunk_index)];
    Rng rng(hashMix(seed, static_cast<uint64_t>(trace_id) + 1,
                    chunk_index + 0x5eedULL));

    ChunkState st;
    st.curBlock = static_cast<uint32_t>(rng.nextBounded(prof.numBlocks));
    st.chaseState = rng.next();

    const uint64_t ws_lines = std::max<uint64_t>(1, phase.wsBytes / 64);
    const double isb_prob = prof.isbPer1k / 1000.0;

    auto record_producer = [&](int64_t idx) {
        st.producers[st.numProducers % kProducerRing] = idx;
        ++st.numProducers;
    };

    auto pick_producer = [&](double mean_dist) -> int32_t {
        if (st.numProducers == 0)
            return -1;
        const uint64_t avail = std::min(st.numProducers, kProducerRing);
        uint64_t dist = rng.nextGeometric(mean_dist);
        if (dist > avail)
            dist = avail;
        const size_t slot = (st.numProducers - dist) % kProducerRing;
        return static_cast<int32_t>(st.producers[slot]);
    };

    auto random_ws_line = [&](uint64_t salt) -> uint64_t {
        // Zipf rank -> stable pseudo-random permutation of WS lines so that
        // hot lines are the same in every chunk of the trace.
        const uint64_t rank = rng.nextZipf(ws_lines, phase.wsZipf);
        return hashMix(seed ^ 0xDA7Au, rank, salt) % ws_lines;
    };

    // A static slot's private stream cursor; starts at a chunk-dependent
    // offset and advances per execution, giving the slot a constant stride.
    auto stream_addr = [&](uint64_t stream_base, uint64_t slot_key,
                           uint64_t stride) -> uint64_t {
        const uint64_t stream_id = hashMix(seed, slot_key, 0x57F3A8ULL);
        auto [it, inserted] = st.streamCursor.try_emplace(
            stream_id, hashMix(stream_id, chunk_index) % kStreamLines);
        const uint64_t pos = it->second++;
        const uint64_t span = kStreamLines * 64 / std::max<uint64_t>(
            1, stride);
        return stream_base + (stream_id % 1024) * kStreamSpacing
            + (pos % std::max<uint64_t>(1, span)) * stride;
    };

    const uint64_t target_count = kChunkLen;
    uint64_t emitted = 0;

    while (emitted < target_count) {
        // ---- static block personality ----
        Rng block_rng(hashMix(seed, 0xB10CULL, st.curBlock));
        BlockPersona persona;
        persona.bodyLen = static_cast<uint32_t>(std::clamp<uint64_t>(
            block_rng.nextGeometric(prof.branchEvery), 1,
            prof.blockCapacity - 1));
        // Branch bias skews heavily toward predictable: most real
        // conditionals are 95%+ one-sided. condBias controls the skew.
        const double bias_u = block_rng.nextDouble();
        const double one_sided =
            1.0 - (1.0 - prof.condBias) * bias_u * bias_u;
        persona.bias = block_rng.nextBool(0.7) ? one_sided
                                               : 1.0 - one_sided;
        persona.randomBranch = block_rng.nextBool(prof.condRandomFrac);
        persona.loopLen = static_cast<uint32_t>(block_rng.nextBounded(3));
        // Cap static trip counts: unbounded geometric draws create blocks
        // that trap control flow for thousands of instructions.
        persona.baseTrips = 2 + static_cast<int64_t>(std::min(
            block_rng.nextGeometric(prof.meanTrip),
            static_cast<uint64_t>(3.0 * prof.meanTrip)));
        {
            const double ku = block_rng.nextDouble();
            const double p_loop = prof.loopFrac / 3.0;
            if (ku < prof.indirectFrac) {
                persona.kind = BlockPersona::Kind::Indirect;
            } else if (ku < prof.indirectFrac + prof.uncondFrac) {
                persona.kind = BlockPersona::Kind::Uncond;
            } else if (ku < prof.indirectFrac + prof.uncondFrac + p_loop) {
                persona.kind = BlockPersona::Kind::LoopTail;
            } else {
                persona.kind = BlockPersona::Kind::Cond;
            }
        }

        // ---- block body ----
        for (uint32_t slot = 0;
             slot < persona.bodyLen && emitted < target_count;
             ++slot, ++emitted) {
            Instruction instr;
            instr.pc = kCodeBase
                + (static_cast<uint64_t>(st.curBlock) * prof.blockCapacity
                   + slot) * 4;

            // Opcode class is a static property of the slot.
            InstrType type;
            const double u = block_rng.nextDouble();
            if (u < prof.fracLoad) {
                type = InstrType::Load;
            } else if (u < prof.fracLoad + prof.fracStore) {
                type = InstrType::Store;
            } else if (block_rng.nextBool(prof.fracFp)) {
                type = block_rng.nextBool(prof.fracDivOfFp)
                    ? InstrType::FpDiv : InstrType::FpAlu;
            } else if (block_rng.nextBool(prof.fracMulDiv)) {
                type = block_rng.nextBool(0.15)
                    ? InstrType::IntDiv : InstrType::IntMul;
            } else {
                type = InstrType::IntAlu;
            }
            // Memory role and stream binding are also static: a given
            // static load walks one stream with one stride.
            const double role_u = block_rng.nextDouble();
            const uint64_t slot_key = instr.pc;

            // Barriers are rare dynamic events, not static slots.
            if (isb_prob > 0 && rng.nextBool(isb_prob))
                type = InstrType::Isb;

            instr.type = type;
            const int64_t self = base + static_cast<int64_t>(emitted);

            switch (type) {
              case InstrType::Load: {
                const double m = role_u;
                const PhaseProfile &ph = phase;
                if (m < ph.seqFrac) {
                    // Sequential element streams: 8-byte elements, so most
                    // accesses hit the line fetched by the previous ones.
                    instr.memAddr = stream_addr(kSeqBase, slot_key, 8);
                    instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                } else if (m < ph.seqFrac + ph.strideFrac) {
                    instr.memAddr = stream_addr(
                        kStrideBase, slot_key,
                        std::max<uint64_t>(64, ph.strideBytes));
                    instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                } else if (m < ph.seqFrac + ph.strideFrac + ph.chaseFrac) {
                    st.chaseState = hashMix(st.chaseState, 0xC4A5EULL);
                    const uint64_t rank = st.chaseState % ws_lines;
                    instr.memAddr = kWsBase
                        + (hashMix(seed ^ 0xDA7Au, rank, 1) % ws_lines) * 64;
                    // The defining property of a chase: the address depends
                    // on the previous chase load's value.
                    if (st.lastChase >= 0) {
                        instr.srcDeps[0] =
                            static_cast<int32_t>(st.lastChase);
                    }
                    st.lastChase = self;
                } else if (m < ph.seqFrac + ph.strideFrac + ph.chaseFrac
                               + ph.forwardFrac
                           && st.numStores > 0) {
                    const size_t pick = rng.nextBounded(
                        std::min(st.numStores, kStoreRing));
                    const size_t slot_ix =
                        (st.numStores - 1 - pick) % kStoreRing;
                    instr.memAddr = st.storeAddr[slot_ix];
                    instr.memDep =
                        static_cast<int32_t>(st.storeIdx[slot_ix]);
                    instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                } else {
                    instr.memAddr = kWsBase + random_ws_line(2) * 64;
                    instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                }
                record_producer(self);
                break;
              }
              case InstrType::Store: {
                if (role_u < phase.storeSeqFrac) {
                    instr.memAddr = stream_addr(kWriteBase, slot_key, 8);
                } else {
                    instr.memAddr = kWsBase + random_ws_line(3) * 64;
                }
                instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                if (rng.nextBool(prof.secondSrcProb))
                    instr.srcDeps[1] = pick_producer(prof.depMeanDist);
                st.storeIdx[st.numStores % kStoreRing] = self;
                st.storeAddr[st.numStores % kStoreRing] = instr.memAddr;
                ++st.numStores;
                break;
              }
              case InstrType::Isb:
                break;
              default: {
                instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                if (rng.nextBool(prof.secondSrcProb))
                    instr.srcDeps[1] = pick_producer(prof.depMeanDist);
                record_producer(self);
                break;
              }
            }
            out.push_back(instr);
        }
        if (emitted >= target_count)
            break;

        // ---- terminating branch ----
        Instruction br;
        br.type = InstrType::Branch;
        br.pc = kCodeBase
            + (static_cast<uint64_t>(st.curBlock) * prof.blockCapacity
               + persona.bodyLen) * 4;
        // Branch resolution waits on a recent producer.
        br.srcDeps[0] = pick_producer(3.0);

        uint32_t next_block;
        const uint32_t linear_next = (st.curBlock + 1) % prof.numBlocks;
        const uint32_t hot = std::max<uint32_t>(
            2, static_cast<uint32_t>(prof.hotGroupFrac * prof.numBlocks));

        if (st.loopActive && st.curBlock == st.loopTail) {
            // Active loop back-edge: taken while iterations remain. On
            // exit, hop past the immediate successor occasionally so
            // adjacent loop families do not recapture control forever.
            br.branchKind = BranchKind::DirectCond;
            --st.tripsLeft;
            br.taken = st.tripsLeft > 0;
            if (br.taken) {
                next_block = st.loopHead;
            } else {
                next_block = (st.curBlock + 1
                              + static_cast<uint32_t>(rng.nextBounded(2)))
                    % prof.numBlocks;
                st.loopActive = false;
            }
        } else {
            switch (persona.kind) {
              case BlockPersona::Kind::Indirect: {
                br.branchKind = BranchKind::Indirect;
                br.taken = true;
                // Indirect targets repeat with temporal locality, like
                // interpreter dispatch: hard but not hopeless to predict.
                // Each site's default target is a static property, so a
                // site revisited across chunks stays predictable.
                const auto static_target = static_cast<uint16_t>(
                    hashMix(seed, st.curBlock, 0x7A26E7ULL)
                    % std::max(1, prof.indirectTargets));
                auto [it, inserted] = st.lastIndirect.try_emplace(
                    st.curBlock, static_target);
                if (!rng.nextBool(prof.indirectRepeat)) {
                    it->second = static_cast<uint16_t>(rng.nextZipf(
                        std::max(1, prof.indirectTargets),
                        prof.indirectZipf));
                }
                br.targetId = it->second;
                // Dispatch within the neighborhood (handler locality).
                next_block = static_cast<uint32_t>(
                    (st.curBlock
                     + hashMix(seed, st.curBlock, br.targetId + 17) % hot
                     + 1)
                    % prof.numBlocks);
                st.loopActive = false;
                break;
              }
              case BlockPersona::Kind::Uncond: {
                br.branchKind = BranchKind::DirectUncond;
                br.taken = true;
                if (rng.nextBool(prof.coldJumpProb)) {
                    next_block = static_cast<uint32_t>(
                        rng.nextBounded(prof.numBlocks));
                } else {
                    next_block = (st.curBlock
                                  + 1
                                  + static_cast<uint32_t>(
                                      rng.nextBounded(hot)))
                        % prof.numBlocks;
                }
                st.loopActive = false;
                break;
              }
              case BlockPersona::Kind::LoopTail: {
                br.branchKind = BranchKind::DirectCond;
                // Deterministic periodic loop entry (2 of 3 visits): a
                // tail reached right after exiting often falls through,
                // which keeps loop families from trapping control flow --
                // and the period is history-predictable, like real
                // enclosing iteration patterns.
                const uint32_t visit = st.loopVisits[st.curBlock]++;
                if (visit % 3 == 2) {
                    br.taken = false;
                    next_block = linear_next;
                    break;
                }
                st.loopActive = true;
                st.loopTail = st.curBlock;
                st.loopHead = (st.curBlock + prof.numBlocks
                               - persona.loopLen) % prof.numBlocks;
                // Trips: stable per block with mild jitter, so TAGE can
                // learn the exit of short loops.
                st.tripsLeft = persona.baseTrips;
                if (rng.nextBool(0.2))
                    st.tripsLeft += rng.nextRange(-1, 1);
                if (st.tripsLeft < 1)
                    st.tripsLeft = 1;
                --st.tripsLeft;
                br.taken = st.tripsLeft > 0;
                next_block = br.taken ? st.loopHead : linear_next;
                if (!br.taken)
                    st.loopActive = false;
                break;
              }
              case BlockPersona::Kind::Cond:
              default: {
                br.branchKind = BranchKind::DirectCond;
                br.taken = persona.randomBranch
                    ? rng.nextBool(0.5) : rng.nextBool(persona.bias);
                // Taken conditionals skip a block or two forward.
                next_block = br.taken
                    ? (st.curBlock + 1
                       + static_cast<uint32_t>(rng.nextBounded(2) + 1))
                      % prof.numBlocks
                    : linear_next;
                break;
              }
            }
        }

        out.push_back(br);
        ++emitted;
        st.curBlock = next_block;
    }
}

} // namespace concorde
