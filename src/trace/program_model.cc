#include "trace/program_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace concorde
{

namespace
{

// Fixed virtual-address layout. Every analysis / simulation run owns its own
// cold cache state, so traces never share a cache and can share a layout.
constexpr uint64_t kCodeBase = 0x40000000ULL;
constexpr uint64_t kWsBase = 0x80000000ULL;
constexpr uint64_t kSeqBase = 0x100000000ULL;
constexpr uint64_t kStrideBase = 0x800000000ULL;
constexpr uint64_t kWriteBase = 0xF00000000ULL;

/** Per-static-slot private streams (so the stride prefetcher can train). */
constexpr uint64_t kStreamSpacing = 16ULL << 20;   // 16MB per stream
constexpr uint64_t kStreamLines = (16ULL << 20) / 64;

constexpr size_t kProducerRing = 512;
constexpr size_t kStoreRing = 16;

/** Mutable generation state, reset at every chunk boundary. */
struct ChunkState
{
    // Control flow.
    uint32_t curBlock = 0;
    bool loopActive = false;
    uint32_t loopHead = 0;
    uint32_t loopTail = 0;
    int64_t tripsLeft = 0;

    // Dependency tracking (absolute instruction indices).
    int64_t producers[kProducerRing];
    size_t numProducers = 0;
    int64_t lastChase = -1;

    // Recent stores for forwarding loads: (index, address).
    int64_t storeIdx[kStoreRing];
    uint64_t storeAddr[kStoreRing];
    size_t numStores = 0;

    // Pointer-chase state.
    uint64_t chaseState = 0;
};

} // anonymous namespace

ProgramModel::ProgramModel(WorkloadProfile profile, uint64_t seed_in)
    : prof(std::move(profile)), seed(seed_in)
{
    fatal_if(prof.phases.empty(), "workload '%s' has no phases",
             prof.name.c_str());
    fatal_if(prof.numBlocks < 4, "workload '%s': need >= 4 blocks",
             prof.name.c_str());
    buildStaticTables();
}

void
ProgramModel::buildStaticTables()
{
    // Everything TAGE / the I-cache / the prefetcher could learn about a
    // block is a pure function of (program seed, block id): the legacy
    // generator re-drew this whole sequence from a fresh block_rng at
    // every visit. Replaying the same draws here, once per block, yields
    // bitwise-identical tables (the per-visit draw order below is exactly
    // the per-visit order of the old inner loop, and unemitted tail slots
    // of a chunk-truncated visit never fed any later draw).
    blocks.resize(prof.numBlocks);
    slots.clear();
    slots.reserve(static_cast<size_t>(prof.numBlocks)
                  * prof.blockCapacity / 2);

    for (uint32_t b = 0; b < prof.numBlocks; ++b) {
        Rng block_rng(hashMix(seed, 0xB10CULL, b));
        StaticBlock &sb = blocks[b];
        sb.bodyLen = static_cast<uint32_t>(std::clamp<uint64_t>(
            block_rng.nextGeometric(prof.branchEvery), 1,
            prof.blockCapacity - 1));
        // Branch bias skews heavily toward predictable: most real
        // conditionals are 95%+ one-sided. condBias controls the skew.
        const double bias_u = block_rng.nextDouble();
        const double one_sided =
            1.0 - (1.0 - prof.condBias) * bias_u * bias_u;
        sb.bias = block_rng.nextBool(0.7) ? one_sided : 1.0 - one_sided;
        sb.randomBranch = block_rng.nextBool(prof.condRandomFrac);
        sb.loopLen = static_cast<uint32_t>(block_rng.nextBounded(3));
        // Cap static trip counts: unbounded geometric draws create blocks
        // that trap control flow for thousands of instructions.
        sb.baseTrips = 2 + static_cast<int64_t>(std::min(
            block_rng.nextGeometric(prof.meanTrip),
            static_cast<uint64_t>(3.0 * prof.meanTrip)));
        {
            const double ku = block_rng.nextDouble();
            const double p_loop = prof.loopFrac / 3.0;
            if (ku < prof.indirectFrac) {
                sb.kind = BranchKindStatic::Indirect;
            } else if (ku < prof.indirectFrac + prof.uncondFrac) {
                sb.kind = BranchKindStatic::Uncond;
            } else if (ku < prof.indirectFrac + prof.uncondFrac + p_loop) {
                sb.kind = BranchKindStatic::LoopTail;
            } else {
                sb.kind = BranchKindStatic::Cond;
            }
        }

        sb.slotBegin = static_cast<uint32_t>(slots.size());
        for (uint32_t slot = 0; slot < sb.bodyLen; ++slot) {
            StaticSlot ss;
            ss.pc = kCodeBase
                + (static_cast<uint64_t>(b) * prof.blockCapacity + slot)
                  * 4;

            // Opcode class is a static property of the slot.
            const double u = block_rng.nextDouble();
            if (u < prof.fracLoad) {
                ss.type = InstrType::Load;
            } else if (u < prof.fracLoad + prof.fracStore) {
                ss.type = InstrType::Store;
            } else if (block_rng.nextBool(prof.fracFp)) {
                ss.type = block_rng.nextBool(prof.fracDivOfFp)
                    ? InstrType::FpDiv : InstrType::FpAlu;
            } else if (block_rng.nextBool(prof.fracMulDiv)) {
                ss.type = block_rng.nextBool(0.15)
                    ? InstrType::IntDiv : InstrType::IntMul;
            } else {
                ss.type = InstrType::IntAlu;
            }
            // Memory role and stream binding are also static: a given
            // static load walks one stream with one stride.
            ss.roleU = block_rng.nextDouble();
            ss.streamId = hashMix(seed, ss.pc, 0x57F3A8ULL);
            ss.streamBase = (ss.streamId % 1024) * kStreamSpacing;
            slots.push_back(ss);
        }

        sb.indirectTarget = static_cast<uint16_t>(
            hashMix(seed, b, 0x7A26E7ULL)
            % std::max(1, prof.indirectTargets));
        sb.branchPc = kCodeBase
            + (static_cast<uint64_t>(b) * prof.blockCapacity + sb.bodyLen)
              * 4;
    }
}

size_t
ProgramModel::phaseOf(uint64_t chunk_index) const
{
    const uint64_t period = std::max<uint32_t>(1, prof.chunksPerPhase);
    return (chunk_index / period) % prof.phases.size();
}

std::vector<Instruction>
ProgramModel::generateRegion(const RegionSpec &spec) const
{
    std::vector<Instruction> out;
    out.reserve(spec.numInstructions());
    GenScratch scratch;
    for (uint32_t c = 0; c < spec.numChunks; ++c) {
        const int64_t base = static_cast<int64_t>(out.size());
        generateChunkImpl(spec.traceId, spec.startChunk + c, base, scratch,
                          [&out](const Instruction &instr) {
                              out.push_back(instr);
                          });
    }
    return out;
}

TraceColumns
ProgramModel::generateRegionColumns(const RegionSpec &spec) const
{
    TraceColumns out;
    GenScratch scratch;
    generateRegionColumns(spec, out, scratch);
    return out;
}

void
ProgramModel::generateRegionColumns(const RegionSpec &spec,
                                    TraceColumns &out,
                                    GenScratch &scratch) const
{
    out.clear();
    out.reserve(spec.numInstructions());
    for (uint32_t c = 0; c < spec.numChunks; ++c) {
        generateChunk(spec.traceId, spec.startChunk + c, out,
                      static_cast<int64_t>(out.size()), scratch);
    }
}

std::vector<RegionSpec>
shardSpan(const TraceSpan &span, uint32_t region_chunks)
{
    panic_if(region_chunks == 0, "region_chunks must be positive");
    std::vector<RegionSpec> regions;
    regions.reserve((span.numChunks + region_chunks - 1) / region_chunks);
    for (uint64_t at = 0; at < span.numChunks; at += region_chunks) {
        RegionSpec spec;
        spec.programId = span.programId;
        spec.traceId = span.traceId;
        spec.startChunk = span.startChunk + at;
        spec.numChunks = static_cast<uint32_t>(
            std::min<uint64_t>(region_chunks, span.numChunks - at));
        regions.push_back(spec);
    }
    return regions;
}

void
ProgramModel::generateChunk(int trace_id, uint64_t chunk_index,
                            std::vector<Instruction> &out,
                            int64_t base) const
{
    GenScratch scratch;
    generateChunkImpl(trace_id, chunk_index, base, scratch,
                      [&out](const Instruction &instr) {
                          out.push_back(instr);
                      });
}

void
ProgramModel::generateChunk(int trace_id, uint64_t chunk_index,
                            TraceColumns &out, int64_t base,
                            GenScratch &scratch) const
{
    out.reserve(out.size() + kChunkLen);
    generateChunkImpl(trace_id, chunk_index, base, scratch,
                      [&out](const Instruction &instr) {
                          out.append(instr);
                      });
}

template <typename Emit>
void
ProgramModel::generateChunkImpl(int trace_id, uint64_t chunk_index,
                                int64_t base, GenScratch &scratch,
                                Emit &&emit) const
{
    const PhaseProfile &phase = prof.phases[phaseOf(chunk_index)];
    Rng rng(hashMix(seed, static_cast<uint64_t>(trace_id) + 1,
                    chunk_index + 0x5eedULL));

    // Size the flat scratch to this model and open a fresh epoch: every
    // per-slot / per-block history below starts the chunk invalid without
    // touching (or reallocating) the backing arrays.
    if (scratch.streamPos.size() < slots.size()) {
        scratch.streamPos.resize(slots.size());
        scratch.streamEpoch.assign(slots.size(), 0);
    }
    if (scratch.lastIndirect.size() < blocks.size()) {
        scratch.lastIndirect.resize(blocks.size());
        scratch.indirectEpoch.assign(blocks.size(), 0);
        scratch.loopVisits.resize(blocks.size());
        scratch.loopEpoch.assign(blocks.size(), 0);
    }
    ++scratch.epoch;
    if (scratch.epoch == 0) {
        // Epoch wrap: invalidate explicitly (once per 4G chunks).
        std::fill(scratch.streamEpoch.begin(), scratch.streamEpoch.end(),
                  ~0u);
        std::fill(scratch.indirectEpoch.begin(),
                  scratch.indirectEpoch.end(), ~0u);
        std::fill(scratch.loopEpoch.begin(), scratch.loopEpoch.end(), ~0u);
        ++scratch.epoch;
    }
    const uint32_t epoch = scratch.epoch;

    ChunkState st;
    st.curBlock = static_cast<uint32_t>(rng.nextBounded(prof.numBlocks));
    st.chaseState = rng.next();

    const uint64_t ws_lines = std::max<uint64_t>(1, phase.wsBytes / 64);
    const double isb_prob = prof.isbPer1k / 1000.0;

    auto record_producer = [&](int64_t idx) {
        st.producers[st.numProducers % kProducerRing] = idx;
        ++st.numProducers;
    };

    auto pick_producer = [&](double mean_dist) -> int32_t {
        if (st.numProducers == 0)
            return -1;
        const uint64_t avail = std::min(st.numProducers, kProducerRing);
        uint64_t dist = rng.nextGeometric(mean_dist);
        if (dist > avail)
            dist = avail;
        const size_t slot = (st.numProducers - dist) % kProducerRing;
        return static_cast<int32_t>(st.producers[slot]);
    };

    auto random_ws_line = [&](uint64_t salt) -> uint64_t {
        // Zipf rank -> stable pseudo-random permutation of WS lines so that
        // hot lines are the same in every chunk of the trace.
        const uint64_t rank = rng.nextZipf(ws_lines, phase.wsZipf);
        return hashMix(seed ^ 0xDA7Au, rank, salt) % ws_lines;
    };

    // A static slot's private stream cursor; starts at a chunk-dependent
    // offset and advances per execution, giving the slot a constant stride.
    auto stream_addr = [&](uint64_t stream_base, uint32_t slot_ix,
                           uint64_t stride) -> uint64_t {
        const StaticSlot &ss = slots[slot_ix];
        uint64_t pos;
        if (scratch.streamEpoch[slot_ix] != epoch) {
            scratch.streamEpoch[slot_ix] = epoch;
            pos = hashMix(ss.streamId, chunk_index) % kStreamLines;
        } else {
            pos = scratch.streamPos[slot_ix];
        }
        scratch.streamPos[slot_ix] = pos + 1;
        const uint64_t span = kStreamLines * 64 / std::max<uint64_t>(
            1, stride);
        return stream_base + ss.streamBase
            + (pos % std::max<uint64_t>(1, span)) * stride;
    };

    const uint64_t target_count = kChunkLen;
    uint64_t emitted = 0;

    while (emitted < target_count) {
        const StaticBlock &persona = blocks[st.curBlock];

        // ---- block body (static per-slot opcode/role tables) ----
        for (uint32_t slot = 0;
             slot < persona.bodyLen && emitted < target_count;
             ++slot, ++emitted) {
            const uint32_t slot_ix = persona.slotBegin + slot;
            const StaticSlot &ss = slots[slot_ix];
            Instruction instr;
            instr.pc = ss.pc;

            InstrType type = ss.type;
            const double role_u = ss.roleU;

            // Barriers are rare dynamic events, not static slots.
            if (isb_prob > 0 && rng.nextBool(isb_prob))
                type = InstrType::Isb;

            instr.type = type;
            const int64_t self = base + static_cast<int64_t>(emitted);

            switch (type) {
              case InstrType::Load: {
                const double m = role_u;
                const PhaseProfile &ph = phase;
                if (m < ph.seqFrac) {
                    // Sequential element streams: 8-byte elements, so most
                    // accesses hit the line fetched by the previous ones.
                    instr.memAddr = stream_addr(kSeqBase, slot_ix, 8);
                    instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                } else if (m < ph.seqFrac + ph.strideFrac) {
                    instr.memAddr = stream_addr(
                        kStrideBase, slot_ix,
                        std::max<uint64_t>(64, ph.strideBytes));
                    instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                } else if (m < ph.seqFrac + ph.strideFrac + ph.chaseFrac) {
                    st.chaseState = hashMix(st.chaseState, 0xC4A5EULL);
                    const uint64_t rank = st.chaseState % ws_lines;
                    instr.memAddr = kWsBase
                        + (hashMix(seed ^ 0xDA7Au, rank, 1) % ws_lines) * 64;
                    // The defining property of a chase: the address depends
                    // on the previous chase load's value.
                    if (st.lastChase >= 0) {
                        instr.srcDeps[0] =
                            static_cast<int32_t>(st.lastChase);
                    }
                    st.lastChase = self;
                } else if (m < ph.seqFrac + ph.strideFrac + ph.chaseFrac
                               + ph.forwardFrac
                           && st.numStores > 0) {
                    const size_t pick = rng.nextBounded(
                        std::min(st.numStores, kStoreRing));
                    const size_t slot_pos =
                        (st.numStores - 1 - pick) % kStoreRing;
                    instr.memAddr = st.storeAddr[slot_pos];
                    instr.memDep =
                        static_cast<int32_t>(st.storeIdx[slot_pos]);
                    instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                } else {
                    instr.memAddr = kWsBase + random_ws_line(2) * 64;
                    instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                }
                record_producer(self);
                break;
              }
              case InstrType::Store: {
                if (role_u < phase.storeSeqFrac) {
                    instr.memAddr = stream_addr(kWriteBase, slot_ix, 8);
                } else {
                    instr.memAddr = kWsBase + random_ws_line(3) * 64;
                }
                instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                if (rng.nextBool(prof.secondSrcProb))
                    instr.srcDeps[1] = pick_producer(prof.depMeanDist);
                st.storeIdx[st.numStores % kStoreRing] = self;
                st.storeAddr[st.numStores % kStoreRing] = instr.memAddr;
                ++st.numStores;
                break;
              }
              case InstrType::Isb:
                break;
              default: {
                instr.srcDeps[0] = pick_producer(prof.depMeanDist);
                if (rng.nextBool(prof.secondSrcProb))
                    instr.srcDeps[1] = pick_producer(prof.depMeanDist);
                record_producer(self);
                break;
              }
            }
            emit(instr);
        }
        if (emitted >= target_count)
            break;

        // ---- terminating branch ----
        Instruction br;
        br.type = InstrType::Branch;
        br.pc = persona.branchPc;
        // Branch resolution waits on a recent producer.
        br.srcDeps[0] = pick_producer(3.0);

        uint32_t next_block;
        const uint32_t linear_next = (st.curBlock + 1) % prof.numBlocks;
        const uint32_t hot = std::max<uint32_t>(
            2, static_cast<uint32_t>(prof.hotGroupFrac * prof.numBlocks));

        if (st.loopActive && st.curBlock == st.loopTail) {
            // Active loop back-edge: taken while iterations remain. On
            // exit, hop past the immediate successor occasionally so
            // adjacent loop families do not recapture control forever.
            br.branchKind = BranchKind::DirectCond;
            --st.tripsLeft;
            br.taken = st.tripsLeft > 0;
            if (br.taken) {
                next_block = st.loopHead;
            } else {
                next_block = (st.curBlock + 1
                              + static_cast<uint32_t>(rng.nextBounded(2)))
                    % prof.numBlocks;
                st.loopActive = false;
            }
        } else {
            switch (persona.kind) {
              case BranchKindStatic::Indirect: {
                br.branchKind = BranchKind::Indirect;
                br.taken = true;
                // Indirect targets repeat with temporal locality, like
                // interpreter dispatch: hard but not hopeless to predict.
                // Each site's default target is a static property, so a
                // site revisited across chunks stays predictable.
                uint16_t last;
                if (scratch.indirectEpoch[st.curBlock] != epoch) {
                    scratch.indirectEpoch[st.curBlock] = epoch;
                    last = persona.indirectTarget;
                } else {
                    last = scratch.lastIndirect[st.curBlock];
                }
                if (!rng.nextBool(prof.indirectRepeat)) {
                    last = static_cast<uint16_t>(rng.nextZipf(
                        std::max(1, prof.indirectTargets),
                        prof.indirectZipf));
                }
                scratch.lastIndirect[st.curBlock] = last;
                br.targetId = last;
                // Dispatch within the neighborhood (handler locality).
                next_block = static_cast<uint32_t>(
                    (st.curBlock
                     + hashMix(seed, st.curBlock, br.targetId + 17) % hot
                     + 1)
                    % prof.numBlocks);
                st.loopActive = false;
                break;
              }
              case BranchKindStatic::Uncond: {
                br.branchKind = BranchKind::DirectUncond;
                br.taken = true;
                if (rng.nextBool(prof.coldJumpProb)) {
                    next_block = static_cast<uint32_t>(
                        rng.nextBounded(prof.numBlocks));
                } else {
                    next_block = (st.curBlock
                                  + 1
                                  + static_cast<uint32_t>(
                                      rng.nextBounded(hot)))
                        % prof.numBlocks;
                }
                st.loopActive = false;
                break;
              }
              case BranchKindStatic::LoopTail: {
                br.branchKind = BranchKind::DirectCond;
                // Deterministic periodic loop entry (2 of 3 visits): a
                // tail reached right after exiting often falls through,
                // which keeps loop families from trapping control flow --
                // and the period is history-predictable, like real
                // enclosing iteration patterns.
                uint32_t visit;
                if (scratch.loopEpoch[st.curBlock] != epoch) {
                    scratch.loopEpoch[st.curBlock] = epoch;
                    visit = 0;
                } else {
                    visit = scratch.loopVisits[st.curBlock];
                }
                scratch.loopVisits[st.curBlock] = visit + 1;
                if (visit % 3 == 2) {
                    br.taken = false;
                    next_block = linear_next;
                    break;
                }
                st.loopActive = true;
                st.loopTail = st.curBlock;
                st.loopHead = (st.curBlock + prof.numBlocks
                               - persona.loopLen) % prof.numBlocks;
                // Trips: stable per block with mild jitter, so TAGE can
                // learn the exit of short loops.
                st.tripsLeft = persona.baseTrips;
                if (rng.nextBool(0.2))
                    st.tripsLeft += rng.nextRange(-1, 1);
                if (st.tripsLeft < 1)
                    st.tripsLeft = 1;
                --st.tripsLeft;
                br.taken = st.tripsLeft > 0;
                next_block = br.taken ? st.loopHead : linear_next;
                if (!br.taken)
                    st.loopActive = false;
                break;
              }
              case BranchKindStatic::Cond:
              default: {
                br.branchKind = BranchKind::DirectCond;
                br.taken = persona.randomBranch
                    ? rng.nextBool(0.5) : rng.nextBool(persona.bias);
                // Taken conditionals skip a block or two forward.
                next_block = br.taken
                    ? (st.curBlock + 1
                       + static_cast<uint32_t>(rng.nextBounded(2) + 1))
                      % prof.numBlocks
                    : linear_next;
                break;
              }
            }
        }

        emit(br);
        ++emitted;
        st.curBlock = next_block;
    }
}

} // namespace concorde
