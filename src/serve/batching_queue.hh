/**
 * @file
 * BatchingQueue: turns independent single-prediction requests into the
 * dynamic batches the inference engine wants -- without giving up the
 * tail. Clients submit one (model, region, design point) request at a
 * time with a completion callback; a dispatcher thread coalesces
 * pending requests *per request class* and flushes a class when it
 * reaches its maxBatch OR its oldest request has aged maxAge
 * (size-or-age, one policy per class). Interactive requests ride in
 * small, young batches; bulk requests fill wide GEMM batches.
 *
 * The queue is also where a service's load-shedding lives:
 *  - per-model admission control: at most maxInFlightPerKey accepted
 *    requests per admission key (the model registration id); beyond
 *    that, submissions complete immediately with OVERLOADED;
 *  - per-request timeouts: a request that waits in the queue past its
 *    deadline completes with TIMEOUT instead of occupying a batch;
 *  - shutdown: pending requests are flushed, later submissions
 *    complete with SHUTDOWN.
 *
 * Routine failures are ServeStatus values (serve_api.hh), never
 * exceptions -- the network front end serializes them directly. A batch
 * handler that throws completes every request in the batch with
 * INTERNAL_ERROR carrying the exception message.
 */

#ifndef CONCORDE_SERVE_BATCHING_QUEUE_HH
#define CONCORDE_SERVE_BATCHING_QUEUE_HH

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hh"
#include "serve/model_registry.hh"
#include "serve/serve_api.hh"

namespace concorde
{
namespace serve
{

/** One prediction request, with its model resolved at submit time. */
struct PredictionRequest
{
    ModelHandle model;
    RegionSpec region;
    UarchParams params;
    uint64_t key = 0;   ///< cache key (model id, region, design point)
    RequestClass cls = RequestClass::Interactive;
    /** Max queue wait before the request times out (0 = no limit). */
    std::chrono::microseconds timeout{0};
};

/** Size-or-age flush policy of one request class. */
struct ClassPolicy
{
    size_t maxBatch = 64;                   ///< flush at this size...
    std::chrono::microseconds maxAge{200};  ///< ...or at this age
};

/** Dynamic-batching knobs. */
struct BatchingConfig
{
    /**
     * Per-class flush policies, indexed by RequestClass. Interactive:
     * small batches, short age -- the p99 knob. Bulk: wide batches,
     * longer age -- the throughput knob.
     */
    std::array<ClassPolicy, kNumRequestClasses> classes{{
        {16, std::chrono::microseconds(50)},    // Interactive
        {128, std::chrono::microseconds(400)},  // Bulk
    }};

    /**
     * Admission bound: max accepted-but-unfinished requests per
     * admission key (model registration id). 0 = unbounded.
     */
    size_t maxInFlightPerKey = 0;

    ClassPolicy &policy(RequestClass c)
    {
        return classes[static_cast<size_t>(c)];
    }
    const ClassPolicy &policy(RequestClass c) const
    {
        return classes[static_cast<size_t>(c)];
    }
};

/** Queue traffic counters. */
struct QueueStats
{
    uint64_t submitted = 0;         ///< accepted into the queue
    uint64_t batches = 0;
    uint64_t flushOnSize = 0;
    uint64_t flushOnDeadline = 0;   ///< age-triggered flushes
    uint64_t flushOnShutdown = 0;
    uint64_t timeouts = 0;          ///< completed with TIMEOUT
    uint64_t rejectedOverload = 0;  ///< completed with OVERLOADED
    uint64_t rejectedShutdown = 0;  ///< completed with SHUTDOWN
    /** batchSizeCounts[s] = number of dispatched batches of size s. */
    std::vector<uint64_t> batchSizeCounts;
    /** Accepted requests per class (same indexing as BatchingConfig). */
    std::array<uint64_t, kNumRequestClasses> submittedByClass{};
};

/**
 * The coalescing queue. The handler receives a flushed batch and
 * returns one full PredictResponse per request (same order) -- the
 * handler owns the status, the CPI, and the uncertainty fields
 * (interval, OOD flag, fallback route). Every submitted request's
 * completion callback is invoked exactly once -- with the handler's
 * response, or with a non-OK status the queue produced itself
 * (TIMEOUT/OVERLOADED/SHUTDOWN, or INTERNAL_ERROR when the handler
 * threw); destruction flushes everything still pending and waits for
 * in-flight batches. Completions run on the dispatcher / pool / caller
 * thread and must not block for long; re-submitting from a completion
 * is allowed.
 */
class BatchingQueue
{
  public:
    using BatchFn =
        std::function<std::vector<PredictResponse>(
            const std::vector<PredictionRequest> &)>;
    using Completion = std::function<void(PredictResponse)>;

    /**
     * @param pool executor for batch dispatch (nullptr = run batches on
     *             the dispatcher thread itself)
     */
    BatchingQueue(BatchingConfig config, BatchFn handler,
                  ThreadPool *pool = nullptr);
    ~BatchingQueue();

    BatchingQueue(const BatchingQueue &) = delete;
    BatchingQueue &operator=(const BatchingQueue &) = delete;

    /**
     * Enqueue a request; `done` is invoked exactly once with the
     * response. Rejections (OVERLOADED under admission pressure,
     * SHUTDOWN after shutdown()) complete synchronously on the calling
     * thread. Never throws.
     */
    void submit(PredictionRequest request, Completion done);

    /** Future-returning convenience over the callback form. */
    std::future<PredictResponse> submit(PredictionRequest request);

    /** Flush pending work, wait for every completion, stop. */
    void shutdown();

    /** True when no accepted request is pending or executing. */
    bool idle() const;

    QueueStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        PredictionRequest request;
        Completion done;
        Clock::time_point enqueued;
        Clock::time_point deadline;     ///< valid iff hasDeadline
        bool hasDeadline = false;
        uint32_t admissionKey = 0;
    };

    void dispatcherLoop();
    /** Earliest age/timeout deadline across pending work; mtx held. */
    Clock::time_point nextDeadlineLocked(Clock::time_point now) const;
    bool anyClassFullLocked() const;
    size_t totalPendingLocked() const;
    /** Remove & return pending requests past their deadline; mtx held. */
    std::vector<Pending> takeExpiredLocked(Clock::time_point now);
    /** Pops up to the class's maxBatch requests; mtx held. */
    std::vector<Pending> popBatchLocked(size_t cls);
    void runBatch(std::vector<Pending> batch);
    /** Invoke the completion, then release admission accounting. */
    void finish(Pending &&p, PredictResponse response);

    const BatchingConfig cfg;
    const BatchFn handler;
    ThreadPool *const pool;

    mutable std::mutex mtx;
    std::condition_variable cv;         ///< dispatcher wakeups
    std::condition_variable cvDrained;  ///< shutdown waits on outstanding
    std::array<std::deque<Pending>, kNumRequestClasses> pending;
    /** Accepted-but-unfinished requests (pending + executing). */
    size_t outstanding = 0;
    /** Per-admission-key share of `outstanding` (admission control). */
    std::unordered_map<uint32_t, size_t> inFlightByKey;
    bool stopping = false;
    QueueStats counters;
    std::thread dispatcher;
};

} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_BATCHING_QUEUE_HH
