/**
 * @file
 * BatchingQueue: turns independent single-prediction requests into the
 * dynamic batches the inference engine wants. Clients submit one
 * (model, region, design point) request at a time and get a future; a
 * dispatcher thread coalesces pending requests and flushes a batch when
 * it reaches `maxBatch` or when the oldest request has waited
 * `maxDelay` (whichever comes first), dispatching the batch handler
 * through a ThreadPool so multiple batches can be in flight.
 *
 * This is the serving analogue of ConcordePredictor::predictCpiBatch:
 * that API needs the caller to already hold a vector of design points,
 * while a service sees requests arriving one by one from many clients.
 */

#ifndef CONCORDE_SERVE_BATCHING_QUEUE_HH
#define CONCORDE_SERVE_BATCHING_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "serve/model_registry.hh"
#include "trace/program_model.hh"
#include "uarch/params.hh"

namespace concorde
{
namespace serve
{

/** One prediction request, with its model resolved at submit time. */
struct PredictionRequest
{
    ModelHandle model;
    RegionSpec region;
    UarchParams params;
    uint64_t key = 0;   ///< cache key (model id, region, design point)
};

/** Dynamic-batching knobs. */
struct BatchingConfig
{
    size_t maxBatch = 64;                       ///< flush at this size
    std::chrono::microseconds maxDelay{200};    ///< flush deadline
};

/** Why a batch was flushed. */
struct QueueStats
{
    uint64_t submitted = 0;
    uint64_t batches = 0;
    uint64_t flushOnSize = 0;
    uint64_t flushOnDeadline = 0;
    uint64_t flushOnShutdown = 0;
    /** batchSizeCounts[s] = number of dispatched batches of size s. */
    std::vector<uint64_t> batchSizeCounts;
};

/**
 * The coalescing queue. The handler receives a flushed batch and
 * returns one prediction per request (same order); if it throws, the
 * exception is propagated to every future in the batch. Destruction
 * stops new submissions, flushes everything still pending, and waits
 * for in-flight batches, so every accepted future becomes ready.
 */
class BatchingQueue
{
  public:
    using BatchFn =
        std::function<std::vector<double>(
            const std::vector<PredictionRequest> &)>;

    /**
     * @param pool executor for batch dispatch (nullptr = run batches on
     *             the dispatcher thread itself)
     */
    BatchingQueue(BatchingConfig config, BatchFn handler,
                  ThreadPool *pool = nullptr);
    ~BatchingQueue();

    BatchingQueue(const BatchingQueue &) = delete;
    BatchingQueue &operator=(const BatchingQueue &) = delete;

    /**
     * Enqueue a request. Throws std::runtime_error after shutdown().
     * The future yields the prediction or rethrows the handler's
     * exception.
     */
    std::future<double> submit(PredictionRequest request);

    /** Flush pending work, wait for in-flight batches, stop. */
    void shutdown();

    QueueStats stats() const;

  private:
    struct Pending
    {
        PredictionRequest request;
        std::promise<double> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void dispatcherLoop();
    /** Pops up to maxBatch requests; call with `mtx` held. */
    std::vector<Pending> popBatchLocked();
    void runBatch(std::vector<Pending> batch);

    const BatchingConfig cfg;
    const BatchFn handler;
    ThreadPool *const pool;

    mutable std::mutex mtx;
    std::condition_variable cv;         ///< dispatcher wakeups
    std::condition_variable cvDrained;  ///< shutdown waits on in-flight
    std::deque<Pending> pending;
    size_t inFlight = 0;
    bool stopping = false;
    QueueStats counters;
    std::thread dispatcher;
};

} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_BATCHING_QUEUE_HH
