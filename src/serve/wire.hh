/**
 * @file
 * Wire encoding of the serve protocol (see net_server.hh for the full
 * protocol specification). This layer is deliberately separate from the
 * sockets: frames encode into / decode from byte buffers, so the exact
 * same code serves the server, the client library, the load generator,
 * and the unit tests -- no network required.
 *
 * Unlike BinaryReader (a trusted local-cache format that aborts on
 * short reads), decoding here is bounds-checked and total: malformed
 * input from the network can never crash the server, it just fails the
 * decode. Integers are little-endian, matching the repo's artifact
 * convention; the design point travels as explicit (ParamId, value)
 * pairs -- the 20 Table-1 axes fully determine a UarchParams, and the
 * field-wise encoding is independent of struct layout.
 */

#ifndef CONCORDE_SERVE_WIRE_HH
#define CONCORDE_SERVE_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/serve_api.hh"

namespace concorde
{
namespace serve
{
namespace wire
{

/** Frame header magic: "CNCD". */
constexpr uint32_t kMagic = 0x434E4344;
/**
 * Current protocol version. v2 = v1 + uncertainty fields in the
 * response body (flags byte + conformal interval bounds); request
 * bodies are identical across both. The server accepts kMinVersion..
 * kVersion and answers each frame at the version it arrived with, so
 * v1 clients keep getting v1 (point-only) responses.
 */
constexpr uint8_t kVersion = 2;
constexpr uint8_t kMinVersion = 1;

/** Response flag bits (v2+). Append-only, like the enums. */
constexpr uint8_t kFlagCalibrated = 1 << 0;
constexpr uint8_t kFlagOod = 1 << 1;
constexpr uint8_t kFlagFallback = 1 << 2;
constexpr uint8_t kKnownFlagsMask =
    kFlagCalibrated | kFlagOod | kFlagFallback;

constexpr uint8_t kTypeRequest = 1;
constexpr uint8_t kTypeResponse = 2;

/**
 * Upper bound on a frame payload. Model names and diagnostics are
 * short; anything bigger is a corrupt or hostile length prefix, and the
 * connection is dropped before allocating.
 */
constexpr uint32_t kMaxPayloadBytes = 1 << 16;

/** Bytes of the length prefix that precedes every payload. */
constexpr size_t kLengthPrefixBytes = 4;

/** One request frame: a client-chosen id plus the typed request. */
struct RequestFrame
{
    uint64_t requestId = 0;
    /** Encode: version to emit. Decode: version the peer spoke. */
    uint8_t version = kVersion;
    PredictRequest request;
};

/** One response frame, matched to its request by id. */
struct ResponseFrame
{
    uint64_t requestId = 0;
    /** Encode: version to emit. Decode: version the peer spoke. */
    uint8_t version = kVersion;
    PredictResponse response;
};

/** Three-way decode outcome; see decodeRequestEx. */
enum class DecodeResult : uint8_t
{
    Ok = 0,
    /** Connection-fatal garbage (bad magic/type, truncation, ...). */
    Malformed = 1,
    /**
     * Well-formed header with a version outside kMinVersion..kVersion.
     * out.requestId is valid, so the server can send a diagnostic
     * response naming its supported range before closing.
     */
    UnsupportedVersion = 2,
};

/**
 * Append a complete request frame -- length prefix included -- to
 * `out`. The buffer is not cleared: callers pipeline many frames into
 * one write.
 */
void encodeRequest(const RequestFrame &frame, std::vector<uint8_t> &out);

/** Append a complete response frame (length prefix included). */
void encodeResponse(const ResponseFrame &frame, std::vector<uint8_t> &out);

/**
 * Decode one request payload (the bytes after the length prefix).
 * @return false if the payload is malformed: bad magic/version/type,
 * truncated field, trailing garbage, or an out-of-range enum. A false
 * return is connection-fatal by protocol.
 */
bool decodeRequest(const uint8_t *data, size_t len, RequestFrame &out);

/**
 * Like decodeRequest, but distinguishes "garbage" from "a well-formed
 * frame speaking a version this build does not" -- the latter deserves
 * a diagnostic response before the close (out.requestId is filled).
 */
DecodeResult decodeRequestEx(const uint8_t *data, size_t len,
                             RequestFrame &out);

/** Decode one response payload; same contract as decodeRequest. */
bool decodeResponse(const uint8_t *data, size_t len, ResponseFrame &out);

} // namespace wire
} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_WIRE_HH
