#include "serve/serve_api.hh"

namespace concorde
{
namespace serve
{

const char *
serveStatusName(ServeStatus status)
{
    switch (status) {
      case ServeStatus::OK: return "ok";
      case ServeStatus::UNKNOWN_MODEL: return "unknown_model";
      case ServeStatus::TIMEOUT: return "timeout";
      case ServeStatus::OVERLOADED: return "overloaded";
      case ServeStatus::SHUTDOWN: return "shutdown";
      case ServeStatus::INTERNAL_ERROR: return "internal_error";
    }
    return "invalid";
}

const char *
requestClassName(RequestClass cls)
{
    switch (cls) {
      case RequestClass::Interactive: return "interactive";
      case RequestClass::Bulk: return "bulk";
    }
    return "invalid";
}

} // namespace serve
} // namespace concorde
