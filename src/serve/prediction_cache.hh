/**
 * @file
 * Sharded LRU cache for served CPI predictions. Keys are 64-bit hashes
 * of (model, region, design point); values are the exact doubles the
 * batched inference path produced, so a cache hit returns a prediction
 * identical to a recompute. Long programs revisit the same regions over
 * and over (Section 5.1 samples regions with replacement), which is
 * where the cache pays off.
 */

#ifndef CONCORDE_SERVE_PREDICTION_CACHE_HH
#define CONCORDE_SERVE_PREDICTION_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

namespace concorde
{
namespace serve
{

/** Snapshot of cache effectiveness counters. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t capacity = 0;

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

/**
 * Thread-safe LRU map from prediction key to predicted CPI.
 * A capacity of 0 disables caching (every lookup misses, nothing is
 * stored).
 */
class PredictionCache
{
  public:
    explicit PredictionCache(size_t capacity);

    /**
     * Look up a key; on a hit, refreshes recency and writes the value.
     * Counts one hit or one miss.
     */
    bool lookup(uint64_t key, double &value);

    /** Insert or refresh a key, evicting the LRU entry when full. */
    void insert(uint64_t key, double value);

    CacheStats stats() const;
    void clear();

  private:
    struct Entry
    {
        uint64_t key;
        double value;
    };

    mutable std::mutex mtx;
    size_t cap;
    std::list<Entry> lru;   ///< front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
};

} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_PREDICTION_CACHE_HH
