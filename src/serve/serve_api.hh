/**
 * @file
 * The typed request/response contract of the serving stack.
 *
 * Every way into the service -- the in-process typed API, the legacy
 * predictAsync/predict/predictSpan shims, and the network front end
 * (net_server.hh) -- speaks PredictRequest -> PredictResponse. Routine
 * failures are *statuses*, not exceptions: a wire protocol cannot
 * serialize a std::invalid_argument, and a client under load must be
 * able to distinguish "your model name is wrong" (UNKNOWN_MODEL) from
 * "come back later" (OVERLOADED) from "you waited too long" (TIMEOUT)
 * without parsing strings. Exceptions remain for programming errors
 * only; a handler fault inside the service surfaces as INTERNAL_ERROR
 * with a diagnostic message.
 */

#ifndef CONCORDE_SERVE_SERVE_API_HH
#define CONCORDE_SERVE_SERVE_API_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/program_model.hh"
#include "uarch/params.hh"

namespace concorde
{
namespace serve
{

/**
 * Disposition of one prediction request. Values are part of the wire
 * protocol (serialized as a u8) -- append, never renumber.
 */
enum class ServeStatus : uint8_t
{
    OK = 0,             ///< cpi holds the prediction
    UNKNOWN_MODEL = 1,  ///< no model registered under the requested name
    TIMEOUT = 2,        ///< request expired while queued
    OVERLOADED = 3,     ///< per-model admission control rejected it
    SHUTDOWN = 4,       ///< service is stopping; request not accepted
    INTERNAL_ERROR = 5, ///< handler fault; message has the diagnostic
};

constexpr size_t kNumServeStatuses = 6;

/** Stable lowercase name ("ok", "timeout", ...) for logs and JSON. */
const char *serveStatusName(ServeStatus status);

/**
 * Latency class of a request, used by the batcher's size-OR-age flush
 * policy (BatchingConfig::classes). Interactive requests coalesce into
 * small batches flushed after a short age -- the tail-latency path;
 * Bulk requests fill large batches for GEMM throughput -- sweeps,
 * dataset labeling, pipeline fan-out.
 */
enum class RequestClass : uint8_t
{
    Interactive = 0,
    Bulk = 1,
};

constexpr size_t kNumRequestClasses = 2;

/** Stable lowercase name ("interactive", "bulk"). */
const char *requestClassName(RequestClass cls);

/** One typed prediction request. */
struct PredictRequest
{
    std::string model;          ///< registry name
    RegionSpec region;
    UarchParams params;
    RequestClass cls = RequestClass::Interactive;
    /** Max time the request may wait in the queue (0 = no limit). */
    std::chrono::microseconds timeout{0};
};

/**
 * The typed answer; cpi is meaningful only when status == OK.
 *
 * Uncertainty fields (wire protocol v2): when `calibrated` is true,
 * [lo, hi] is the server's (1-alpha) conformal interval around cpi
 * (alpha is a serve-side knob); an uncalibrated model serves lo == hi
 * == 0 with calibrated == false. `ood` marks a request whose features
 * fell outside the model's calibration distribution; `fallback` marks
 * an answer produced by the cycle-level simulator instead of the ML
 * path -- ground truth, so its interval collapses to [cpi, cpi].
 */
struct PredictResponse
{
    ServeStatus status = ServeStatus::OK;
    double cpi = 0.0;
    /** Conformal interval bounds (meaningful iff calibrated). */
    double lo = 0.0;
    double hi = 0.0;
    /** True when [lo, hi] carries a real conformal interval. */
    bool calibrated = false;
    /** Features outside the calibration distribution. */
    bool ood = false;
    /** Answered by the cycle-level simulator (ground truth). */
    bool fallback = false;
    /** Diagnostic for INTERNAL_ERROR (empty otherwise). */
    std::string message;

    bool ok() const { return status == ServeStatus::OK; }
    /** Interval width relative to the point prediction. */
    double relativeWidth() const
    {
        return cpi > 0.0 ? (hi - lo) / cpi : 0.0;
    }
};

} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_SERVE_API_HH
