#include "serve/net_server.hh"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/wire.hh"

namespace concorde
{
namespace serve
{

namespace
{

/** Read buffer growth quantum. */
constexpr size_t kReadChunk = 16 * 1024;

uint32_t
readLe32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

} // anonymous namespace

/**
 * All event-loop state. Lives in a shared_ptr because prediction
 * completions -- which may run on dispatcher/pool threads after stop()
 * -- post into the outbox and kick the eventfd; both must stay valid
 * until the last completion drops its reference.
 */
struct NetServer::Loop : std::enable_shared_from_this<NetServer::Loop>
{
    struct Conn
    {
        int fd = -1;
        std::vector<uint8_t> readBuf;
        std::vector<uint8_t> writeBuf;  ///< encoded, not yet fully sent
        size_t written = 0;             ///< sent prefix of writeBuf
        bool wantWrite = false;         ///< EPOLLOUT armed
    };

    int epollFd = -1;
    int wakeFd = -1;        ///< eventfd: completions -> loop
    int listenFd = -1;
    std::atomic<bool> stopping{false};

    /** Touched only by the loop thread. */
    std::unordered_map<int, std::shared_ptr<Conn>> conns;

    /** Completed responses waiting for the loop to write them out. */
    std::mutex outboxMtx;
    std::vector<std::pair<std::weak_ptr<Conn>, std::vector<uint8_t>>> outbox;

    std::atomic<uint64_t> connectionsAccepted{0};
    std::atomic<uint64_t> connectionsClosed{0};
    std::atomic<uint64_t> framesIn{0};
    std::atomic<uint64_t> framesOut{0};
    std::atomic<uint64_t> protocolErrors{0};
    std::atomic<uint64_t> unsupportedVersionFrames{0};
    std::atomic<uint64_t> bytesIn{0};
    std::atomic<uint64_t> bytesOut{0};

    ~Loop()
    {
        if (epollFd >= 0)
            ::close(epollFd);
        if (wakeFd >= 0)
            ::close(wakeFd);
        if (listenFd >= 0)
            ::close(listenFd);
    }

    /** Queue an encoded response and wake the loop (any thread). */
    void
    post(std::weak_ptr<Conn> conn, std::vector<uint8_t> frame)
    {
        {
            std::lock_guard<std::mutex> lock(outboxMtx);
            outbox.emplace_back(std::move(conn), std::move(frame));
        }
        const uint64_t one = 1;
        // The eventfd stays open for the Loop's whole life; a wake
        // after the loop thread exited is simply never read.
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd, &one, sizeof(one));
    }

    void
    wake()
    {
        const uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd, &one, sizeof(one));
    }

    void run(PredictionService &service);
    void acceptAll();
    void readable(const std::shared_ptr<Conn> &conn,
                  PredictionService &service);
    bool parseFrames(const std::shared_ptr<Conn> &conn,
                     PredictionService &service);
    void drainOutbox();
    /** @return false if the connection died on a write error. */
    bool flushWrites(const std::shared_ptr<Conn> &conn);
    void updateWriteInterest(const std::shared_ptr<Conn> &conn);
    void killConn(int fd);
};

void
NetServer::Loop::acceptAll()
{
    for (;;) {
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            return;     // EAGAIN or transient accept error: try later
        // Frames are small and latency is the product; never Nagle.
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        conns.emplace(fd, std::move(conn));
        ++connectionsAccepted;
    }
}

void
NetServer::Loop::killConn(int fd)
{
    auto it = conns.find(fd);
    if (it == conns.end())
        return;
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    // Dropping the map's shared_ptr invalidates the weak_ptrs held by
    // in-flight completions: their responses are discarded in
    // drainOutbox instead of being written to a dead socket.
    conns.erase(it);
    ++connectionsClosed;
}

bool
NetServer::Loop::parseFrames(const std::shared_ptr<Conn> &conn,
                             PredictionService &service)
{
    auto &buf = conn->readBuf;
    size_t at = 0;
    while (buf.size() - at >= wire::kLengthPrefixBytes) {
        const uint32_t payload = readLe32(buf.data() + at);
        if (payload > wire::kMaxPayloadBytes) {
            ++protocolErrors;
            return false;
        }
        if (buf.size() - at - wire::kLengthPrefixBytes < payload)
            break;      // incomplete frame: wait for more bytes

        wire::RequestFrame frame;
        const wire::DecodeResult decoded = wire::decodeRequestEx(
            buf.data() + at + wire::kLengthPrefixBytes, payload, frame);
        if (decoded == wire::DecodeResult::UnsupportedVersion) {
            // A well-formed frame from a different protocol generation:
            // tell the client what this server speaks -- encoded at
            // kMinVersion so any generation can parse it -- then close.
            ++protocolErrors;
            ++unsupportedVersionFrames;
            wire::ResponseFrame out;
            out.requestId = frame.requestId;
            out.version = wire::kMinVersion;
            out.response.status = ServeStatus::INTERNAL_ERROR;
            out.response.message =
                "unsupported protocol version (server speaks " +
                std::to_string(wire::kMinVersion) + ".." +
                std::to_string(wire::kVersion) + ")";
            std::vector<uint8_t> bytes;
            wire::encodeResponse(out, bytes);
            conn->writeBuf.insert(conn->writeBuf.end(), bytes.begin(),
                                  bytes.end());
            ++framesOut;
            flushWrites(conn);  // best-effort; the close follows anyway
            return false;
        }
        if (decoded != wire::DecodeResult::Ok) {
            ++protocolErrors;
            return false;
        }
        at += wire::kLengthPrefixBytes + payload;
        ++framesIn;

        // The completion holds the Loop via shared_ptr: it may fire on
        // a dispatcher/pool thread after stop(), and the outbox plus
        // its eventfd must still exist then.
        std::weak_ptr<Conn> weak = conn;
        const uint64_t id = frame.requestId;
        // Answer at the version the request arrived with: pipelined v1
        // clients keep parsing point-only bodies from a v2 server.
        const uint8_t version = frame.version;
        service.submit(
            std::move(frame.request),
            [self = shared_from_this(), weak = std::move(weak), id,
             version](PredictResponse response) {
                wire::ResponseFrame out;
                out.requestId = id;
                out.version = version;
                out.response = std::move(response);
                std::vector<uint8_t> bytes;
                wire::encodeResponse(out, bytes);
                self->post(weak, std::move(bytes));
            });
    }
    buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(at));
    return true;
}

void
NetServer::Loop::readable(const std::shared_ptr<Conn> &conn,
                          PredictionService &service)
{
    auto &buf = conn->readBuf;
    for (;;) {
        const size_t old = buf.size();
        buf.resize(old + kReadChunk);
        const ssize_t n = ::read(conn->fd, buf.data() + old, kReadChunk);
        if (n < 0) {
            buf.resize(old);
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                break;
            killConn(conn->fd);
            return;
        }
        if (n == 0) {   // orderly client close
            buf.resize(old);
            killConn(conn->fd);
            return;
        }
        buf.resize(old + static_cast<size_t>(n));
        bytesIn += static_cast<uint64_t>(n);
        if (static_cast<size_t>(n) < kReadChunk)
            break;
    }
    if (!parseFrames(conn, service))
        killConn(conn->fd);    // malformed frame: connection-fatal
}

void
NetServer::Loop::updateWriteInterest(const std::shared_ptr<Conn> &conn)
{
    const bool want = conn->written < conn->writeBuf.size();
    if (want == conn->wantWrite)
        return;
    epoll_event ev{};
    ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn->fd, &ev) == 0)
        conn->wantWrite = want;
}

bool
NetServer::Loop::flushWrites(const std::shared_ptr<Conn> &conn)
{
    auto &buf = conn->writeBuf;
    while (conn->written < buf.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-burst turns the
        // write into EPIPE instead of a process-killing SIGPIPE (the
        // server never blocks or ignores the signal globally).
        const ssize_t n = ::send(conn->fd, buf.data() + conn->written,
                                 buf.size() - conn->written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR) {
                updateWriteInterest(conn);
                return true;
            }
            killConn(conn->fd);
            return false;
        }
        conn->written += static_cast<size_t>(n);
        bytesOut += static_cast<uint64_t>(n);
    }
    buf.clear();
    conn->written = 0;
    updateWriteInterest(conn);
    return true;
}

void
NetServer::Loop::drainOutbox()
{
    std::vector<std::pair<std::weak_ptr<Conn>, std::vector<uint8_t>>> ready;
    {
        std::lock_guard<std::mutex> lock(outboxMtx);
        ready.swap(outbox);
    }
    // Coalesce: append every ready frame to its connection's write
    // buffer first, then flush each touched connection once -- under a
    // pipelined burst this turns N response frames into one write(2).
    std::vector<std::shared_ptr<Conn>> touched;
    for (auto &[weak, bytes] : ready) {
        std::shared_ptr<Conn> conn = weak.lock();
        if (!conn)
            continue;   // connection died while the prediction ran
        // A connection with leftover bytes already has EPOLLOUT armed
        // and will flush from the event loop; only newly-idle ones need
        // an explicit flush here.
        if (conn->writeBuf.empty())
            touched.push_back(conn);
        conn->writeBuf.insert(conn->writeBuf.end(), bytes.begin(),
                              bytes.end());
        ++framesOut;
    }
    for (auto &conn : touched) {
        auto it = conns.find(conn->fd);
        if (it != conns.end() && it->second == conn)
            flushWrites(conn);
    }
}

void
NetServer::Loop::run(PredictionService &service)
{
    epoll_event events[64];
    while (!stopping.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(epollFd, events, 64, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        bool woken = false;
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == listenFd) {
                acceptAll();
                continue;
            }
            if (fd == wakeFd) {
                uint64_t drain;
                while (::read(wakeFd, &drain, sizeof(drain)) > 0) {
                }
                woken = true;
                continue;
            }
            auto it = conns.find(fd);
            if (it == conns.end())
                continue;   // killed earlier in this batch
            std::shared_ptr<Conn> conn = it->second;
            if (events[i].events & (EPOLLERR | EPOLLHUP)) {
                killConn(fd);
                continue;
            }
            if (events[i].events & EPOLLIN)
                readable(conn, service);
            if ((events[i].events & EPOLLOUT) && conns.count(fd))
                flushWrites(conn);
        }
        if (woken)
            drainOutbox();
    }
    // Drain any responses that completed before the stop and close
    // every connection.
    drainOutbox();
    std::vector<int> open;
    open.reserve(conns.size());
    for (const auto &[fd, conn] : conns)
        open.push_back(fd);
    for (int fd : open)
        killConn(fd);
}

NetServer::NetServer(PredictionService &svc, NetServerConfig config)
    : service(svc), cfg(std::move(config))
{
}

NetServer::~NetServer()
{
    stop();
}

void
NetServer::start()
{
    if (loop)
        throw std::runtime_error("NetServer already started");
    auto state = std::make_shared<Loop>();

    state->listenFd = ::socket(AF_INET,
                               SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                               0);
    if (state->listenFd < 0)
        throw std::runtime_error("NetServer: socket() failed");
    const int one = 1;
    ::setsockopt(state->listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("NetServer: bad host " + cfg.host);
    if (::bind(state->listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        throw std::runtime_error("NetServer: bind failed: " +
                                 std::string(std::strerror(errno)));
    }
    if (::listen(state->listenFd, cfg.backlog) != 0)
        throw std::runtime_error("NetServer: listen failed");

    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    ::getsockname(state->listenFd, reinterpret_cast<sockaddr *>(&bound),
                  &boundLen);
    boundPort = ntohs(bound.sin_port);

    state->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    state->wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (state->epollFd < 0 || state->wakeFd < 0)
        throw std::runtime_error("NetServer: epoll/eventfd setup failed");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = state->listenFd;
    ::epoll_ctl(state->epollFd, EPOLL_CTL_ADD, state->listenFd, &ev);
    ev.data.fd = state->wakeFd;
    ::epoll_ctl(state->epollFd, EPOLL_CTL_ADD, state->wakeFd, &ev);

    loop = state;
    loopThread = std::thread([this, state]() { state->run(service); });
}

void
NetServer::stop()
{
    if (!loop)
        return;
    loop->stopping.store(true, std::memory_order_release);
    loop->wake();
    if (loopThread.joinable())
        loopThread.join();
}

NetServerStats
NetServer::stats() const
{
    NetServerStats s;
    if (!loop)
        return s;
    s.connectionsAccepted = loop->connectionsAccepted.load();
    s.connectionsClosed = loop->connectionsClosed.load();
    s.framesIn = loop->framesIn.load();
    s.framesOut = loop->framesOut.load();
    s.protocolErrors = loop->protocolErrors.load();
    s.unsupportedVersionFrames = loop->unsupportedVersionFrames.load();
    s.bytesIn = loop->bytesIn.load();
    s.bytesOut = loop->bytesOut.load();
    return s;
}

} // namespace serve
} // namespace concorde
