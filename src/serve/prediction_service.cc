#include "serve/prediction_service.hh"

#include <stdexcept>

#include "analysis/analysis_store.hh"
#include "common/rng.hh"
#include "common/stopwatch.hh"

namespace concorde
{
namespace serve
{

uint64_t
predictionKey(uint32_t model_id, const RegionSpec &region,
              const UarchParams &params)
{
    uint64_t h = hashMix(model_id, params.hashKey());
    h = hashMix(h, static_cast<uint64_t>(region.programId),
                static_cast<uint64_t>(region.traceId));
    return hashMix(h, region.startChunk, region.numChunks);
}

PredictionService::PredictionService(ServeConfig config)
    : cfg(config), cache(config.cacheCapacity), pool(config.poolThreads)
{
    queue = std::make_unique<BatchingQueue>(
        cfg.batching,
        [this](const std::vector<PredictionRequest> &batch) {
            return handleBatch(batch);
        },
        &pool);
}

PredictionService::~PredictionService()
{
    shutdown();
}

ModelHandle
PredictionService::loadModel(const std::string &name,
                             const std::string &artifact_path)
{
    return models.addFromArtifactFile(name, artifact_path);
}

std::future<double>
PredictionService::predictAsync(const std::string &model,
                                const RegionSpec &region,
                                const UarchParams &params)
{
    ModelHandle handle = models.get(model);
    if (!handle.valid())
        throw std::invalid_argument("unknown model '" + model + "'");
    PredictionRequest request;
    request.model = std::move(handle);
    request.region = region;
    request.params = params;
    request.key = predictionKey(request.model.id, region, params);
    return queue->submit(std::move(request));
}

double
PredictionService::predict(const std::string &model,
                           const RegionSpec &region,
                           const UarchParams &params)
{
    return predictAsync(model, region, params).get();
}

pipeline::PipelineResult
PredictionService::predictSpan(const std::string &model,
                               const TraceSpan &span,
                               uint32_t region_chunks,
                               const UarchParams &params)
{
    Stopwatch total;
    pipeline::PipelineResult res;
    res.regions = shardSpan(span, region_chunks);

    // All regions in flight at once: the batching queue coalesces them
    // into shared feature-assembly + GEMM batches.
    std::vector<std::future<double>> futures;
    futures.reserve(res.regions.size());
    for (const auto &region : res.regions)
        futures.push_back(predictAsync(model, region, params));
    res.regionCpi.reserve(res.regions.size());
    for (auto &future : futures)
        res.regionCpi.push_back(future.get());

    res.programCpi = pipeline::aggregateCpi(res.regions, res.regionCpi,
                                            &res.instructions);
    const ModelHandle handle = models.get(model);
    if (handle.valid())
        res.featureDim = handle.predictor->layout().dim();
    res.totalSeconds = total.seconds();
    return res;
}

PredictionService::ProviderKey
PredictionService::providerKey(const PredictionRequest &request)
{
    return {request.model.id, request.region.programId,
            request.region.traceId, request.region.startChunk,
            request.region.numChunks};
}

PredictionService::ProviderEntry &
PredictionService::providerFor(const PredictionRequest &request)
{
    std::lock_guard<std::mutex> lock(providersMtx);
    auto &slot = providers[providerKey(request)];
    if (!slot) {
        slot = std::make_unique<ProviderEntry>();
        // The region analysis comes from the shared AnalysisStore, so
        // every model serving the same region -- and every other layer
        // touching it -- reuses one trace analysis. The provider itself
        // stays per (model, region): its memo caches depend on the
        // model's FeatureConfig.
        slot->provider = std::make_unique<FeatureProvider>(
            AnalysisStore::global().acquire(request.region),
            request.model.predictor->featureConfig());
    }
    return *slot;
}

std::vector<double>
PredictionService::handleBatch(const std::vector<PredictionRequest> &batch)
{
    std::vector<double> out(batch.size());

    // Cache pass: repeated (model, region, design point) requests are
    // answered from memory with the exact previously computed double.
    std::vector<size_t> misses;
    for (size_t i = 0; i < batch.size(); ++i) {
        if (!cache.lookup(batch[i].key, out[i]))
            misses.push_back(i);
    }
    if (misses.empty())
        return out;

    // Group the misses by (model, region): each group shares one
    // FeatureProvider and one batched inference pass.
    std::map<ProviderKey, std::vector<size_t>> groups;
    for (size_t i : misses)
        groups[providerKey(batch[i])].push_back(i);

    for (const auto &[key, rows] : groups) {
        const PredictionRequest &first = batch[rows.front()];
        const ConcordePredictor &predictor = *first.model.predictor;
        const size_t dim = predictor.layout().dim();

        std::vector<float> features;
        features.reserve(rows.size() * dim);
        {
            // Providers memoize analytical-model runs and are not
            // thread-safe; serialize assembly per (model, region).
            ProviderEntry &entry = providerFor(first);
            std::lock_guard<std::mutex> lock(entry.mtx);
            for (size_t i : rows)
                entry.provider->assemble(batch[i].params, features);
        }

        const auto preds = predictor.predictCpiFromFeatures(
            features, rows.size(), cfg.mlpThreads);
        for (size_t r = 0; r < rows.size(); ++r) {
            out[rows[r]] = preds[r];
            cache.insert(batch[rows[r]].key, preds[r]);
        }
    }
    return out;
}

void
PredictionService::clearProviders()
{
    std::lock_guard<std::mutex> lock(providersMtx);
    providers.clear();
}

void
PredictionService::shutdown()
{
    if (queue)
        queue->shutdown();
    pool.shutdown();
}

ServeStats
PredictionService::stats() const
{
    ServeStats s;
    if (queue)
        s.queue = queue->stats();
    s.cache = cache.stats();
    return s;
}

} // namespace serve
} // namespace concorde
