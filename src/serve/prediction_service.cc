#include "serve/prediction_service.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "analysis/analysis_store.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/stopwatch.hh"
#include "sim/o3_core.hh"

namespace concorde
{
namespace serve
{

namespace
{

/** Warm-set file magic ("CWRM") and version. */
constexpr uint32_t kWarmSetMagic = 0x4357524D;
constexpr uint16_t kWarmSetVersion = 1;

/**
 * Fault-injection hook (tests only): when
 * CONCORDE_FEEDBACK_CRASH_AFTER_APPENDS=<n> is set, the (n+1)-th
 * feedback append in this process stages its bytes, truncates the
 * staging file (the moment a SIGKILL mid-write would leave behind),
 * and exits without publishing -- proving the published feedback file
 * never holds a partial record.
 */
long
feedbackCrashAfterAppends()
{
    static const long value = []() {
        const char *env =
            std::getenv("CONCORDE_FEEDBACK_CRASH_AFTER_APPENDS");
        return env ? std::atol(env) : -1L;
    }();
    return value;
}

} // anonymous namespace

uint64_t
predictionKey(uint32_t model_id, const RegionSpec &region,
              const UarchParams &params)
{
    uint64_t h = hashMix(model_id, params.hashKey());
    h = hashMix(h, static_cast<uint64_t>(region.programId),
                static_cast<uint64_t>(region.traceId));
    return hashMix(h, region.startChunk, region.numChunks);
}

PredictionService::PredictionService(ServeConfig config)
    : cfg(config), cache(config.cacheCapacity), pool(config.poolThreads),
      latency(config.latencyWindow)
{
    queue = std::make_unique<BatchingQueue>(
        cfg.batching,
        [this](const std::vector<PredictionRequest> &batch) {
            return handleBatch(batch);
        },
        &pool);
}

PredictionService::~PredictionService()
{
    shutdown();
}

ModelHandle
PredictionService::loadModel(const std::string &name,
                             const std::string &artifact_path)
{
    return models.addFromArtifactFile(name, artifact_path);
}

void
PredictionService::recordOutcome(std::chrono::steady_clock::time_point start,
                                 ServeStatus status)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    latency.push(
        std::chrono::duration<double, std::micro>(elapsed).count());
    ++statusCounts[static_cast<size_t>(status)];
}

void
PredictionService::submit(PredictRequest request, Completion done)
{
    const auto start = std::chrono::steady_clock::now();
    ModelHandle handle = models.get(request.model);
    if (!handle.valid()) {
        PredictResponse response;
        response.status = ServeStatus::UNKNOWN_MODEL;
        response.message = "unknown model '" + request.model + "'";
        recordOutcome(start, response.status);
        done(std::move(response));
        return;
    }

    PredictionRequest queued;
    queued.key = predictionKey(handle.id, request.region, request.params);
    queued.model = std::move(handle);
    queued.region = request.region;
    queued.params = std::move(request.params);
    queued.cls = request.cls;
    queued.timeout = request.timeout;

    // The wrapped completion runs before the queue's drain accounting
    // drops, so `this` outlives it even across shutdown.
    queue->submit(std::move(queued),
                  [this, start, done = std::move(done)](
                      PredictResponse response) {
                      recordOutcome(start, response.status);
                      done(std::move(response));
                  });
}

std::future<PredictResponse>
PredictionService::submit(PredictRequest request)
{
    auto promise = std::make_shared<std::promise<PredictResponse>>();
    std::future<PredictResponse> future = promise->get_future();
    submit(std::move(request), [promise](PredictResponse response) {
        promise->set_value(std::move(response));
    });
    return future;
}

PredictResponse
PredictionService::predict(const PredictRequest &request)
{
    return submit(request).get();
}

std::future<double>
PredictionService::predictAsync(const std::string &model,
                                const RegionSpec &region,
                                const UarchParams &params)
{
    // The historical contract: an unknown model throws here, at call
    // time, not from the future.
    if (!models.get(model).valid())
        throw std::invalid_argument("unknown model '" + model + "'");

    PredictRequest request;
    request.model = model;
    request.region = region;
    request.params = params;

    auto typed = submit(std::move(request));
    // Deferred unwrap: get() yields the CPI or rethrows any non-OK
    // outcome as the runtime_error legacy callers expect.
    return std::async(
        std::launch::deferred,
        [future = std::move(typed)]() mutable -> double {
            PredictResponse response = future.get();
            if (!response.ok()) {
                throw std::runtime_error(
                    response.message.empty()
                        ? std::string("prediction failed: ")
                              + serveStatusName(response.status)
                        : response.message);
            }
            return response.cpi;
        });
}

double
PredictionService::predict(const std::string &model,
                           const RegionSpec &region,
                           const UarchParams &params)
{
    return predictAsync(model, region, params).get();
}

pipeline::PipelineResult
PredictionService::predictSpan(const std::string &model,
                               const TraceSpan &span,
                               uint32_t region_chunks,
                               const UarchParams &params)
{
    Stopwatch total;
    pipeline::PipelineResult res;
    res.regions = shardSpan(span, region_chunks);

    // All regions in flight at once, riding the Bulk class: the queue
    // coalesces them into shared feature-assembly + GEMM batches.
    std::vector<std::future<PredictResponse>> futures;
    futures.reserve(res.regions.size());
    for (const auto &region : res.regions) {
        PredictRequest request;
        request.model = model;
        request.region = region;
        request.params = params;
        request.cls = RequestClass::Bulk;
        futures.push_back(submit(std::move(request)));
    }
    res.regionCpi.reserve(res.regions.size());
    for (auto &future : futures) {
        PredictResponse response = future.get();
        if (!response.ok()) {
            // Preserve the historical throwing contract of this shim.
            if (response.status == ServeStatus::UNKNOWN_MODEL)
                throw std::invalid_argument(response.message);
            throw std::runtime_error(
                response.message.empty()
                    ? std::string("prediction failed: ")
                          + serveStatusName(response.status)
                    : response.message);
        }
        res.regionCpi.push_back(response.cpi);
    }

    res.programCpi = pipeline::aggregateCpi(res.regions, res.regionCpi,
                                            &res.instructions);
    const ModelHandle handle = models.get(model);
    if (handle.valid())
        res.featureDim = handle.predictor->layout().dim();
    res.totalSeconds = total.seconds();
    return res;
}

ServeStatus
PredictionService::warmRegions(const std::string &model,
                               const std::vector<RegionSpec> &regions,
                               const std::vector<UarchParams> &points)
{
    ModelHandle handle = models.get(model);
    if (!handle.valid())
        return ServeStatus::UNKNOWN_MODEL;

    // Build the providers (and thereby the shared AnalysisStore
    // entries) up front -- this is the expensive cold part, and doing
    // it here keeps it off the first client's critical path.
    for (const RegionSpec &region : regions) {
        PredictionRequest probe;
        probe.model = handle;
        probe.region = region;
        providerFor(probe);
    }
    if (points.empty())
        return ServeStatus::OK;

    // Pre-answer the hot design points through the Bulk path so the
    // prediction cache and the providers' memo caches are populated.
    std::vector<std::future<PredictResponse>> futures;
    futures.reserve(regions.size() * points.size());
    for (const RegionSpec &region : regions) {
        for (const UarchParams &params : points) {
            PredictRequest request;
            request.model = model;
            request.region = region;
            request.params = params;
            request.cls = RequestClass::Bulk;
            futures.push_back(submit(std::move(request)));
        }
    }
    ServeStatus status = ServeStatus::OK;
    for (auto &future : futures) {
        const PredictResponse response = future.get();
        if (!response.ok() && status == ServeStatus::OK)
            status = response.status;
    }
    return status;
}

size_t
PredictionService::saveWarmSet(const std::string &path) const
{
    // Distinct regions across all models: the analyses (the expensive
    // part) are model-independent.
    std::vector<RegionSpec> regions;
    {
        std::lock_guard<std::mutex> lock(providersMtx);
        regions.reserve(providers.size());
        for (const auto &[key, entry] : providers) {
            regions.push_back(RegionSpec{std::get<1>(key),
                                         std::get<2>(key),
                                         std::get<3>(key),
                                         std::get<4>(key)});
        }
    }
    std::sort(regions.begin(), regions.end(),
              [](const RegionSpec &a, const RegionSpec &b) {
                  return std::tie(a.programId, a.traceId, a.startChunk,
                                  a.numChunks)
                      < std::tie(b.programId, b.traceId, b.startChunk,
                                 b.numChunks);
              });
    regions.erase(
        std::unique(regions.begin(), regions.end(),
                    [](const RegionSpec &a, const RegionSpec &b) {
                        return std::tie(a.programId, a.traceId,
                                        a.startChunk, a.numChunks)
                            == std::tie(b.programId, b.traceId,
                                        b.startChunk, b.numChunks);
                    }),
        regions.end());

    const std::string tmp = path + ".tmp";
    {
        BinaryWriter writer(tmp);
        writer.put<uint32_t>(kWarmSetMagic);
        writer.put<uint16_t>(kWarmSetVersion);
        writer.put<uint64_t>(regions.size());
        for (const RegionSpec &region : regions) {
            writer.put<int32_t>(region.programId);
            writer.put<int32_t>(region.traceId);
            writer.put<uint64_t>(region.startChunk);
            writer.put<uint32_t>(region.numChunks);
        }
    }
    publishFile(tmp, path);
    return regions.size();
}

ServeStatus
PredictionService::warmFromFile(const std::string &model,
                                const std::string &path,
                                const std::vector<UarchParams> &points)
{
    BinaryReader reader(path);
    if (!reader.ok() || reader.get<uint32_t>() != kWarmSetMagic ||
        reader.get<uint16_t>() != kWarmSetVersion) {
        throw std::runtime_error("not a warm-set file: " + path);
    }
    const uint64_t n = reader.get<uint64_t>();
    std::vector<RegionSpec> regions;
    regions.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        RegionSpec region;
        region.programId = reader.get<int32_t>();
        region.traceId = reader.get<int32_t>();
        region.startChunk = reader.get<uint64_t>();
        region.numChunks = reader.get<uint32_t>();
        regions.push_back(region);
    }
    return warmRegions(model, regions, points);
}

PredictionService::ProviderKey
PredictionService::providerKey(const PredictionRequest &request)
{
    return {request.model.id, request.region.programId,
            request.region.traceId, request.region.startChunk,
            request.region.numChunks};
}

std::shared_ptr<PredictionService::ProviderEntry>
PredictionService::providerFor(const PredictionRequest &request)
{
    std::lock_guard<std::mutex> lock(providersMtx);
    auto &slot = providers[providerKey(request)];
    if (!slot) {
        slot = std::make_shared<ProviderEntry>();
        // The region analysis comes from the shared AnalysisStore, so
        // every model serving the same region -- and every other layer
        // touching it -- reuses one trace analysis. The provider itself
        // stays per (model, region): its memo caches depend on the
        // model's FeatureConfig.
        slot->provider = std::make_unique<FeatureProvider>(
            AnalysisStore::global().acquire(request.region),
            request.model.predictor->featureConfig());
    }
    return slot;
}

std::vector<PredictResponse>
PredictionService::handleBatch(const std::vector<PredictionRequest> &batch)
{
    const UncertaintyConfig &unc = cfg.uncertainty;
    std::vector<PredictResponse> out(batch.size());

    // Cache pass: repeated (model, region, design point) requests are
    // answered from memory with the exact previously computed double.
    // Flagged results are never cached (below), so every hit is a
    // previously-clean answer: attach the interval, no OOD re-check.
    std::vector<size_t> misses;
    for (size_t i = 0; i < batch.size(); ++i) {
        double cached = 0.0;
        if (cache.lookup(batch[i].key, cached)) {
            out[i].cpi = cached;
            const ConformalCalibration *cal =
                batch[i].model.calibration.get();
            if (cal && cal->valid()) {
                out[i].calibrated = true;
                cal->intervalAround(cached, unc.alpha, out[i].lo,
                                    out[i].hi);
            }
        } else {
            misses.push_back(i);
        }
    }

    // Group the misses by (model, region): each group shares one
    // FeatureProvider and one batched inference pass.
    std::map<ProviderKey, std::vector<size_t>> groups;
    for (size_t i : misses)
        groups[providerKey(batch[i])].push_back(i);

    for (const auto &[key, rows] : groups) {
        const PredictionRequest &first = batch[rows.front()];
        const ConcordePredictor &predictor = *first.model.predictor;
        const size_t dim = predictor.layout().dim();
        const ConformalCalibration *cal = first.model.calibration.get();
        const bool calibrated = cal && cal->valid();

        std::vector<float> features;
        features.reserve(rows.size() * dim);
        {
            // Providers memoize analytical-model runs and are not
            // thread-safe; serialize assembly per (model, region). The
            // shared_ptr keeps the entry alive even if clearProviders
            // races past the idle check.
            std::shared_ptr<ProviderEntry> entry = providerFor(first);
            std::lock_guard<std::mutex> lock(entry->mtx);
            for (size_t i : rows)
                entry->provider->assemble(batch[i].params, features);
        }

        const auto preds = predictor.predictCpiFromFeatures(
            features, rows.size(), cfg.mlpThreads);
        for (size_t r = 0; r < rows.size(); ++r) {
            const size_t i = rows[r];
            PredictResponse &response = out[i];
            response.cpi = preds[r];
            const float *row = features.data() + r * dim;

            // Self-qualification: conformal interval + OOD guardrail.
            bool flagged = false;
            if (calibrated) {
                response.calibrated = true;
                cal->intervalAround(response.cpi, unc.alpha, response.lo,
                                    response.hi);
                if (cal->oodScore(row, dim) > unc.oodThreshold) {
                    response.ood = true;
                    flagged = true;
                    flaggedOodCount.fetch_add(1,
                                              std::memory_order_relaxed);
                }
                if (unc.maxRelWidth > 0.0 &&
                    response.relativeWidth() > unc.maxRelWidth) {
                    flagged = true;
                }
            }

            if (flagged && unc.fallbackEnabled) {
                // Admission budget of the slow path: bounded slots, so
                // an OOD flood degrades to flagged fast answers (or
                // OVERLOADED) instead of a simulator pile-up.
                bool admitted = false;
                size_t in_flight =
                    fallbackInFlight.load(std::memory_order_relaxed);
                while (in_flight < unc.maxFallbackInFlight) {
                    if (fallbackInFlight.compare_exchange_weak(
                            in_flight, in_flight + 1)) {
                        admitted = true;
                        break;
                    }
                }
                if (admitted) {
                    std::vector<float> row_copy(row, row + dim);
                    PredictResponse truth =
                        simulateFallback(batch[i], row_copy);
                    fallbackInFlight.fetch_sub(1,
                                               std::memory_order_relaxed);
                    truth.calibrated = response.calibrated;
                    truth.ood = response.ood;
                    response = std::move(truth);
                } else {
                    fallbackRejectedCount.fetch_add(
                        1, std::memory_order_relaxed);
                    if (unc.rejectOnBudget) {
                        response.status = ServeStatus::OVERLOADED;
                        response.message = "fallback budget exhausted";
                    }
                    // else: the flagged fast answer stands.
                }
            }

            // Only clean fast-path answers enter the cache: a cached
            // value must be safe to serve later without its feature
            // row (no OOD re-check is possible on a hit).
            if (!flagged && response.ok())
                cache.insert(batch[i].key, response.cpi);
        }
    }

    for (const PredictResponse &response : out) {
        if (!response.ok())
            continue;
        if (response.fallback)
            servedFallbackSimCount.fetch_add(1, std::memory_order_relaxed);
        else
            servedFastCount.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
}

PredictResponse
PredictionService::simulateFallback(const PredictionRequest &request,
                                    const std::vector<float> &features)
{
    PredictResponse response;
    response.fallback = true;

    // Ground truth from the cycle-level simulator, through the same
    // shared AnalysisStore snapshot and default warmup convention the
    // labeling path uses -- the reply is bitwise identical to a direct
    // simulateRegion call on this (region, design point). The analysis
    // object's combined-trace accessors are internally latched, so
    // concurrent fallbacks on one region are safe; the scratch is the
    // per-thread reusable working set.
    const std::shared_ptr<RegionAnalysis> analysis =
        AnalysisStore::global().acquire(request.region);
    thread_local SimScratch scratch;
    const SimResult sim =
        simulateRegion(request.params, *analysis, 0, &scratch);
    response.cpi = sim.cpi();
    // A simulated answer is exact: the interval collapses to the point.
    response.lo = response.cpi;
    response.hi = response.cpi;

    if (!cfg.uncertainty.feedbackPath.empty()) {
        appendFeedback(request, features,
                       static_cast<float>(response.cpi));
    }
    return response;
}

void
PredictionService::appendFeedback(const PredictionRequest &request,
                                  const std::vector<float> &features,
                                  float label)
{
    const std::string &path = cfg.uncertainty.feedbackPath;
    // First touch sweeps staging debris a crashed predecessor left
    // behind; the published file itself is always a complete version.
    std::call_once(feedbackReclaimOnce,
                   [&path]() { reclaimStagingDebris(path); });

    std::lock_guard<std::mutex> lock(feedbackMtx);
    Dataset merged;
    if (fileExists(path))
        merged = Dataset::load(path);

    Dataset one;
    one.dim = features.size();
    one.features = features;
    one.labels.push_back(label);
    SampleMeta meta;
    meta.region = request.region;
    meta.params = request.params;
    meta.cpi = label;
    one.meta.push_back(meta);
    merged.append(one);

    // The dataset-shard durability discipline: stage under a pid-unique
    // name, publish by durable atomic rename. A writer killed at any
    // point leaves the published file untouched (the previous complete
    // version) plus reclaimable debris -- never a partial record.
    const std::string tmp = uniqueTmpName(path);
    merged.save(tmp);

    static std::atomic<uint64_t> processAppends{0};
    const uint64_t attempt =
        processAppends.fetch_add(1, std::memory_order_relaxed) + 1;
    const long crash_after = feedbackCrashAfterAppends();
    if (crash_after >= 0 && attempt > static_cast<uint64_t>(crash_after)) {
        // Simulate a kill mid-write: leave a truncated staging file and
        // die without publishing.
        (void)::truncate(tmp.c_str(), 12);
        ::_exit(42);
    }

    publishFile(tmp, path);
    feedbackAppendedCount.fetch_add(1, std::memory_order_relaxed);
}

ServeStatus
PredictionService::clearProviders()
{
    std::lock_guard<std::mutex> lock(providersMtx);
    if (queue && !queue->idle())
        return ServeStatus::OVERLOADED;
    providers.clear();
    return ServeStatus::OK;
}

void
PredictionService::shutdown()
{
    if (queue)
        queue->shutdown();
    pool.shutdown();
}

ServeStats
PredictionService::stats() const
{
    ServeStats s;
    if (queue)
        s.queue = queue->stats();
    s.cache = cache.stats();
    s.latency = latency.summary();
    for (size_t i = 0; i < kNumServeStatuses; ++i)
        s.byStatus[i] = statusCounts[i].load(std::memory_order_relaxed);
    s.servedFast = servedFastCount.load(std::memory_order_relaxed);
    s.servedFallbackSim =
        servedFallbackSimCount.load(std::memory_order_relaxed);
    s.flaggedOod = flaggedOodCount.load(std::memory_order_relaxed);
    s.fallbackRejectedOverload =
        fallbackRejectedCount.load(std::memory_order_relaxed);
    s.feedbackAppended =
        feedbackAppendedCount.load(std::memory_order_relaxed);
    return s;
}

} // namespace serve
} // namespace concorde
