/**
 * @file
 * NetServer: the network front end of PredictionService. One epoll
 * event-loop thread multiplexes every client connection; requests are
 * decoded and handed to PredictionService::submit (the callback form --
 * the loop never blocks on a prediction), and completions post their
 * encoded responses back to the loop through an eventfd outbox, so
 * responses from the dispatcher / pool threads are written by the loop
 * thread only.
 *
 * PROTOCOL SPECIFICATION (version 2; version 1 still served)
 * ==========================================================
 *
 * Transport: TCP. All integers little-endian. Every message is a
 * length-prefixed frame:
 *
 *     u32 payloadLen          bytes that follow (max 65536)
 *     -- payload ------------------------------------------------
 *     u32 magic               0x434E4344 ("CNCD")
 *     u8  version             1 or 2
 *     u8  type                1 = request, 2 = response
 *     u16 reserved            must be 0
 *     u64 requestId           client-chosen; echoed in the response
 *     ... type-specific body ...
 *
 * Request body (type 1; identical in v1 and v2):
 *
 *     u8  class               0 = interactive, 1 = bulk
 *     u8  pad[3]
 *     u32 timeoutUs           max queue wait (0 = no limit)
 *     u16 modelLen            registry name, raw bytes follow
 *     u8  model[modelLen]
 *     i32 programId           region spec
 *     i32 traceId
 *     u64 startChunk
 *     u32 numChunks
 *     u16 numParams           design point as (axis, value) pairs
 *     { u16 paramId, i64 value } x numParams
 *
 * Response body (type 2), version 1:
 *
 *     u8  status              ServeStatus (serve_api.hh)
 *     f64 cpi                 IEEE-754 bits; meaningful iff status == 0
 *     u16 msgLen              diagnostic, raw bytes follow
 *     u8  message[msgLen]
 *
 * Response body (type 2), version 2 -- the uncertainty extension:
 *
 *     u8  status              ServeStatus (serve_api.hh)
 *     u8  flags               bit0 calibrated, bit1 ood, bit2 fallback;
 *                             other bits reserved, must be 0
 *     f64 cpi                 IEEE-754 bits; meaningful iff status == 0
 *     f64 lo                  conformal interval; meaningful iff
 *     f64 hi                  ... flags.calibrated
 *     u16 msgLen              diagnostic, raw bytes follow
 *     u8  message[msgLen]
 *
 * Rules:
 *  - Clients MAY pipeline: many request frames per write, many
 *    in flight per connection.
 *  - Responses carry the request's id but MAY arrive in any order
 *    (a cache hit overtakes a cold region analysis).
 *  - Version negotiation is per frame: the server answers each
 *    request at the version it arrived with, so a v1 client of a v2
 *    server keeps receiving point-only v1 responses.
 *  - A well-formed request frame whose version is outside the
 *    server's supported range gets one response -- encoded at the
 *    server's MINIMUM version, so any client generation can parse it
 *    -- with status INTERNAL_ERROR and a message naming the supported
 *    range; then the connection is closed.
 *  - Any malformed frame -- bad magic, wrong type, truncated or
 *    oversized payload, trailing bytes, out-of-range enum, reserved
 *    flag bits set -- is connection-fatal: the server closes the
 *    connection without a response. There is no in-band error
 *    recovery; a framing bug leaves the stream unparseable anyway.
 *  - Routine per-request failures are NOT connection errors: they
 *    come back as a response with a non-OK status.
 *  - Enum values (status, class, paramId) and flag bits are
 *    append-only.
 */

#ifndef CONCORDE_SERVE_NET_SERVER_HH
#define CONCORDE_SERVE_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "serve/prediction_service.hh"

namespace concorde
{
namespace serve
{

struct NetServerConfig
{
    /** Listen address; tests and the local bench use the loopback. */
    std::string host = "127.0.0.1";
    /** 0 = ephemeral; read the bound port back with port(). */
    uint16_t port = 0;
    /** accept(2) backlog. */
    int backlog = 64;
};

/** Network-layer counters (service-level counters live in ServeStats). */
struct NetServerStats
{
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsClosed = 0;
    uint64_t framesIn = 0;
    uint64_t framesOut = 0;
    uint64_t protocolErrors = 0;    ///< connections killed by bad frames
    /**
     * Well-formed frames speaking a protocol version outside the
     * supported range; each got a version-diagnostic response (encoded
     * at the minimum version) before its connection was closed. Also
     * counted in protocolErrors.
     */
    uint64_t unsupportedVersionFrames = 0;
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
};

class NetServer
{
  public:
    /** The service must outlive the server. */
    NetServer(PredictionService &service, NetServerConfig config = {});
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /**
     * Bind, listen, and spawn the event loop; throws std::runtime_error
     * if the socket cannot be bound.
     */
    void start();

    /** Close the listener and every connection, join the loop. */
    void stop();

    /** The bound port (valid after start()). */
    uint16_t port() const { return boundPort; }

    NetServerStats stats() const;

  private:
    struct Loop;

    PredictionService &service;
    const NetServerConfig cfg;
    uint16_t boundPort = 0;
    /**
     * Loop state rides in a shared_ptr: prediction completions hold a
     * reference, so the outbox and its eventfd stay valid even if a
     * completion outlives stop().
     */
    std::shared_ptr<Loop> loop;
    std::thread loopThread;
};

} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_NET_SERVER_HH
