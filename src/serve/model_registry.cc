#include "serve/model_registry.hh"

#include <algorithm>

namespace concorde
{
namespace serve
{

ModelHandle
ModelRegistry::add(const std::string &name, ConcordePredictor predictor)
{
    auto shared = std::make_shared<const ConcordePredictor>(
        std::move(predictor));
    std::lock_guard<std::mutex> lock(mtx);
    ModelHandle &slot = models[name];
    slot.name = name;
    slot.id = nextId++;
    slot.predictor = std::move(shared);
    slot.provenance = nullptr;
    slot.calibration = nullptr;
    return slot;
}

ModelHandle
ModelRegistry::addFromFile(const std::string &name, const std::string &path)
{
    return add(name, ConcordePredictor::load(path));
}

ModelHandle
ModelRegistry::addArtifact(const std::string &name,
                           const ModelArtifact &artifact)
{
    // Build the snapshot outside the lock; only the table swap is
    // serialized.
    auto shared =
        std::make_shared<const ConcordePredictor>(artifact.predictor());
    auto provenance =
        std::make_shared<const ArtifactProvenance>(artifact.provenance);
    std::shared_ptr<const ConformalCalibration> calibration;
    if (artifact.calibrated()) {
        calibration = std::make_shared<const ConformalCalibration>(
            artifact.calibration);
    }
    std::lock_guard<std::mutex> lock(mtx);
    ModelHandle &slot = models[name];
    slot.name = name;
    slot.id = nextId++;
    slot.predictor = std::move(shared);
    slot.provenance = std::move(provenance);
    slot.calibration = std::move(calibration);
    return slot;
}

ModelHandle
ModelRegistry::addFromArtifactFile(const std::string &name,
                                   const std::string &path)
{
    return addArtifact(name, ModelArtifact::load(path));
}

ModelHandle
ModelRegistry::get(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mtx);
    const auto it = models.find(name);
    return it == models.end() ? ModelHandle{} : it->second;
}

bool
ModelRegistry::remove(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    return models.erase(name) > 0;
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::vector<std::string> out;
    {
        std::lock_guard<std::mutex> lock(mtx);
        out.reserve(models.size());
        for (const auto &[name, handle] : models)
            out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return models.size();
}

} // namespace serve
} // namespace concorde
