#include "serve/prediction_cache.hh"

namespace concorde
{
namespace serve
{

PredictionCache::PredictionCache(size_t capacity) : cap(capacity)
{
    index.reserve(capacity);
}

bool
PredictionCache::lookup(uint64_t key, double &value)
{
    std::lock_guard<std::mutex> lock(mtx);
    const auto it = index.find(key);
    if (it == index.end()) {
        ++misses;
        return false;
    }
    lru.splice(lru.begin(), lru, it->second);
    value = it->second->value;
    ++hits;
    return true;
}

void
PredictionCache::insert(uint64_t key, double value)
{
    if (cap == 0)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    const auto it = index.find(key);
    if (it != index.end()) {
        it->second->value = value;
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    if (lru.size() >= cap) {
        index.erase(lru.back().key);
        lru.pop_back();
        ++evictions;
    }
    lru.push_front(Entry{key, value});
    index[key] = lru.begin();
}

CacheStats
PredictionCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    CacheStats s;
    s.hits = hits;
    s.misses = misses;
    s.evictions = evictions;
    s.entries = lru.size();
    s.capacity = cap;
    return s;
}

void
PredictionCache::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    lru.clear();
    index.clear();
}

} // namespace serve
} // namespace concorde
