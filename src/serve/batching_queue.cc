#include "serve/batching_queue.hh"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

namespace concorde
{
namespace serve
{

BatchingQueue::BatchingQueue(BatchingConfig config, BatchFn batch_handler,
                             ThreadPool *dispatch_pool)
    : cfg(config), handler(std::move(batch_handler)), pool(dispatch_pool)
{
    for (const ClassPolicy &policy : cfg.classes) {
        if (policy.maxBatch == 0)
            throw std::invalid_argument("BatchingQueue: maxBatch must be > 0");
    }
    if (!handler)
        throw std::invalid_argument("BatchingQueue: null batch handler");
    dispatcher = std::thread([this]() { dispatcherLoop(); });
}

BatchingQueue::~BatchingQueue()
{
    shutdown();
}

void
BatchingQueue::submit(PredictionRequest request, Completion done)
{
    Pending p;
    p.admissionKey = request.model.id;
    p.enqueued = Clock::now();
    if (request.timeout.count() > 0) {
        p.deadline = p.enqueued + request.timeout;
        p.hasDeadline = true;
    }
    const size_t cls = static_cast<size_t>(request.cls);
    p.request = std::move(request);
    p.done = std::move(done);

    PredictResponse reject;
    bool rejected = false;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping) {
            ++counters.rejectedShutdown;
            reject.status = ServeStatus::SHUTDOWN;
            rejected = true;
        } else if (cfg.maxInFlightPerKey > 0) {
            auto it = inFlightByKey.find(p.admissionKey);
            if (it != inFlightByKey.end() &&
                it->second >= cfg.maxInFlightPerKey) {
                ++counters.rejectedOverload;
                reject.status = ServeStatus::OVERLOADED;
                rejected = true;
            }
        }
        if (!rejected) {
            ++counters.submitted;
            ++counters.submittedByClass[cls];
            ++outstanding;
            ++inFlightByKey[p.admissionKey];
            pending[cls].push_back(std::move(p));
        }
    }
    if (rejected) {
        // Rejections never entered the accounting, so complete directly
        // on the caller's thread instead of through finish().
        p.done(std::move(reject));
        return;
    }
    cv.notify_one();
}

std::future<PredictResponse>
BatchingQueue::submit(PredictionRequest request)
{
    auto promise = std::make_shared<std::promise<PredictResponse>>();
    std::future<PredictResponse> future = promise->get_future();
    submit(std::move(request), [promise](PredictResponse response) {
        promise->set_value(std::move(response));
    });
    return future;
}

size_t
BatchingQueue::totalPendingLocked() const
{
    size_t n = 0;
    for (const auto &q : pending)
        n += q.size();
    return n;
}

bool
BatchingQueue::anyClassFullLocked() const
{
    for (size_t c = 0; c < kNumRequestClasses; ++c) {
        if (pending[c].size() >= cfg.classes[c].maxBatch)
            return true;
    }
    return false;
}

BatchingQueue::Clock::time_point
BatchingQueue::nextDeadlineLocked(Clock::time_point now) const
{
    // Default far enough out that an empty queue never spuriously wakes;
    // the caller only reaches this with at least one pending request.
    Clock::time_point earliest = now + std::chrono::seconds(1);
    for (size_t c = 0; c < kNumRequestClasses; ++c) {
        if (pending[c].empty())
            continue;
        earliest = std::min(
            earliest, pending[c].front().enqueued + cfg.classes[c].maxAge);
        for (const Pending &p : pending[c]) {
            if (p.hasDeadline)
                earliest = std::min(earliest, p.deadline);
        }
    }
    return earliest;
}

std::vector<BatchingQueue::Pending>
BatchingQueue::takeExpiredLocked(Clock::time_point now)
{
    std::vector<Pending> expired;
    for (auto &q : pending) {
        for (size_t i = 0; i < q.size();) {
            if (q[i].hasDeadline && q[i].deadline <= now) {
                ++counters.timeouts;
                expired.push_back(std::move(q[i]));
                q.erase(q.begin() + static_cast<ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    }
    return expired;
}

std::vector<BatchingQueue::Pending>
BatchingQueue::popBatchLocked(size_t cls)
{
    auto &q = pending[cls];
    const size_t n = std::min(cfg.classes[cls].maxBatch, q.size());
    std::vector<Pending> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(q.front()));
        q.pop_front();
    }
    ++counters.batches;
    if (counters.batchSizeCounts.size() <= n)
        counters.batchSizeCounts.resize(n + 1, 0);
    ++counters.batchSizeCounts[n];
    return batch;
}

void
BatchingQueue::dispatcherLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    while (true) {
        cv.wait(lock,
                [this]() { return stopping || totalPendingLocked() > 0; });
        if (totalPendingLocked() == 0) {
            if (stopping)
                return;
            continue;
        }
        // Sleep until the earliest age/timeout deadline, unless a class
        // already holds a full batch (or we're draining for shutdown).
        if (!stopping && !anyClassFullLocked()) {
            const auto deadline = nextDeadlineLocked(Clock::now());
            cv.wait_until(lock, deadline, [this]() {
                return stopping || anyClassFullLocked();
            });
        }

        const auto now = Clock::now();
        std::vector<Pending> expired = takeExpiredLocked(now);

        std::vector<std::vector<Pending>> batches;
        for (size_t c = 0; c < kNumRequestClasses; ++c) {
            const ClassPolicy &policy = cfg.classes[c];
            while (pending[c].size() >= policy.maxBatch) {
                ++counters.flushOnSize;
                batches.push_back(popBatchLocked(c));
            }
            if (pending[c].empty())
                continue;
            const bool aged =
                pending[c].front().enqueued + policy.maxAge <= now;
            if (aged || stopping) {
                if (aged)
                    ++counters.flushOnDeadline;
                else
                    ++counters.flushOnShutdown;
                batches.push_back(popBatchLocked(c));
            }
        }
        lock.unlock();

        PredictResponse timedOut;
        timedOut.status = ServeStatus::TIMEOUT;
        for (Pending &p : expired)
            finish(std::move(p), timedOut);

        for (auto &batch : batches) {
            // Pending holds move-only completions in practice, and
            // std::function needs a copyable callable, so the batch
            // rides in a shared_ptr.
            auto shared =
                std::make_shared<std::vector<Pending>>(std::move(batch));
            if (pool) {
                try {
                    pool->submit(
                        [this, shared]() { runBatch(std::move(*shared)); });
                } catch (const std::runtime_error &) {
                    // Pool already shut down: degrade to inline dispatch
                    // rather than dropping the batch.
                    runBatch(std::move(*shared));
                }
            } else {
                runBatch(std::move(*shared));
            }
        }
        lock.lock();
    }
}

void
BatchingQueue::runBatch(std::vector<Pending> batch)
{
    std::vector<PredictionRequest> requests;
    requests.reserve(batch.size());
    for (Pending &p : batch)
        requests.push_back(std::move(p.request));

    std::vector<PredictResponse> results;
    std::string error;
    bool ok = false;
    try {
        results = handler(requests);
        if (results.size() != batch.size()) {
            throw std::runtime_error(
                "batch handler returned wrong result count");
        }
        ok = true;
    } catch (const std::exception &e) {
        error = e.what();
    } catch (...) {
        error = "unknown batch handler error";
    }

    if (ok) {
        for (size_t i = 0; i < batch.size(); ++i)
            finish(std::move(batch[i]), std::move(results[i]));
    } else {
        PredictResponse response;
        response.status = ServeStatus::INTERNAL_ERROR;
        response.message = error;
        for (Pending &p : batch)
            finish(std::move(p), response);
    }
}

void
BatchingQueue::finish(Pending &&p, PredictResponse response)
{
    // The admission slot frees BEFORE the completion runs: a caller
    // that waits for its response and immediately resubmits must never
    // bounce off its own not-yet-released slot.
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = inFlightByKey.find(p.admissionKey);
        if (it != inFlightByKey.end() && --it->second == 0)
            inFlightByKey.erase(it);
    }
    // The completion runs before outstanding drops: outstanding is
    // still > 0 for this request, so shutdown() cannot return (and the
    // queue cannot be destroyed) while a callback is mid-flight.
    p.done(std::move(response));
    {
        // Notify while holding the lock: once it drops, shutdown() may
        // observe outstanding == 0 and the queue may be destroyed, so
        // this thread must not touch members afterwards.
        std::lock_guard<std::mutex> lock(mtx);
        --outstanding;
        cvDrained.notify_all();
    }
}

void
BatchingQueue::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    if (dispatcher.joinable())
        dispatcher.join();
    std::unique_lock<std::mutex> lock(mtx);
    cvDrained.wait(lock, [this]() { return outstanding == 0; });
}

bool
BatchingQueue::idle() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return outstanding == 0;
}

QueueStats
BatchingQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return counters;
}

} // namespace serve
} // namespace concorde
