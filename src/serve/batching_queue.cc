#include "serve/batching_queue.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace concorde
{
namespace serve
{

BatchingQueue::BatchingQueue(BatchingConfig config, BatchFn batch_handler,
                             ThreadPool *dispatch_pool)
    : cfg(config), handler(std::move(batch_handler)), pool(dispatch_pool)
{
    if (cfg.maxBatch == 0)
        throw std::invalid_argument("BatchingQueue: maxBatch must be > 0");
    if (!handler)
        throw std::invalid_argument("BatchingQueue: null batch handler");
    dispatcher = std::thread([this]() { dispatcherLoop(); });
}

BatchingQueue::~BatchingQueue()
{
    shutdown();
}

std::future<double>
BatchingQueue::submit(PredictionRequest request)
{
    Pending p;
    p.request = std::move(request);
    p.enqueued = std::chrono::steady_clock::now();
    std::future<double> future = p.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping)
            throw std::runtime_error("BatchingQueue::submit after shutdown");
        pending.push_back(std::move(p));
        ++counters.submitted;
    }
    cv.notify_one();
    return future;
}

std::vector<BatchingQueue::Pending>
BatchingQueue::popBatchLocked()
{
    const size_t n = std::min(cfg.maxBatch, pending.size());
    std::vector<Pending> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(pending.front()));
        pending.pop_front();
    }
    ++counters.batches;
    if (counters.batchSizeCounts.size() <= n)
        counters.batchSizeCounts.resize(n + 1, 0);
    ++counters.batchSizeCounts[n];
    return batch;
}

void
BatchingQueue::dispatcherLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    while (true) {
        cv.wait(lock, [this]() { return stopping || !pending.empty(); });
        if (pending.empty()) {
            if (stopping)
                return;
            continue;
        }
        // The oldest waiting request sets the flush deadline; fill up
        // to maxBatch until then.
        const auto deadline = pending.front().enqueued + cfg.maxDelay;
        cv.wait_until(lock, deadline, [this]() {
            return stopping || pending.size() >= cfg.maxBatch;
        });
        if (pending.size() >= cfg.maxBatch)
            ++counters.flushOnSize;
        else if (stopping)
            ++counters.flushOnShutdown;
        else
            ++counters.flushOnDeadline;
        auto batch = popBatchLocked();
        ++inFlight;
        lock.unlock();

        // Pending holds promises (move-only), and std::function needs a
        // copyable callable, so the batch rides in a shared_ptr.
        auto shared =
            std::make_shared<std::vector<Pending>>(std::move(batch));
        if (pool) {
            try {
                pool->submit(
                    [this, shared]() { runBatch(std::move(*shared)); });
            } catch (const std::runtime_error &) {
                // Pool already shut down: degrade to inline dispatch
                // rather than dropping the batch.
                runBatch(std::move(*shared));
            }
        } else {
            runBatch(std::move(*shared));
        }
        lock.lock();
    }
}

void
BatchingQueue::runBatch(std::vector<Pending> batch)
{
    std::vector<PredictionRequest> requests;
    requests.reserve(batch.size());
    for (Pending &p : batch)
        requests.push_back(std::move(p.request));

    std::vector<double> results;
    bool ok = false;
    try {
        results = handler(requests);
        if (results.size() != batch.size()) {
            throw std::runtime_error(
                "batch handler returned wrong result count");
        }
        ok = true;
    } catch (...) {
        const std::exception_ptr error = std::current_exception();
        for (Pending &p : batch)
            p.promise.set_exception(error);
    }
    if (ok) {
        for (size_t i = 0; i < batch.size(); ++i)
            batch[i].promise.set_value(results[i]);
    }
    {
        // Notify while holding the lock: once it drops, shutdown() may
        // observe inFlight == 0 and the queue may be destroyed, so this
        // thread must not touch members afterwards.
        std::lock_guard<std::mutex> lock(mtx);
        --inFlight;
        cvDrained.notify_all();
    }
}

void
BatchingQueue::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    if (dispatcher.joinable())
        dispatcher.join();
    std::unique_lock<std::mutex> lock(mtx);
    cvDrained.wait(lock, [this]() { return inFlight == 0; });
}

QueueStats
BatchingQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return counters;
}

} // namespace serve
} // namespace concorde
