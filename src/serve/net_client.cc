#include "serve/net_client.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace concorde
{
namespace serve
{

namespace
{

uint32_t
readLe32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

} // anonymous namespace

NetClient::NetClient(const std::string &host, uint16_t port)
{
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw std::runtime_error("NetClient: socket() failed");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        fd = -1;
        throw std::runtime_error("NetClient: bad host " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        fd = -1;
        throw std::runtime_error("NetClient: connect failed: " +
                                 std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

NetClient::~NetClient()
{
    if (fd >= 0)
        ::close(fd);
}

void
NetClient::sendRaw(const void *data, size_t bytes)
{
    const uint8_t *at = static_cast<const uint8_t *>(data);
    size_t left = bytes;
    while (left > 0) {
        // MSG_NOSIGNAL: a server that closed the connection turns the
        // write into a throwable EPIPE instead of killing the caller's
        // process with SIGPIPE.
        const ssize_t n = ::send(fd, at, left, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("NetClient: write failed: " +
                                     std::string(std::strerror(errno)));
        }
        at += n;
        left -= static_cast<size_t>(n);
    }
}

bool
NetClient::recvResponse(wire::ResponseFrame &out)
{
    for (;;) {
        // A complete frame already buffered?
        if (readBuf.size() >= wire::kLengthPrefixBytes) {
            const uint32_t payload = readLe32(readBuf.data());
            if (payload > wire::kMaxPayloadBytes)
                throw std::runtime_error("NetClient: oversized frame");
            if (readBuf.size() >= wire::kLengthPrefixBytes + payload) {
                if (!wire::decodeResponse(
                        readBuf.data() + wire::kLengthPrefixBytes,
                        payload, out)) {
                    throw std::runtime_error(
                        "NetClient: malformed response frame");
                }
                readBuf.erase(readBuf.begin(),
                              readBuf.begin() +
                                  static_cast<ptrdiff_t>(
                                      wire::kLengthPrefixBytes + payload));
                return true;
            }
        }
        const size_t old = readBuf.size();
        readBuf.resize(old + 16384);
        const ssize_t n = ::read(fd, readBuf.data() + old, 16384);
        if (n < 0) {
            readBuf.resize(old);
            if (errno == EINTR)
                continue;
            throw std::runtime_error("NetClient: read failed: " +
                                     std::string(std::strerror(errno)));
        }
        if (n == 0) {
            readBuf.resize(old);
            return false;   // server closed (protocol error, or stop())
        }
        readBuf.resize(old + static_cast<size_t>(n));
    }
}

PredictResponse
NetClient::predict(const PredictRequest &request)
{
    wire::RequestFrame frame;
    frame.requestId = nextId++;
    frame.request = request;
    std::vector<uint8_t> bytes;
    wire::encodeRequest(frame, bytes);
    sendRaw(bytes.data(), bytes.size());

    wire::ResponseFrame reply;
    while (recvResponse(reply)) {
        if (reply.requestId == frame.requestId)
            return std::move(reply.response);
        // A stray id would be a response to a request this connection
        // never sent; the protocol has no such message.
        throw std::runtime_error("NetClient: response id mismatch");
    }
    throw std::runtime_error("NetClient: connection closed by server");
}

std::vector<PredictResponse>
NetClient::predictBurst(const std::vector<PredictRequest> &requests)
{
    std::vector<uint8_t> bytes;
    std::unordered_map<uint64_t, size_t> slotOf;
    slotOf.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        wire::RequestFrame frame;
        frame.requestId = nextId++;
        frame.request = requests[i];
        slotOf[frame.requestId] = i;
        wire::encodeRequest(frame, bytes);
    }
    sendRaw(bytes.data(), bytes.size());

    std::vector<PredictResponse> out(requests.size());
    size_t received = 0;
    wire::ResponseFrame reply;
    while (received < requests.size()) {
        if (!recvResponse(reply)) {
            throw std::runtime_error(
                "NetClient: connection closed mid-burst");
        }
        auto it = slotOf.find(reply.requestId);
        if (it == slotOf.end())
            throw std::runtime_error("NetClient: response id mismatch");
        out[it->second] = std::move(reply.response);
        slotOf.erase(it);
        ++received;
    }
    return out;
}

} // namespace serve
} // namespace concorde
