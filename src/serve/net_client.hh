/**
 * @file
 * NetClient: a small blocking client for the serve wire protocol
 * (net_server.hh). One TCP connection, synchronous use; for load, run
 * one client per thread and pipeline with predictBurst -- a burst goes
 * out as a single write(2) and responses are matched back to request
 * order by id, which is what makes a multi-request round trip cheap
 * enough to measure tail latency rather than syscall overhead.
 */

#ifndef CONCORDE_SERVE_NET_CLIENT_HH
#define CONCORDE_SERVE_NET_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve_api.hh"
#include "serve/wire.hh"

namespace concorde
{
namespace serve
{

class NetClient
{
  public:
    /** Connects immediately; throws std::runtime_error on failure. */
    NetClient(const std::string &host, uint16_t port);
    ~NetClient();

    NetClient(const NetClient &) = delete;
    NetClient &operator=(const NetClient &) = delete;

    /** One blocking round trip. */
    PredictResponse predict(const PredictRequest &request);

    /**
     * Pipelined round trip: send every request in one write, then
     * collect until each has its response. Results are returned in
     * request order even though the server may answer out of order.
     */
    std::vector<PredictResponse>
    predictBurst(const std::vector<PredictRequest> &requests);

    /** Raw bytes out, for protocol tests (malformed frames etc.). */
    void sendRaw(const void *data, size_t bytes);

    /**
     * Read one response frame. @return false on clean server close
     * (how a client observes "the server killed this connection");
     * throws on a malformed server frame.
     */
    bool recvResponse(wire::ResponseFrame &out);

  private:
    int fd = -1;
    uint64_t nextId = 1;
    std::vector<uint8_t> readBuf;
};

} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_NET_CLIENT_HH
