/**
 * @file
 * PredictionService: the full serving stack on top of the batched
 * inference engine.
 *
 *     clients ── predictAsync(model, region, params) ──> futures
 *        │
 *        ▼
 *     BatchingQueue (coalesce: maxBatch / maxDelay)
 *        │  flushed batches, dispatched through the ThreadPool
 *        ▼
 *     batch handler: PredictionCache lookup ── hit ──> result
 *        │ misses, grouped by (model, region)
 *        ▼
 *     FeatureProvider::assemble (per-region, memoized analytical models)
 *        ▼
 *     ConcordePredictor::predictCpiFromFeatures (one GEMM pass)
 *
 * Results are identical to calling predictCpi request-by-request; the
 * service only changes how the work is scheduled.
 */

#ifndef CONCORDE_SERVE_PREDICTION_SERVICE_HH
#define CONCORDE_SERVE_PREDICTION_SERVICE_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "pipeline/analysis_pipeline.hh"
#include "serve/batching_queue.hh"
#include "serve/model_registry.hh"
#include "serve/prediction_cache.hh"

namespace concorde
{
namespace serve
{

/** Service-wide configuration. */
struct ServeConfig
{
    BatchingConfig batching;
    size_t cacheCapacity = 1 << 16;
    /** Batch-dispatch worker threads (0 = hardware concurrency). */
    size_t poolThreads = 1;
    /** Threads per MLP GEMM pass (1: parallelism comes from the pool). */
    size_t mlpThreads = 1;
};

/** Aggregated service counters. */
struct ServeStats
{
    QueueStats queue;
    CacheStats cache;
};

class PredictionService
{
  public:
    explicit PredictionService(ServeConfig config = ServeConfig{});
    ~PredictionService();

    PredictionService(const PredictionService &) = delete;
    PredictionService &operator=(const PredictionService &) = delete;

    /** The registry is exposed for model management (add/replace/list). */
    ModelRegistry &registry() { return models; }
    const ModelRegistry &registry() const { return models; }

    /**
     * Load a versioned ModelArtifact from disk and (hot-)register it
     * under `name`; in-flight batches finish on the previous snapshot
     * and the bumped registration id keeps their cache entries from
     * ever answering for the new model.
     */
    ModelHandle loadModel(const std::string &name,
                          const std::string &artifact_path);

    /**
     * Submit one prediction request; throws std::invalid_argument if
     * `model` is not registered. The future yields the CPI.
     */
    std::future<double> predictAsync(const std::string &model,
                                     const RegionSpec &region,
                                     const UarchParams &params);

    /** Blocking convenience wrapper around predictAsync. */
    double predict(const std::string &model, const RegionSpec &region,
                   const UarchParams &params);

    /**
     * Pipeline-backed endpoint: shard a trace span into regions of
     * `region_chunks`, answer every region through the batching/caching
     * service path concurrently, and aggregate. Region semantics are
     * the service's per-region warmup convention, so results are
     * bitwise identical to AnalysisPipeline with StateMode::Independent
     * and the default warmup (the golden corpus pins this down).
     */
    pipeline::PipelineResult predictSpan(const std::string &model,
                                         const TraceSpan &span,
                                         uint32_t region_chunks,
                                         const UarchParams &params);

    /**
     * Drop the cached FeatureProvider state for regions served so far
     * (providers are kept per (model, region) and grow with the number
     * of distinct regions seen). The underlying region analyses live in
     * the shared AnalysisStore and survive this call (bounded by the
     * store's LRU), so re-created providers skip trace analysis. Only
     * safe once the service is idle -- in-flight batches hold
     * references into the provider table.
     */
    void clearProviders();

    /** Flush pending batches and stop accepting requests. */
    void shutdown();

    ServeStats stats() const;

  private:
    /** Per-(model, region) assembly state; providers aren't thread-safe. */
    struct ProviderEntry
    {
        std::mutex mtx;
        std::unique_ptr<FeatureProvider> provider;
    };

    /**
     * Exact (model id, region) identity -- deliberately not a hash, so
     * a collision can never hand a batch the wrong provider.
     */
    using ProviderKey = std::tuple<uint32_t, int, int, uint64_t, uint32_t>;
    static ProviderKey providerKey(const PredictionRequest &request);

    std::vector<double>
    handleBatch(const std::vector<PredictionRequest> &batch);
    ProviderEntry &providerFor(const PredictionRequest &request);

    const ServeConfig cfg;
    ModelRegistry models;
    PredictionCache cache;
    ThreadPool pool;

    std::mutex providersMtx;
    std::map<ProviderKey, std::unique_ptr<ProviderEntry>> providers;

    /** Constructed last so its dispatcher never outlives the members. */
    std::unique_ptr<BatchingQueue> queue;
};

/** Cache key of one request: (model id, region, design point). */
uint64_t predictionKey(uint32_t model_id, const RegionSpec &region,
                       const UarchParams &params);

} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_PREDICTION_SERVICE_HH
