/**
 * @file
 * PredictionService: the full serving stack on top of the batched
 * inference engine.
 *
 *     clients ── submit(PredictRequest) ──> PredictResponse completions
 *        │        (in-process callers, legacy shims, net_server.hh)
 *        ▼
 *     BatchingQueue (per-class size-or-age flush, admission, timeouts)
 *        │  flushed batches, dispatched through the ThreadPool
 *        ▼
 *     batch handler: PredictionCache lookup ── hit ──> result
 *        │ misses, grouped by (model, region)
 *        ▼
 *     FeatureProvider::assemble (per-region, memoized analytical models)
 *        ▼
 *     ConcordePredictor::predictCpiFromFeatures (one GEMM pass)
 *
 * Results are identical to calling predictCpi request-by-request; the
 * service only changes how the work is scheduled.
 *
 * The typed submit/predict entry points (serve_api.hh) are the real
 * API: every outcome is a ServeStatus, never an exception. The older
 * predictAsync/predict/predictSpan signatures remain as thin shims with
 * their historical contract (unknown model throws std::invalid_argument,
 * a handler fault surfaces from future::get).
 */

#ifndef CONCORDE_SERVE_PREDICTION_SERVICE_HH
#define CONCORDE_SERVE_PREDICTION_SERVICE_HH

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "common/stats.hh"
#include "core/dataset.hh"
#include "pipeline/analysis_pipeline.hh"
#include "serve/batching_queue.hh"
#include "serve/model_registry.hh"
#include "serve/prediction_cache.hh"
#include "serve/serve_api.hh"

namespace concorde
{
namespace serve
{

/**
 * Uncertainty-aware serving knobs: conformal intervals, the OOD
 * guardrail, and the graceful-degradation path to the cycle-level
 * simulator. All of it only engages for models whose artifact shipped
 * a calibration (ModelArtifact v2 with valFraction > 0 at train time);
 * uncalibrated models serve point predictions exactly as before.
 */
struct UncertaintyConfig
{
    /** Miscoverage of the served interval: [lo, hi] targets 1-alpha. */
    double alpha = 0.1;
    /**
     * Width SLO: a calibrated prediction whose (hi-lo)/cpi exceeds
     * this is treated as unqualified and eligible for fallback.
     * 0 disables the width check.
     */
    double maxRelWidth = 0.0;
    /**
     * A request is flagged OOD when more than this fraction of its
     * feature dimensions fall outside the calibration envelope.
     */
    double oodThreshold = 0.02;
    /**
     * Route flagged requests (OOD or width-SLO breach) to the
     * cycle-level simulator for a ground-truth answer. Off by
     * default: the flag alone is free, the simulator is not.
     */
    bool fallbackEnabled = false;
    /**
     * Admission budget of the slow path: at most this many fallback
     * simulations in flight across the whole service. A flood of OOD
     * requests therefore degrades to flagged fast answers (or
     * OVERLOADED, see rejectOnBudget) instead of collapsing every
     * pool thread into the simulator.
     */
    size_t maxFallbackInFlight = 2;
    /**
     * What an over-budget flagged request gets: false (default) = its
     * fast ML answer with the flags still set; true = OVERLOADED, for
     * clients that would rather retry than act on a flagged number.
     */
    bool rejectOnBudget = false;
    /**
     * When non-empty, every fallback-simulated (features, label) pair
     * is durably appended here (pid-unique staging + atomic publish,
     * the dataset-shard crash-safety discipline). The file is a
     * regular Dataset; `concorde_cli dataset`/`train feedback=` folds
     * it into the next training run -- the active-learning loop.
     */
    std::string feedbackPath;
};

/** Service-wide configuration. */
struct ServeConfig
{
    BatchingConfig batching;
    size_t cacheCapacity = 1 << 16;
    /** Batch-dispatch worker threads (0 = hardware concurrency). */
    size_t poolThreads = 1;
    /** Threads per MLP GEMM pass (1: parallelism comes from the pool). */
    size_t mlpThreads = 1;
    /** Window of the end-to-end latency reservoir (samples). */
    size_t latencyWindow = 1 << 14;
    UncertaintyConfig uncertainty;
};

/** Aggregated service counters. */
struct ServeStats
{
    QueueStats queue;
    CacheStats cache;
    /** End-to-end submit -> completion latency percentiles. */
    LatencySummary latency;
    /** Completed requests per ServeStatus (serveStatusName order). */
    std::array<uint64_t, kNumServeStatuses> byStatus{};
    /** OK answers served by the ML fast path (cache or GEMM). */
    uint64_t servedFast = 0;
    /** OK answers served by the cycle-level simulator fallback. */
    uint64_t servedFallbackSim = 0;
    /** Requests whose features fell outside the calibration envelope. */
    uint64_t flaggedOod = 0;
    /** Flagged requests the fallback admission budget turned away. */
    uint64_t fallbackRejectedOverload = 0;
    /** (features, label) pairs durably appended to the feedback file. */
    uint64_t feedbackAppended = 0;
};

class PredictionService
{
  public:
    using Completion = BatchingQueue::Completion;

    explicit PredictionService(ServeConfig config = ServeConfig{});
    ~PredictionService();

    PredictionService(const PredictionService &) = delete;
    PredictionService &operator=(const PredictionService &) = delete;

    /** The registry is exposed for model management (add/replace/list). */
    ModelRegistry &registry() { return models; }
    const ModelRegistry &registry() const { return models; }

    /**
     * Load a versioned ModelArtifact from disk and (hot-)register it
     * under `name`; in-flight batches finish on the previous snapshot
     * and the bumped registration id keeps their cache entries from
     * ever answering for the new model.
     */
    ModelHandle loadModel(const std::string &name,
                          const std::string &artifact_path);

    /**
     * The typed entry point: `done` is invoked exactly once with the
     * response. Never throws and never blocks on inference; routine
     * failures (UNKNOWN_MODEL, OVERLOADED, TIMEOUT, SHUTDOWN) complete
     * immediately or from the dispatcher. This is the form the network
     * front end drives -- an event loop cannot park on a future.
     */
    void submit(PredictRequest request, Completion done);

    /** Future-returning form of the typed entry point. */
    std::future<PredictResponse> submit(PredictRequest request);

    /** Blocking typed convenience: submit + wait. */
    PredictResponse predict(const PredictRequest &request);

    /**
     * Legacy shim over submit(): throws std::invalid_argument if
     * `model` is not registered; any other non-OK outcome surfaces as
     * std::runtime_error from future::get. The future is deferred --
     * call get()/wait(), not wait_for().
     */
    std::future<double> predictAsync(const std::string &model,
                                     const RegionSpec &region,
                                     const UarchParams &params);

    /** Blocking convenience wrapper around predictAsync. */
    double predict(const std::string &model, const RegionSpec &region,
                   const UarchParams &params);

    /**
     * Pipeline-backed endpoint: shard a trace span into regions of
     * `region_chunks`, answer every region through the batching/caching
     * service path concurrently, and aggregate. Region semantics are
     * the service's per-region warmup convention, so results are
     * bitwise identical to AnalysisPipeline with StateMode::Independent
     * and the default warmup (the golden corpus pins this down).
     * Regions ride the Bulk class: throughput, not tail latency.
     */
    pipeline::PipelineResult predictSpan(const std::string &model,
                                         const TraceSpan &span,
                                         uint32_t region_chunks,
                                         const UarchParams &params);

    /**
     * Warm path: pre-populate the shared AnalysisStore and this
     * service's per-(model, region) FeatureProviders for `regions`,
     * and -- when `points` is non-empty -- pre-answer every
     * (region, point) pair through the Bulk path so the prediction
     * cache and provider memos are hot before traffic lands. Returns
     * UNKNOWN_MODEL if `model` is not registered, otherwise the first
     * non-OK prediction outcome (OK when everything warmed).
     */
    ServeStatus warmRegions(const std::string &model,
                            const std::vector<RegionSpec> &regions,
                            const std::vector<UarchParams> &points = {});

    /**
     * Persist the distinct regions this service has built providers for
     * (its hot set) to `path`; returns the number of regions written.
     * A later process feeds the file to warmFromFile() before opening
     * its listening socket, so the first client never pays cold region
     * analysis.
     */
    size_t saveWarmSet(const std::string &path) const;

    /** Load a saveWarmSet() file and warmRegions() it for `model`. */
    ServeStatus warmFromFile(const std::string &model,
                             const std::string &path,
                             const std::vector<UarchParams> &points = {});

    /**
     * Drop the cached FeatureProvider state for regions served so far
     * (providers are kept per (model, region) and grow with the number
     * of distinct regions seen). The underlying region analyses live in
     * the shared AnalysisStore and survive this call (bounded by the
     * store's LRU), so re-created providers skip trace analysis.
     * Refuses with OVERLOADED while requests are in flight -- in-flight
     * batches hold references into the provider table; returns OK once
     * the table is cleared. (Entries are reference-counted, so even a
     * racing batch that slipped past the idle check keeps its provider
     * alive; the refusal keeps the call's semantics honest.)
     */
    ServeStatus clearProviders();

    /** Flush pending batches and stop accepting requests. */
    void shutdown();

    ServeStats stats() const;

  private:
    /** Per-(model, region) assembly state; providers aren't thread-safe. */
    struct ProviderEntry
    {
        std::mutex mtx;
        std::unique_ptr<FeatureProvider> provider;
    };

    /**
     * Exact (model id, region) identity -- deliberately not a hash, so
     * a collision can never hand a batch the wrong provider.
     */
    using ProviderKey = std::tuple<uint32_t, int, int, uint64_t, uint32_t>;
    static ProviderKey providerKey(const PredictionRequest &request);

    std::vector<PredictResponse>
    handleBatch(const std::vector<PredictionRequest> &batch);
    std::shared_ptr<ProviderEntry>
    providerFor(const PredictionRequest &request);
    /** Record latency + per-status counters for one completion. */
    void recordOutcome(std::chrono::steady_clock::time_point start,
                       ServeStatus status);

    /**
     * Slow path of one flagged request: run the cycle-level simulator
     * on the request's region (ground truth, bitwise identical to a
     * direct simulateRegion call) and, when configured, durably append
     * the (features, label) pair to the feedback file. `features` is
     * the request's assembled feature row (empty when assembly was
     * skipped). Called with a fallback admission slot already held.
     */
    PredictResponse simulateFallback(const PredictionRequest &request,
                                     const std::vector<float> &features);
    /** Durably append one labeled row to cfg.uncertainty.feedbackPath. */
    void appendFeedback(const PredictionRequest &request,
                        const std::vector<float> &features, float label);

    const ServeConfig cfg;
    ModelRegistry models;
    PredictionCache cache;
    ThreadPool pool;

    LatencyRecorder latency;
    std::array<std::atomic<uint64_t>, kNumServeStatuses> statusCounts{};
    std::atomic<uint64_t> servedFastCount{0};
    std::atomic<uint64_t> servedFallbackSimCount{0};
    std::atomic<uint64_t> flaggedOodCount{0};
    std::atomic<uint64_t> fallbackRejectedCount{0};
    std::atomic<uint64_t> feedbackAppendedCount{0};
    /** Fallback simulations currently executing (admission budget). */
    std::atomic<size_t> fallbackInFlight{0};
    /** Serializes feedback-file read-merge-publish cycles. */
    std::mutex feedbackMtx;
    /** One-shot crash-debris sweep of the feedback path. */
    std::once_flag feedbackReclaimOnce;

    mutable std::mutex providersMtx;
    std::map<ProviderKey, std::shared_ptr<ProviderEntry>> providers;

    /** Constructed last so its dispatcher never outlives the members. */
    std::unique_ptr<BatchingQueue> queue;
};

/** Cache key of one request: (model id, region, design point). */
uint64_t predictionKey(uint32_t model_id, const RegionSpec &region,
                       const UarchParams &params);

} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_PREDICTION_SERVICE_HH
