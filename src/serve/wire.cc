#include "serve/wire.hh"

#include <cstring>
#include <string>

#include "uarch/params.hh"

namespace concorde
{
namespace serve
{
namespace wire
{

namespace
{

/** Little-endian primitive appender over a growing byte buffer. */
class Writer
{
  public:
    explicit Writer(std::vector<uint8_t> &buffer) : buf(buffer) {}

    void
    u8(uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        buf.push_back(static_cast<uint8_t>(v));
        buf.push_back(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    i32(int32_t v)
    {
        u32(static_cast<uint32_t>(v));
    }

    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** u16 length + raw bytes. */
    void
    str16(const std::string &s)
    {
        u16(static_cast<uint16_t>(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }

  private:
    std::vector<uint8_t> &buf;
};

/**
 * Bounds-checked little-endian reader. Every accessor reports success;
 * once a read fails the reader stays failed, so decode functions can
 * read a whole struct and check once at the end.
 */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t len) : at(data), left(len) {}

    bool
    u8(uint8_t &v)
    {
        return fixed(&v, 1);
    }

    bool
    u16(uint16_t &v)
    {
        uint8_t b[2];
        if (!fixed(b, 2))
            return false;
        v = static_cast<uint16_t>(b[0] | (b[1] << 8));
        return true;
    }

    bool
    u32(uint32_t &v)
    {
        uint8_t b[4];
        if (!fixed(b, 4))
            return false;
        v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | b[i];
        return true;
    }

    bool
    u64(uint64_t &v)
    {
        uint8_t b[8];
        if (!fixed(b, 8))
            return false;
        v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | b[i];
        return true;
    }

    bool
    i32(int32_t &v)
    {
        uint32_t u;
        if (!u32(u))
            return false;
        v = static_cast<int32_t>(u);
        return true;
    }

    bool
    i64(int64_t &v)
    {
        uint64_t u;
        if (!u64(u))
            return false;
        v = static_cast<int64_t>(u);
        return true;
    }

    bool
    f64(double &v)
    {
        uint64_t bits;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof(v));
        return true;
    }

    bool
    str16(std::string &s)
    {
        uint16_t n;
        if (!u16(n) || n > left)
            return failNow();
        s.assign(reinterpret_cast<const char *>(at), n);
        at += n;
        left -= n;
        return true;
    }

    bool exhausted() const { return !failed && left == 0; }
    bool ok() const { return !failed; }

  private:
    bool
    fixed(uint8_t *out, size_t n)
    {
        if (failed || n > left)
            return failNow();
        std::memcpy(out, at, n);
        at += n;
        left -= n;
        return true;
    }

    bool
    failNow()
    {
        failed = true;
        return false;
    }

    const uint8_t *at;
    size_t left;
    bool failed = false;
};

/** Patch the frame's length prefix once the payload size is known. */
void
beginFrame(std::vector<uint8_t> &out, size_t &length_at)
{
    length_at = out.size();
    Writer(out).u32(0);
}

void
endFrame(std::vector<uint8_t> &out, size_t length_at)
{
    const uint32_t payload = static_cast<uint32_t>(
        out.size() - length_at - kLengthPrefixBytes);
    for (int i = 0; i < 4; ++i)
        out[length_at + i] = static_cast<uint8_t>(payload >> (8 * i));
}

void
header(Writer &w, uint8_t version, uint8_t type, uint64_t request_id)
{
    w.u32(kMagic);
    w.u8(version);
    w.u8(type);
    w.u16(0);   // reserved
    w.u64(request_id);
}

/**
 * Parse a frame header. Malformed on bad magic, unexpected frame
 * type, or truncation; UnsupportedVersion when everything else is
 * well-formed but the version is outside kMinVersion..kVersion (the
 * request id is already filled then -- a server can still answer).
 */
DecodeResult
readHeader(Reader &r, uint8_t want_type, uint64_t &request_id,
           uint8_t &version)
{
    uint32_t magic;
    uint8_t type;
    uint16_t reserved;
    if (!r.u32(magic) || !r.u8(version) || !r.u8(type) ||
        !r.u16(reserved) || !r.u64(request_id)) {
        return DecodeResult::Malformed;
    }
    if (magic != kMagic || type != want_type)
        return DecodeResult::Malformed;
    if (version < kMinVersion || version > kVersion)
        return DecodeResult::UnsupportedVersion;
    return DecodeResult::Ok;
}

} // anonymous namespace

void
encodeRequest(const RequestFrame &frame, std::vector<uint8_t> &out)
{
    size_t length_at;
    beginFrame(out, length_at);
    Writer w(out);
    // The request body is identical across v1 and v2; only the header
    // version differs (and decides which response body comes back).
    header(w, frame.version, kTypeRequest, frame.requestId);

    const PredictRequest &req = frame.request;
    w.u8(static_cast<uint8_t>(req.cls));
    w.u8(0);
    w.u8(0);
    w.u8(0);
    w.u32(static_cast<uint32_t>(req.timeout.count()));
    w.str16(req.model);
    w.i32(req.region.programId);
    w.i32(req.region.traceId);
    w.u64(req.region.startChunk);
    w.u32(req.region.numChunks);

    // The design point as explicit (id, value) pairs over all 20 axes.
    w.u16(static_cast<uint16_t>(kNumParams));
    for (int i = 0; i < kNumParams; ++i) {
        const ParamId id = static_cast<ParamId>(i);
        w.u16(static_cast<uint16_t>(i));
        w.i64(req.params.get(id));
    }
    endFrame(out, length_at);
}

void
encodeResponse(const ResponseFrame &frame, std::vector<uint8_t> &out)
{
    size_t length_at;
    beginFrame(out, length_at);
    Writer w(out);
    header(w, frame.version, kTypeResponse, frame.requestId);
    w.u8(static_cast<uint8_t>(frame.response.status));
    if (frame.version >= 2) {
        uint8_t flags = 0;
        if (frame.response.calibrated)
            flags |= kFlagCalibrated;
        if (frame.response.ood)
            flags |= kFlagOod;
        if (frame.response.fallback)
            flags |= kFlagFallback;
        w.u8(flags);
    }
    w.f64(frame.response.cpi);
    if (frame.version >= 2) {
        w.f64(frame.response.lo);
        w.f64(frame.response.hi);
    }
    w.str16(frame.response.message);
    endFrame(out, length_at);
}

bool
decodeRequest(const uint8_t *data, size_t len, RequestFrame &out)
{
    return decodeRequestEx(data, len, out) == DecodeResult::Ok;
}

DecodeResult
decodeRequestEx(const uint8_t *data, size_t len, RequestFrame &out)
{
    Reader r(data, len);
    const DecodeResult head =
        readHeader(r, kTypeRequest, out.requestId, out.version);
    if (head != DecodeResult::Ok)
        return head;

    PredictRequest &req = out.request;
    uint8_t cls, pad0, pad1, pad2;
    uint32_t timeout_us;
    if (!r.u8(cls) || !r.u8(pad0) || !r.u8(pad1) || !r.u8(pad2) ||
        !r.u32(timeout_us) || !r.str16(req.model)) {
        return DecodeResult::Malformed;
    }
    if (cls >= kNumRequestClasses)
        return DecodeResult::Malformed;
    req.cls = static_cast<RequestClass>(cls);
    req.timeout = std::chrono::microseconds(timeout_us);

    if (!r.i32(req.region.programId) || !r.i32(req.region.traceId) ||
        !r.u64(req.region.startChunk) || !r.u32(req.region.numChunks)) {
        return DecodeResult::Malformed;
    }

    uint16_t num_params;
    if (!r.u16(num_params))
        return DecodeResult::Malformed;
    // Starting from the default-constructed point and applying the
    // transmitted axes reproduces the sender's UarchParams exactly:
    // the ParamId accessors cover every field.
    req.params = UarchParams{};
    for (uint16_t i = 0; i < num_params; ++i) {
        uint16_t id;
        int64_t value;
        if (!r.u16(id) || !r.i64(value))
            return DecodeResult::Malformed;
        if (id >= static_cast<uint16_t>(kNumParams))
            return DecodeResult::Malformed;
        req.params.set(static_cast<ParamId>(id), value);
    }
    return r.exhausted() ? DecodeResult::Ok : DecodeResult::Malformed;
}

bool
decodeResponse(const uint8_t *data, size_t len, ResponseFrame &out)
{
    Reader r(data, len);
    if (readHeader(r, kTypeResponse, out.requestId, out.version) !=
        DecodeResult::Ok) {
        return false;
    }
    uint8_t status;
    if (!r.u8(status))
        return false;
    uint8_t flags = 0;
    if (out.version >= 2 && !r.u8(flags))
        return false;
    if (!r.f64(out.response.cpi))
        return false;
    if (out.version >= 2 &&
        (!r.f64(out.response.lo) || !r.f64(out.response.hi))) {
        return false;
    }
    if (!r.str16(out.response.message))
        return false;
    if (status >= kNumServeStatuses)
        return false;
    if ((flags & ~kKnownFlagsMask) != 0)
        return false;
    out.response.status = static_cast<ServeStatus>(status);
    out.response.calibrated = (flags & kFlagCalibrated) != 0;
    out.response.ood = (flags & kFlagOod) != 0;
    out.response.fallback = (flags & kFlagFallback) != 0;
    return r.exhausted();
}

} // namespace wire
} // namespace serve
} // namespace concorde
