/**
 * @file
 * ModelRegistry: named, shared ownership of trained ConcordePredictors.
 * A serving deployment holds several models at once (different uarch
 * parameter spaces, region lengths, or training runs); the registry
 * hands out shared_ptr snapshots so request threads read models without
 * copying them and without holding any lock while predicting, and a
 * model can be replaced atomically while in-flight batches finish on
 * the old one.
 */

#ifndef CONCORDE_SERVE_MODEL_REGISTRY_HH
#define CONCORDE_SERVE_MODEL_REGISTRY_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/concorde.hh"
#include "core/model_artifact.hh"

namespace concorde
{
namespace serve
{

/** A registered model: the predictor plus its registry identity. */
struct ModelHandle
{
    std::string name;
    uint32_t id = 0;    ///< stable per-registration id (cache-key salt)
    std::shared_ptr<const ConcordePredictor> predictor;
    /** Provenance of the artifact it came from (null for bare models). */
    std::shared_ptr<const ArtifactProvenance> provenance;
    /**
     * Conformal calibration of the artifact it came from (null for
     * bare or uncalibrated models -- those serve point-only).
     */
    std::shared_ptr<const ConformalCalibration> calibration;

    bool valid() const { return predictor != nullptr; }
    bool calibrated() const { return calibration != nullptr; }
};

/** Thread-safe name -> predictor table with copy-free shared access. */
class ModelRegistry
{
  public:
    ModelRegistry() = default;

    /**
     * Register (or replace) a model under `name`. Replacement is an
     * atomic hot-swap: requests already holding the old handle finish
     * on the old snapshot, new lookups see the new one, and the bumped
     * registration id salts every cache key, so cached predictions of
     * the old model can never be returned for the new one.
     */
    ModelHandle add(const std::string &name, ConcordePredictor predictor);

    /** Register a predictor loaded from a ConcordePredictor::save file. */
    ModelHandle addFromFile(const std::string &name,
                            const std::string &path);

    /** Register (or hot-swap to) a versioned model artifact. */
    ModelHandle addArtifact(const std::string &name,
                            const ModelArtifact &artifact);

    /** Load a ModelArtifact file and register it under `name`. */
    ModelHandle addFromArtifactFile(const std::string &name,
                                    const std::string &path);

    /** Look up a model; returns an invalid handle if absent. */
    ModelHandle get(const std::string &name) const;

    /** Remove a model; in-flight holders keep their shared_ptr. */
    bool remove(const std::string &name);

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    size_t size() const;

  private:
    mutable std::mutex mtx;
    std::unordered_map<std::string, ModelHandle> models;
    uint32_t nextId = 1;
};

} // namespace serve
} // namespace concorde

#endif // CONCORDE_SERVE_MODEL_REGISTRY_HH
