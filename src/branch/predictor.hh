/**
 * @file
 * Branch predictors (Section 3.1): `Simple`, which mispredicts randomly at
 * a pre-specified rate, and `TAGE`. Conditional branches are predicted by
 * direction; indirect branches by a last-target table; direct unconditional
 * branches never mispredict.
 *
 * Trace analysis computes per-branch mispredict flags once per region;
 * both the analytical features and the reference simulator consume the
 * same flags, exactly as the paper's pipeline shares its trace analysis.
 */

#ifndef CONCORDE_BRANCH_PREDICTOR_HH
#define CONCORDE_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/instruction.hh"
#include "trace/trace_columns.hh"

namespace concorde
{

/** Branch-predictor design point (two Table-1 parameters). */
struct BranchConfig
{
    enum class Type : uint8_t { Simple = 0, Tage = 1 };

    Type type = Type::Tage;
    int simpleMispredictPct = 5;    ///< 0..100, used when type == Simple

    bool operator==(const BranchConfig &o) const
    {
        return type == o.type
            && (type == Type::Tage
                || simpleMispredictPct == o.simpleMispredictPct);
    }

    /** Dense key for memoization. */
    uint32_t key() const
    {
        return type == Type::Tage ? 1000u
            : static_cast<uint32_t>(simpleMispredictPct);
    }
};

/** Direction + indirect-target predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the direction of a conditional branch, then train on the
     * actual outcome. @return predicted direction.
     */
    virtual bool predictAndUpdate(uint64_t pc, bool taken) = 0;

    /**
     * Predict an indirect branch's target, then train.
     * @return true if the target was predicted correctly.
     */
    virtual bool predictIndirect(uint64_t pc, uint16_t target);

  private:
    /** Shared last-target indirect predictor (1k entries). */
    struct IndirectEntry { uint64_t pc = ~0ULL; uint16_t target = 0; };
    std::vector<IndirectEntry> indirectTable =
        std::vector<IndirectEntry>(1024);
};

/** Instantiate a predictor per config. @param seed for Simple's draws. */
std::unique_ptr<BranchPredictor> makePredictor(const BranchConfig &config,
                                               uint64_t seed);

/**
 * Predict-and-train one branch; @return 1 on mispredict. Direct
 * unconditional branches never mispredict. The single per-branch step
 * shared by runPredictor and the fused analysis sweeps, so every caller
 * trains the predictor in exactly the same way.
 */
inline uint8_t
predictorStep(BranchPredictor &predictor, uint64_t pc, BranchKind kind,
              bool taken, uint16_t target)
{
    switch (kind) {
      case BranchKind::DirectCond: {
        const bool pred = predictor.predictAndUpdate(pc, taken);
        return pred != taken ? 1 : 0;
      }
      case BranchKind::Indirect:
        return predictor.predictIndirect(pc, target) ? 0 : 1;
      default:
        return 0;
    }
}

/**
 * Run a live predictor over `instrs` in trace order. When `flags` is
 * non-null it receives one entry per instruction (1 = mispredicted
 * branch); a null `flags` trains without recording (warmup). Predictor
 * state carries across calls, which is how the stitched pipeline splits
 * a trace at shard boundaries without changing any outcome.
 */
void runPredictor(BranchPredictor &predictor,
                  const std::vector<Instruction> &instrs,
                  std::vector<uint8_t> *flags);

/** Columnar variant (identical outcomes and training). */
void runPredictor(BranchPredictor &predictor, const TraceColumns &instrs,
                  std::vector<uint8_t> *flags);

/**
 * Run the configured predictor over `warmup + region` and return one flag
 * per region instruction (1 = mispredicted branch). Non-branches get 0.
 */
std::vector<uint8_t> computeMispredicts(
    const std::vector<Instruction> &warmup,
    const std::vector<Instruction> &region,
    const BranchConfig &config, uint64_t seed);

} // namespace concorde

#endif // CONCORDE_BRANCH_PREDICTOR_HH
