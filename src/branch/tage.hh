/**
 * @file
 * TAGE direction predictor (Seznec [8, 77]): a bimodal base table plus
 * tagged tables indexed with geometrically increasing global-history
 * lengths, with the standard provider/altpred/useful-bit update policy.
 */

#ifndef CONCORDE_BRANCH_TAGE_HH
#define CONCORDE_BRANCH_TAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "branch/predictor.hh"

namespace concorde
{

/** TAGE with 5 tagged tables over geometric history lengths. */
class Tage : public BranchPredictor
{
  public:
    Tage();

    bool predictAndUpdate(uint64_t pc, bool taken) override;

  private:
    static constexpr int kNumTables = 5;
    static constexpr int kLogTagged = 10;       ///< entries per table
    static constexpr int kTagBits = 11;
    static constexpr int kLogBimodal = 13;
    static constexpr int kMaxHist = 320;
    static constexpr std::array<int, kNumTables> kHistLens =
        {5, 14, 39, 110, 300};

    struct TaggedEntry
    {
        uint16_t tag = 0;
        int8_t ctr = 0;     ///< -4..3 signed 3-bit counter
        uint8_t useful = 0; ///< 0..3
    };

    /** Incrementally folded history (Seznec's circular shift trick). */
    struct FoldedHistory
    {
        uint32_t value = 0;
        int origLen = 0;
        int foldedLen = 0;
        int outPoint = 0;

        void init(int orig_len, int folded_len);
        void update(const uint8_t *ghist, int ptr, int max_hist);
    };

    uint32_t tableIndex(uint64_t pc, int t) const;
    uint16_t tableTag(uint64_t pc, int t) const;
    void pushHistory(bool taken);

    std::vector<int8_t> bimodal;    ///< 2-bit counters, -2..1
    std::array<std::vector<TaggedEntry>, kNumTables> tables;
    std::array<FoldedHistory, kNumTables> idxFold;
    std::array<FoldedHistory, kNumTables> tagFold1;
    std::array<FoldedHistory, kNumTables> tagFold2;

    uint8_t ghist[kMaxHist] = {};
    int histPtr = 0;            ///< position of the newest bit
    int8_t useAltOnNa = 0;      ///< use-alt-on-newly-allocated counter
    uint64_t branchCount = 0;   ///< drives periodic useful-bit aging
    uint64_t allocSeed = 0x7A6EULL;
};

} // namespace concorde

#endif // CONCORDE_BRANCH_TAGE_HH
