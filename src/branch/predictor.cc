#include "branch/predictor.hh"

#include "branch/simple_bp.hh"
#include "branch/tage.hh"
#include "common/logging.hh"

namespace concorde
{

bool
BranchPredictor::predictIndirect(uint64_t pc, uint16_t target)
{
    IndirectEntry &e = indirectTable[(pc >> 2) & (indirectTable.size() - 1)];
    const bool correct = (e.pc == pc && e.target == target);
    e.pc = pc;
    e.target = target;
    return correct;
}

std::unique_ptr<BranchPredictor>
makePredictor(const BranchConfig &config, uint64_t seed)
{
    if (config.type == BranchConfig::Type::Simple)
        return std::make_unique<SimpleBp>(config.simpleMispredictPct, seed);
    return std::make_unique<Tage>();
}

std::vector<uint8_t>
computeMispredicts(const std::vector<Instruction> &warmup,
                   const std::vector<Instruction> &region,
                   const BranchConfig &config, uint64_t seed)
{
    auto predictor = makePredictor(config, seed);

    auto run = [&](const Instruction &instr, bool record) -> uint8_t {
        if (!instr.isBranch())
            return 0;
        switch (instr.branchKind) {
          case BranchKind::DirectUncond:
            return 0;
          case BranchKind::DirectCond: {
            const bool pred =
                predictor->predictAndUpdate(instr.pc, instr.taken);
            return record && pred != instr.taken ? 1 : 0;
          }
          case BranchKind::Indirect: {
            const bool ok =
                predictor->predictIndirect(instr.pc, instr.targetId);
            return record && !ok ? 1 : 0;
          }
          default:
            return 0;
        }
    };

    for (const auto &instr : warmup)
        run(instr, false);

    std::vector<uint8_t> flags(region.size(), 0);
    for (size_t i = 0; i < region.size(); ++i)
        flags[i] = run(region[i], true);
    return flags;
}

} // namespace concorde
