#include "branch/predictor.hh"

#include "branch/simple_bp.hh"
#include "branch/tage.hh"
#include "common/logging.hh"

namespace concorde
{

bool
BranchPredictor::predictIndirect(uint64_t pc, uint16_t target)
{
    IndirectEntry &e = indirectTable[(pc >> 2) & (indirectTable.size() - 1)];
    const bool correct = (e.pc == pc && e.target == target);
    e.pc = pc;
    e.target = target;
    return correct;
}

std::unique_ptr<BranchPredictor>
makePredictor(const BranchConfig &config, uint64_t seed)
{
    if (config.type == BranchConfig::Type::Simple)
        return std::make_unique<SimpleBp>(config.simpleMispredictPct, seed);
    return std::make_unique<Tage>();
}

void
runPredictor(BranchPredictor &predictor,
             const std::vector<Instruction> &instrs,
             std::vector<uint8_t> *flags)
{
    const bool record = flags != nullptr;
    if (record)
        flags->assign(instrs.size(), 0);

    for (size_t i = 0; i < instrs.size(); ++i) {
        const Instruction &instr = instrs[i];
        if (!instr.isBranch())
            continue;
        const uint8_t miss = predictorStep(predictor, instr.pc,
                                           instr.branchKind, instr.taken,
                                           instr.targetId);
        if (record)
            (*flags)[i] = miss;
    }
}

void
runPredictor(BranchPredictor &predictor, const TraceColumns &instrs,
             std::vector<uint8_t> *flags)
{
    const bool record = flags != nullptr;
    if (record)
        flags->assign(instrs.size(), 0);

    for (size_t i = 0; i < instrs.size(); ++i) {
        if (!instrs.isBranch(i))
            continue;
        const uint8_t miss = predictorStep(predictor, instrs.pc[i],
                                           instrs.branchKind[i],
                                           instrs.taken[i] != 0,
                                           instrs.targetId[i]);
        if (record)
            (*flags)[i] = miss;
    }
}

std::vector<uint8_t>
computeMispredicts(const std::vector<Instruction> &warmup,
                   const std::vector<Instruction> &region,
                   const BranchConfig &config, uint64_t seed)
{
    auto predictor = makePredictor(config, seed);
    runPredictor(*predictor, warmup, nullptr);
    std::vector<uint8_t> flags;
    runPredictor(*predictor, region, &flags);
    return flags;
}

} // namespace concorde
