#include "branch/tage.hh"

#include "common/rng.hh"

namespace concorde
{

constexpr std::array<int, Tage::kNumTables> Tage::kHistLens;

void
Tage::FoldedHistory::init(int orig_len, int folded_len)
{
    value = 0;
    origLen = orig_len;
    foldedLen = folded_len;
    outPoint = orig_len % folded_len;
}

void
Tage::FoldedHistory::update(const uint8_t *ghist, int ptr, int max_hist)
{
    // Shift in the newest bit; shift out the bit that just aged past
    // origLen (Seznec's incremental folded-history computation).
    value = (value << 1) | ghist[ptr];
    value ^= static_cast<uint32_t>(ghist[(ptr + origLen) % max_hist])
        << outPoint;
    value ^= value >> foldedLen;
    value &= (1u << foldedLen) - 1;
}

Tage::Tage()
    : bimodal(1u << kLogBimodal, 0)
{
    for (int t = 0; t < kNumTables; ++t) {
        tables[t].resize(1u << kLogTagged);
        idxFold[t].init(kHistLens[t], kLogTagged);
        tagFold1[t].init(kHistLens[t], kTagBits);
        tagFold2[t].init(kHistLens[t], kTagBits - 1);
    }
}

uint32_t
Tage::tableIndex(uint64_t pc, int t) const
{
    const uint32_t folded = idxFold[t].value;
    const uint32_t h = static_cast<uint32_t>(pc >> 2)
        ^ static_cast<uint32_t>(pc >> (kLogTagged - t + 2));
    return (h ^ folded) & ((1u << kLogTagged) - 1);
}

uint16_t
Tage::tableTag(uint64_t pc, int t) const
{
    const uint32_t tag = static_cast<uint32_t>(pc >> 2)
        ^ tagFold1[t].value ^ (tagFold2[t].value << 1);
    return static_cast<uint16_t>(tag & ((1u << kTagBits) - 1));
}

void
Tage::pushHistory(bool taken)
{
    histPtr = (histPtr + kMaxHist - 1) % kMaxHist;
    ghist[histPtr] = taken ? 1 : 0;
    for (int t = 0; t < kNumTables; ++t) {
        idxFold[t].update(ghist, histPtr, kMaxHist);
        tagFold1[t].update(ghist, histPtr, kMaxHist);
        tagFold2[t].update(ghist, histPtr, kMaxHist);
    }
}

bool
Tage::predictAndUpdate(uint64_t pc, bool taken)
{
    ++branchCount;

    const uint32_t bim_idx = static_cast<uint32_t>(pc >> 2)
        & ((1u << kLogBimodal) - 1);
    const bool bim_pred = bimodal[bim_idx] >= 0;

    // Find provider (longest history with a tag match) and altpred.
    int provider = -1;
    int alt = -1;
    uint32_t idx[kNumTables];
    uint16_t tag[kNumTables];
    for (int t = kNumTables - 1; t >= 0; --t) {
        idx[t] = tableIndex(pc, t);
        tag[t] = tableTag(pc, t);
    }
    for (int t = kNumTables - 1; t >= 0; --t) {
        if (tables[t][idx[t]].tag == tag[t]) {
            if (provider < 0) {
                provider = t;
            } else {
                alt = t;
                break;
            }
        }
    }

    const bool alt_pred = alt >= 0 ? tables[alt][idx[alt]].ctr >= 0
                                   : bim_pred;
    bool pred;
    bool provider_weak = false;
    if (provider >= 0) {
        const TaggedEntry &e = tables[provider][idx[provider]];
        provider_weak = (e.ctr == 0 || e.ctr == -1) && e.useful == 0;
        pred = (provider_weak && useAltOnNa >= 0) ? alt_pred : e.ctr >= 0;
    } else {
        pred = bim_pred;
    }

    // ---- update ----
    const bool correct = (pred == taken);

    if (provider >= 0) {
        TaggedEntry &e = tables[provider][idx[provider]];
        const bool provider_pred = e.ctr >= 0;
        if (provider_weak) {
            if (alt_pred != provider_pred) {
                if (alt_pred == taken) {
                    if (useAltOnNa < 7)
                        ++useAltOnNa;
                } else if (useAltOnNa > -8) {
                    --useAltOnNa;
                }
            }
        }
        if (provider_pred != alt_pred) {
            if (provider_pred == taken) {
                if (e.useful < 3)
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
        if (taken) {
            if (e.ctr < 3)
                ++e.ctr;
        } else if (e.ctr > -4) {
            --e.ctr;
        }
        // Keep the bimodal table warm when it served as altpred.
        if (alt < 0) {
            if (taken) {
                if (bimodal[bim_idx] < 1)
                    ++bimodal[bim_idx];
            } else if (bimodal[bim_idx] > -2) {
                --bimodal[bim_idx];
            }
        }
    } else {
        if (taken) {
            if (bimodal[bim_idx] < 1)
                ++bimodal[bim_idx];
        } else if (bimodal[bim_idx] > -2) {
            --bimodal[bim_idx];
        }
    }

    // Allocate a longer-history entry on mispredict.
    if (!correct && provider < kNumTables - 1) {
        int candidate = -1;
        for (int t = provider + 1; t < kNumTables; ++t) {
            if (tables[t][idx[t]].useful == 0) {
                candidate = t;
                break;
            }
        }
        if (candidate < 0) {
            for (int t = provider + 1; t < kNumTables; ++t) {
                if (tables[t][idx[t]].useful > 0)
                    --tables[t][idx[t]].useful;
            }
        } else {
            // Skip ahead pseudo-randomly so allocation doesn't always
            // land in the shortest table.
            if (candidate + 1 < kNumTables
                && (splitMix64(allocSeed) & 3) == 0
                && tables[candidate + 1][idx[candidate + 1]].useful == 0) {
                ++candidate;
            }
            TaggedEntry &e = tables[candidate][idx[candidate]];
            e.tag = tag[candidate];
            e.ctr = taken ? 0 : -1;
            e.useful = 0;
        }
    }

    // Periodic useful-bit aging.
    if ((branchCount & ((1u << 18) - 1)) == 0) {
        for (auto &table : tables) {
            for (auto &e : table)
                e.useful >>= 1;
        }
    }

    pushHistory(taken);
    return pred;
}

} // namespace concorde
