#include "branch/simple_bp.hh"

#include "common/logging.hh"

namespace concorde
{

SimpleBp::SimpleBp(int mispredict_pct, uint64_t seed)
    : rate(mispredict_pct / 100.0), rng(hashMix(seed, 0x51B0ULL))
{
    fatal_if(mispredict_pct < 0 || mispredict_pct > 100,
             "mispredict pct out of range: %d", mispredict_pct);
}

bool
SimpleBp::predictAndUpdate(uint64_t pc, bool taken)
{
    (void)pc;
    const bool mispredict = rng.nextBool(rate);
    return mispredict ? !taken : taken;
}

bool
SimpleBp::predictIndirect(uint64_t pc, uint16_t target)
{
    (void)pc;
    (void)target;
    return !rng.nextBool(rate);
}

} // namespace concorde
