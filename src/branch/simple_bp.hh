/**
 * @file
 * The `Simple` branch predictor: mispredicts uniformly at random at a
 * pre-specified rate (Table 1's "Percent misprediction for Simple BP").
 */

#ifndef CONCORDE_BRANCH_SIMPLE_BP_HH
#define CONCORDE_BRANCH_SIMPLE_BP_HH

#include "branch/predictor.hh"
#include "common/rng.hh"

namespace concorde
{

/** Random mispredictor with a fixed rate; deterministic given its seed. */
class SimpleBp : public BranchPredictor
{
  public:
    SimpleBp(int mispredict_pct, uint64_t seed);

    bool predictAndUpdate(uint64_t pc, bool taken) override;
    bool predictIndirect(uint64_t pc, uint16_t target) override;

  private:
    double rate;
    Rng rng;
};

} // namespace concorde

#endif // CONCORDE_BRANCH_SIMPLE_BP_HH
