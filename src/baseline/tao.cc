#include "baseline/tao.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/thread_pool.hh"

namespace concorde
{

namespace
{

inline float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // anonymous namespace

TaoModel::TaoModel(TaoConfig config, UarchParams target)
    : cfg(config), targetUarch(target)
{
    Rng rng(hashMix(cfg.seed, 0x7A0ULL));
    const size_t h = cfg.hidden;
    const size_t in = kTaoInstrDim;
    auto init = [&](size_t rows, size_t cols) {
        std::vector<float> w(rows * cols);
        const double scale = std::sqrt(1.0 / static_cast<double>(cols));
        for (auto &v : w)
            v = static_cast<float>(rng.nextGaussian() * scale);
        return w;
    };
    for (int g = 0; g < 3; ++g) {
        wx.push_back(init(h, in));
        wh.push_back(init(h, h));
        b.emplace_back(h, 0.0f);
    }
    wo = init(1, h);
    bo = 0.5f;
}

void
TaoModel::encodeWindow(RegionAnalysis &analysis, size_t offset,
                       std::vector<float> &out) const
{
    const auto &region = analysis.instrs();
    const auto &dside = analysis.dside(targetUarch.memory);
    const auto &iside = analysis.iside(targetUarch.memory);
    const auto &branch_info = analysis.branches(targetUarch.branch);

    out.assign(cfg.seqLen * kTaoInstrDim, 0.0f);
    for (size_t t = 0; t < cfg.seqLen; ++t) {
        const size_t i = offset + t;
        panic_if(i >= region.size(), "TAO window out of range");
        const Instruction &instr = region[i];
        float *f = out.data() + t * kTaoInstrDim;

        f[static_cast<size_t>(instr.type)] = 1.0f;  // one-hot(9)
        for (int d = 0; d < kMaxSrcDeps; ++d) {
            if (instr.srcDeps[d] >= 0) {
                const double dist =
                    static_cast<double>(i)
                    - static_cast<double>(instr.srcDeps[d]);
                f[9 + d] = static_cast<float>(
                    std::log1p(std::max(1.0, dist)) / 8.0);
            }
        }
        f[11] = iside.newLine[i] ? 1.0f : 0.0f;
        if (instr.isLoad())
            f[12 + static_cast<size_t>(dside.loadLevel[i])] = 1.0f;
        f[16] = branch_info.mispredict[i] ? 1.0f : 0.0f;
    }
}

double
TaoModel::forwardWindow(const float *x, std::vector<float> &h) const
{
    const size_t hd = cfg.hidden;
    h.assign(hd, 0.0f);
    std::vector<float> h_mean(hd, 0.0f);
    std::vector<float> gate(3 * hd);

    for (size_t t = 0; t < cfg.seqLen; ++t) {
        const float *xt = x + t * kTaoInstrDim;
        for (int g = 0; g < 3; ++g) {
            for (size_t o = 0; o < hd; ++o) {
                const float *rx = wx[g].data() + o * kTaoInstrDim;
                float acc = b[g][o];
                for (size_t i = 0; i < kTaoInstrDim; ++i)
                    acc += rx[i] * xt[i];
                gate[g * hd + o] = acc;
            }
        }
        // r gate applies to h inside the candidate; z / r linear in h.
        for (size_t o = 0; o < hd; ++o) {
            const float *rz = wh[0].data() + o * hd;
            const float *rr = wh[1].data() + o * hd;
            float az = gate[o], ar = gate[hd + o];
            for (size_t i = 0; i < hd; ++i) {
                az += rz[i] * h[i];
                ar += rr[i] * h[i];
            }
            gate[o] = sigmoidf(az);
            gate[hd + o] = sigmoidf(ar);
        }
        for (size_t o = 0; o < hd; ++o) {
            const float *rc = wh[2].data() + o * hd;
            float ac = gate[2 * hd + o];
            for (size_t i = 0; i < hd; ++i)
                ac += rc[i] * (gate[hd + i] * h[i]);
            gate[2 * hd + o] = std::tanh(ac);
        }
        for (size_t o = 0; o < hd; ++o) {
            const float z = gate[o];
            h[o] = (1.0f - z) * h[o] + z * gate[2 * hd + o];
            h_mean[o] += h[o];
        }
    }

    float y = bo;
    for (size_t o = 0; o < hd; ++o)
        y += wo[o] * h_mean[o] / static_cast<float>(cfg.seqLen);
    return std::max(1e-3f, y);
}

double
TaoModel::predictCpi(RegionAnalysis &analysis) const
{
    const size_t n = analysis.instrs().size();
    panic_if(n < cfg.seqLen, "region shorter than TAO window");
    std::vector<float> x;
    std::vector<float> h;
    double acc = 0.0;
    const size_t windows = std::max<size_t>(1, cfg.windowsPerRegion);
    for (size_t w = 0; w < windows; ++w) {
        const size_t offset = windows == 1
            ? 0
            : w * (n - cfg.seqLen) / (windows - 1);
        encodeWindow(analysis, offset, x);
        acc += forwardWindow(x.data(), h);
    }
    return acc / static_cast<double>(windows);
}

// ---------------------------------------------------------------------
// Training (BPTT + Adam).
// ---------------------------------------------------------------------

struct TaoTrainer
{
    TaoModel &model;
    const size_t hd, in, T;

    struct Grads
    {
        std::vector<std::vector<float>> wx, wh, b;
        std::vector<float> wo;
        float bo = 0.0f;
        size_t samples = 0;
    };

    Grads
    makeGrads() const
    {
        Grads g;
        for (int k = 0; k < 3; ++k) {
            g.wx.emplace_back(hd * in, 0.0f);
            g.wh.emplace_back(hd * hd, 0.0f);
            g.b.emplace_back(hd, 0.0f);
        }
        g.wo.assign(hd, 0.0f);
        return g;
    }

    static void
    zero(Grads &g)
    {
        for (int k = 0; k < 3; ++k) {
            std::fill(g.wx[k].begin(), g.wx[k].end(), 0.0f);
            std::fill(g.wh[k].begin(), g.wh[k].end(), 0.0f);
            std::fill(g.b[k].begin(), g.b[k].end(), 0.0f);
        }
        std::fill(g.wo.begin(), g.wo.end(), 0.0f);
        g.bo = 0.0f;
        g.samples = 0;
    }

    /** Forward with full state recording, then BPTT. Returns the loss. */
    double
    step(const float *x, float target, Grads &grads) const
    {
        // Recorded states per step: h (post), z, r, c, rh (r*h_prev).
        std::vector<float> hs((T + 1) * hd, 0.0f);
        std::vector<float> zs(T * hd), rs(T * hd), cs(T * hd),
            rhs(T * hd);

        for (size_t t = 0; t < T; ++t) {
            const float *xt = x + t * in;
            const float *hp = hs.data() + t * hd;
            float *hn = hs.data() + (t + 1) * hd;
            for (size_t o = 0; o < hd; ++o) {
                float az = model.b[0][o], ar = model.b[1][o];
                const float *wxz = model.wx[0].data() + o * in;
                const float *wxr = model.wx[1].data() + o * in;
                for (size_t i = 0; i < in; ++i) {
                    az += wxz[i] * xt[i];
                    ar += wxr[i] * xt[i];
                }
                const float *whz = model.wh[0].data() + o * hd;
                const float *whr = model.wh[1].data() + o * hd;
                for (size_t i = 0; i < hd; ++i) {
                    az += whz[i] * hp[i];
                    ar += whr[i] * hp[i];
                }
                zs[t * hd + o] = sigmoidf(az);
                rs[t * hd + o] = sigmoidf(ar);
            }
            for (size_t i = 0; i < hd; ++i)
                rhs[t * hd + i] = rs[t * hd + i] * hp[i];
            for (size_t o = 0; o < hd; ++o) {
                float ac = model.b[2][o];
                const float *wxc = model.wx[2].data() + o * in;
                for (size_t i = 0; i < in; ++i)
                    ac += wxc[i] * xt[i];
                const float *whc = model.wh[2].data() + o * hd;
                for (size_t i = 0; i < hd; ++i)
                    ac += whc[i] * rhs[t * hd + i];
                cs[t * hd + o] = std::tanh(ac);
            }
            for (size_t o = 0; o < hd; ++o) {
                const float z = zs[t * hd + o];
                hn[o] = (1.0f - z) * hp[o] + z * cs[t * hd + o];
            }
        }

        float y = model.bo;
        for (size_t t = 1; t <= T; ++t) {
            for (size_t o = 0; o < hd; ++o)
                y += model.wo[o] * hs[t * hd + o] / static_cast<float>(T);
        }

        const float safe_y = std::max(target, 1e-6f);
        const double loss = std::abs(y - target) / safe_y;
        const float dy = (y >= target ? 1.0f : -1.0f) / safe_y;

        grads.bo += dy;
        std::vector<float> dh(hd, 0.0f);
        std::vector<float> da(hd);
        for (size_t t = T; t-- > 0;) {
            const float *hp = hs.data() + t * hd;
            const float *hn = hs.data() + (t + 1) * hd;
            const float *xt = x + t * in;
            for (size_t o = 0; o < hd; ++o) {
                grads.wo[o] += dy * hn[o] / static_cast<float>(T);
                dh[o] += dy * model.wo[o] / static_cast<float>(T);
            }

            std::vector<float> dh_prev(hd, 0.0f);
            // Candidate path.
            for (size_t o = 0; o < hd; ++o) {
                const float z = zs[t * hd + o];
                const float c = cs[t * hd + o];
                const float dc = dh[o] * z;
                da[o] = dc * (1.0f - c * c);
                dh_prev[o] += dh[o] * (1.0f - z);
            }
            for (size_t o = 0; o < hd; ++o) {
                const float d = da[o];
                if (d == 0.0f)
                    continue;
                float *gwx = grads.wx[2].data() + o * in;
                for (size_t i = 0; i < in; ++i)
                    gwx[i] += d * xt[i];
                float *gwh = grads.wh[2].data() + o * hd;
                const float *whc = model.wh[2].data() + o * hd;
                for (size_t i = 0; i < hd; ++i) {
                    gwh[i] += d * rhs[t * hd + i];
                    // Through rh = r * h_prev: the h_prev component here;
                    // the r component is handled in the dr loop below.
                    dh_prev[i] += d * whc[i] * rs[t * hd + i];
                }
                grads.b[2][o] += d;
            }
            // r-gate gradient: dr_i = sum_o da_c[o] * whc[o][i] * h_prev[i]
            std::vector<float> dr(hd, 0.0f);
            for (size_t o = 0; o < hd; ++o) {
                const float d = da[o];
                if (d == 0.0f)
                    continue;
                const float *whc = model.wh[2].data() + o * hd;
                for (size_t i = 0; i < hd; ++i)
                    dr[i] += d * whc[i] * hp[i];
            }
            // z-gate gradient.
            std::vector<float> dz(hd);
            for (size_t o = 0; o < hd; ++o)
                dz[o] = dh[o] * (cs[t * hd + o] - hp[o]);

            auto backprop_gate = [&](int g, const std::vector<float> &dgate,
                                     const std::vector<float> &gate_val) {
                for (size_t o = 0; o < hd; ++o) {
                    const float v = gate_val[t * hd + o];
                    const float d = dgate[o] * v * (1.0f - v);
                    if (d == 0.0f)
                        continue;
                    float *gwx = grads.wx[g].data() + o * in;
                    for (size_t i = 0; i < in; ++i)
                        gwx[i] += d * xt[i];
                    float *gwh = grads.wh[g].data() + o * hd;
                    const float *whg = model.wh[g].data() + o * hd;
                    for (size_t i = 0; i < hd; ++i) {
                        gwh[i] += d * hp[i];
                        dh_prev[i] += d * whg[i];
                    }
                    grads.b[g][o] += d;
                }
            };
            backprop_gate(0, dz, zs);
            backprop_gate(1, dr, rs);

            dh.swap(dh_prev);
        }
        ++grads.samples;
        return loss;
    }
};

double
TaoModel::train(const std::vector<RegionSpec> &regions,
                const std::vector<float> &labels)
{
    panic_if(regions.size() != labels.size(), "regions/labels mismatch");
    const size_t threads =
        cfg.threads == 0 ? defaultThreads() : cfg.threads;

    // Precompute window encodings (the expensive trace analyses run once).
    const size_t windows = cfg.windowsPerRegion;
    const size_t total = regions.size() * windows;
    std::vector<float> xs(total * cfg.seqLen * kTaoInstrDim);
    std::vector<float> ys(total);
    parallelFor(regions.size(), [&](size_t s) {
        RegionAnalysis analysis(regions[s]);
        const size_t n = analysis.instrs().size();
        std::vector<float> block;
        for (size_t w = 0; w < windows; ++w) {
            const size_t offset = windows == 1
                ? 0 : w * (n - cfg.seqLen) / (windows - 1);
            encodeWindow(analysis, offset, block);
            std::copy(block.begin(), block.end(),
                      xs.begin() + (s * windows + w) * block.size());
            ys[s * windows + w] = labels[s];
        }
    }, threads);

    TaoTrainer trainer{*this, cfg.hidden, kTaoInstrDim, cfg.seqLen};
    std::vector<TaoTrainer::Grads> tg;
    for (size_t t = 0; t < threads; ++t)
        tg.push_back(trainer.makeGrads());

    // Adam state mirrors the parameter shapes.
    TaoTrainer::Grads m = trainer.makeGrads();
    TaoTrainer::Grads v = trainer.makeGrads();
    uint64_t adam_t = 0;

    std::vector<size_t> order(total);
    std::iota(order.begin(), order.end(), 0);
    Rng rng(hashMix(cfg.seed, 0x7A0773ULL));
    const size_t x_stride = cfg.seqLen * kTaoInstrDim;

    double last_epoch_loss = 0.0;
    std::vector<double> thread_loss(threads, 0.0);
    for (size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        for (size_t i = total - 1; i > 0; --i) {
            const size_t j = rng.nextBounded(i + 1);
            std::swap(order[i], order[j]);
        }
        double epoch_loss = 0.0;
        for (size_t begin = 0; begin < total; begin += cfg.batchSize) {
            const size_t end = std::min(total, begin + cfg.batchSize);
            std::fill(thread_loss.begin(), thread_loss.end(), 0.0);
            for (auto &g : tg)
                g.samples = 0;
            parallelShards(end - begin,
                           [&](size_t t, size_t lo, size_t hi) {
                TaoTrainer::zero(tg[t]);
                double loss = 0.0;
                for (size_t s = lo; s < hi; ++s) {
                    const size_t row = order[begin + s];
                    loss += trainer.step(xs.data() + row * x_stride,
                                         ys[row], tg[t]);
                }
                thread_loss[t] = loss;
            }, threads);
            for (size_t t = 1; t < threads; ++t) {
                if (tg[t].samples == 0)
                    continue;
                for (int k = 0; k < 3; ++k) {
                    for (size_t i = 0; i < tg[0].wx[k].size(); ++i)
                        tg[0].wx[k][i] += tg[t].wx[k][i];
                    for (size_t i = 0; i < tg[0].wh[k].size(); ++i)
                        tg[0].wh[k][i] += tg[t].wh[k][i];
                    for (size_t i = 0; i < tg[0].b[k].size(); ++i)
                        tg[0].b[k][i] += tg[t].b[k][i];
                }
                for (size_t i = 0; i < tg[0].wo.size(); ++i)
                    tg[0].wo[i] += tg[t].wo[i];
                tg[0].bo += tg[t].bo;
                tg[0].samples += tg[t].samples;
            }
            for (double l : thread_loss)
                epoch_loss += l;

            // Adam update.
            ++adam_t;
            const double inv_n =
                1.0 / std::max<size_t>(1, tg[0].samples);
            const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
            const double bc1 = 1.0 - std::pow(b1, adam_t);
            const double bc2 = 1.0 - std::pow(b2, adam_t);
            auto update = [&](std::vector<float> &param,
                              const std::vector<float> &grad,
                              std::vector<float> &mm,
                              std::vector<float> &vv) {
                for (size_t i = 0; i < param.size(); ++i) {
                    const double g = grad[i] * inv_n;
                    mm[i] = static_cast<float>(b1 * mm[i]
                                               + (1 - b1) * g);
                    vv[i] = static_cast<float>(b2 * vv[i]
                                               + (1 - b2) * g * g);
                    param[i] -= static_cast<float>(
                        cfg.learningRate * (mm[i] / bc1)
                        / (std::sqrt(vv[i] / bc2) + eps));
                }
            };
            for (int k = 0; k < 3; ++k) {
                update(wx[k], tg[0].wx[k], m.wx[k], v.wx[k]);
                update(wh[k], tg[0].wh[k], m.wh[k], v.wh[k]);
                update(b[k], tg[0].b[k], m.b[k], v.b[k]);
            }
            update(wo, tg[0].wo, m.wo, v.wo);
            {
                const double g = tg[0].bo * inv_n;
                m.bo = static_cast<float>(b1 * m.bo + (1 - b1) * g);
                v.bo = static_cast<float>(b2 * v.bo + (1 - b2) * g * g);
                bo -= static_cast<float>(cfg.learningRate * (m.bo / bc1)
                                         / (std::sqrt(v.bo / bc2) + eps));
            }
        }
        last_epoch_loss = epoch_loss / static_cast<double>(total);
    }
    return last_epoch_loss;
}

void
TaoModel::save(const std::string &path) const
{
    BinaryWriter out(path);
    out.put<uint64_t>(cfg.hidden);
    out.put<uint64_t>(cfg.seqLen);
    out.put<uint64_t>(cfg.windowsPerRegion);
    out.put(targetUarch);
    for (int k = 0; k < 3; ++k) {
        out.putVector(wx[k]);
        out.putVector(wh[k]);
        out.putVector(b[k]);
    }
    out.putVector(wo);
    out.put(bo);
}

TaoModel
TaoModel::load(const std::string &path)
{
    BinaryReader in(path);
    TaoModel model;
    model.cfg.hidden = in.get<uint64_t>();
    model.cfg.seqLen = in.get<uint64_t>();
    model.cfg.windowsPerRegion = in.get<uint64_t>();
    model.targetUarch = in.get<UarchParams>();
    for (int k = 0; k < 3; ++k) {
        model.wx.push_back(in.getVector<float>());
        model.wh.push_back(in.getVector<float>());
        model.b.push_back(in.getVector<float>());
    }
    model.wo = in.getVector<float>();
    model.bo = in.get<float>();
    return model;
}

} // namespace concorde
