/**
 * @file
 * TAO-style sequence baseline (paper Section 5.1, Figure 8): an O(L)
 * learned model that maps a window of per-instruction feature vectors to
 * CPI, trained for a single fixed microarchitecture (ARM N1). Implemented
 * as a from-scratch GRU with BPTT; see DESIGN.md for the substitution
 * rationale (the published TAO uses Transformers and per-instruction
 * embeddings, but the comparison's structure -- sequence model specialized
 * to one design point vs O(1) Concorde generalizing across designs -- is
 * preserved).
 */

#ifndef CONCORDE_BASELINE_TAO_HH
#define CONCORDE_BASELINE_TAO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/trace_analyzer.hh"
#include "trace/workloads.hh"
#include "uarch/params.hh"

namespace concorde
{

/** Per-instruction input features for the sequence model. */
constexpr size_t kTaoInstrDim = 17;

/** GRU hyperparameters. */
struct TaoConfig
{
    size_t hidden = 24;
    size_t seqLen = 384;        ///< instructions per training window
    size_t windowsPerRegion = 4;///< inference averages this many windows
    double learningRate = 3e-3;
    size_t epochs = 40;
    size_t batchSize = 64;
    uint64_t seed = 77;
    size_t threads = 0;
};

/** Trained TAO baseline for one fixed microarchitecture. */
class TaoModel
{
  public:
    TaoModel() = default;
    TaoModel(TaoConfig config, UarchParams target);

    const TaoConfig &config() const { return cfg; }

    /**
     * Encode `seq_len` instructions starting at `offset` into a flat
     * [seqLen x kTaoInstrDim] feature block. Uses the fixed target
     * microarchitecture's trace analysis (cache levels, mispredicts).
     */
    void encodeWindow(RegionAnalysis &analysis, size_t offset,
                      std::vector<float> &out) const;

    /** Predict CPI for a region (averages windowsPerRegion windows). */
    double predictCpi(RegionAnalysis &analysis) const;

    /**
     * Train on regions: each sample contributes `windowsPerRegion`
     * training windows labeled with the region's CPI.
     * @return final training mean relative error.
     */
    double train(const std::vector<RegionSpec> &regions,
                 const std::vector<float> &labels);

    void save(const std::string &path) const;
    static TaoModel load(const std::string &path);

    bool valid() const { return !wx.empty(); }

  private:
    double forwardWindow(const float *x, std::vector<float> &h_scratch)
        const;
    TaoConfig cfg;
    UarchParams targetUarch;

    // GRU parameters: gates z, r, candidate h. wx: [3][hidden x input],
    // wh: [3][hidden x hidden], b: [3][hidden]; readout: wo: [hidden], bo.
    std::vector<std::vector<float>> wx, wh, b;
    std::vector<float> wo;
    float bo = 0.0f;

    friend struct TaoTrainer;
};

} // namespace concorde

#endif // CONCORDE_BASELINE_TAO_HH
