/**
 * @file
 * FeatureProvider: the offline stages of Concorde (Figure 3, steps 1-2)
 * plus the per-microarchitecture feature selection (step 3's input).
 *
 * For a program region it memoizes every per-resource analytical-model run
 * and every encoded distribution, so that (a) building the ML input for
 * one microarchitecture touches each (resource, value, memory-config)
 * combination at most once, and (b) sweeping the whole design space
 * (Section 5.2.3's precompute) reuses the same cache.
 *
 * ML input layout (the repo-scaled Table 3):
 *   [ 11 primary throughput distributions            x (2P+1) ]
 *   [ branch misprediction rate                      x 1      ]
 *   [ ISB + 3 branch-type count distributions        x (2P+1) ]
 *   [ ROB-sweep mean throughput                      x |sweep| ]
 *   [ execution-latency distribution (log1p)         x (2P+1) ]
 *   [ issue & commit latency distributions (log1p)   x 2*|latSizes|*(2P+1) ]
 *   [ microarchitecture parameter encoding           x 22     ]
 */

#ifndef CONCORDE_ANALYTICAL_FEATURE_PROVIDER_HH
#define CONCORDE_ANALYTICAL_FEATURE_PROVIDER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/trace_analyzer.hh"
#include "analytical/rob_model.hh"
#include "analytical/windows.hh"
#include "common/stats.hh"
#include "uarch/params.hh"

namespace concorde
{

/** Feature-extraction hyperparameters (paper values are P=50, 11 sizes). */
struct FeatureConfig
{
    int windowK = kDefaultWindowK;
    size_t numPercentiles = 25;
    std::vector<int> robSweep = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                 1024};
    std::vector<int> latencyRobSizes = {1, 4, 16, 64, 256, 1024};
};

/**
 * Field-wise FeatureConfig serialization, shared by the predictor file
 * format and the versioned ModelArtifact bundle.
 */
void saveFeatureConfig(BinaryWriter &out, const FeatureConfig &cfg);
FeatureConfig loadFeatureConfig(BinaryReader &in);

/** Stable fingerprint of a FeatureConfig (dataset/artifact provenance). */
uint64_t featureConfigFingerprint(const FeatureConfig &cfg);

/** Feature groups used for the Figure-12 ablations. */
enum class FeatureGroup : int
{
    Primary = 0,    ///< 11 per-resource throughput distributions
    MispredRate,    ///< scalar branch misprediction rate
    Stalls,         ///< ISB/branch-count distributions + ROB sweep
    Latency,        ///< ROB-model stage-latency distributions
    Params,         ///< target microarchitecture encoding
    NumGroups,
};

/** Index ranges of each group inside the assembled vector. */
class FeatureLayout
{
  public:
    explicit FeatureLayout(const FeatureConfig &config);

    size_t dim() const { return totalDim; }
    size_t encDim() const { return distDim; }

    struct Range { size_t begin = 0; size_t end = 0; };
    Range group(FeatureGroup g) const { return ranges[static_cast<int>(g)]; }

    /** Named blocks with their widths (Table 3 bench). */
    const std::vector<std::pair<std::string, size_t>> &
    blocks() const
    {
        return namedBlocks;
    }

    /** 1/0 keep-mask including exactly the given groups. */
    std::vector<uint8_t> maskFor(const std::vector<FeatureGroup> &groups)
        const;

  private:
    size_t distDim;
    size_t totalDim;
    Range ranges[static_cast<int>(FeatureGroup::NumGroups)];
    std::vector<std::pair<std::string, size_t>> namedBlocks;
};

/**
 * Per-region feature factory.
 *
 * Thread-safety contract: a provider owns mutable memo caches -- the
 * packed-key analytical-model tables (robCache, lqCache, ...) and the
 * lazily encoded feature blocks inside their entries -- and every public
 * method may write to them, so concurrent calls on ONE instance race.
 * The two supported patterns, both regression-tested by test_pipeline,
 * are (a) shard-local providers, one instance per worker, as
 * AnalysisPipeline does, and (b) one shared instance serialized by an
 * external mutex, as PredictionService does per (model, region). Results
 * are bitwise identical either way. The underlying RegionAnalysis MAY be
 * shared between providers on different threads (the AnalysisStore hands
 * out such snapshots); its own memo tables are internally locked.
 */
class FeatureProvider
{
  public:
    explicit FeatureProvider(const RegionSpec &spec,
                             FeatureConfig config = FeatureConfig{},
                             uint32_t warmup_chunks = kDefaultWarmupChunks);

    /**
     * Wrap a prebuilt RegionAnalysis -- e.g. the stitched pipeline's
     * per-shard analyses, injected via RegionAnalysis::adopt*().
     */
    explicit FeatureProvider(RegionAnalysis analysis,
                             FeatureConfig config = FeatureConfig{});

    /**
     * Share an analysis snapshot (e.g. from an AnalysisStore): the trace
     * and every memoized trace analysis are reused across all providers
     * holding the pointer instead of being recomputed per provider.
     */
    explicit FeatureProvider(std::shared_ptr<RegionAnalysis> analysis,
                             FeatureConfig config = FeatureConfig{});

    const FeatureConfig &config() const { return cfg; }
    const FeatureLayout &layout() const { return lay; }
    RegionAnalysis &analysis() { return *region; }
    const std::shared_ptr<RegionAnalysis> &analysisPtr() const
    {
        return region;
    }

    /** Append layout().dim() floats for the given design point. */
    void assemble(const UarchParams &params, std::vector<float> &out);

    /**
     * Pure-analytical CPI estimate: harmonic combination of the per-window
     * minimum over all resource bounds (the "min bound" ablation line).
     */
    double cpiMinBound(const UarchParams &params);

    /** Raw per-window bounds (Figure 1 / tests). */
    const std::vector<double> &robWindows(int rob_size,
                                          const MemoryConfig &mem);
    const std::vector<double> &lqWindows(int lq_size,
                                         const MemoryConfig &mem);
    const std::vector<double> &sqWindows(int sq_size);
    const std::vector<double> &icacheFillWindows(int max_fills,
                                                 const MemoryConfig &mem);
    const std::vector<double> &fetchBufferWindows(int num_buffers,
                                                  const MemoryConfig &mem);
    double robOverallIpc(int rob_size, const MemoryConfig &mem);
    const WindowCounts &counts();

    /**
     * Sweep every parameter value (Section 5.2.3's one-time precompute).
     * @return number of analytical-model invocations performed.
     */
    size_t precomputeAll(bool quantized);

    /** Total memoized model runs so far (for cost accounting). */
    size_t modelRuns() const { return totalModelRuns; }

    /**
     * Trace-analysis estimate of total load latency over the region (the
     * Figure 11 denominator): the sum of dside(mem).execLat over load
     * instructions. Depends only on (region, d-side config), so it is
     * memoized per d-side key -- labeling many design points of one
     * region computes it once.
     */
    uint64_t estimatedLoadLatencySum(const MemoryConfig &mem);

  private:
    struct RobEntry
    {
        std::vector<double> windows;
        std::vector<float> encWindows;  ///< memoized encoding (lazy)
        double overallIpc = 0.0;
        bool hasLatencies = false;
        std::vector<float> encIssue;
        std::vector<float> encCommit;
        /**
         * Raw execution latencies, kept unencoded: assemble() only ever
         * reads the encoding for the largest latency-ROB size, so the
         * log1p + sort + encode is done lazily (encodedExec) instead of
         * once per collected size.
         */
        std::vector<double> rawExec;
        std::vector<float> encExec;
    };

    /** A memoized per-window bound plus its (lazily) encoded form. */
    struct BoundEntry
    {
        std::vector<double> windows;
        std::vector<float> enc;
    };

    /**
     * Packed 64-bit memo key: (parameter value, memory-config key).
     * Values are small positive ints, memory keys fit 32 bits.
     */
    static uint64_t
    packKey(int value, uint32_t mem_key)
    {
        return (static_cast<uint64_t>(static_cast<uint32_t>(value)) << 32)
            | mem_key;
    }

    using BoundCache = std::unordered_map<uint64_t, BoundEntry>;

    RobEntry &robEntry(int rob_size, const MemoryConfig &mem,
                       bool need_latencies);

    /** Does this ROB size contribute stage-latency feature blocks? */
    bool needsLatencies(int rob_size) const;

    /**
     * Batch every ROB size one assemble() touches (the target size, the
     * sweep sizes, and the latency sizes) whose entry is still missing
     * into ONE runRobModelSweep call, then encode the collected latency
     * distributions. Bitwise-identical to the per-size robEntry path;
     * warm assembles find nothing missing and return immediately.
     */
    void ensureRobEntries(const UarchParams &params);

    /** Lookup-or-compute memoization shared by all bound caches. */
    template <typename Compute>
    BoundEntry &
    boundEntry(BoundCache &cache, uint64_t key, Compute &&compute)
    {
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
        ++totalModelRuns;
        BoundEntry &entry = cache[key];
        entry.windows = compute();
        return entry;
    }

    BoundEntry &lqEntry(int lq_size, const MemoryConfig &mem);
    BoundEntry &sqEntry(int sq_size);
    BoundEntry &ifillEntry(int max_fills, const MemoryConfig &mem);
    BoundEntry &fbufEntry(int num_buffers, const MemoryConfig &mem);
    void encodeWindows(const std::vector<double> &windows,
                       std::vector<float> &out);
    /** Memoized encoding of a cached bound. */
    const std::vector<float> &encoded(BoundEntry &entry);
    /** Memoized log1p encoding of an entry's raw execution latencies. */
    const std::vector<float> &encodedExec(RobEntry &entry);
    /** log1p-transform, sort, and encode one stage-latency vector. */
    void encodeLog1p(std::vector<double> &samples,
                     std::vector<float> &out) const;
    /** Memoized per-width issue bound (ALU / FP / LS). */
    BoundEntry &widthEntry(BoundCache &cache, const std::vector<uint32_t>
                           &class_counts, int width);
    BoundEntry &pipesEntry(bool upper, int ls_pipes, int load_pipes);
    void minBoundWindows(const UarchParams &params,
                         std::vector<double> &out);

    FeatureConfig cfg;
    FeatureLayout lay;
    std::shared_ptr<RegionAnalysis> region;
    DistributionEncoder encoder;

    bool haveCounts = false;
    WindowCounts windowCounts;

    std::unordered_map<uint64_t, RobEntry> robCache;
    BoundCache lqCache;
    BoundCache sqCache;
    BoundCache ifillCache;
    BoundCache fbufCache;
    BoundCache aluCache;
    BoundCache fpCache;
    BoundCache lsCache;
    BoundCache pipesLowerCache;
    BoundCache pipesUpperCache;

    /** Parameter-independent encodings (instruction-mix counts), lazy. */
    std::vector<float> encCountDists;

    /** estimatedLoadLatencySum memo, keyed by MemoryConfig::dSideKey(). */
    std::unordered_map<uint32_t, uint64_t> estLoadLatSums;

    size_t totalModelRuns = 0;
    std::vector<double> scratch;
    /** Reused ROB-model working buffers (commit ring, finish cycles). */
    RobModelScratch modelScratch;
    /** Reused copy buffer for encoding memoized (const) window vectors. */
    std::vector<double> encodeScratch;
};

} // namespace concorde

#endif // CONCORDE_ANALYTICAL_FEATURE_PROVIDER_HH
