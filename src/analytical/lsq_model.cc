#include "analytical/lsq_model.hh"

#include <algorithm>

#include "analytical/windows.hh"
#include "common/logging.hh"

namespace concorde
{

namespace
{

/**
 * Shared queue recurrence: a_i = c_{i-Q}, s_i = a_i,
 * f_i = completion(s_i), c_i = max(f_i, c_{i-1}); windows are over all
 * instructions, with non-members free.
 */
template <typename CompletionFn, typename MemberFn>
std::vector<double>
runQueueModel(size_t n, int queue_size, int window_k, MemberFn is_member,
              CompletionFn completion)
{
    panic_if(queue_size < 1, "queue size must be >= 1");

    std::vector<uint64_t> commit_ring(queue_size, 0);
    uint64_t c_prev = 0;
    // Member-count % queue_size and window modulo as rotating counters
    // (runtime-divisor modulos dominate the recurrence otherwise).
    size_t slot = 0;
    int until_boundary = window_k;

    std::vector<uint64_t> boundaries;
    boundaries.reserve(numWindows(n, window_k));

    for (size_t i = 0; i < n; ++i) {
        if (is_member(i)) {
            const uint64_t a = commit_ring[slot];
            const uint64_t s = a;   // no dependency constraints
            const uint64_t f = completion(s, i);
            const uint64_t c = std::max(f, c_prev);
            commit_ring[slot] = c;
            if (++slot == static_cast<size_t>(queue_size))
                slot = 0;
            c_prev = c;
        }
        if (--until_boundary == 0) {
            boundaries.push_back(c_prev);
            until_boundary = window_k;
        }
    }
    return throughputFromBoundaries(boundaries, window_k);
}

} // anonymous namespace

std::vector<double>
runLoadQueueModel(const std::vector<Instruction> &region,
                  const LoadLineIndex &index,
                  const std::vector<int32_t> &exec_lat,
                  int lq_size, int window_k)
{
    MemoryStateMachine memory(index, exec_lat);
    return runQueueModel(
        region.size(), lq_size, window_k,
        [&](size_t i) { return region[i].isLoad(); },
        [&](uint64_t s, size_t i) {
            return memory.respCycleInOrder(s, i, true);
        });
}

std::vector<double>
runLoadQueueModel(const TraceColumns &region, const LoadLineIndex &index,
                  const std::vector<int32_t> &exec_lat, int lq_size,
                  int window_k)
{
    MemoryStateMachine memory(index, exec_lat);
    return runQueueModel(
        region.size(), lq_size, window_k,
        [&](size_t i) { return region.isLoad(i); },
        [&](uint64_t s, size_t i) {
            return memory.respCycleInOrder(s, i, true);
        });
}

std::vector<double>
runStoreQueueModel(const std::vector<Instruction> &region, int sq_size,
                   int window_k)
{
    const uint64_t store_lat = fixedLatency(InstrType::Store);
    return runQueueModel(
        region.size(), sq_size, window_k,
        [&](size_t i) { return region[i].isStore(); },
        [&](uint64_t s, size_t) { return s + store_lat; });
}

std::vector<double>
runStoreQueueModel(const TraceColumns &region, int sq_size, int window_k)
{
    const uint64_t store_lat = fixedLatency(InstrType::Store);
    return runQueueModel(
        region.size(), sq_size, window_k,
        [&](size_t i) { return region.isStore(i); },
        [&](uint64_t s, size_t) { return s + store_lat; });
}

} // namespace concorde
