#include "analytical/lsq_model.hh"

#include <algorithm>

#include "analytical/windows.hh"
#include "common/logging.hh"

namespace concorde
{

namespace
{

/**
 * Shared queue recurrence: a_i = c_{i-Q}, s_i = a_i,
 * f_i = completion(s_i), c_i = max(f_i, c_{i-1}); windows are over all
 * instructions, with non-members free.
 */
template <typename CompletionFn, typename MemberFn>
std::vector<double>
runQueueModel(const std::vector<Instruction> &region, int queue_size,
              int window_k, MemberFn is_member, CompletionFn completion)
{
    panic_if(queue_size < 1, "queue size must be >= 1");

    std::vector<uint64_t> commit_ring(queue_size, 0);
    uint64_t c_prev = 0;
    size_t member_count = 0;

    std::vector<uint64_t> boundaries;
    boundaries.reserve(numWindows(region.size(), window_k));

    for (size_t i = 0; i < region.size(); ++i) {
        if (is_member(region[i])) {
            const uint64_t a = commit_ring[member_count % queue_size];
            const uint64_t s = a;   // no dependency constraints
            const uint64_t f = completion(s, i);
            const uint64_t c = std::max(f, c_prev);
            commit_ring[member_count % queue_size] = c;
            c_prev = c;
            ++member_count;
        }
        if ((i + 1) % static_cast<size_t>(window_k) == 0)
            boundaries.push_back(c_prev);
    }
    return throughputFromBoundaries(boundaries, window_k);
}

} // anonymous namespace

std::vector<double>
runLoadQueueModel(const std::vector<Instruction> &region,
                  const LoadLineIndex &index,
                  const std::vector<int32_t> &exec_lat,
                  int lq_size, int window_k)
{
    MemoryStateMachine memory(index, exec_lat);
    return runQueueModel(
        region, lq_size, window_k,
        [](const Instruction &instr) { return instr.isLoad(); },
        [&](uint64_t s, size_t i) {
            return memory.respCycle(s, i, region[i]);
        });
}

std::vector<double>
runStoreQueueModel(const std::vector<Instruction> &region, int sq_size,
                   int window_k)
{
    const uint64_t store_lat = fixedLatency(InstrType::Store);
    return runQueueModel(
        region, sq_size, window_k,
        [](const Instruction &instr) { return instr.isStore(); },
        [&](uint64_t s, size_t) { return s + store_lat; });
}

} // namespace concorde
