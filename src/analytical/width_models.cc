#include "analytical/width_models.hh"

#include <algorithm>

#include "common/logging.hh"

namespace concorde
{

std::vector<double>
issueWidthBound(const std::vector<uint32_t> &class_counts, int width, int k)
{
    panic_if(width < 1, "issue width must be >= 1");
    std::vector<double> thr(class_counts.size());
    for (size_t j = 0; j < class_counts.size(); ++j) {
        if (class_counts[j] == 0) {
            thr[j] = kMaxThroughput;
        } else {
            thr[j] = std::min(
                kMaxThroughput,
                static_cast<double>(k)
                    / static_cast<double>(class_counts[j])
                    * static_cast<double>(width));
        }
    }
    return thr;
}

std::vector<double>
pipesLowerBound(const WindowCounts &counts, int ls_pipes, int load_pipes)
{
    panic_if(ls_pipes < 1, "need at least one load-store pipe");
    panic_if(load_pipes < 0, "negative load pipes");
    const double lsp = ls_pipes;
    const double lp = load_pipes;
    std::vector<double> thr(counts.windows());
    for (size_t j = 0; j < thr.size(); ++j) {
        const double t_max = counts.nLoad[j] / (lsp + lp)
            + counts.nStore[j] / lsp;
        thr[j] = t_max <= 0.0
            ? kMaxThroughput
            : std::min(kMaxThroughput, counts.k / t_max);
    }
    return thr;
}

std::vector<double>
pipesUpperBound(const WindowCounts &counts, int ls_pipes, int load_pipes)
{
    panic_if(ls_pipes < 1, "need at least one load-store pipe");
    panic_if(load_pipes < 0, "negative load pipes");
    const double lsp = ls_pipes;
    const double lp = load_pipes;
    std::vector<double> thr(counts.windows());
    for (size_t j = 0; j < thr.size(); ++j) {
        const double t_min = std::max(
            counts.nStore[j] / lsp,
            (counts.nLoad[j] + counts.nStore[j]) / (lsp + lp));
        thr[j] = t_min <= 0.0
            ? kMaxThroughput
            : std::min(kMaxThroughput, counts.k / t_min);
    }
    return thr;
}

} // namespace concorde
