/**
 * @file
 * Windowed-throughput utilities shared by the per-resource analytical
 * models (Section 3.2.1): Eq. (5)'s boundary-cycle-to-throughput
 * conversion and per-window instruction-mix counts.
 */

#ifndef CONCORDE_ANALYTICAL_WINDOWS_HH
#define CONCORDE_ANALYTICAL_WINDOWS_HH

#include <cstdint>
#include <vector>

#include "analysis/trace_analyzer.hh"
#include "trace/instruction.hh"

namespace concorde
{

/** Default window length k (paper Section 4). */
constexpr int kDefaultWindowK = 400;

/**
 * Throughput bounds are capped here: a window whose constraint never binds
 * (e.g. zero cycles elapsed) is "unboundedly fast" for that resource.
 */
constexpr double kMaxThroughput = 64.0;

/** Number of complete k-instruction windows in a region of n instructions. */
inline size_t
numWindows(size_t n, int k)
{
    return n / static_cast<size_t>(k);
}

/**
 * Eq. (5): thr_j = k / (c_{kj} - c_{k(j-1)}), with c_0 = 0. The input is
 * the completion cycle at the end of each window.
 */
std::vector<double> throughputFromBoundaries(
    const std::vector<uint64_t> &boundary_cycles, int k);

/** Per-window instruction-mix counts (parameter independent). */
struct WindowCounts
{
    int k = kDefaultWindowK;
    std::vector<uint32_t> nAlu;         ///< IssueClass::Alu instructions
    std::vector<uint32_t> nFp;
    std::vector<uint32_t> nLs;          ///< loads + stores
    std::vector<uint32_t> nLoad;
    std::vector<uint32_t> nStore;
    std::vector<uint32_t> nIsb;
    std::vector<uint32_t> nCondBr;
    std::vector<uint32_t> nUncondBr;
    std::vector<uint32_t> nIndirectBr;

    size_t windows() const { return nAlu.size(); }

    static WindowCounts build(const std::vector<Instruction> &region, int k);
    static WindowCounts build(const TraceColumns &region, int k);
};

} // namespace concorde

#endif // CONCORDE_ANALYTICAL_WINDOWS_HH
