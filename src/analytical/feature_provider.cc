#include "analytical/feature_provider.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analytical/frontend_models.hh"
#include "analytical/lsq_model.hh"
#include "analytical/rob_model.hh"
#include "analytical/width_models.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace concorde
{

void
saveFeatureConfig(BinaryWriter &out, const FeatureConfig &cfg)
{
    out.put<int32_t>(cfg.windowK);
    out.put<uint64_t>(cfg.numPercentiles);
    out.putVector(cfg.robSweep);
    out.putVector(cfg.latencyRobSizes);
}

FeatureConfig
loadFeatureConfig(BinaryReader &in)
{
    FeatureConfig cfg;
    cfg.windowK = in.get<int32_t>();
    cfg.numPercentiles = in.get<uint64_t>();
    cfg.robSweep = in.getVector<int>();
    cfg.latencyRobSizes = in.getVector<int>();
    return cfg;
}

uint64_t
featureConfigFingerprint(const FeatureConfig &cfg)
{
    uint64_t h = hashMix(0xF3A7C0F6ULL, static_cast<uint64_t>(cfg.windowK),
                         cfg.numPercentiles);
    for (int v : cfg.robSweep)
        h = hashMix(h, 1, static_cast<uint64_t>(v));
    for (int v : cfg.latencyRobSizes)
        h = hashMix(h, 2, static_cast<uint64_t>(v));
    return h;
}

FeatureLayout::FeatureLayout(const FeatureConfig &config)
{
    distDim = 2 * config.numPercentiles + 1;
    size_t at = 0;
    auto push = [&](const std::string &name, size_t width) {
        namedBlocks.emplace_back(name, width);
        at += width;
    };

    ranges[static_cast<int>(FeatureGroup::Primary)].begin = at;
    for (const char *name :
         {"thr.rob", "thr.lq", "thr.sq", "thr.alu", "thr.fp", "thr.ls",
          "thr.pipes_lower", "thr.pipes_upper", "thr.icache_fills",
          "thr.fetch_buffers", "thr.min_bound"}) {
        push(name, distDim);
    }
    ranges[static_cast<int>(FeatureGroup::Primary)].end = at;

    ranges[static_cast<int>(FeatureGroup::MispredRate)].begin = at;
    push("branch.mispredict_rate", 1);
    ranges[static_cast<int>(FeatureGroup::MispredRate)].end = at;

    ranges[static_cast<int>(FeatureGroup::Stalls)].begin = at;
    push("stall.isb_count", distDim);
    push("stall.cond_branch_count", distDim);
    push("stall.uncond_branch_count", distDim);
    push("stall.indirect_branch_count", distDim);
    push("stall.rob_sweep_ipc", config.robSweep.size());
    ranges[static_cast<int>(FeatureGroup::Stalls)].end = at;

    ranges[static_cast<int>(FeatureGroup::Latency)].begin = at;
    push("lat.exec", distDim);
    for (int size : config.latencyRobSizes)
        push("lat.issue.rob" + std::to_string(size), distDim);
    for (int size : config.latencyRobSizes)
        push("lat.commit.rob" + std::to_string(size), distDim);
    ranges[static_cast<int>(FeatureGroup::Latency)].end = at;

    ranges[static_cast<int>(FeatureGroup::Params)].begin = at;
    push("uarch.params", kParamEncodingDim);
    ranges[static_cast<int>(FeatureGroup::Params)].end = at;

    totalDim = at;
}

std::vector<uint8_t>
FeatureLayout::maskFor(const std::vector<FeatureGroup> &groups) const
{
    std::vector<uint8_t> mask(totalDim, 0);
    for (FeatureGroup g : groups) {
        const Range r = group(g);
        std::fill(mask.begin() + r.begin, mask.begin() + r.end, 1);
    }
    return mask;
}

FeatureProvider::FeatureProvider(const RegionSpec &spec,
                                 FeatureConfig config,
                                 uint32_t warmup_chunks)
    : cfg(std::move(config)), lay(cfg),
      region(std::make_shared<RegionAnalysis>(spec, warmup_chunks)),
      encoder(cfg.numPercentiles)
{
}

FeatureProvider::FeatureProvider(RegionAnalysis analysis,
                                 FeatureConfig config)
    : cfg(std::move(config)), lay(cfg),
      region(std::make_shared<RegionAnalysis>(std::move(analysis))),
      encoder(cfg.numPercentiles)
{
}

FeatureProvider::FeatureProvider(std::shared_ptr<RegionAnalysis> analysis,
                                 FeatureConfig config)
    : cfg(std::move(config)), lay(cfg), region(std::move(analysis)),
      encoder(cfg.numPercentiles)
{
    panic_if(!region, "FeatureProvider over a null analysis");
}

const WindowCounts &
FeatureProvider::counts()
{
    if (!haveCounts) {
        windowCounts =
            WindowCounts::build(region->regionColumns(), cfg.windowK);
        haveCounts = true;
    }
    return windowCounts;
}

FeatureProvider::RobEntry &
FeatureProvider::robEntry(int rob_size, const MemoryConfig &mem,
                          bool need_latencies)
{
    const uint64_t key = packKey(rob_size, mem.dSideKey());
    auto it = robCache.find(key);
    if (it != robCache.end()
        && (!need_latencies || it->second.hasLatencies)) {
        return it->second;
    }

    const auto &dside = region->dside(mem);
    RobModelResult run =
        runRobModel(region->regionColumns(), region->loadIndex(),
                    dside.execLat, rob_size, cfg.windowK, need_latencies,
                    &modelScratch);
    ++totalModelRuns;

    RobEntry &entry = robCache[key];
    entry.windows = std::move(run.windowThroughput);
    entry.overallIpc = run.overallIpc;
    if (need_latencies) {
        encodeLog1p(run.issueLat, entry.encIssue);
        encodeLog1p(run.commitLat, entry.encCommit);
        // Execution latencies stay raw until someone asks for their
        // encoding; assemble() only does for the largest latency size.
        entry.rawExec = std::move(run.execLat);
        entry.encExec.clear();
        entry.hasLatencies = true;
    }
    return entry;
}

void
FeatureProvider::encodeLog1p(std::vector<double> &samples,
                             std::vector<float> &out) const
{
    // Sorting before the monotone log1p transform yields the same
    // sequence as sorting after it, and lets the integral raw latencies
    // take the counting fast path, which writes the transformed sorted
    // vector in one rebuild pass (log1p once per distinct value).
    sortAndTransformSamples(samples,
                            [](double x) { return std::log1p(x); });
    out.clear();
    encoder.encodeSorted(samples, out);
}

bool
FeatureProvider::needsLatencies(int rob_size) const
{
    return std::find(cfg.latencyRobSizes.begin(), cfg.latencyRobSizes.end(),
                     rob_size)
        != cfg.latencyRobSizes.end();
}

uint64_t
FeatureProvider::estimatedLoadLatencySum(const MemoryConfig &mem)
{
    const uint32_t dkey = mem.dSideKey();
    auto it = estLoadLatSums.find(dkey);
    if (it != estLoadLatSums.end())
        return it->second;
    const auto &dside = region->dside(mem);
    const std::vector<Instruction> &rows = region->instrs();
    uint64_t estimated = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        if (rows[i].isLoad())
            estimated += static_cast<uint64_t>(dside.execLat[i]);
    }
    estLoadLatSums.emplace(dkey, estimated);
    return estimated;
}

void
FeatureProvider::ensureRobEntries(const UarchParams &params)
{
    const MemoryConfig &mem = params.memory;
    const uint32_t dkey = mem.dSideKey();
    const int biggest =
        cfg.latencyRobSizes.empty() ? 1024 : cfg.latencyRobSizes.back();

    // Distinct sizes this assemble will touch (a dozen or so; linear
    // dedup beats a set here).
    std::vector<RobSweepRequest> wanted;
    auto add = [&](int size, bool lat) {
        for (RobSweepRequest &req : wanted) {
            if (req.robSize == size) {
                req.collectLatencies |= lat;
                return;
            }
        }
        wanted.push_back(RobSweepRequest{size, lat});
    };
    add(params.robSize, needsLatencies(params.robSize));
    for (int size : cfg.robSweep)
        add(size, needsLatencies(size));
    for (int size : cfg.latencyRobSizes)
        add(size, true);
    add(biggest, true);

    std::vector<RobSweepRequest> missing;
    for (const RobSweepRequest &req : wanted) {
        auto it = robCache.find(packKey(req.robSize, dkey));
        if (it == robCache.end()
            || (req.collectLatencies && !it->second.hasLatencies)) {
            missing.push_back(req);
        }
    }
    if (missing.empty())
        return;

    const auto &dside = region->dside(mem);
    std::vector<RobModelResult> runs =
        runRobModelSweep(region->regionColumns(), region->loadIndex(),
                         dside.execLat, missing, cfg.windowK);
    totalModelRuns += missing.size();

    for (size_t i = 0; i < missing.size(); ++i) {
        RobModelResult &run = runs[i];
        RobEntry &entry = robCache[packKey(missing[i].robSize, dkey)];
        entry.windows = std::move(run.windowThroughput);
        entry.overallIpc = run.overallIpc;
        if (!missing[i].collectLatencies)
            continue;
        encodeLog1p(run.issueLat, entry.encIssue);
        encodeLog1p(run.commitLat, entry.encCommit);
        if (missing[i].robSize == biggest) {
            // assemble() reads the exec encoding only for the biggest
            // latency size; encode it here and leave rawExec in the
            // same cleared state encodedExec() would.
            encodeLog1p(run.execLat, entry.encExec);
            entry.rawExec.clear();
            entry.rawExec.shrink_to_fit();
        } else {
            entry.rawExec = std::move(run.execLat);
            entry.encExec.clear();
        }
        entry.hasLatencies = true;
    }
}

const std::vector<float> &
FeatureProvider::encodedExec(RobEntry &entry)
{
    if (entry.encExec.empty()) {
        encodeLog1p(entry.rawExec, entry.encExec);
        entry.rawExec.clear();
        entry.rawExec.shrink_to_fit();
    }
    return entry.encExec;
}

const std::vector<double> &
FeatureProvider::robWindows(int rob_size, const MemoryConfig &mem)
{
    return robEntry(rob_size, mem, false).windows;
}

double
FeatureProvider::robOverallIpc(int rob_size, const MemoryConfig &mem)
{
    return robEntry(rob_size, mem, false).overallIpc;
}

FeatureProvider::BoundEntry &
FeatureProvider::lqEntry(int lq_size, const MemoryConfig &mem)
{
    return boundEntry(lqCache, packKey(lq_size, mem.dSideKey()), [&] {
        const auto &dside = region->dside(mem);
        return runLoadQueueModel(region->regionColumns(),
                                 region->loadIndex(), dside.execLat,
                                 lq_size, cfg.windowK);
    });
}

const std::vector<double> &
FeatureProvider::lqWindows(int lq_size, const MemoryConfig &mem)
{
    return lqEntry(lq_size, mem).windows;
}

FeatureProvider::BoundEntry &
FeatureProvider::sqEntry(int sq_size)
{
    return boundEntry(sqCache, packKey(sq_size, 0), [&] {
        return runStoreQueueModel(region->regionColumns(), sq_size,
                                  cfg.windowK);
    });
}

const std::vector<double> &
FeatureProvider::sqWindows(int sq_size)
{
    return sqEntry(sq_size).windows;
}

FeatureProvider::BoundEntry &
FeatureProvider::ifillEntry(int max_fills, const MemoryConfig &mem)
{
    return boundEntry(ifillCache, packKey(max_fills, mem.iSideKey()),
                      [&] {
        return runIcacheFillsModel(region->regionColumns(),
                                   region->iside(mem), max_fills,
                                   cfg.windowK);
    });
}

const std::vector<double> &
FeatureProvider::icacheFillWindows(int max_fills, const MemoryConfig &mem)
{
    return ifillEntry(max_fills, mem).windows;
}

FeatureProvider::BoundEntry &
FeatureProvider::fbufEntry(int num_buffers, const MemoryConfig &mem)
{
    return boundEntry(fbufCache, packKey(num_buffers, mem.iSideKey()),
                      [&] {
        return runFetchBufferModel(region->regionColumns(),
                                   region->iside(mem), num_buffers,
                                   cfg.windowK);
    });
}

const std::vector<double> &
FeatureProvider::fetchBufferWindows(int num_buffers,
                                    const MemoryConfig &mem)
{
    return fbufEntry(num_buffers, mem).windows;
}

void
FeatureProvider::encodeWindows(const std::vector<double> &windows,
                               std::vector<float> &out)
{
    // The input is a memoized (const) bound; copy it into one reused
    // scratch buffer so encoding allocates nothing once warm.
    encodeScratch.assign(windows.begin(), windows.end());
    encoder.encodeInPlace(encodeScratch, out);
}

const std::vector<float> &
FeatureProvider::encoded(BoundEntry &entry)
{
    if (entry.enc.empty())
        encodeWindows(entry.windows, entry.enc);
    return entry.enc;
}

FeatureProvider::BoundEntry &
FeatureProvider::widthEntry(BoundCache &cache,
                            const std::vector<uint32_t> &class_counts,
                            int width)
{
    const uint64_t key = packKey(width, 0);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    BoundEntry &entry = cache[key];
    entry.windows = issueWidthBound(class_counts, width, cfg.windowK);
    return entry;
}

FeatureProvider::BoundEntry &
FeatureProvider::pipesEntry(bool upper, int ls_pipes, int load_pipes)
{
    BoundCache &cache = upper ? pipesUpperCache : pipesLowerCache;
    const uint64_t key =
        packKey(ls_pipes, static_cast<uint32_t>(load_pipes));
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    BoundEntry &entry = cache[key];
    entry.windows = upper
        ? pipesUpperBound(counts(), ls_pipes, load_pipes)
        : pipesLowerBound(counts(), ls_pipes, load_pipes);
    return entry;
}

void
FeatureProvider::minBoundWindows(const UarchParams &params,
                                 std::vector<double> &out)
{
    const WindowCounts &wc = counts();
    const size_t windows = wc.windows();
    out.assign(windows, kMaxThroughput);

    auto apply = [&](const std::vector<double> &bound) {
        for (size_t j = 0; j < windows; ++j)
            out[j] = std::min(out[j], bound[j]);
    };

    apply(robWindows(params.robSize, params.memory));
    apply(lqWindows(params.lqSize, params.memory));
    apply(sqWindows(params.sqSize));
    apply(widthEntry(aluCache, wc.nAlu, params.aluWidth).windows);
    apply(widthEntry(fpCache, wc.nFp, params.fpWidth).windows);
    apply(widthEntry(lsCache, wc.nLs, params.lsWidth).windows);
    apply(pipesEntry(false, params.lsPipes, params.loadPipes).windows);
    apply(icacheFillWindows(params.maxIcacheFills, params.memory));
    apply(fetchBufferWindows(params.fetchBuffers, params.memory));

    const double static_width = std::min(
        {static_cast<double>(params.fetchWidth),
         static_cast<double>(params.decodeWidth),
         static_cast<double>(params.renameWidth),
         static_cast<double>(params.commitWidth)});
    for (size_t j = 0; j < windows; ++j)
        out[j] = std::min(out[j], static_width);
}

double
FeatureProvider::cpiMinBound(const UarchParams &params)
{
    minBoundWindows(params, scratch);
    if (scratch.empty())
        return 1.0;
    double cpi_acc = 0.0;
    for (double thr : scratch)
        cpi_acc += 1.0 / std::max(thr, 1e-6);
    return cpi_acc / static_cast<double>(scratch.size());
}

void
FeatureProvider::assemble(const UarchParams &params, std::vector<float> &out)
{
    out.reserve(out.size() + lay.dim());

    // Fill every still-missing trace analysis of this design point with
    // one fused warmup+region sweep (a cold assemble previously paid six
    // separate passes); sides shared with earlier design points are
    // reused as-is.
    region->analyzeAll(params.memory, params.branch);

    // Fold every ROB-model size the blocks below will ask for into one
    // fused multi-size sweep over the trace (plus one batched latency
    // encode); the per-size robEntry lookups then all hit the cache.
    ensureRobEntries(params);

    const WindowCounts &wc = counts();

    // All parameter-value-dependent blocks are memoized together with
    // their encodings, so a warm assemble is mostly memcpy; only the
    // min-bound block (a function of the whole parameter vector) is
    // re-encoded per call.
    auto append = [&out](const std::vector<float> &enc) {
        out.insert(out.end(), enc.begin(), enc.end());
    };

    // ---- primary throughput distributions ----
    {
        // Collect stage latencies on an entry's FIRST build when its size
        // will need them for the latency blocks below, instead of running
        // the model a second time (precomputeAll's idiom).
        RobEntry &rob = robEntry(params.robSize, params.memory,
                                 needsLatencies(params.robSize));
        if (rob.encWindows.empty())
            encodeWindows(rob.windows, rob.encWindows);
        append(rob.encWindows);
    }
    append(encoded(lqEntry(params.lqSize, params.memory)));
    append(encoded(sqEntry(params.sqSize)));
    append(encoded(widthEntry(aluCache, wc.nAlu, params.aluWidth)));
    append(encoded(widthEntry(fpCache, wc.nFp, params.fpWidth)));
    append(encoded(widthEntry(lsCache, wc.nLs, params.lsWidth)));
    append(encoded(pipesEntry(false, params.lsPipes, params.loadPipes)));
    append(encoded(pipesEntry(true, params.lsPipes, params.loadPipes)));
    append(encoded(ifillEntry(params.maxIcacheFills, params.memory)));
    append(encoded(fbufEntry(params.fetchBuffers, params.memory)));
    minBoundWindows(params, scratch);
    // The min-bound block is the only per-call encode; `scratch` is
    // rebuilt on every call, so it can be sorted destructively in place.
    encoder.encodeInPlace(scratch, out);

    // ---- branch misprediction rate ----
    const auto &branch_info = region->branches(params.branch);
    out.push_back(static_cast<float>(branch_info.mispredictRate()));

    // ---- pipeline-stall features (parameter independent, cached) ----
    if (encCountDists.empty()) {
        auto encode_counts = [&](const std::vector<uint32_t> &counts_vec) {
            std::vector<double> samples(counts_vec.begin(),
                                        counts_vec.end());
            encoder.encode(std::move(samples), encCountDists);
        };
        encode_counts(wc.nIsb);
        encode_counts(wc.nCondBr);
        encode_counts(wc.nUncondBr);
        encode_counts(wc.nIndirectBr);
    }
    append(encCountDists);
    for (int size : cfg.robSweep) {
        out.push_back(static_cast<float>(
            robEntry(size, params.memory, needsLatencies(size)).overallIpc));
    }

    // ---- latency distributions ----
    {
        const int biggest =
            cfg.latencyRobSizes.empty() ? 1024 : cfg.latencyRobSizes.back();
        const std::vector<float> &enc_exec =
            encodedExec(robEntry(biggest, params.memory, true));
        out.insert(out.end(), enc_exec.begin(), enc_exec.end());
        for (int size : cfg.latencyRobSizes) {
            const RobEntry &e = robEntry(size, params.memory, true);
            out.insert(out.end(), e.encIssue.begin(), e.encIssue.end());
        }
        for (int size : cfg.latencyRobSizes) {
            const RobEntry &e = robEntry(size, params.memory, true);
            out.insert(out.end(), e.encCommit.begin(), e.encCommit.end());
        }
    }

    // ---- target microarchitecture ----
    encodeParams(params, out);
}

size_t
FeatureProvider::precomputeAll(bool quantized)
{
    const size_t runs_before = totalModelRuns;

    const auto d_configs = allDataConfigs();
    const auto i_configs = allInstConfigs();

    for (const auto &mem : d_configs) {
        for (int64_t rob : sweepValues(ParamId::RobSize, quantized)) {
            const bool need_lat = std::find(
                cfg.latencyRobSizes.begin(), cfg.latencyRobSizes.end(),
                static_cast<int>(rob)) != cfg.latencyRobSizes.end();
            robEntry(static_cast<int>(rob), mem, need_lat);
        }
        for (int64_t lq : sweepValues(ParamId::LqSize, quantized))
            lqWindows(static_cast<int>(lq), mem);
    }
    for (int64_t sq : sweepValues(ParamId::SqSize, quantized))
        sqWindows(static_cast<int>(sq));
    for (const auto &mem : i_configs) {
        for (int64_t fills :
             sweepValues(ParamId::MaxIcacheFills, quantized)) {
            icacheFillWindows(static_cast<int>(fills), mem);
        }
        for (int64_t bufs : sweepValues(ParamId::FetchBuffers, quantized))
            fetchBufferWindows(static_cast<int>(bufs), mem);
    }
    counts();
    return totalModelRuns - runs_before;
}

} // namespace concorde
