/**
 * @file
 * Static-bandwidth and pipes bounds (Section 3.2.1). Issue-width bounds
 * follow Eq. (6); load / load-store pipe bounds are the paper's worst-case
 * (lower) and best-case (upper) allocations.
 */

#ifndef CONCORDE_ANALYTICAL_WIDTH_MODELS_HH
#define CONCORDE_ANALYTICAL_WIDTH_MODELS_HH

#include <vector>

#include "analytical/windows.hh"

namespace concorde
{

/**
 * Eq. (6): thr_j = k / n_j * width for the instruction class with
 * per-window counts `class_counts`. Windows without class members are
 * unbounded (capped).
 */
std::vector<double> issueWidthBound(
    const std::vector<uint32_t> &class_counts, int width, int k);

/**
 * Pipes lower bound: worst-case allocation issues all loads first on every
 * pipe, then stores on the load-store pipes:
 * T_max = n_load / (LSP + LP) + n_store / LSP.
 */
std::vector<double> pipesLowerBound(const WindowCounts &counts,
                                    int ls_pipes, int load_pipes);

/**
 * Pipes upper bound: best-case makespan with stores restricted to
 * load-store pipes: T_min = max(n_store / LSP,
 * (n_load + n_store) / (LSP + LP)).
 */
std::vector<double> pipesUpperBound(const WindowCounts &counts,
                                    int ls_pipes, int load_pipes);

} // namespace concorde

#endif // CONCORDE_ANALYTICAL_WIDTH_MODELS_HH
