#include "analytical/rob_model.hh"

#include <algorithm>

#include "analytical/windows.hh"
#include "common/logging.hh"

namespace concorde
{

RobModelResult
runRobModel(const std::vector<Instruction> &region,
            const LoadLineIndex &index,
            const std::vector<int32_t> &exec_lat,
            int rob_size, int window_k, bool collect_latencies)
{
    panic_if(rob_size < 1, "ROB size must be >= 1");
    const size_t n = region.size();

    RobModelResult result;
    if (n == 0)
        return result;

    MemoryStateMachine memory(index, exec_lat);

    // Commit-cycle ring buffer: c_{i-ROB} with c_i = 0 for i <= 0.
    std::vector<uint64_t> commit_ring(rob_size, 0);
    std::vector<uint64_t> finish(n, 0);
    uint64_t c_prev = 0;
    uint64_t max_finish = 0;        // for ISB pipeline drains
    uint64_t barrier_finish = 0;    // ISBs gate later instructions

    if (collect_latencies) {
        result.issueLat.resize(n);
        result.execLat.resize(n);
        result.commitLat.resize(n);
    }

    std::vector<uint64_t> boundaries;
    boundaries.reserve(numWindows(n, window_k));

    for (size_t i = 0; i < n; ++i) {
        const Instruction &instr = region[i];

        // Eq. (1): arrival waits for the instruction ROB slots earlier to
        // commit.
        const uint64_t a = commit_ring[i % rob_size];

        // Eq. (2): dependencies.
        uint64_t s = std::max(a, barrier_finish);
        for (int d = 0; d < kMaxSrcDeps; ++d) {
            const int32_t dep = instr.srcDeps[d];
            if (dep >= 0)
                s = std::max(s, finish[dep]);
        }
        if (instr.memDep >= 0)
            s = std::max(s, finish[instr.memDep]);
        if (instr.isIsb())
            s = std::max(s, max_finish);

        // Eq. (3): memory state machine.
        const uint64_t f = memory.respCycle(s, i, instr);

        // Eq. (4): in-order commit.
        const uint64_t c = std::max(f, c_prev);

        finish[i] = f;
        max_finish = std::max(max_finish, f);
        if (instr.isIsb())
            barrier_finish = std::max(barrier_finish, f);
        commit_ring[i % rob_size] = c;
        c_prev = c;

        if (collect_latencies) {
            result.issueLat[i] = static_cast<double>(s - a);
            result.execLat[i] = static_cast<double>(f - s);
            result.commitLat[i] = static_cast<double>(c - f);
        }

        if ((i + 1) % static_cast<size_t>(window_k) == 0)
            boundaries.push_back(c);
    }

    result.windowThroughput = throughputFromBoundaries(boundaries, window_k);
    result.overallIpc = c_prev > 0
        ? static_cast<double>(n) / static_cast<double>(c_prev)
        : kMaxThroughput;
    return result;
}

} // namespace concorde
