#include "analytical/rob_model.hh"

#include <algorithm>

#include "analytical/windows.hh"
#include "common/logging.hh"

namespace concorde
{

namespace
{

/** Field accessors over an AoS trace. */
struct AosTraceView
{
    const std::vector<Instruction> &v;
    size_t size() const { return v.size(); }
    int32_t srcDep(size_t i, int d) const { return v[i].srcDeps[d]; }
    int32_t memDep(size_t i) const { return v[i].memDep; }
    bool isIsb(size_t i) const { return v[i].isIsb(); }
    bool isLoad(size_t i) const { return v[i].isLoad(); }
};

/** Field accessors over a columnar trace. */
struct ColTraceView
{
    const TraceColumns &c;
    size_t size() const { return c.size(); }
    int32_t
    srcDep(size_t i, int d) const
    {
        return d == 0 ? c.srcDep0[i] : c.srcDep1[i];
    }
    int32_t memDep(size_t i) const { return c.memDep[i]; }
    bool isIsb(size_t i) const { return c.isIsb(i); }
    bool isLoad(size_t i) const { return c.isLoad(i); }
};

template <typename TraceView>
RobModelResult
runRobModelImpl(const TraceView &trace, const LoadLineIndex &index,
                const std::vector<int32_t> &exec_lat, int rob_size,
                int window_k, bool collect_latencies,
                RobModelScratch *scratch)
{
    panic_if(rob_size < 1, "ROB size must be >= 1");
    const size_t n = trace.size();

    RobModelResult result;
    if (n == 0)
        return result;

    MemoryStateMachine memory(index, exec_lat);

    RobModelScratch local;
    RobModelScratch &buf = scratch ? *scratch : local;

    // Commit-cycle ring buffer: c_{i-ROB} with c_i = 0 for i <= 0.
    buf.commitRing.assign(rob_size, 0);
    buf.finish.assign(n, 0);
    std::vector<uint64_t> &commit_ring = buf.commitRing;
    std::vector<uint64_t> &finish = buf.finish;
    uint64_t c_prev = 0;
    uint64_t max_finish = 0;        // for ISB pipeline drains
    uint64_t barrier_finish = 0;    // ISBs gate later instructions

    if (collect_latencies) {
        result.issueLat.resize(n);
        result.execLat.resize(n);
        result.commitLat.resize(n);
    }

    std::vector<uint64_t> &boundaries = buf.boundaries;
    boundaries.clear();
    boundaries.reserve(numWindows(n, window_k));

    // i % rob_size and (i + 1) % window_k as rotating counters: the two
    // runtime-divisor modulos per instruction cost more than the rest of
    // the recurrence for small ROB sizes.
    size_t slot = 0;
    int until_boundary = window_k;

    for (size_t i = 0; i < n; ++i) {
        // Eq. (1): arrival waits for the instruction ROB slots earlier to
        // commit.
        const uint64_t a = commit_ring[slot];

        // Eq. (2): dependencies.
        uint64_t s = std::max(a, barrier_finish);
        for (int d = 0; d < kMaxSrcDeps; ++d) {
            const int32_t dep = trace.srcDep(i, d);
            if (dep >= 0)
                s = std::max(s, finish[dep]);
        }
        if (trace.memDep(i) >= 0)
            s = std::max(s, finish[trace.memDep(i)]);
        const bool isb = trace.isIsb(i);
        if (isb)
            s = std::max(s, max_finish);

        // Eq. (3): memory state machine.
        const uint64_t f = memory.respCycleInOrder(s, i, trace.isLoad(i));

        // Eq. (4): in-order commit.
        const uint64_t c = std::max(f, c_prev);

        finish[i] = f;
        max_finish = std::max(max_finish, f);
        if (isb)
            barrier_finish = std::max(barrier_finish, f);
        commit_ring[slot] = c;
        if (++slot == static_cast<size_t>(rob_size))
            slot = 0;
        c_prev = c;

        if (collect_latencies) {
            result.issueLat[i] = static_cast<double>(s - a);
            result.execLat[i] = static_cast<double>(f - s);
            result.commitLat[i] = static_cast<double>(c - f);
        }

        if (--until_boundary == 0) {
            boundaries.push_back(c);
            until_boundary = window_k;
        }
    }

    result.windowThroughput = throughputFromBoundaries(boundaries, window_k);
    result.overallIpc = c_prev > 0
        ? static_cast<double>(n) / static_cast<double>(c_prev)
        : kMaxThroughput;
    return result;
}

} // anonymous namespace

std::vector<RobModelResult>
runRobModelSweep(const TraceColumns &region, const LoadLineIndex &index,
                 const std::vector<int32_t> &exec_lat,
                 const std::vector<RobSweepRequest> &requests, int window_k)
{
    // One size at a time over shared scratch. Interleaving the per-size
    // recurrences in a single trace pass was tried and measured SLOWER
    // here than back-to-back single-size runs (both with separate and
    // with transposed per-size finish arrays): the simple single-size
    // loop optimizes better than a variable-width group loop, and a
    // 4096-instruction region's working set already sits in cache across
    // runs, so the sweep's win is scratch reuse plus the caller batching
    // every size behind one memo check.
    std::vector<RobModelResult> results;
    results.reserve(requests.size());
    RobModelScratch scratch;
    for (const RobSweepRequest &req : requests) {
        results.push_back(runRobModelImpl(ColTraceView{region}, index,
                                          exec_lat, req.robSize, window_k,
                                          req.collectLatencies, &scratch));
    }
    return results;
}

RobModelResult
runRobModel(const std::vector<Instruction> &region,
            const LoadLineIndex &index,
            const std::vector<int32_t> &exec_lat,
            int rob_size, int window_k, bool collect_latencies,
            RobModelScratch *scratch)
{
    return runRobModelImpl(AosTraceView{region}, index, exec_lat, rob_size,
                           window_k, collect_latencies, scratch);
}

RobModelResult
runRobModel(const TraceColumns &region, const LoadLineIndex &index,
            const std::vector<int32_t> &exec_lat, int rob_size,
            int window_k, bool collect_latencies, RobModelScratch *scratch)
{
    return runRobModelImpl(ColTraceView{region}, index, exec_lat, rob_size,
                           window_k, collect_latencies, scratch);
}

} // namespace concorde
