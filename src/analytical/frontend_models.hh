/**
 * @file
 * Frontend dynamic-constraint models (Section 3.2.1): basic
 * instruction-level simulations of the maximum-I-cache-fills limit and the
 * fetch-buffer pool, assuming an instruction backlog limited only by the
 * modeled resource.
 */

#ifndef CONCORDE_ANALYTICAL_FRONTEND_MODELS_HH
#define CONCORDE_ANALYTICAL_FRONTEND_MODELS_HH

#include <vector>

#include "analysis/trace_analyzer.hh"

namespace concorde
{

/**
 * Maximum-I-cache-fills throughput bound: at most `max_fills` line fills
 * in flight; a missing line's request issues as soon as a fill slot frees;
 * instructions are delivered in order at their line's response cycle.
 * L1i hits consume no fill slot.
 */
std::vector<double> runIcacheFillsModel(
    const std::vector<Instruction> &region, const ISideAnalysis &iside,
    int max_fills, int window_k);
std::vector<double> runIcacheFillsModel(
    const TraceColumns &region, const ISideAnalysis &iside, int max_fills,
    int window_k);

/**
 * Fetch-buffer throughput bound: every line access (hit or miss) occupies
 * one of `num_buffers` fetch buffers for the duration of its access.
 */
std::vector<double> runFetchBufferModel(
    const std::vector<Instruction> &region, const ISideAnalysis &iside,
    int num_buffers, int window_k);
std::vector<double> runFetchBufferModel(
    const TraceColumns &region, const ISideAnalysis &iside,
    int num_buffers, int window_k);

} // namespace concorde

#endif // CONCORDE_ANALYTICAL_FRONTEND_MODELS_HH
