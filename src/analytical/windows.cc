#include "analytical/windows.hh"

#include <algorithm>

namespace concorde
{

std::vector<double>
throughputFromBoundaries(const std::vector<uint64_t> &boundary_cycles, int k)
{
    std::vector<double> thr(boundary_cycles.size());
    uint64_t prev = 0;
    for (size_t j = 0; j < boundary_cycles.size(); ++j) {
        const uint64_t cur = boundary_cycles[j];
        const uint64_t delta = cur > prev ? cur - prev : 0;
        thr[j] = delta == 0
            ? kMaxThroughput
            : std::min(kMaxThroughput,
                       static_cast<double>(k) / static_cast<double>(delta));
        prev = cur;
    }
    return thr;
}

WindowCounts
WindowCounts::build(const std::vector<Instruction> &region, int k)
{
    WindowCounts counts;
    counts.k = k;
    const size_t windows = numWindows(region.size(), k);
    counts.nAlu.assign(windows, 0);
    counts.nFp.assign(windows, 0);
    counts.nLs.assign(windows, 0);
    counts.nLoad.assign(windows, 0);
    counts.nStore.assign(windows, 0);
    counts.nIsb.assign(windows, 0);
    counts.nCondBr.assign(windows, 0);
    counts.nUncondBr.assign(windows, 0);
    counts.nIndirectBr.assign(windows, 0);

    for (size_t j = 0; j < windows; ++j) {
        const size_t begin = j * static_cast<size_t>(k);
        const size_t end = begin + static_cast<size_t>(k);
        for (size_t i = begin; i < end; ++i) {
            const Instruction &instr = region[i];
            switch (issueClassOf(instr.type)) {
              case IssueClass::Alu: ++counts.nAlu[j]; break;
              case IssueClass::Fp: ++counts.nFp[j]; break;
              case IssueClass::LoadStore: ++counts.nLs[j]; break;
            }
            if (instr.isLoad())
                ++counts.nLoad[j];
            if (instr.isStore())
                ++counts.nStore[j];
            if (instr.isIsb())
                ++counts.nIsb[j];
            switch (instr.branchKind) {
              case BranchKind::DirectCond: ++counts.nCondBr[j]; break;
              case BranchKind::DirectUncond: ++counts.nUncondBr[j]; break;
              case BranchKind::Indirect: ++counts.nIndirectBr[j]; break;
              default: break;
            }
        }
    }
    return counts;
}

} // namespace concorde
