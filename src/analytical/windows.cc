#include "analytical/windows.hh"

#include <algorithm>

namespace concorde
{

std::vector<double>
throughputFromBoundaries(const std::vector<uint64_t> &boundary_cycles, int k)
{
    std::vector<double> thr(boundary_cycles.size());
    uint64_t prev = 0;
    for (size_t j = 0; j < boundary_cycles.size(); ++j) {
        const uint64_t cur = boundary_cycles[j];
        const uint64_t delta = cur > prev ? cur - prev : 0;
        thr[j] = delta == 0
            ? kMaxThroughput
            : std::min(kMaxThroughput,
                       static_cast<double>(k) / static_cast<double>(delta));
        prev = cur;
    }
    return thr;
}

namespace
{

/** Shared counting loop; type_of / kind_of abstract the trace layout. */
template <typename TypeOf, typename KindOf>
WindowCounts
buildCounts(size_t n, int k, TypeOf type_of, KindOf kind_of)
{
    WindowCounts counts;
    counts.k = k;
    const size_t windows = numWindows(n, k);
    counts.nAlu.assign(windows, 0);
    counts.nFp.assign(windows, 0);
    counts.nLs.assign(windows, 0);
    counts.nLoad.assign(windows, 0);
    counts.nStore.assign(windows, 0);
    counts.nIsb.assign(windows, 0);
    counts.nCondBr.assign(windows, 0);
    counts.nUncondBr.assign(windows, 0);
    counts.nIndirectBr.assign(windows, 0);

    for (size_t j = 0; j < windows; ++j) {
        const size_t begin = j * static_cast<size_t>(k);
        const size_t end = begin + static_cast<size_t>(k);
        for (size_t i = begin; i < end; ++i) {
            const InstrType type = type_of(i);
            switch (issueClassOf(type)) {
              case IssueClass::Alu: ++counts.nAlu[j]; break;
              case IssueClass::Fp: ++counts.nFp[j]; break;
              case IssueClass::LoadStore: ++counts.nLs[j]; break;
            }
            if (type == InstrType::Load)
                ++counts.nLoad[j];
            if (type == InstrType::Store)
                ++counts.nStore[j];
            if (type == InstrType::Isb)
                ++counts.nIsb[j];
            switch (kind_of(i)) {
              case BranchKind::DirectCond: ++counts.nCondBr[j]; break;
              case BranchKind::DirectUncond: ++counts.nUncondBr[j]; break;
              case BranchKind::Indirect: ++counts.nIndirectBr[j]; break;
              default: break;
            }
        }
    }
    return counts;
}

} // anonymous namespace

WindowCounts
WindowCounts::build(const std::vector<Instruction> &region, int k)
{
    return buildCounts(
        region.size(), k, [&](size_t i) { return region[i].type; },
        [&](size_t i) { return region[i].branchKind; });
}

WindowCounts
WindowCounts::build(const TraceColumns &region, int k)
{
    return buildCounts(
        region.size(), k, [&](size_t i) { return region.type[i]; },
        [&](size_t i) { return region.branchKind[i]; });
}

} // namespace concorde
