/**
 * @file
 * Load-queue / store-queue analytical models (Section 3.2.1). Identical to
 * the ROB model restricted to loads (or stores), with two differences: the
 * calculations involve only that instruction class, and there are no
 * dependency constraints -- an entry starts as soon as it gets a queue
 * slot. Non-members of the class are free and incur no latency.
 */

#ifndef CONCORDE_ANALYTICAL_LSQ_MODEL_HH
#define CONCORDE_ANALYTICAL_LSQ_MODEL_HH

#include <cstdint>
#include <vector>

#include "analysis/memory_state_machine.hh"
#include "trace/instruction.hh"
#include "trace/trace_columns.hh"

namespace concorde
{

/**
 * Load-queue throughput bound per window of `window_k` consecutive
 * instructions (all instructions count toward windows; only loads are
 * constrained).
 */
std::vector<double> runLoadQueueModel(const std::vector<Instruction> &region,
                                      const LoadLineIndex &index,
                                      const std::vector<int32_t> &exec_lat,
                                      int lq_size, int window_k);
std::vector<double> runLoadQueueModel(const TraceColumns &region,
                                      const LoadLineIndex &index,
                                      const std::vector<int32_t> &exec_lat,
                                      int lq_size, int window_k);

/** Store-queue analogue (store latency is fixed; no memory state machine). */
std::vector<double> runStoreQueueModel(
    const std::vector<Instruction> &region, int sq_size, int window_k);
std::vector<double> runStoreQueueModel(const TraceColumns &region,
                                       int sq_size, int window_k);

} // namespace concorde

#endif // CONCORDE_ANALYTICAL_LSQ_MODEL_HH
