/**
 * @file
 * The ROB analytical model (paper Eqs. 1-5): an instruction-level
 * dynamical system capturing out-of-order execution constrained only by a
 * finite ROB, instruction dependencies, and in-order commit, with load
 * completion times from the Algorithm-1 memory state machine.
 *
 *   a_i = c_{i-ROB}                          (ROB size constraint)
 *   s_i = max(a_i, max{f_d : d in Dep(i)})   (dependencies)
 *   f_i = RespCycle(s_i, instr_i)            (memory state machine)
 *   c_i = max(f_i, c_{i-1})                  (in-order commit)
 *
 * ISBs additionally wait for all earlier instructions to finish and act as
 * a dependency barrier for later ones.
 */

#ifndef CONCORDE_ANALYTICAL_ROB_MODEL_HH
#define CONCORDE_ANALYTICAL_ROB_MODEL_HH

#include <cstdint>
#include <vector>

#include "analysis/memory_state_machine.hh"
#include "trace/instruction.hh"
#include "trace/trace_columns.hh"

namespace concorde
{

/** Output of one ROB-model run. */
struct RobModelResult
{
    /** Eq. (5) throughput bound per k-instruction window. */
    std::vector<double> windowThroughput;
    /** Whole-region throughput: n / c_n (the Section 3.2.2 sweep value). */
    double overallIpc = 0.0;

    /** Per-instruction stage latencies (when collect_latencies). */
    std::vector<double> issueLat;   ///< s_i - a_i
    std::vector<double> execLat;    ///< f_i - s_i
    std::vector<double> commitLat;  ///< c_i - f_i
};

/**
 * Reusable per-run working buffers (commit ring, finish cycles, window
 * boundaries). One instance threaded through many runs over the same
 * region keeps the model free of per-run allocation once warm.
 */
struct RobModelScratch
{
    std::vector<uint64_t> commitRing;
    std::vector<uint64_t> finish;
    std::vector<uint64_t> boundaries;
};

/**
 * Run the ROB model.
 *
 * @param region instruction trace
 * @param index load/line index for the memory state machine
 * @param exec_lat per-instruction latency estimates (d-side analysis)
 * @param rob_size ROB entries (>= 1)
 * @param window_k window length for Eq. (5)
 * @param collect_latencies also fill the three latency vectors
 * @param scratch optional reusable working buffers
 */
RobModelResult runRobModel(const std::vector<Instruction> &region,
                           const LoadLineIndex &index,
                           const std::vector<int32_t> &exec_lat,
                           int rob_size, int window_k,
                           bool collect_latencies,
                           RobModelScratch *scratch = nullptr);

/** Columnar variant (bitwise-identical results). */
RobModelResult runRobModel(const TraceColumns &region,
                           const LoadLineIndex &index,
                           const std::vector<int32_t> &exec_lat,
                           int rob_size, int window_k,
                           bool collect_latencies,
                           RobModelScratch *scratch = nullptr);

/** One ROB size of a fused multi-size sweep. */
struct RobSweepRequest
{
    int robSize = 1;
    bool collectLatencies = false;
};

/**
 * Run the ROB model for a whole list of sizes over one region, sharing
 * the working buffers across runs (each size's arithmetic is exactly
 * runRobModel's, so results are bitwise identical to per-size calls).
 * This is the cold-path entry point: FeatureProvider batches every size
 * an assemble() will touch into one call instead of interleaving model
 * runs with cache lookups and encodes.
 */
std::vector<RobModelResult>
runRobModelSweep(const TraceColumns &region, const LoadLineIndex &index,
                 const std::vector<int32_t> &exec_lat,
                 const std::vector<RobSweepRequest> &requests,
                 int window_k);

} // namespace concorde

#endif // CONCORDE_ANALYTICAL_ROB_MODEL_HH
