#include "analytical/frontend_models.hh"

#include <algorithm>
#include <queue>

#include "analytical/windows.hh"
#include "common/logging.hh"

namespace concorde
{

namespace
{

using MinHeap = std::priority_queue<uint64_t, std::vector<uint64_t>,
                                    std::greater<uint64_t>>;

/**
 * Shared slot-pool frontend simulation: line events acquire a slot (of
 * `slots`), hold it for their latency, and deliver in order.
 * `needs_slot(i)` decides whether instruction i's line event uses a slot.
 */
template <typename NeedsSlot>
std::vector<double>
runSlotModel(size_t n, const ISideAnalysis &iside, int slots, int window_k,
             NeedsSlot needs_slot)
{
    panic_if(slots < 1, "need at least one slot");

    MinHeap slot_free;  // completion cycles of busy slots
    uint64_t prev_resp = 0;
    int until_boundary = window_k;   // avoids a per-instruction modulo

    std::vector<uint64_t> boundaries;
    boundaries.reserve(numWindows(n, window_k));

    for (size_t i = 0; i < n; ++i) {
        if (iside.newLine[i] && needs_slot(i)) {
            // Backlogged fetch: a line event starts the moment a slot is
            // available (cycle 0 while the pool is not yet full).
            uint64_t start = 0;
            if (static_cast<int>(slot_free.size()) >= slots) {
                start = slot_free.top();
                slot_free.pop();
            }
            const uint64_t line_resp =
                start + static_cast<uint64_t>(iside.lineLat[i]);
            slot_free.push(line_resp);
            prev_resp = std::max(prev_resp, line_resp);
        }
        if (--until_boundary == 0) {
            boundaries.push_back(prev_resp);
            until_boundary = window_k;
        }
    }
    return throughputFromBoundaries(boundaries, window_k);
}

} // anonymous namespace

std::vector<double>
runIcacheFillsModel(const std::vector<Instruction> &region,
                    const ISideAnalysis &iside, int max_fills, int window_k)
{
    // Only misses (latency above an L1i hit) occupy a fill slot.
    return runSlotModel(region.size(), iside, max_fills, window_k,
                        [&](size_t i) {
                            return iside.lineLat[i] > kL1iHitLat;
                        });
}

std::vector<double>
runIcacheFillsModel(const TraceColumns &region, const ISideAnalysis &iside,
                    int max_fills, int window_k)
{
    return runSlotModel(region.size(), iside, max_fills, window_k,
                        [&](size_t i) {
                            return iside.lineLat[i] > kL1iHitLat;
                        });
}

std::vector<double>
runFetchBufferModel(const std::vector<Instruction> &region,
                    const ISideAnalysis &iside, int num_buffers,
                    int window_k)
{
    // Every line access occupies a buffer, hits included.
    return runSlotModel(region.size(), iside, num_buffers, window_k,
                        [](size_t) { return true; });
}

std::vector<double>
runFetchBufferModel(const TraceColumns &region, const ISideAnalysis &iside,
                    int num_buffers, int window_k)
{
    return runSlotModel(region.size(), iside, num_buffers, window_k,
                        [](size_t) { return true; });
}

} // namespace concorde
