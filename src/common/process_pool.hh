/**
 * @file
 * Process-level parallelism primitives: fork/exec a pool of worker
 * processes, monitor them via waitpid, and supervise a fixed set of
 * work partitions to completion with bounded respawns of crashed
 * workers. This is the scale-out analog of ThreadPool for workloads
 * whose units are independent and deterministic (sharded dataset
 * generation, partitioned design-space sweeps): workers publish their
 * output by atomic rename, so a respawned worker resumes from whatever
 * its dead predecessor already published and the merged result stays
 * bitwise-identical to a serial run.
 */

#ifndef CONCORDE_COMMON_PROCESS_POOL_HH
#define CONCORDE_COMMON_PROCESS_POOL_HH

#include <sys/types.h>

#include <set>
#include <string>
#include <vector>

namespace concorde
{

/** Outcome of one child process, as reported by waitpid(2). */
struct ProcessExit
{
    pid_t pid = -1;
    bool exited = false;    ///< normal termination
    int exitCode = -1;      ///< valid when exited
    bool signaled = false;  ///< killed by a signal
    int termSignal = 0;     ///< valid when signaled

    bool success() const { return exited && exitCode == 0; }

    /** Human-readable outcome ("exit 3", "signal 9 (Killed)"). */
    std::string describe() const;
};

/**
 * A set of fork/exec'd child processes with exit-status capture.
 *
 * Not thread-safe; waitAny() reaps with waitpid(-1), so a pool must be
 * the only source of child processes in the calling thread's window of
 * use (no concurrent system()/popen()).
 */
class ProcessPool
{
  public:
    ProcessPool() = default;
    /** Kills (SIGKILL) and reaps any children still running. */
    ~ProcessPool();

    ProcessPool(const ProcessPool &) = delete;
    ProcessPool &operator=(const ProcessPool &) = delete;

    /**
     * fork/exec `argv` (argv[0] is the executable path; the child
     * inherits stdio and environment). Returns the child pid; an exec
     * failure surfaces as the child exiting 127.
     */
    pid_t spawn(const std::vector<std::string> &argv);

    /**
     * Block until one tracked child exits and return its status. The
     * child is removed from the pool. panic()s if nothing is running.
     */
    ProcessExit waitAny();

    /** Send `sig` to every running child (best effort). */
    void signalAll(int sig);

    size_t running() const { return children.size(); }

    /**
     * Run every partition's command to completion: spawn them all,
     * monitor via waitAny(), and respawn any worker that exits nonzero
     * or dies on a signal -- up to `max_respawns` extra attempts per
     * partition, after which that partition is abandoned. Workers must
     * be resumable (idempotent re-runs), which is what makes a respawn
     * after SIGKILL safe. Returns true iff every partition eventually
     * succeeded.
     */
    bool superviseAll(const std::vector<std::vector<std::string>> &argvs,
                      size_t max_respawns = 3);

  private:
    std::set<pid_t> children;
};

} // namespace concorde

#endif // CONCORDE_COMMON_PROCESS_POOL_HH
