/**
 * @file
 * Tiny binary serialization for artifact caching (datasets, trained models).
 * Format: little-endian PODs; vectors as u64 length + payload. Not meant to
 * be portable across architectures; it is a local cache format.
 */

#ifndef CONCORDE_COMMON_SERIALIZE_HH
#define CONCORDE_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace concorde
{

/** Streaming binary writer over a stdio FILE. */
class BinaryWriter
{
  public:
    explicit BinaryWriter(const std::string &path);
    ~BinaryWriter();
    BinaryWriter(const BinaryWriter &) = delete;
    BinaryWriter &operator=(const BinaryWriter &) = delete;

    template <typename T>
    void
    put(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(&value, sizeof(T));
    }

    template <typename T>
    void
    putVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        put<uint64_t>(v.size());
        if (!v.empty())
            write(v.data(), v.size() * sizeof(T));
    }

    void putString(const std::string &s);

    /** True if the file opened successfully. */
    bool ok() const { return file != nullptr; }

  private:
    void write(const void *data, size_t bytes);
    std::FILE *file;
};

/** Streaming binary reader over a stdio FILE. */
class BinaryReader
{
  public:
    explicit BinaryReader(const std::string &path);
    ~BinaryReader();
    BinaryReader(const BinaryReader &) = delete;
    BinaryReader &operator=(const BinaryReader &) = delete;

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        read(&value, sizeof(T));
        return value;
    }

    template <typename T>
    std::vector<T>
    getVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const uint64_t n = get<uint64_t>();
        std::vector<T> v(n);
        if (n > 0)
            read(v.data(), n * sizeof(T));
        return v;
    }

    std::string getString();

    /** Seek back to the start of the stream (format auto-detection). */
    void rewind();

    bool ok() const { return file != nullptr; }

  private:
    void read(void *data, size_t bytes);
    std::FILE *file;
};

/** True if a regular file exists at path. */
bool fileExists(const std::string &path);

/** mkdir -p equivalent; fatal() on failure. */
void ensureDir(const std::string &path);

/**
 * FNV-1a hash of a file's bytes; fatal() if the file cannot be read.
 * Used to fingerprint dataset manifests for artifact provenance.
 */
uint64_t fileHash(const std::string &path);

/** FNV-1a over an in-memory buffer, chainable via `seed`. */
uint64_t hashBytes(const void *data, size_t bytes,
                   uint64_t seed = 0xcbf29ce484222325ULL);

/**
 * A temporary name for staging `final_path`: `<final_path>.tmp.<pid>.<n>`.
 * The pid + per-process counter make the name unique across concurrent
 * worker processes (and across retries within one process), so two
 * writers racing on the same output never clobber each other's
 * half-written staging file. Stale staging files from dead writers are
 * identifiable by their embedded pid.
 */
std::string uniqueTmpName(const std::string &final_path);

/**
 * Atomically and durably publish `tmp_path` as `final_path`. Writers of
 * resumable outputs (dataset shards, training checkpoints) write to a
 * temporary name first so a killed run never leaves a truncated file
 * under the final name. The temporary file is fsync'd before the
 * rename(2) and the parent directory after it, so a crash immediately
 * after publishFile returns cannot leave an empty or truncated file
 * under the final name for a resume to trust.
 */
void publishFile(const std::string &tmp_path, const std::string &final_path);

/**
 * Remove staging files of `final_path` (`<final_path>.tmp.<pid>.<n>`,
 * plus the legacy fixed `<final_path>.tmp`) whose writer process is
 * provably dead -- the crash-recovery sweep for any file maintained
 * with the uniqueTmpName + publishFile discipline. The published file
 * itself is never touched: publishFile's rename is atomic, so it is
 * always the last complete version. @return files removed.
 */
size_t reclaimStagingDebris(const std::string &final_path);

} // namespace concorde

#endif // CONCORDE_COMMON_SERIALIZE_HH
