/**
 * @file
 * Minimal logging / error-reporting helpers in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations, fatal() for
 * user errors, warn()/inform() for status messages.
 */

#ifndef CONCORDE_COMMON_LOGGING_HH
#define CONCORDE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>

namespace concorde
{

/** Abort the process: an internal invariant was violated (a bug). */
#define panic(...)                                                          \
    do {                                                                    \
        std::fprintf(stderr, "panic: ");                                    \
        std::fprintf(stderr, __VA_ARGS__);                                  \
        std::fprintf(stderr, " [%s:%d]\n", __FILE__, __LINE__);             \
        std::abort();                                                       \
    } while (0)

/** Exit the process: the caller supplied an unusable configuration. */
#define fatal(...)                                                          \
    do {                                                                    \
        std::fprintf(stderr, "fatal: ");                                    \
        std::fprintf(stderr, __VA_ARGS__);                                  \
        std::fprintf(stderr, " [%s:%d]\n", __FILE__, __LINE__);             \
        std::exit(1);                                                       \
    } while (0)

/** Non-fatal diagnostic for suspicious-but-survivable conditions. */
#define warn(...)                                                           \
    do {                                                                    \
        std::fprintf(stderr, "warn: ");                                     \
        std::fprintf(stderr, __VA_ARGS__);                                  \
        std::fprintf(stderr, "\n");                                         \
    } while (0)

/** Status message. */
#define inform(...)                                                         \
    do {                                                                    \
        std::fprintf(stdout, "info: ");                                     \
        std::fprintf(stdout, __VA_ARGS__);                                  \
        std::fprintf(stdout, "\n");                                         \
        std::fflush(stdout);                                                \
    } while (0)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

} // namespace concorde

#endif // CONCORDE_COMMON_LOGGING_HH
