/**
 * @file
 * Wall-clock stopwatch used by the speed experiments (Figure 10,
 * Section 5.2.3 preprocessing cost).
 */

#ifndef CONCORDE_COMMON_STOPWATCH_HH
#define CONCORDE_COMMON_STOPWATCH_HH

#include <chrono>

namespace concorde
{

/** Monotonic wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    void reset() { start = std::chrono::steady_clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start).count();
    }

    double micros() const { return seconds() * 1e6; }

  private:
    std::chrono::steady_clock::time_point start;
};

} // namespace concorde

#endif // CONCORDE_COMMON_STOPWATCH_HH
