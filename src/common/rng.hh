/**
 * @file
 * Deterministic, fast pseudo-random number generation.
 *
 * Everything in Concorde (workload generation, dataset sampling, the Simple
 * branch predictor, weight initialization) derives from seeded Rng instances
 * so that traces, features, labels, and trained models are bit-reproducible.
 */

#ifndef CONCORDE_COMMON_RNG_HH
#define CONCORDE_COMMON_RNG_HH

#include <cstdint>

namespace concorde
{

class BinaryReader;
class BinaryWriter;

/** SplitMix64 step; used for seeding and cheap hash mixing. */
uint64_t splitMix64(uint64_t &state);

/** Stateless mix of up to three words into one; used to derive sub-seeds. */
uint64_t hashMix(uint64_t a, uint64_t b = 0x9e3779b97f4a7c15ULL,
                 uint64_t c = 0xbf58476d1ce4e5b9ULL);

/**
 * xoshiro256** generator. Small, fast, good statistical quality; more than
 * adequate for synthetic workload generation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x1234abcdULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw. */
    bool nextBool(double p_true);

    /** Standard normal via Box-Muller (no cached spare; stateless). */
    double nextGaussian();

    /**
     * Geometric-ish positive integer with the given mean (>= 1); used for
     * dependency distances and run lengths.
     */
    uint64_t nextGeometric(double mean);

    /** Zipf-distributed value in [0, n) with exponent s (approximate). */
    uint64_t nextZipf(uint64_t n, double s);

    /** Derive an independent child generator. */
    Rng fork(uint64_t salt);

    /**
     * Serialize / restore the full generator state (training checkpoints
     * resume mid-stream and must replay the exact remaining sequence).
     */
    void saveState(BinaryWriter &out) const;
    static Rng loadState(BinaryReader &in);

  private:
    uint64_t s[4];
};

} // namespace concorde

#endif // CONCORDE_COMMON_RNG_HH
