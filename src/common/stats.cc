#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/logging.hh"

namespace concorde
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double
percentile(const std::vector<double> &sorted_xs, double q)
{
    if (sorted_xs.empty())
        return 0.0;
    panic_if(q < 0.0 || q > 1.0, "percentile q out of range");
    const double pos = q * static_cast<double>(sorted_xs.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted_xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted_xs[lo] * (1.0 - frac) + sorted_xs[hi] * frac;
}

namespace
{

/**
 * Build the counting-sort histogram when every sample is a small
 * non-negative integer. @return false (histogram untouched) otherwise.
 */
bool
integralHistogram(const std::vector<double> &xs,
                  std::vector<uint32_t> &counts, uint32_t &max_value)
{
    // Counting is only worth the two extra passes for decently sized
    // inputs, and the histogram must stay cache-friendly.
    constexpr size_t kMinCountingSize = 256;
    constexpr uint32_t kMaxCountingValue = 1u << 16;

    if (xs.size() < kMinCountingSize)
        return false;
    // Validate and count in ONE pass, growing the histogram on demand;
    // a late validation failure just leaves scratch garbage behind.
    counts.assign(256, 0);
    max_value = 0;
    for (double x : xs) {
        // signbit rejects negatives and -0.0 (whose bit pattern a
        // rebuild from the histogram would not preserve).
        if (std::signbit(x) || x > kMaxCountingValue)
            return false;
        const uint32_t v = static_cast<uint32_t>(x);
        if (static_cast<double>(v) != x)
            return false;
        if (v >= counts.size())
            counts.resize(std::max<size_t>(v + 1, counts.size() * 2), 0);
        ++counts[v];
        max_value = std::max(max_value, v);
    }
    return true;
}

thread_local std::vector<uint32_t> histogramScratch;

} // anonymous namespace

void
sortSamples(std::vector<double> &xs)
{
    uint32_t max_value = 0;
    if (integralHistogram(xs, histogramScratch, max_value)) {
        // Rebuilding count[v] copies of double(v) in ascending value
        // order yields exactly std::sort's output: the same multiset,
        // and equal values are bitwise-identical doubles.
        size_t at = 0;
        for (uint32_t v = 0; v <= max_value; ++v) {
            const double value = static_cast<double>(v);
            for (uint32_t c = histogramScratch[v]; c > 0; --c)
                xs[at++] = value;
        }
        return;
    }
    std::sort(xs.begin(), xs.end());
}

void
sortAndTransformSamples(std::vector<double> &xs,
                        double (*transform)(double))
{
    uint32_t max_value = 0;
    if (integralHistogram(xs, histogramScratch, max_value)) {
        // One rebuild pass writes the transformed values directly:
        // identical to sorting first and then mapping each element, with
        // the (weakly monotone) transform computed once per distinct
        // value -- equal inputs give bitwise-equal outputs.
        size_t at = 0;
        for (uint32_t v = 0; v <= max_value; ++v) {
            const uint32_t count = histogramScratch[v];
            if (count == 0)
                continue;
            const double value = transform(static_cast<double>(v));
            for (uint32_t c = count; c > 0; --c)
                xs[at++] = value;
        }
        return;
    }
    std::sort(xs.begin(), xs.end());
    double prev_in = std::numeric_limits<double>::quiet_NaN();
    double prev_out = 0.0;
    for (double &x : xs) {
        if (x != prev_in) {
            prev_in = x;
            prev_out = transform(x);
        }
        x = prev_out;
    }
}

DistributionEncoder::DistributionEncoder(size_t num_percentiles)
    : numPercentiles(num_percentiles)
{
    panic_if(num_percentiles < 2, "need at least 2 percentiles");
}

void
DistributionEncoder::encode(std::vector<double> samples,
                            std::vector<float> &out) const
{
    encodeInPlace(samples, out);
}

void
DistributionEncoder::encodeInPlace(std::vector<double> &samples,
                                   std::vector<float> &out) const
{
    sortSamples(samples);
    encodeSorted(samples, out);
}

void
DistributionEncoder::encodeSorted(const std::vector<double> &samples,
                                  std::vector<float> &out) const
{
    const size_t base = out.size();
    out.resize(base + dim(), 0.0f);
    if (samples.empty())
        return;

    const size_t n = samples.size();

    // Plain percentiles.
    for (size_t i = 0; i < numPercentiles; ++i) {
        const double q = static_cast<double>(i)
            / static_cast<double>(numPercentiles - 1);
        const double pos = q * static_cast<double>(n - 1);
        const size_t lo = static_cast<size_t>(pos);
        const size_t hi = std::min(lo + 1, n - 1);
        const double frac = pos - static_cast<double>(lo);
        out[base + i] = static_cast<float>(
            samples[lo] * (1.0 - frac) + samples[hi] * frac);
    }

    // Size-weighted percentiles: sample i carries weight samples[i]. The
    // weighted CDF is piecewise constant; we pick the sample at which the
    // normalized cumulative weight first reaches q.
    double total = 0.0;
    for (double x : samples)
        total += x;
    if (total <= 0.0) {
        // All-zero samples: weighted distribution degenerates to zeros.
        for (size_t i = 0; i < numPercentiles; ++i)
            out[base + numPercentiles + i] = 0.0f;
    } else {
        size_t idx = 0;
        double cum = samples[0];
        for (size_t i = 0; i < numPercentiles; ++i) {
            const double q = static_cast<double>(i)
                / static_cast<double>(numPercentiles - 1);
            const double target = q * total;
            while (cum < target && idx + 1 < n) {
                ++idx;
                cum += samples[idx];
            }
            out[base + numPercentiles + i] = static_cast<float>(samples[idx]);
        }
    }

    out[base + 2 * numPercentiles] =
        static_cast<float>(total / static_cast<double>(n));
}

LatencyRecorder::LatencyRecorder(size_t window_size)
    : window(window_size ? window_size : 1)
{
}

void
LatencyRecorder::push(double micros)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (ring.size() < window) {
        ring.push_back(micros);
    } else {
        ring[next] = micros;
        next = (next + 1) % window;
    }
    ++total;
}

LatencySummary
LatencyRecorder::summary() const
{
    std::vector<double> samples;
    uint64_t count;
    {
        std::lock_guard<std::mutex> lock(mtx);
        samples = ring;
        count = total;
    }
    LatencySummary s;
    s.count = count;
    if (samples.empty())
        return s;
    sortSamples(samples);
    s.meanUs = mean(samples);
    s.p50Us = percentile(samples, 0.50);
    s.p90Us = percentile(samples, 0.90);
    s.p99Us = percentile(samples, 0.99);
    s.maxUs = samples.back();
    return s;
}

void
LatencyRecorder::reset()
{
    std::lock_guard<std::mutex> lock(mtx);
    ring.clear();
    next = 0;
    total = 0;
}

void
RunningStats::push(double x)
{
    ++n;
    const double delta = x - meanAcc;
    meanAcc += delta / static_cast<double>(n);
    m2 += delta * (x - meanAcc);
}

double
RunningStats::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace concorde
