/**
 * @file
 * Distribution utilities: percentile extraction and the fixed-size CDF
 * encoding Concorde feeds to its ML model (Section 4 of the paper: P
 * equally-spaced percentiles of the distribution, P percentiles of the
 * size-weighted distribution, and the mean).
 */

#ifndef CONCORDE_COMMON_STATS_HH
#define CONCORDE_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace concorde
{

/** Mean of a sample vector (0 for empty input). */
double mean(const std::vector<double> &xs);

/**
 * Percentile of an already-sorted sample vector with linear interpolation
 * between order statistics. @param q in [0, 1].
 */
double percentile(const std::vector<double> &sorted_xs, double q);

/**
 * Sort samples ascending, bitwise-identically to std::sort. Small
 * non-negative integral samples (stage latencies, instruction counts)
 * take a counting-sort fast path -- the hot encode paths sort thousands
 * of integral latencies per region, where counting beats comparison
 * sorting severalfold; everything else falls back to std::sort.
 */
void sortSamples(std::vector<double> &xs);

/**
 * Sort ascending and map every sample through a weakly monotone
 * `transform`, computed once per distinct value. Bitwise-identical to
 * sortSamples() followed by an equal-input-deduplicated element-wise
 * transform, but the counting fast path writes the transformed values in
 * a single rebuild pass.
 */
void sortAndTransformSamples(std::vector<double> &xs,
                             double (*transform)(double));

/**
 * Fixed-size encoding of an empirical distribution.
 *
 * Output layout: [P equally-spaced percentiles (q = 0..1),
 *                 P equally-spaced percentiles of the size-weighted
 *                 distribution (every sample weighted by its value, which
 *                 highlights the tail; paper Section 4, footnote 5),
 *                 mean] -- total 2*P+1 values.
 */
class DistributionEncoder
{
  public:
    explicit DistributionEncoder(size_t num_percentiles = 25);

    /** Number of output values (2*P+1). */
    size_t dim() const { return 2 * numPercentiles + 1; }

    /**
     * Encode samples into `out` (exactly dim() values appended).
     * Empty input encodes as all zeros. Delegates to encodeInPlace; the
     * by-value parameter exists so call sites may move a buffer in.
     */
    void encode(std::vector<double> samples, std::vector<float> &out) const;

    /**
     * Scratch-reusing variant: sorts `samples` in place (destructive)
     * and encodes without allocating, so a caller looping over many
     * distributions can recycle one buffer.
     */
    void encodeInPlace(std::vector<double> &samples,
                       std::vector<float> &out) const;

    /** Encode samples the caller has already sorted ascending. */
    void encodeSorted(const std::vector<double> &sorted,
                      std::vector<float> &out) const;

  private:
    size_t numPercentiles;
};

/** Percentile snapshot of a LatencyRecorder window. */
struct LatencySummary
{
    uint64_t count = 0;     ///< samples pushed over the recorder's life
    double meanUs = 0.0;    ///< mean over the retained window
    double p50Us = 0.0;
    double p90Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;
};

/**
 * Thread-safe bounded reservoir of latency samples (microseconds).
 * Retains the most recent `window` samples in a ring; summary() sorts a
 * snapshot of the window (sortSamples) and reads the percentiles with
 * the same interpolating percentile() the feature encoders use. The
 * serve layer keeps one per service for end-to-end request latencies.
 */
class LatencyRecorder
{
  public:
    explicit LatencyRecorder(size_t window = 1 << 14);

    void push(double micros);
    LatencySummary summary() const;
    void reset();

  private:
    mutable std::mutex mtx;
    const size_t window;
    std::vector<double> ring;   ///< grows to `window`, then wraps
    size_t next = 0;            ///< ring write position
    uint64_t total = 0;
};

/** Simple streaming mean/variance accumulator (Welford). */
class RunningStats
{
  public:
    void push(double x);
    size_t count() const { return n; }
    double avg() const { return n ? meanAcc : 0.0; }
    double variance() const;
    double stddev() const;

  private:
    size_t n = 0;
    double meanAcc = 0.0;
    double m2 = 0.0;
};

} // namespace concorde

#endif // CONCORDE_COMMON_STATS_HH
