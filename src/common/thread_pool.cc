#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace concorde
{

size_t
defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            size_t num_threads)
{
    if (num_threads == 0)
        num_threads = defaultThreads();
    num_threads = std::min(num_threads, n);
    if (n == 0)
        return;
    if (num_threads <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Dynamic scheduling via a shared counter: work items (regions,
    // simulations) have highly variable cost.
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
        workers.emplace_back([&]() {
            while (true) {
                const size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    for (auto &w : workers)
        w.join();
}

void
parallelShards(size_t n,
               const std::function<void(size_t, size_t, size_t)> &fn,
               size_t num_threads)
{
    if (num_threads == 0)
        num_threads = defaultThreads();
    num_threads = std::max<size_t>(1, std::min(num_threads, n));
    if (n == 0)
        return;
    if (num_threads == 1) {
        fn(0, 0, n);
        return;
    }
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    const size_t chunk = (n + num_threads - 1) / num_threads;
    for (size_t t = 0; t < num_threads; ++t) {
        const size_t begin = t * chunk;
        const size_t end = std::min(n, begin + chunk);
        if (begin >= end)
            break;
        workers.emplace_back([&fn, t, begin, end]() { fn(t, begin, end); });
    }
    for (auto &w : workers)
        w.join();
}

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0)
        num_threads = defaultThreads();
    workers.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping)
            throw std::runtime_error("ThreadPool::submit after shutdown");
        queue.push_back(std::move(task));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this]() { return stopping || !queue.empty(); });
            // Drain-then-join: even when stopping, finish queued work
            // first so every accepted future becomes ready.
            if (queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
        }
        // packaged_task captures any exception into the future.
        task();
    }
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping && workers.empty())
            return;
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers) {
        if (w.joinable())
            w.join();
    }
    workers.clear();
}

bool
ThreadPool::stopped() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return stopping;
}

} // namespace concorde
