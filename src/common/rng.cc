#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace concorde
{

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
hashMix(uint64_t a, uint64_t b, uint64_t c)
{
    uint64_t state = a;
    uint64_t x = splitMix64(state);
    state ^= b * 0xff51afd7ed558ccdULL;
    x ^= splitMix64(state);
    state ^= c * 0xc4ceb9fe1a85ec53ULL;
    x ^= splitMix64(state);
    return x;
}

namespace
{

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
{
    uint64_t state = seed;
    for (auto &word : s)
        word = splitMix64(state);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    panic_if(bound == 0, "nextBounded(0)");
    // Multiply-shift bounded draw; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    panic_if(hi < lo, "nextRange: hi < lo");
    return lo + static_cast<int64_t>(
        nextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p_true)
{
    return nextDouble() < p_true;
}

double
Rng::nextGaussian()
{
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Geometric on {1, 2, ...} with mean `mean` => success prob 1/mean.
    const double p = 1.0 / mean;
    double u = nextDouble();
    if (u < 1e-300)
        u = 1e-300;
    const double v = std::log(u) / std::log(1.0 - p);
    uint64_t k = static_cast<uint64_t>(v) + 1;
    return k == 0 ? 1 : k;
}

uint64_t
Rng::nextZipf(uint64_t n, double s)
{
    panic_if(n == 0, "nextZipf(0)");
    // Inverse-CDF approximation of a Zipf law via the bounded Pareto
    // distribution; exact Zipf sampling is unnecessary for workload shaping.
    const double u = nextDouble();
    if (s == 1.0) {
        const double h = std::log(static_cast<double>(n) + 1.0);
        const double x = std::exp(u * h) - 1.0;
        uint64_t k = static_cast<uint64_t>(x);
        return k >= n ? n - 1 : k;
    }
    const double one_minus_s = 1.0 - s;
    const double h = (std::pow(static_cast<double>(n) + 1.0, one_minus_s)
                      - 1.0);
    const double x = std::pow(u * h + 1.0, 1.0 / one_minus_s) - 1.0;
    uint64_t k = static_cast<uint64_t>(x);
    return k >= n ? n - 1 : k;
}

Rng
Rng::fork(uint64_t salt)
{
    return Rng(hashMix(next(), salt));
}

void
Rng::saveState(BinaryWriter &out) const
{
    for (uint64_t word : s)
        out.put<uint64_t>(word);
}

Rng
Rng::loadState(BinaryReader &in)
{
    Rng rng;
    for (uint64_t &word : rng.s)
        word = in.get<uint64_t>();
    return rng;
}

} // namespace concorde
