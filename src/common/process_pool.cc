#include "common/process_pool.hh"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "common/logging.hh"

namespace concorde
{

std::string
ProcessExit::describe() const
{
    if (exited)
        return "exit " + std::to_string(exitCode);
    if (signaled) {
        const char *name = ::strsignal(termSignal);
        return "signal " + std::to_string(termSignal) + " ("
            + (name ? name : "?") + ")";
    }
    return "unknown";
}

ProcessPool::~ProcessPool()
{
    signalAll(SIGKILL);
    while (!children.empty())
        waitAny();
}

pid_t
ProcessPool::spawn(const std::vector<std::string> &argv)
{
    panic_if(argv.empty(), "spawn with empty argv");
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    fatal_if(pid < 0, "fork: %s", std::strerror(errno));
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        // Still the child: exec failed. _exit, not exit -- running the
        // parent's atexit handlers from a forked image corrupts shared
        // state.
        std::fprintf(stderr, "exec '%s': %s\n", argv[0].c_str(),
                     std::strerror(errno));
        ::_exit(127);
    }
    children.insert(pid);
    return pid;
}

ProcessExit
ProcessPool::waitAny()
{
    panic_if(children.empty(), "waitAny with no running children");
    for (;;) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            fatal("waitpid: %s", std::strerror(errno));
        }
        if (!children.count(pid))
            continue;   // a child someone else forked; not ours to report
        children.erase(pid);
        ProcessExit result;
        result.pid = pid;
        if (WIFEXITED(status)) {
            result.exited = true;
            result.exitCode = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
            result.signaled = true;
            result.termSignal = WTERMSIG(status);
        }
        return result;
    }
}

void
ProcessPool::signalAll(int sig)
{
    for (const pid_t pid : children)
        ::kill(pid, sig);
}

bool
ProcessPool::superviseAll(const std::vector<std::vector<std::string>> &argvs,
                          size_t max_respawns)
{
    std::unordered_map<pid_t, size_t> partition_of;
    std::vector<size_t> spawns(argvs.size(), 0);
    for (size_t i = 0; i < argvs.size(); ++i) {
        partition_of[spawn(argvs[i])] = i;
        spawns[i] = 1;
    }

    bool all_ok = true;
    while (!partition_of.empty()) {
        const ProcessExit child = waitAny();
        const auto it = partition_of.find(child.pid);
        if (it == partition_of.end())
            continue;   // an untracked child reaped by waitAny
        const size_t part = it->second;
        partition_of.erase(it);
        if (child.success())
            continue;
        if (spawns[part] > max_respawns) {
            warn("worker %d (partition %zu) failed with %s; respawn "
                 "budget (%zu) exhausted, abandoning the partition",
                 static_cast<int>(child.pid), part,
                 child.describe().c_str(), max_respawns);
            all_ok = false;
            continue;
        }
        warn("worker %d (partition %zu) failed with %s; respawning "
             "(attempt %zu of %zu)", static_cast<int>(child.pid), part,
             child.describe().c_str(), spawns[part] + 1, max_respawns + 1);
        partition_of[spawn(argvs[part])] = part;
        ++spawns[part];
    }
    return all_ok;
}

} // namespace concorde
