#include "common/serialize.hh"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace concorde
{

BinaryWriter::BinaryWriter(const std::string &path)
    : file(std::fopen(path.c_str(), "wb"))
{
    fatal_if(!file, "cannot open '%s' for writing: %s", path.c_str(),
             std::strerror(errno));
}

BinaryWriter::~BinaryWriter()
{
    if (file)
        std::fclose(file);
}

void
BinaryWriter::putString(const std::string &s)
{
    put<uint64_t>(s.size());
    write(s.data(), s.size());
}

void
BinaryWriter::write(const void *data, size_t bytes)
{
    if (bytes == 0)
        return;
    const size_t written = std::fwrite(data, 1, bytes, file);
    fatal_if(written != bytes, "short write (%zu of %zu bytes)", written,
             bytes);
}

BinaryReader::BinaryReader(const std::string &path)
    : file(std::fopen(path.c_str(), "rb"))
{
    fatal_if(!file, "cannot open '%s' for reading: %s", path.c_str(),
             std::strerror(errno));
}

BinaryReader::~BinaryReader()
{
    if (file)
        std::fclose(file);
}

void
BinaryReader::rewind()
{
    fatal_if(std::fseek(file, 0, SEEK_SET) != 0, "cannot rewind: %s",
             std::strerror(errno));
}

std::string
BinaryReader::getString()
{
    const uint64_t n = get<uint64_t>();
    std::string s(n, '\0');
    read(s.data(), n);
    return s;
}

void
BinaryReader::read(void *data, size_t bytes)
{
    if (bytes == 0)
        return;
    const size_t got = std::fread(data, 1, bytes, file);
    fatal_if(got != bytes, "short read (%zu of %zu bytes)", got, bytes);
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

uint64_t
hashBytes(const void *data, size_t bytes, uint64_t seed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;              // FNV-1a prime
    }
    return h;
}

uint64_t
fileHash(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    fatal_if(!f, "cannot hash '%s': %s", path.c_str(),
             std::strerror(errno));
    uint64_t h = 0xcbf29ce484222325ULL;    // FNV-1a offset basis
    unsigned char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        h = hashBytes(buf, got, h);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    fatal_if(bad, "read error hashing '%s'", path.c_str());
    return h;
}

std::string
uniqueTmpName(const std::string &final_path)
{
    static std::atomic<uint64_t> counter{0};
    return final_path + ".tmp." + std::to_string(::getpid()) + "."
        + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

void
publishFile(const std::string &tmp_path, const std::string &final_path)
{
    // Flush the staged bytes to stable storage before the rename can
    // make them visible under the final name: rename(2) alone orders
    // nothing, and a crash right after it would otherwise let a resume
    // trust an empty or truncated "published" file.
    const int fd = ::open(tmp_path.c_str(), O_RDONLY | O_CLOEXEC);
    fatal_if(fd < 0, "cannot open '%s' to sync it: %s", tmp_path.c_str(),
             std::strerror(errno));
    const int sync_err = ::fsync(fd) != 0 ? errno : 0;
    ::close(fd);
    fatal_if(sync_err, "cannot sync '%s': %s", tmp_path.c_str(),
             std::strerror(sync_err));

    fatal_if(std::rename(tmp_path.c_str(), final_path.c_str()) != 0,
             "cannot publish '%s' as '%s': %s", tmp_path.c_str(),
             final_path.c_str(), std::strerror(errno));

    // Make the rename itself durable. Skipped silently if the directory
    // cannot be opened (exotic filesystems); an fsync failure on an
    // opened directory is still fatal.
    const auto slash = final_path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : final_path.substr(0, slash);
    const int dfd = ::open(dir.empty() ? "/" : dir.c_str(),
                           O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
        const int dir_err = ::fsync(dfd) != 0 ? errno : 0;
        ::close(dfd);
        fatal_if(dir_err, "cannot sync directory of '%s': %s",
                 final_path.c_str(), std::strerror(dir_err));
    }
}

size_t
reclaimStagingDebris(const std::string &final_path)
{
    const auto slash = final_path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : final_path.substr(0, slash);
    const std::string base = slash == std::string::npos
        ? final_path : final_path.substr(slash + 1);
    const std::string prefix = base + ".tmp.";

    DIR *d = ::opendir(dir.empty() ? "/" : dir.c_str());
    if (!d)
        return 0;
    std::vector<std::string> stale;
    while (struct dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name == base + ".tmp") {
            // Legacy fixed-name staging file: its writer embeds no
            // pid, so by convention it is never a live writer's.
            stale.push_back(name);
            continue;
        }
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        // Parse "<pid>.<counter>" after the prefix.
        const char *pid_str = name.c_str() + prefix.size();
        char *end = nullptr;
        const long pid = std::strtol(pid_str, &end, 10);
        if (end == pid_str || pid <= 0 || *end != '.')
            continue;
        char *counter_end = nullptr;
        (void)std::strtol(end + 1, &counter_end, 10);
        if (counter_end == end + 1 || *counter_end != '\0')
            continue;
        // Only ESRCH proves the writer is gone: EPERM would mean a
        // live process owned by another user, whose file must stay.
        if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH)
            stale.push_back(name);
    }
    ::closedir(d);

    size_t removed = 0;
    for (const auto &name : stale) {
        const std::string path = dir + "/" + name;
        warn("removing stale staging file '%s'", path.c_str());
        if (::unlink(path.c_str()) == 0)
            ++removed;
    }
    return removed;
}

void
ensureDir(const std::string &path)
{
    std::string partial;
    for (size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (!partial.empty() && partial != "/") {
                if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
                    fatal("mkdir '%s': %s", partial.c_str(),
                          std::strerror(errno));
            }
        }
        if (i < path.size())
            partial.push_back(path[i]);
    }
}

} // namespace concorde
