/**
 * @file
 * Thread-parallel primitives. parallelFor/parallelShards cover the
 * fork-join pattern used by dataset generation, feature precompute,
 * training, and the Shapley engine; ThreadPool is the persistent
 * executor behind the serve layer (futures, exception propagation,
 * drain-then-join shutdown).
 */

#ifndef CONCORDE_COMMON_THREAD_POOL_HH
#define CONCORDE_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace concorde
{

/** Number of worker threads to use by default (hardware concurrency). */
size_t defaultThreads();

/**
 * Run fn(i) for i in [0, n) across up to num_threads threads.
 * Work is distributed in contiguous blocks; fn must be thread-safe across
 * distinct i. Runs inline when n is small or num_threads <= 1.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                 size_t num_threads = 0);

/**
 * Run fn(t, begin, end) for each of num_threads contiguous shards of [0, n);
 * useful when per-thread state (accumulators, RNGs) is needed.
 */
void parallelShards(size_t n,
                    const std::function<void(size_t, size_t, size_t)> &fn,
                    size_t num_threads = 0);

/**
 * A fixed-size pool of persistent worker threads with a FIFO task queue.
 *
 * Tasks are submitted as callables and return std::futures; a task that
 * throws stores the exception in its future (workers never die from task
 * exceptions). Shutdown ordering: the destructor (or an explicit
 * shutdown()) first closes the queue to new submissions, then lets the
 * workers drain every already-queued task, and only then joins them --
 * so every future obtained from a successful submit() eventually becomes
 * ready.
 */
class ThreadPool
{
  public:
    /** @param num_threads worker count (0 = hardware concurrency). */
    explicit ThreadPool(size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t numThreads() const { return workers.size(); }

    /**
     * Enqueue a callable; returns a future for its result (or stored
     * exception). Throws std::runtime_error if the pool has been shut
     * down.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Stop accepting tasks, drain the queue, and join the workers.
     * Idempotent; called by the destructor.
     */
    void shutdown();

    /** True once shutdown has begun (submissions will be rejected). */
    bool stopped() const;

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    bool stopping = false;
};

} // namespace concorde

#endif // CONCORDE_COMMON_THREAD_POOL_HH
