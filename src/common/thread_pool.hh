/**
 * @file
 * Minimal data-parallel helpers. Dataset generation, feature precompute,
 * training, and the Shapley engine all use parallelFor over independent
 * work items.
 */

#ifndef CONCORDE_COMMON_THREAD_POOL_HH
#define CONCORDE_COMMON_THREAD_POOL_HH

#include <cstddef>
#include <functional>

namespace concorde
{

/** Number of worker threads to use by default (hardware concurrency). */
size_t defaultThreads();

/**
 * Run fn(i) for i in [0, n) across up to num_threads threads.
 * Work is distributed in contiguous blocks; fn must be thread-safe across
 * distinct i. Runs inline when n is small or num_threads <= 1.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                 size_t num_threads = 0);

/**
 * Run fn(t, begin, end) for each of num_threads contiguous shards of [0, n);
 * useful when per-thread state (accumulators, RNGs) is needed.
 */
void parallelShards(size_t n,
                    const std::function<void(size_t, size_t, size_t)> &fn,
                    size_t num_threads = 0);

} // namespace concorde

#endif // CONCORDE_COMMON_THREAD_POOL_HH
