#include "analysis/trace_analyzer.hh"

#include "common/rng.hh"
#include "trace/workloads.hh"

namespace concorde
{

RegionAnalysis::RegionAnalysis(const RegionSpec &spec, uint32_t warmup_chunks)
    : regionSpec(spec)
{
    const ProgramModel &model = programModel(spec.programId);

    // Warmup prefix: the chunks immediately preceding the region (when the
    // region starts at the trace head, fall back to re-playing its first
    // chunks, which warms structures with representative content).
    RegionSpec warm = spec;
    warm.numChunks = warmup_chunks;
    warm.startChunk = spec.startChunk >= warmup_chunks
        ? spec.startChunk - warmup_chunks : spec.startChunk;
    if (warmup_chunks > 0)
        warmup = model.generateRegion(warm);

    region = model.generateRegion(spec);
    loadLineIndex = LoadLineIndex::build(region);

    branchSeed = hashMix(workloadCorpus()[spec.programId].seed,
                         static_cast<uint64_t>(spec.traceId) + 1,
                         spec.startChunk + 0xB4A2C);
}

const DSideAnalysis &
RegionAnalysis::dside(const MemoryConfig &config)
{
    const uint32_t key = config.dSideKey();
    auto it = dsides.find(key);
    if (it != dsides.end())
        return *it->second;

    auto analysis = std::make_unique<DSideAnalysis>();
    analysis->execLat.resize(region.size());
    analysis->loadLevel.assign(region.size(), CacheLevel::L1);

    DataHierarchy hierarchy(config);
    for (const auto &instr : warmup) {
        if (instr.isMem())
            hierarchy.access(instr.pc, instr.memAddr, instr.isStore());
    }
    for (size_t i = 0; i < region.size(); ++i) {
        const Instruction &instr = region[i];
        if (instr.isLoad()) {
            const CacheLevel level =
                hierarchy.access(instr.pc, instr.memAddr, false);
            analysis->loadLevel[i] = level;
            analysis->execLat[i] = loadLatency(level);
        } else {
            if (instr.isStore())
                hierarchy.access(instr.pc, instr.memAddr, true);
            analysis->execLat[i] = fixedLatency(instr.type);
        }
    }
    analysis->stats = hierarchy.stats();

    auto [pos, inserted] = dsides.emplace(key, std::move(analysis));
    return *pos->second;
}

const ISideAnalysis &
RegionAnalysis::iside(const MemoryConfig &config)
{
    const uint32_t key = config.iSideKey();
    auto it = isides.find(key);
    if (it != isides.end())
        return *it->second;

    auto analysis = std::make_unique<ISideAnalysis>();
    analysis->newLine.assign(region.size(), 0);
    analysis->lineLat.assign(region.size(), kL1iHitLat);

    InstHierarchy hierarchy(config);
    uint64_t last_line = ~0ULL;
    for (const auto &instr : warmup) {
        const uint64_t line = instr.instLine();
        if (line != last_line) {
            hierarchy.access(line);
            last_line = line;
        }
    }
    for (size_t i = 0; i < region.size(); ++i) {
        const uint64_t line = region[i].instLine();
        if (line != last_line) {
            const CacheLevel level = hierarchy.access(line);
            analysis->newLine[i] = 1;
            analysis->lineLat[i] = level == CacheLevel::L1
                ? kL1iHitLat : loadLatency(level);
            last_line = line;
        }
    }
    analysis->stats = hierarchy.stats();

    auto [pos, inserted] = isides.emplace(key, std::move(analysis));
    return *pos->second;
}

const BranchAnalysis &
RegionAnalysis::branches(const BranchConfig &config)
{
    const uint32_t key = config.key();
    auto it = branchAnalyses.find(key);
    if (it != branchAnalyses.end())
        return *it->second;

    auto analysis = std::make_unique<BranchAnalysis>();
    analysis->mispredict =
        computeMispredicts(warmup, region, config, branchSeed);
    for (size_t i = 0; i < region.size(); ++i) {
        if (region[i].isBranch()
            && region[i].branchKind != BranchKind::DirectUncond) {
            ++analysis->numBranches;
            analysis->numMispredicts += analysis->mispredict[i];
        }
    }

    auto [pos, inserted] = branchAnalyses.emplace(key, std::move(analysis));
    return *pos->second;
}

} // namespace concorde
