#include "analysis/trace_analyzer.hh"

#include <algorithm>
#include <optional>

#include "common/rng.hh"
#include "trace/workloads.hh"

namespace concorde
{

uint64_t
branchSeedFor(int program_id, int trace_id, uint64_t start_chunk)
{
    return hashMix(workloadCorpus()[program_id].seed,
                   static_cast<uint64_t>(trace_id) + 1,
                   start_chunk + 0xB4A2C);
}

namespace
{

/**
 * The fused analysis sweep: one pass over `cols` feeding every non-null
 * structure. The d-hierarchy, i-hierarchy, and branch predictor are
 * independent state machines, and each sees exactly the subsequence (in
 * exactly the order) the legacy per-side loops fed it, so the results
 * are bitwise-identical to three separate passes.
 *
 * Null outputs with a non-null structure = warmup (train, don't record).
 */
void
fusedSweep(const TraceColumns &cols, DataHierarchy *dh, InstHierarchy *ih,
           uint64_t &last_i_line, BranchPredictor *bp, DSideAnalysis *d,
           ISideAnalysis *i, BranchAnalysis *b)
{
    const size_t n = cols.size();
    if (d) {
        d->execLat.resize(n);
        d->loadLevel.assign(n, CacheLevel::L1);
    }
    if (i) {
        i->newLine.assign(n, 0);
        i->lineLat.assign(n, kL1iHitLat);
    }
    if (b)
        b->mispredict.assign(n, 0);

    for (size_t k = 0; k < n; ++k) {
        const InstrType t = cols.type[k];
        if (dh) {
            if (t == InstrType::Load) {
                const CacheLevel level =
                    dh->access(cols.pc[k], cols.memAddr[k], false);
                if (d) {
                    d->loadLevel[k] = level;
                    d->execLat[k] = loadLatency(level);
                }
            } else {
                if (t == InstrType::Store)
                    dh->access(cols.pc[k], cols.memAddr[k], true);
                if (d)
                    d->execLat[k] = fixedLatency(t);
            }
        }
        if (ih) {
            const uint64_t line = cols.instLine[k];
            if (line != last_i_line) {
                const CacheLevel level = ih->access(line);
                if (i) {
                    i->newLine[k] = 1;
                    i->lineLat[k] = level == CacheLevel::L1
                        ? kL1iHitLat : loadLatency(level);
                }
                last_i_line = line;
            }
        }
        if (bp && t == InstrType::Branch) {
            const BranchKind kind = cols.branchKind[k];
            const uint8_t miss = predictorStep(*bp, cols.pc[k], kind,
                                               cols.taken[k] != 0,
                                               cols.targetId[k]);
            if (b) {
                b->mispredict[k] = miss;
                if (kind != BranchKind::DirectUncond) {
                    ++b->numBranches;
                    b->numMispredicts += miss;
                }
            }
        }
    }
    if (d && dh)
        d->stats = dh->stats();
    if (i && ih)
        i->stats = ih->stats();
}

} // anonymous namespace

RegionAnalysis::RegionAnalysis(const RegionSpec &spec, uint32_t warmup_chunks)
    : regionSpec(spec)
{
    const ProgramModel &model = programModel(spec.programId);
    GenScratch scratch;

    if (warmup_chunks > 0 && spec.startChunk < warmup_chunks) {
        // Warmup prefix for a region at the trace head: re-play the
        // region's own first chunks. Those chunks are already covered by
        // the region, so generate the region once and slice the shared
        // prefix instead of generating it twice (dependency indices are
        // chunk-relative, so the slices are bitwise-identical).
        model.generateRegionColumns(spec, region, scratch);
        const uint32_t shared = std::min(warmup_chunks, spec.numChunks);
        warmup.reserve(static_cast<size_t>(warmup_chunks) * kChunkLen);
        warmup.appendSlice(region, 0,
                           static_cast<size_t>(shared) * kChunkLen);
        for (uint32_t c = shared; c < warmup_chunks; ++c) {
            model.generateChunk(spec.traceId, spec.startChunk + c, warmup,
                                static_cast<int64_t>(warmup.size()),
                                scratch);
        }
    } else {
        // Warmup prefix: the chunks immediately preceding the region.
        if (warmup_chunks > 0) {
            RegionSpec warm = spec;
            warm.numChunks = warmup_chunks;
            warm.startChunk = spec.startChunk - warmup_chunks;
            model.generateRegionColumns(warm, warmup, scratch);
        }
        model.generateRegionColumns(spec, region, scratch);
    }

    loadLineIndex = LoadLineIndex::build(region);
    branchSeed = branchSeedFor(spec.programId, spec.traceId,
                               spec.startChunk);
}

RegionAnalysis::RegionAnalysis(const RegionSpec &spec,
                               std::vector<Instruction> instrs)
    : regionSpec(spec), region(TraceColumns::fromInstructions(instrs))
{
    loadLineIndex = LoadLineIndex::build(region);
    branchSeed = branchSeedFor(spec.programId, spec.traceId,
                               spec.startChunk);
    // The caller already materialized the rows; keep them as the shim.
    st->shim.region = std::move(instrs);
    st->shim.regionReady.store(true, std::memory_order_release);
}

RegionAnalysis::RegionAnalysis(const RegionSpec &spec, TraceColumns cols)
    : regionSpec(spec), region(std::move(cols))
{
    loadLineIndex = LoadLineIndex::build(region);
    branchSeed = branchSeedFor(spec.programId, spec.traceId,
                               spec.startChunk);
}

const std::vector<Instruction> &
RegionAnalysis::instrs() const
{
    AosShim &shim = st->shim;
    if (!shim.regionReady.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(shim.mtx);
        if (!shim.regionReady.load(std::memory_order_relaxed)) {
            shim.region = region.toInstructions();
            shim.regionReady.store(true, std::memory_order_release);
        }
    }
    return shim.region;
}

const std::vector<Instruction> &
RegionAnalysis::warmupInstrs() const
{
    AosShim &shim = st->shim;
    if (!shim.warmReady.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(shim.mtx);
        if (!shim.warmReady.load(std::memory_order_relaxed)) {
            shim.warm = warmup.toInstructions();
            shim.warmReady.store(true, std::memory_order_release);
        }
    }
    return shim.warm;
}

const std::vector<Instruction> &
RegionAnalysis::combinedInstrs() const
{
    AosShim &shim = st->shim;
    if (!shim.combinedReady.load(std::memory_order_acquire)) {
        // Materialize the AoS sides first: they take shim.mtx themselves.
        const std::vector<Instruction> &warm = warmupInstrs();
        const std::vector<Instruction> &rows = instrs();
        std::lock_guard<std::mutex> lock(shim.mtx);
        if (!shim.combinedReady.load(std::memory_order_relaxed)) {
            std::vector<Instruction> all;
            all.reserve(warm.size() + rows.size());
            all.insert(all.end(), warm.begin(), warm.end());
            const int32_t offset = static_cast<int32_t>(warm.size());
            for (Instruction instr : rows) {
                for (int d = 0; d < kMaxSrcDeps; ++d) {
                    if (instr.srcDeps[d] >= 0)
                        instr.srcDeps[d] += offset;
                }
                if (instr.memDep >= 0)
                    instr.memDep += offset;
                all.push_back(instr);
            }
            shim.combined = std::move(all);
            shim.combinedReady.store(true, std::memory_order_release);
        }
    }
    return shim.combined;
}

void
RegionAnalysis::rebuildCombinedFlags(const BranchAnalysis &branch_info,
                                     std::vector<uint8_t> &flags) const
{
    const size_t total = combinedInstrs().size();
    flags.assign(total, 0);
    std::copy(branch_info.mispredict.begin(), branch_info.mispredict.end(),
              flags.begin()
                  + static_cast<std::ptrdiff_t>(
                        total - branch_info.mispredict.size()));
}

const std::vector<uint8_t> &
RegionAnalysis::combinedFlags(const BranchConfig &config)
{
    auto &e = st->combinedFlagLayouts.entryFor(config.key());
    if (std::vector<uint8_t> *p = e.ready.load(std::memory_order_acquire))
        return *p;
    // Build the inputs outside this entry's latch: both take their own
    // locks (the branch entry's latch and shim.mtx respectively).
    const BranchAnalysis &branch_info = branches(config);
    combinedInstrs();
    std::lock_guard<std::mutex> lock(e.buildMtx);
    if (std::vector<uint8_t> *p = e.ready.load(std::memory_order_relaxed))
        return *p;
    auto flags = std::make_unique<std::vector<uint8_t>>();
    rebuildCombinedFlags(branch_info, *flags);
    std::vector<uint8_t> *raw = flags.get();
    e.value = std::move(flags);
    e.ready.store(raw, std::memory_order_release);
    return *raw;
}

void
RegionAnalysis::buildFused(const MemoryConfig *mem, DSideAnalysis *d,
                           ISideAnalysis *i, const BranchConfig *br,
                           BranchAnalysis *b) const
{
    std::optional<DataHierarchy> dh;
    std::optional<InstHierarchy> ih;
    std::unique_ptr<BranchPredictor> bp;
    uint64_t last_i_line = ~0ULL;
    if (d)
        dh.emplace(*mem);
    if (i)
        ih.emplace(*mem);
    if (b)
        bp = makePredictor(*br, branchSeed);

    fusedSweep(warmup, dh ? &*dh : nullptr, ih ? &*ih : nullptr,
               last_i_line, bp.get(), nullptr, nullptr, nullptr);
    fusedSweep(region, dh ? &*dh : nullptr, ih ? &*ih : nullptr,
               last_i_line, bp.get(), d, i, b);
}

const DSideAnalysis &
RegionAnalysis::dside(const MemoryConfig &config)
{
    auto &e = st->dsides.entryFor(config.dSideKey());
    if (DSideAnalysis *p = e.ready.load(std::memory_order_acquire))
        return *p;
    std::lock_guard<std::mutex> lock(e.buildMtx);
    if (DSideAnalysis *p = e.ready.load(std::memory_order_relaxed))
        return *p;
    auto analysis = std::make_unique<DSideAnalysis>();
    buildFused(&config, analysis.get(), nullptr, nullptr, nullptr);
    DSideAnalysis *raw = analysis.get();
    e.value = std::move(analysis);
    e.ready.store(raw, std::memory_order_release);
    return *raw;
}

const ISideAnalysis &
RegionAnalysis::iside(const MemoryConfig &config)
{
    auto &e = st->isides.entryFor(config.iSideKey());
    if (ISideAnalysis *p = e.ready.load(std::memory_order_acquire))
        return *p;
    std::lock_guard<std::mutex> lock(e.buildMtx);
    if (ISideAnalysis *p = e.ready.load(std::memory_order_relaxed))
        return *p;
    auto analysis = std::make_unique<ISideAnalysis>();
    buildFused(&config, nullptr, analysis.get(), nullptr, nullptr);
    ISideAnalysis *raw = analysis.get();
    e.value = std::move(analysis);
    e.ready.store(raw, std::memory_order_release);
    return *raw;
}

const BranchAnalysis &
RegionAnalysis::branches(const BranchConfig &config)
{
    auto &e = st->branchAnalyses.entryFor(config.key());
    if (BranchAnalysis *p = e.ready.load(std::memory_order_acquire))
        return *p;
    std::lock_guard<std::mutex> lock(e.buildMtx);
    if (BranchAnalysis *p = e.ready.load(std::memory_order_relaxed))
        return *p;
    auto analysis = std::make_unique<BranchAnalysis>();
    buildFused(nullptr, nullptr, nullptr, &config, analysis.get());
    BranchAnalysis *raw = analysis.get();
    e.value = std::move(analysis);
    e.ready.store(raw, std::memory_order_release);
    return *raw;
}

void
RegionAnalysis::analyzeAll(const MemoryConfig &config,
                           const BranchConfig &branch)
{
    auto &de = st->dsides.entryFor(config.dSideKey());
    auto &ie = st->isides.entryFor(config.iSideKey());
    auto &be = st->branchAnalyses.entryFor(branch.key());
    if (de.ready.load(std::memory_order_acquire)
        && ie.ready.load(std::memory_order_acquire)
        && be.ready.load(std::memory_order_acquire)) {
        return;
    }

    // Lock all three sides at once (deadlock-avoidant) so the missing
    // subset is filled by one sweep while per-side builders of other
    // configurations proceed under their own entries' latches.
    std::scoped_lock lock(de.buildMtx, ie.buildMtx, be.buildMtx);
    const bool want_d = !de.ready.load(std::memory_order_relaxed);
    const bool want_i = !ie.ready.load(std::memory_order_relaxed);
    const bool want_b = !be.ready.load(std::memory_order_relaxed);
    if (!want_d && !want_i && !want_b)
        return;

    auto d = want_d ? std::make_unique<DSideAnalysis>() : nullptr;
    auto i = want_i ? std::make_unique<ISideAnalysis>() : nullptr;
    auto b = want_b ? std::make_unique<BranchAnalysis>() : nullptr;
    buildFused(&config, d.get(), i.get(), &branch, b.get());

    if (want_d) {
        DSideAnalysis *raw = d.get();
        de.value = std::move(d);
        de.ready.store(raw, std::memory_order_release);
    }
    if (want_i) {
        ISideAnalysis *raw = i.get();
        ie.value = std::move(i);
        ie.ready.store(raw, std::memory_order_release);
    }
    if (want_b) {
        BranchAnalysis *raw = b.get();
        be.value = std::move(b);
        be.ready.store(raw, std::memory_order_release);
    }
}

void
RegionAnalysis::adoptDside(const MemoryConfig &config, DSideAnalysis analysis)
{
    auto &e = st->dsides.entryFor(config.dSideKey());
    std::lock_guard<std::mutex> lock(e.buildMtx);
    e.value = std::make_unique<DSideAnalysis>(std::move(analysis));
    e.ready.store(e.value.get(), std::memory_order_release);
}

void
RegionAnalysis::adoptIside(const MemoryConfig &config, ISideAnalysis analysis)
{
    auto &e = st->isides.entryFor(config.iSideKey());
    std::lock_guard<std::mutex> lock(e.buildMtx);
    e.value = std::make_unique<ISideAnalysis>(std::move(analysis));
    e.ready.store(e.value.get(), std::memory_order_release);
}

void
RegionAnalysis::adoptBranches(const BranchConfig &config,
                              BranchAnalysis analysis)
{
    auto &e = st->branchAnalyses.entryFor(config.key());
    std::lock_guard<std::mutex> lock(e.buildMtx);
    e.value = std::make_unique<BranchAnalysis>(std::move(analysis));
    e.ready.store(e.value.get(), std::memory_order_release);

    // A cached simulator flags layout for this key is now stale; rewrite
    // it in place (the vector's identity, and thus any outstanding
    // reference, is preserved).
    auto &fe = st->combinedFlagLayouts.entryFor(config.key());
    std::lock_guard<std::mutex> flock(fe.buildMtx);
    if (fe.ready.load(std::memory_order_relaxed))
        rebuildCombinedFlags(*e.value, *fe.value);
}

AnalyzerCarryState::AnalyzerCarryState(const MemoryConfig &mem,
                                       const BranchConfig &branch,
                                       uint64_t branch_seed)
    : dHier(mem), iHier(mem), predictor(makePredictor(branch, branch_seed))
{
}

void
AnalyzerCarryState::warm(const std::vector<Instruction> &instrs)
{
    // One pass feeding all three structures: each sees exactly the
    // subsequence it would see in RegionAnalysis's per-side warmup loops.
    for (const auto &instr : instrs) {
        if (instr.isMem())
            dHier.access(instr.pc, instr.memAddr, instr.isStore());
        const uint64_t line = instr.instLine();
        if (line != lastILine) {
            iHier.access(line);
            lastILine = line;
        }
    }
    runPredictor(*predictor, instrs, nullptr);
}

void
AnalyzerCarryState::warm(const TraceColumns &instrs)
{
    fusedSweep(instrs, &dHier, &iHier, lastILine, predictor.get(),
               nullptr, nullptr, nullptr);
}

ShardAnalyses
AnalyzerCarryState::analyzeShard(const TraceColumns &shard)
{
    ShardAnalyses out;
    fusedSweep(shard, &dHier, &iHier, lastILine, predictor.get(),
               &out.dside, &out.iside, &out.branches);
    return out;
}

DSideAnalysis
AnalyzerCarryState::analyzeDside(const std::vector<Instruction> &shard)
{
    DSideAnalysis analysis;
    analysis.execLat.resize(shard.size());
    analysis.loadLevel.assign(shard.size(), CacheLevel::L1);

    for (size_t i = 0; i < shard.size(); ++i) {
        const Instruction &instr = shard[i];
        if (instr.isLoad()) {
            const CacheLevel level =
                dHier.access(instr.pc, instr.memAddr, false);
            analysis.loadLevel[i] = level;
            analysis.execLat[i] = loadLatency(level);
        } else {
            if (instr.isStore())
                dHier.access(instr.pc, instr.memAddr, true);
            analysis.execLat[i] = fixedLatency(instr.type);
        }
    }
    analysis.stats = dHier.stats();
    return analysis;
}

ISideAnalysis
AnalyzerCarryState::analyzeIside(const std::vector<Instruction> &shard)
{
    ISideAnalysis analysis;
    analysis.newLine.assign(shard.size(), 0);
    analysis.lineLat.assign(shard.size(), kL1iHitLat);

    for (size_t i = 0; i < shard.size(); ++i) {
        const uint64_t line = shard[i].instLine();
        if (line != lastILine) {
            const CacheLevel level = iHier.access(line);
            analysis.newLine[i] = 1;
            analysis.lineLat[i] = level == CacheLevel::L1
                ? kL1iHitLat : loadLatency(level);
            lastILine = line;
        }
    }
    analysis.stats = iHier.stats();
    return analysis;
}

BranchAnalysis
AnalyzerCarryState::analyzeBranches(const std::vector<Instruction> &shard)
{
    BranchAnalysis analysis;
    runPredictor(*predictor, shard, &analysis.mispredict);
    for (size_t i = 0; i < shard.size(); ++i) {
        if (shard[i].isBranch()
            && shard[i].branchKind != BranchKind::DirectUncond) {
            ++analysis.numBranches;
            analysis.numMispredicts += analysis.mispredict[i];
        }
    }
    return analysis;
}

} // namespace concorde
