#include "analysis/trace_analyzer.hh"

#include "common/rng.hh"
#include "trace/workloads.hh"

namespace concorde
{

uint64_t
branchSeedFor(int program_id, int trace_id, uint64_t start_chunk)
{
    return hashMix(workloadCorpus()[program_id].seed,
                   static_cast<uint64_t>(trace_id) + 1,
                   start_chunk + 0xB4A2C);
}

RegionAnalysis::RegionAnalysis(const RegionSpec &spec, uint32_t warmup_chunks)
    : regionSpec(spec)
{
    const ProgramModel &model = programModel(spec.programId);

    // Warmup prefix: the chunks immediately preceding the region (when the
    // region starts at the trace head, fall back to re-playing its first
    // chunks, which warms structures with representative content).
    RegionSpec warm = spec;
    warm.numChunks = warmup_chunks;
    warm.startChunk = spec.startChunk >= warmup_chunks
        ? spec.startChunk - warmup_chunks : spec.startChunk;
    if (warmup_chunks > 0)
        warmup = model.generateRegion(warm);

    region = model.generateRegion(spec);
    loadLineIndex = LoadLineIndex::build(region);

    branchSeed = branchSeedFor(spec.programId, spec.traceId,
                               spec.startChunk);
}

RegionAnalysis::RegionAnalysis(const RegionSpec &spec,
                               std::vector<Instruction> instrs)
    : regionSpec(spec), region(std::move(instrs))
{
    loadLineIndex = LoadLineIndex::build(region);
    branchSeed = branchSeedFor(spec.programId, spec.traceId,
                               spec.startChunk);
}

const DSideAnalysis &
RegionAnalysis::dside(const MemoryConfig &config)
{
    std::lock_guard<std::mutex> lock(*memoMtx);
    const uint32_t key = config.dSideKey();
    auto it = dsides.find(key);
    if (it != dsides.end())
        return *it->second;

    auto analysis = std::make_unique<DSideAnalysis>();
    analysis->execLat.resize(region.size());
    analysis->loadLevel.assign(region.size(), CacheLevel::L1);

    DataHierarchy hierarchy(config);
    for (const auto &instr : warmup) {
        if (instr.isMem())
            hierarchy.access(instr.pc, instr.memAddr, instr.isStore());
    }
    for (size_t i = 0; i < region.size(); ++i) {
        const Instruction &instr = region[i];
        if (instr.isLoad()) {
            const CacheLevel level =
                hierarchy.access(instr.pc, instr.memAddr, false);
            analysis->loadLevel[i] = level;
            analysis->execLat[i] = loadLatency(level);
        } else {
            if (instr.isStore())
                hierarchy.access(instr.pc, instr.memAddr, true);
            analysis->execLat[i] = fixedLatency(instr.type);
        }
    }
    analysis->stats = hierarchy.stats();

    auto [pos, inserted] = dsides.emplace(key, std::move(analysis));
    return *pos->second;
}

const ISideAnalysis &
RegionAnalysis::iside(const MemoryConfig &config)
{
    std::lock_guard<std::mutex> lock(*memoMtx);
    const uint32_t key = config.iSideKey();
    auto it = isides.find(key);
    if (it != isides.end())
        return *it->second;

    auto analysis = std::make_unique<ISideAnalysis>();
    analysis->newLine.assign(region.size(), 0);
    analysis->lineLat.assign(region.size(), kL1iHitLat);

    InstHierarchy hierarchy(config);
    uint64_t last_line = ~0ULL;
    for (const auto &instr : warmup) {
        const uint64_t line = instr.instLine();
        if (line != last_line) {
            hierarchy.access(line);
            last_line = line;
        }
    }
    for (size_t i = 0; i < region.size(); ++i) {
        const uint64_t line = region[i].instLine();
        if (line != last_line) {
            const CacheLevel level = hierarchy.access(line);
            analysis->newLine[i] = 1;
            analysis->lineLat[i] = level == CacheLevel::L1
                ? kL1iHitLat : loadLatency(level);
            last_line = line;
        }
    }
    analysis->stats = hierarchy.stats();

    auto [pos, inserted] = isides.emplace(key, std::move(analysis));
    return *pos->second;
}

const BranchAnalysis &
RegionAnalysis::branches(const BranchConfig &config)
{
    std::lock_guard<std::mutex> lock(*memoMtx);
    const uint32_t key = config.key();
    auto it = branchAnalyses.find(key);
    if (it != branchAnalyses.end())
        return *it->second;

    auto analysis = std::make_unique<BranchAnalysis>();
    analysis->mispredict =
        computeMispredicts(warmup, region, config, branchSeed);
    for (size_t i = 0; i < region.size(); ++i) {
        if (region[i].isBranch()
            && region[i].branchKind != BranchKind::DirectUncond) {
            ++analysis->numBranches;
            analysis->numMispredicts += analysis->mispredict[i];
        }
    }

    auto [pos, inserted] = branchAnalyses.emplace(key, std::move(analysis));
    return *pos->second;
}

void
RegionAnalysis::adoptDside(const MemoryConfig &config, DSideAnalysis analysis)
{
    std::lock_guard<std::mutex> lock(*memoMtx);
    dsides[config.dSideKey()] =
        std::make_unique<DSideAnalysis>(std::move(analysis));
}

void
RegionAnalysis::adoptIside(const MemoryConfig &config, ISideAnalysis analysis)
{
    std::lock_guard<std::mutex> lock(*memoMtx);
    isides[config.iSideKey()] =
        std::make_unique<ISideAnalysis>(std::move(analysis));
}

void
RegionAnalysis::adoptBranches(const BranchConfig &config,
                              BranchAnalysis analysis)
{
    std::lock_guard<std::mutex> lock(*memoMtx);
    branchAnalyses[config.key()] =
        std::make_unique<BranchAnalysis>(std::move(analysis));
}

AnalyzerCarryState::AnalyzerCarryState(const MemoryConfig &mem,
                                       const BranchConfig &branch,
                                       uint64_t branch_seed)
    : dHier(mem), iHier(mem), predictor(makePredictor(branch, branch_seed))
{
}

void
AnalyzerCarryState::warm(const std::vector<Instruction> &instrs)
{
    // One pass feeding all three structures: each sees exactly the
    // subsequence it would see in RegionAnalysis's per-side warmup loops.
    for (const auto &instr : instrs) {
        if (instr.isMem())
            dHier.access(instr.pc, instr.memAddr, instr.isStore());
        const uint64_t line = instr.instLine();
        if (line != lastILine) {
            iHier.access(line);
            lastILine = line;
        }
    }
    runPredictor(*predictor, instrs, nullptr);
}

DSideAnalysis
AnalyzerCarryState::analyzeDside(const std::vector<Instruction> &shard)
{
    DSideAnalysis analysis;
    analysis.execLat.resize(shard.size());
    analysis.loadLevel.assign(shard.size(), CacheLevel::L1);

    for (size_t i = 0; i < shard.size(); ++i) {
        const Instruction &instr = shard[i];
        if (instr.isLoad()) {
            const CacheLevel level =
                dHier.access(instr.pc, instr.memAddr, false);
            analysis.loadLevel[i] = level;
            analysis.execLat[i] = loadLatency(level);
        } else {
            if (instr.isStore())
                dHier.access(instr.pc, instr.memAddr, true);
            analysis.execLat[i] = fixedLatency(instr.type);
        }
    }
    analysis.stats = dHier.stats();
    return analysis;
}

ISideAnalysis
AnalyzerCarryState::analyzeIside(const std::vector<Instruction> &shard)
{
    ISideAnalysis analysis;
    analysis.newLine.assign(shard.size(), 0);
    analysis.lineLat.assign(shard.size(), kL1iHitLat);

    for (size_t i = 0; i < shard.size(); ++i) {
        const uint64_t line = shard[i].instLine();
        if (line != lastILine) {
            const CacheLevel level = iHier.access(line);
            analysis.newLine[i] = 1;
            analysis.lineLat[i] = level == CacheLevel::L1
                ? kL1iHitLat : loadLatency(level);
            lastILine = line;
        }
    }
    analysis.stats = iHier.stats();
    return analysis;
}

BranchAnalysis
AnalyzerCarryState::analyzeBranches(const std::vector<Instruction> &shard)
{
    BranchAnalysis analysis;
    runPredictor(*predictor, shard, &analysis.mispredict);
    for (size_t i = 0; i < shard.size(); ++i) {
        if (shard[i].isBranch()
            && shard[i].branchKind != BranchKind::DirectUncond) {
            ++analysis.numBranches;
            analysis.numMispredicts += analysis.mispredict[i];
        }
    }
    return analysis;
}

} // namespace concorde
