#include "analysis/analysis_store.hh"

namespace concorde
{

AnalysisStore::AnalysisStore(uint64_t max_resident_instructions)
    : maxResident(max_resident_instructions)
{
}

AnalysisStore &
AnalysisStore::global()
{
    static AnalysisStore store;
    return store;
}

AnalysisStore::Key
AnalysisStore::keyFor(const RegionSpec &spec, uint32_t warmup_chunks)
{
    return {spec.programId, spec.traceId, spec.startChunk, spec.numChunks,
            warmup_chunks};
}

std::shared_ptr<RegionAnalysis>
AnalysisStore::acquire(const RegionSpec &spec, uint32_t warmup_chunks)
{
    const Key key = keyFor(spec, warmup_chunks);

    std::shared_ptr<Entry> entry;
    bool found;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto &slot = entries[key];
        found = slot != nullptr;
        if (!found)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    // Per-key once-init: the first caller analyzes the region while any
    // concurrent callers for the same key block here (not on the store
    // lock, so other keys proceed).
    std::lock_guard<std::mutex> build_lock(entry->buildMtx);
    if (!entry->analysis) {
        entry->analysis =
            std::make_shared<RegionAnalysis>(spec, warmup_chunks);
        entry->weight = entry->analysis->regionSize()
            + entry->analysis->warmupSize();

        std::lock_guard<std::mutex> lock(mtx);
        // clear() may have raced ahead and dropped the slot; only charge
        // and index entries the map still owns.
        auto it = entries.find(key);
        if (it != entries.end() && it->second == entry) {
            resident += entry->weight;
            lru.push_front(key);
            entry->lruIt = lru.begin();
            entry->inLru = true;
            evictLocked();
        }
        ++misses;
        ++built;
        return entry->analysis;
    }

    std::lock_guard<std::mutex> lock(mtx);
    ++hits;
    if (entry->inLru)
        lru.splice(lru.begin(), lru, entry->lruIt);
    return entry->analysis;
}

void
AnalysisStore::evictLocked()
{
    while (resident > maxResident && lru.size() > 1) {
        const Key victim = lru.back();
        lru.pop_back();
        auto it = entries.find(victim);
        if (it != entries.end()) {
            resident -= it->second->weight;
            it->second->inLru = false;
            entries.erase(it);
            ++evictions;
        }
    }
}

AnalysisStoreStats
AnalysisStore::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    AnalysisStoreStats s;
    s.hits = hits;
    s.misses = misses;
    s.built = built;
    s.evictions = evictions;
    s.entries = entries.size();
    s.residentInstructions = resident;
    s.maxResidentInstructions = maxResident;
    return s;
}

void
AnalysisStore::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    for (auto &[key, entry] : entries)
        entry->inLru = false;
    entries.clear();
    lru.clear();
    resident = 0;
}

} // namespace concorde
