/**
 * @file
 * AnalysisStore: the cross-layer cache behind Concorde's amortization
 * claim (paper Section 5.2.3). Per-region trace analysis -- trace
 * generation, warmup replay, and the lazily memoized d-side / i-side /
 * branch analyses -- is done once per (region, warmup) key and then
 * shared, as a shared_ptr<RegionAnalysis> snapshot, by every consumer:
 * dataset generation, the serve layer's per-(model, region) providers,
 * ConcordePredictor's sweep and long-program paths, the Shapley batch
 * evaluator, and (opt-in) the AnalysisPipeline.
 *
 * Guarantees:
 *  - bitwise neutrality: a cached analysis is the same deterministic
 *    object a fresh RegionAnalysis would compute, so features, labels,
 *    and artifacts are byte-identical with or without the store;
 *  - per-key once-init: concurrent acquire() calls for one key block on
 *    a per-entry latch and analyze the region exactly once;
 *  - bounded residency: entries are evicted LRU by resident instruction
 *    count (region + warmup), like the serve layer's PredictionCache.
 *    Eviction only drops the store's reference -- live consumers keep
 *    their snapshot alive through the shared_ptr.
 */

#ifndef CONCORDE_ANALYSIS_ANALYSIS_STORE_HH
#define CONCORDE_ANALYSIS_ANALYSIS_STORE_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "analysis/trace_analyzer.hh"
#include "trace/program_model.hh"

namespace concorde
{

/** Snapshot of store effectiveness counters. */
struct AnalysisStoreStats
{
    uint64_t hits = 0;          ///< acquire() served from memory
    uint64_t misses = 0;        ///< acquire() that had to analyze
    uint64_t built = 0;         ///< analyses constructed (== misses)
    uint64_t evictions = 0;
    size_t entries = 0;
    uint64_t residentInstructions = 0;
    uint64_t maxResidentInstructions = 0;
};

class AnalysisStore
{
  public:
    /**
     * Default residency bound: ~2M instructions. At the corpus'
     * ~24 bytes/instruction plus analysis vectors this keeps the store
     * within a few hundred MB even when every entry accumulates several
     * memoized configurations.
     */
    static constexpr uint64_t kDefaultMaxResidentInstructions = 2u << 20;

    explicit AnalysisStore(uint64_t max_resident_instructions =
                               kDefaultMaxResidentInstructions);

    /**
     * Get (or build) the shared analysis of a region under the given
     * warmup convention. Thread-safe; concurrent calls for the same key
     * build at most one analysis, and the expensive build never holds
     * the store-wide lock.
     */
    std::shared_ptr<RegionAnalysis>
    acquire(const RegionSpec &spec,
            uint32_t warmup_chunks = kDefaultWarmupChunks);

    AnalysisStoreStats stats() const;

    /** Drop every cached entry (live snapshots stay valid). */
    void clear();

    /**
     * The process-wide store every layer shares by default; bounded by
     * kDefaultMaxResidentInstructions.
     */
    static AnalysisStore &global();

  private:
    /**
     * Exact key -- deliberately not a hash, so a collision can never
     * hand a consumer the wrong region's analysis.
     */
    using Key = std::tuple<int, int, uint64_t, uint32_t, uint32_t>;

    struct Entry
    {
        std::mutex buildMtx;            ///< per-key once-init latch
        std::shared_ptr<RegionAnalysis> analysis;   ///< set under buildMtx
        uint64_t weight = 0;            ///< instructions incl. warmup
        bool inLru = false;
        std::list<Key>::iterator lruIt;
    };

    static Key keyFor(const RegionSpec &spec, uint32_t warmup_chunks);

    /** Evict LRU entries until residency fits the bound (store locked). */
    void evictLocked();

    mutable std::mutex mtx;
    const uint64_t maxResident;
    uint64_t resident = 0;
    std::map<Key, std::shared_ptr<Entry>> entries;
    std::list<Key> lru;                 ///< front = most recently used
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t built = 0;
    uint64_t evictions = 0;
};

} // namespace concorde

#endif // CONCORDE_ANALYSIS_ANALYSIS_STORE_HH
