#include "analysis/memory_state_machine.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace concorde
{

namespace
{

/** Shared builder; is_load / line_of abstract the trace layout. */
template <typename IsLoad, typename LineOf>
LoadLineIndex
buildIndex(size_t n, IsLoad is_load, LineOf line_of)
{
    LoadLineIndex index;
    index.lineIdOf.assign(n, -1);

    std::unordered_map<uint64_t, uint32_t> dense;
    dense.reserve(n / 4);
    std::vector<uint32_t> counts;
    for (size_t i = 0; i < n; ++i) {
        if (!is_load(i))
            continue;
        const uint64_t line = line_of(i);
        auto [it, inserted] = dense.try_emplace(
            line, static_cast<uint32_t>(dense.size()));
        if (inserted)
            counts.push_back(0);
        index.lineIdOf[i] = static_cast<int32_t>(it->second);
        ++counts[it->second];
    }
    index.numLines = static_cast<uint32_t>(dense.size());

    index.lineStart.assign(index.numLines + 1, 0);
    for (uint32_t l = 0; l < index.numLines; ++l)
        index.lineStart[l + 1] = index.lineStart[l] + counts[l];
    index.loadList.resize(index.lineStart[index.numLines]);
    std::vector<uint32_t> cursor(index.lineStart.begin(),
                                 index.lineStart.end() - 1);
    for (size_t i = 0; i < n; ++i) {
        const int32_t lid = index.lineIdOf[i];
        if (lid >= 0)
            index.loadList[cursor[lid]++] = static_cast<uint32_t>(i);
    }
    return index;
}

} // anonymous namespace

LoadLineIndex
LoadLineIndex::build(const std::vector<Instruction> &region)
{
    return buildIndex(
        region.size(), [&](size_t i) { return region[i].isLoad(); },
        [&](size_t i) { return region[i].dataLine(); });
}

LoadLineIndex
LoadLineIndex::build(const TraceColumns &region)
{
    return buildIndex(
        region.size(), [&](size_t i) { return region.isLoad(i); },
        [&](size_t i) { return region.dataLine(i); });
}

MemoryStateMachine::MemoryStateMachine(const LoadLineIndex &index_in,
                                       const std::vector<int32_t> &exec_lat)
    : index(index_in), execLat(exec_lat),
      accessCounters(index_in.numLines, 0),
      lastReqCycles(index_in.numLines, 0),
      lastRespCycles(index_in.numLines, 0)
{
}

uint64_t
MemoryStateMachine::respCycle(uint64_t req_cycle, size_t idx, bool is_load)
{
    if (!is_load) {
        // Nothing special for non-load instructions.
        return req_cycle + static_cast<uint64_t>(execLat[idx]);
    }

    const int32_t lid = index.lineIdOf[idx];
    panic_if(lid < 0, "load %zu missing from line index", idx);

    // Request cycles to a line must be non-decreasing; trace-order callers
    // satisfy this by clamping (see file comment).
    const uint64_t req = std::max(req_cycle, lastReqCycles[lid]);
    lastReqCycles[lid] = req;

    // exec_times[cache_line][access_number]: the in-order cache-simulation
    // latency of the line's access_number-th load.
    const uint32_t begin = index.lineStart[lid];
    const uint32_t end = index.lineStart[lid + 1];
    uint32_t access_number = accessCounters[lid];
    if (begin + access_number >= end)
        access_number = end - begin - 1;
    const uint32_t donor = index.loadList[begin + access_number];
    const uint64_t exec_time = static_cast<uint64_t>(execLat[donor]);
    ++accessCounters[lid];

    const uint64_t resp = std::max(req + exec_time, lastRespCycles[lid]);
    lastRespCycles[lid] = resp;
    return resp;
}

void
MemoryStateMachine::reset()
{
    std::fill(accessCounters.begin(), accessCounters.end(), 0);
    std::fill(lastReqCycles.begin(), lastReqCycles.end(), 0);
    std::fill(lastRespCycles.begin(), lastRespCycles.end(), 0);
}

MemoryStateMachine::Snapshot
MemoryStateMachine::snapshot() const
{
    return Snapshot{accessCounters, lastReqCycles, lastRespCycles};
}

void
MemoryStateMachine::restore(const Snapshot &state)
{
    panic_if(state.accessCounters.size() != accessCounters.size(),
             "snapshot over %zu lines restored into a machine over %zu",
             state.accessCounters.size(), accessCounters.size());
    accessCounters = state.accessCounters;
    lastReqCycles = state.lastReqCycles;
    lastRespCycles = state.lastRespCycles;
}

} // namespace concorde
