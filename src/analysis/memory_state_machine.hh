/**
 * @file
 * Algorithm 1 of the paper: a trace-driven state machine for memory that
 * repairs in-order cache-simulation latencies for timing effects between
 * loads to the same cache line.
 *
 * Principle 1: the response cycle for consecutive loads to the same cache
 * line is non-decreasing. Principle 2: access levels follow issue order.
 * Our callers process instructions in trace order (the dynamical system of
 * Eqs. 1-4 only references earlier instructions), so request cycles for a
 * line are clamped to be non-decreasing instead of asserted; see DESIGN.md.
 */

#ifndef CONCORDE_ANALYSIS_MEMORY_STATE_MACHINE_HH
#define CONCORDE_ANALYSIS_MEMORY_STATE_MACHINE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/instruction.hh"

namespace concorde
{

/**
 * Dense per-region index of load instructions grouped by data-cache line.
 * Built once per region; shared by every model run over that region.
 */
struct LoadLineIndex
{
    /** Dense line id per instruction (-1 for non-loads). */
    std::vector<int32_t> lineIdOf;
    /** Number of distinct lines accessed by loads. */
    uint32_t numLines = 0;
    /** CSR: for each dense line id, the load indices in trace order. */
    std::vector<uint32_t> lineStart;
    std::vector<uint32_t> loadList;

    static LoadLineIndex build(const std::vector<Instruction> &region);
};

/**
 * Algorithm 1. One instance per model run; state variables are per-line
 * access counters and last request/response cycles.
 */
class MemoryStateMachine
{
  public:
    /**
     * @param index per-region load/line index
     * @param exec_lat per-instruction execution-latency estimates from
     *        trace analysis (the exec_times state variable, stored
     *        region-wide and consumed per line via access counters)
     */
    MemoryStateMachine(const LoadLineIndex &index,
                       const std::vector<int32_t> &exec_lat);

    /**
     * Response (execution completion) cycle for instruction `idx` whose
     * request is issued at `req_cycle`.
     */
    uint64_t respCycle(uint64_t req_cycle, size_t idx,
                       const Instruction &instr);

    /** Reset all per-line state for a fresh model run. */
    void reset();

    /**
     * Full per-line state at a point in a model run. Splitting a run at
     * any instruction boundary -- snapshot after the prefix, restore
     * into a machine over the same LoadLineIndex, resume on the suffix
     * -- reproduces the unsplit run's response cycles exactly.
     */
    struct Snapshot
    {
        std::vector<uint32_t> accessCounters;
        std::vector<uint64_t> lastReqCycles;
        std::vector<uint64_t> lastRespCycles;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &state);

  private:
    const LoadLineIndex &index;
    const std::vector<int32_t> &execLat;

    std::vector<uint32_t> accessCounters;
    std::vector<uint64_t> lastReqCycles;
    std::vector<uint64_t> lastRespCycles;
};

} // namespace concorde

#endif // CONCORDE_ANALYSIS_MEMORY_STATE_MACHINE_HH
