/**
 * @file
 * Algorithm 1 of the paper: a trace-driven state machine for memory that
 * repairs in-order cache-simulation latencies for timing effects between
 * loads to the same cache line.
 *
 * Principle 1: the response cycle for consecutive loads to the same cache
 * line is non-decreasing. Principle 2: access levels follow issue order.
 * Our callers process instructions in trace order (the dynamical system of
 * Eqs. 1-4 only references earlier instructions), so request cycles for a
 * line are clamped to be non-decreasing instead of asserted; see DESIGN.md.
 */

#ifndef CONCORDE_ANALYSIS_MEMORY_STATE_MACHINE_HH
#define CONCORDE_ANALYSIS_MEMORY_STATE_MACHINE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/instruction.hh"
#include "trace/trace_columns.hh"

namespace concorde
{

/**
 * Dense per-region index of load instructions grouped by data-cache line.
 * Built once per region; shared by every model run over that region.
 */
struct LoadLineIndex
{
    /** Dense line id per instruction (-1 for non-loads). */
    std::vector<int32_t> lineIdOf;
    /** Number of distinct lines accessed by loads. */
    uint32_t numLines = 0;
    /** CSR: for each dense line id, the load indices in trace order. */
    std::vector<uint32_t> lineStart;
    std::vector<uint32_t> loadList;

    static LoadLineIndex build(const std::vector<Instruction> &region);
    static LoadLineIndex build(const TraceColumns &region);
};

/**
 * Algorithm 1. One instance per model run; state variables are per-line
 * access counters and last request/response cycles.
 */
class MemoryStateMachine
{
  public:
    /**
     * @param index per-region load/line index
     * @param exec_lat per-instruction execution-latency estimates from
     *        trace analysis (the exec_times state variable, stored
     *        region-wide and consumed per line via access counters)
     */
    MemoryStateMachine(const LoadLineIndex &index,
                       const std::vector<int32_t> &exec_lat);

    /**
     * Response (execution completion) cycle for instruction `idx` whose
     * request is issued at `req_cycle`. Only the instruction's load-ness
     * matters; the bool overload serves columnar callers.
     */
    uint64_t respCycle(uint64_t req_cycle, size_t idx, bool is_load);

    uint64_t
    respCycle(uint64_t req_cycle, size_t idx, const Instruction &instr)
    {
        return respCycle(req_cycle, idx, instr.isLoad());
    }

    /**
     * Trace-order fast path for the analytical models, which visit every
     * load exactly once in trace order. Under that calling convention the
     * access_number-th load to a line IS instruction idx, so respCycle()'s
     * donor lookup degenerates to exec_lat[idx] and the access counters
     * carry no information; only the per-line request/response clamps
     * remain. Results are bitwise identical to respCycle(). Do not mix
     * the two variants on one instance (this one skips the counters).
     */
    uint64_t
    respCycleInOrder(uint64_t req_cycle, size_t idx, bool is_load)
    {
        if (!is_load)
            return req_cycle + static_cast<uint64_t>(execLat[idx]);
        const int32_t lid = index.lineIdOf[idx];
        const uint64_t req = std::max(req_cycle, lastReqCycles[lid]);
        lastReqCycles[lid] = req;
        const uint64_t resp =
            std::max(req + static_cast<uint64_t>(execLat[idx]),
                     lastRespCycles[lid]);
        lastRespCycles[lid] = resp;
        return resp;
    }

    /** Reset all per-line state for a fresh model run. */
    void reset();

    /**
     * Full per-line state at a point in a model run. Splitting a run at
     * any instruction boundary -- snapshot after the prefix, restore
     * into a machine over the same LoadLineIndex, resume on the suffix
     * -- reproduces the unsplit run's response cycles exactly.
     */
    struct Snapshot
    {
        std::vector<uint32_t> accessCounters;
        std::vector<uint64_t> lastReqCycles;
        std::vector<uint64_t> lastRespCycles;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &state);

  private:
    const LoadLineIndex &index;
    const std::vector<int32_t> &execLat;

    std::vector<uint32_t> accessCounters;
    std::vector<uint64_t> lastReqCycles;
    std::vector<uint64_t> lastRespCycles;
};

} // namespace concorde

#endif // CONCORDE_ANALYSIS_MEMORY_STATE_MACHINE_HH
