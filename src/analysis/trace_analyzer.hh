/**
 * @file
 * Trace analysis (paper Section 3.1): turns a raw region trace into a
 * "Concorde trace" -- per-instruction execution-latency estimates from an
 * in-order data-cache simulation (per memory configuration), I-cache
 * access latencies from an in-order instruction-cache simulation, and
 * branch misprediction flags from branch-predictor simulation.
 *
 * The region is held columnar (TraceColumns); all analyses run as fused
 * sweeps over the columns, and analyzeAll() fills every still-missing
 * side in ONE pass over warmup + region. All analyses are memoized per
 * configuration behind per-key once-init latches, so concurrent
 * consumers of *different* configurations on a shared snapshot build in
 * parallel (instances may be shared through the AnalysisStore);
 * AnalyzerCarryState is inherently sequential and stays single-threaded.
 */

#ifndef CONCORDE_ANALYSIS_TRACE_ANALYZER_HH
#define CONCORDE_ANALYSIS_TRACE_ANALYZER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "analysis/memory_state_machine.hh"
#include "branch/predictor.hh"
#include "memory/hierarchy.hh"
#include "trace/instruction.hh"
#include "trace/program_model.hh"
#include "trace/trace_columns.hh"

namespace concorde
{

/** D-side analysis for one (L1d, L2, prefetch) configuration. */
struct DSideAnalysis
{
    /** Estimated execution latency per instruction (loads vary by level). */
    std::vector<int32_t> execLat;
    /** Cache level serving each load (L1 for non-loads). */
    std::vector<CacheLevel> loadLevel;
    HierarchyStats stats;
};

/** I-side analysis for one (L1i, L2) configuration. */
struct ISideAnalysis
{
    /** True when instruction i touches a new I-cache line. */
    std::vector<uint8_t> newLine;
    /** Line access latency at i (valid where newLine[i]; 1 = L1i hit). */
    std::vector<int32_t> lineLat;
    HierarchyStats stats;
};

/** Branch-prediction analysis for one predictor configuration. */
struct BranchAnalysis
{
    std::vector<uint8_t> mispredict;    ///< per instruction
    uint64_t numBranches = 0;
    uint64_t numMispredicts = 0;

    double
    mispredictRate() const
    {
        return numBranches ? static_cast<double>(numMispredicts)
            / static_cast<double>(numBranches) : 0.0;
    }
};

/** All three per-shard analyses, produced by one fused sweep. */
struct ShardAnalyses
{
    DSideAnalysis dside;
    ISideAnalysis iside;
    BranchAnalysis branches;
};

/** I-side fetch latency of an L1i hit (fetch-pipeline access). */
constexpr int kL1iHitLat = 1;

/**
 * Default warmup prefix, in chunks: the instructions immediately before
 * the region are replayed to warm caches and predictors before any
 * statistics are taken (both in trace analysis and in the reference
 * simulator), so a region's CPI approximates its steady-state CPI.
 */
constexpr uint32_t kDefaultWarmupChunks = 8;

/**
 * Branch-predictor seed convention shared by RegionAnalysis and the
 * stitched pipeline: a pure function of (program, trace, start chunk),
 * so the carried-state pass over a span and the unsplit analysis of the
 * same span draw identical Simple-predictor outcomes.
 */
uint64_t branchSeedFor(int program_id, int trace_id, uint64_t start_chunk);

/**
 * A region plus all of its memoized trace analyses. The paper's offline
 * stage 1; every downstream consumer (analytical models, the reference
 * simulator's branch flags) reads from here.
 *
 * Memoization is per-key latched: one instance may be shared between
 * threads (the AnalysisStore hands out shared_ptr snapshots), concurrent
 * dside()/iside()/branches()/analyzeAll() calls compute each
 * configuration exactly once, and builds of *different* configurations
 * proceed concurrently. Returned references stay valid for the lifetime
 * of the instance (entries are never removed).
 */
class RegionAnalysis
{
  public:
    /**
     * Generate and index a region. `warmup_chunks` extra chunks are
     * generated before the region and used to warm caches and predictors
     * (both trace analysis and the reference simulator use the same
     * warmup convention). When the warmup window overlaps the region
     * (a region at the trace head), the overlapping chunks are generated
     * once and sliced, not generated twice.
     */
    explicit RegionAnalysis(const RegionSpec &spec,
                            uint32_t warmup_chunks = kDefaultWarmupChunks);

    /**
     * Wrap pre-generated region instructions with an empty warmup. Used
     * by the stitched pipeline, which injects carried-state analyses via
     * adopt*(); any analysis computed on demand after this constructor
     * sees no warmup prefix.
     */
    RegionAnalysis(const RegionSpec &spec, std::vector<Instruction> instrs);

    /** Columnar variant of the pre-generated-region constructor. */
    RegionAnalysis(const RegionSpec &spec, TraceColumns cols);

    const RegionSpec &spec() const { return regionSpec; }

    /** Columnar region / warmup traces (the analysis-facing layout). */
    const TraceColumns &regionColumns() const { return region; }
    const TraceColumns &warmupColumns() const { return warmup; }
    size_t regionSize() const { return region.size(); }
    size_t warmupSize() const { return warmup.size(); }

    /**
     * AoS shims for row-oriented consumers (reference simulator, TAO
     * baseline, dataset labeling): materialized lazily from the columns
     * on first call, then cached for the instance lifetime.
     */
    const std::vector<Instruction> &instrs() const;
    const std::vector<Instruction> &warmupInstrs() const;

    /**
     * Warmup + region concatenated with the region's dependency indices
     * rebased by the warmup length -- exactly the combined trace the
     * cycle-level simulator consumes. Materialized once per instance
     * (same latch discipline as instrs()), so labeling N design points
     * of one region rebuilds nothing.
     */
    const std::vector<Instruction> &combinedInstrs() const;

    /**
     * Mispredict flags aligned with combinedInstrs(): zero across the
     * warmup prefix, branches(config).mispredict across the region.
     * Memoized per branch configuration; kept in sync when
     * adoptBranches() replaces the underlying analysis.
     */
    const std::vector<uint8_t> &combinedFlags(const BranchConfig &config);

    const LoadLineIndex &loadIndex() const { return loadLineIndex; }

    /** In-order D-cache simulation (memoized per d-side config). */
    const DSideAnalysis &dside(const MemoryConfig &config);
    /** In-order I-cache simulation (memoized per i-side config). */
    const ISideAnalysis &iside(const MemoryConfig &config);
    /** Branch-predictor simulation (memoized per predictor config). */
    const BranchAnalysis &branches(const BranchConfig &config);

    /**
     * Fused analysis: fill every side of (config, branch) that is not
     * yet memoized with ONE sweep over warmup + region feeding the data
     * hierarchy, the instruction hierarchy, and the branch predictor
     * simultaneously -- bitwise-identical to running the three per-side
     * loops. Sides already memoized (e.g. a sweep config sharing its
     * d-side with a previous config) are not re-analyzed, which is what
     * makes incremental sweep re-analysis cheap.
     */
    void analyzeAll(const MemoryConfig &config, const BranchConfig &branch);

    /**
     * Inject externally computed analyses (e.g. the pipeline's
     * carried-state per-shard results), replacing any memoized entry
     * for the same configuration.
     */
    void adoptDside(const MemoryConfig &config, DSideAnalysis analysis);
    void adoptIside(const MemoryConfig &config, ISideAnalysis analysis);
    void adoptBranches(const BranchConfig &config, BranchAnalysis analysis);

    /** Number of memoized d-side / i-side / branch analyses (for tests). */
    size_t numDsideAnalyses() const { return st->dsides.numReady(); }
    size_t numIsideAnalyses() const { return st->isides.numReady(); }
    size_t numBranchAnalyses() const { return st->branchAnalyses.numReady(); }

  private:
    /**
     * Per-key once-init memo (the AnalysisStore idiom): a brief map lock
     * hands out the per-key entry; the build itself runs under that
     * entry's own latch, so different keys build concurrently and
     * completed entries are read lock-free.
     */
    template <typename T>
    struct SideMemo
    {
        struct Entry
        {
            std::mutex buildMtx;
            std::atomic<T *> ready{nullptr};
            std::unique_ptr<T> value;   ///< set under buildMtx
        };

        Entry &
        entryFor(uint32_t key)
        {
            std::lock_guard<std::mutex> lock(mapMtx);
            auto &slot = entries[key];
            if (!slot)
                slot = std::make_unique<Entry>();
            return *slot;
        }

        size_t
        numReady() const
        {
            std::lock_guard<std::mutex> lock(mapMtx);
            size_t n = 0;
            for (const auto &kv : entries) {
                if (kv.second->ready.load(std::memory_order_acquire))
                    ++n;
            }
            return n;
        }

        mutable std::mutex mapMtx;
        std::map<uint32_t, std::unique_ptr<Entry>> entries;
    };

    /** Lazily materialized AoS mirrors of the columnar traces. */
    struct AosShim
    {
        std::mutex mtx;
        std::atomic<bool> regionReady{false};
        std::atomic<bool> warmReady{false};
        std::atomic<bool> combinedReady{false};
        std::vector<Instruction> region;
        std::vector<Instruction> warm;
        std::vector<Instruction> combined;  ///< warmup + rebased region
    };

    /** Non-movable innards, boxed so the class stays movable. */
    struct State
    {
        SideMemo<DSideAnalysis> dsides;
        SideMemo<ISideAnalysis> isides;
        SideMemo<BranchAnalysis> branchAnalyses;
        /** Simulator flags layout per branch config (combinedFlags). */
        SideMemo<std::vector<uint8_t>> combinedFlagLayouts;
        AosShim shim;
    };

    /** One fused sweep building exactly the requested (null = skip) sides. */
    void buildFused(const MemoryConfig *mem, DSideAnalysis *d,
                    ISideAnalysis *i, const BranchConfig *br,
                    BranchAnalysis *b) const;

    /** Fill `flags` with the combinedInstrs()-aligned mispredict layout. */
    void rebuildCombinedFlags(const BranchAnalysis &branch_info,
                              std::vector<uint8_t> &flags) const;

    RegionSpec regionSpec;
    TraceColumns warmup;
    TraceColumns region;
    LoadLineIndex loadLineIndex;
    uint64_t branchSeed;

    std::unique_ptr<State> st{std::make_unique<State>()};
};

/**
 * Carry-over analyzer state for stitched sharded analysis: one d-side
 * hierarchy, one i-side hierarchy, and one branch predictor whose state
 * flows across shard boundaries. Feeding a trace's shards through one
 * instance in order produces, shard by shard, exactly the
 * per-instruction results of a single unsplit pass over the whole trace
 * (the boundary-stitching invariant locked down by test_pipeline).
 *
 * One instance covers one (memory config, branch config) pair. Not
 * thread-safe, and inherently sequential: shards must be analyzed in
 * trace order.
 */
class AnalyzerCarryState
{
  public:
    AnalyzerCarryState(const MemoryConfig &mem, const BranchConfig &branch,
                       uint64_t branch_seed);

    /** Replay instructions into all structures without recording. */
    void warm(const std::vector<Instruction> &instrs);
    void warm(const TraceColumns &instrs);

    /**
     * Analyze the next shard in trace order: one fused sweep producing
     * all three analyses, bitwise-identical to calling analyzeDside /
     * analyzeIside / analyzeBranches on the same shard.
     */
    ShardAnalyses analyzeShard(const TraceColumns &shard);

    /** Per-side variants (one sweep each; kept for tests). */
    DSideAnalysis analyzeDside(const std::vector<Instruction> &shard);
    ISideAnalysis analyzeIside(const std::vector<Instruction> &shard);
    BranchAnalysis analyzeBranches(const std::vector<Instruction> &shard);

  private:
    DataHierarchy dHier;
    InstHierarchy iHier;
    uint64_t lastILine = ~0ULL;     ///< i-side line dedup, carried
    std::unique_ptr<BranchPredictor> predictor;
};

} // namespace concorde

#endif // CONCORDE_ANALYSIS_TRACE_ANALYZER_HH
