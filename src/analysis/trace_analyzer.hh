/**
 * @file
 * Trace analysis (paper Section 3.1): turns a raw region trace into a
 * "Concorde trace" -- per-instruction execution-latency estimates from an
 * in-order data-cache simulation (per memory configuration), I-cache
 * access latencies from an in-order instruction-cache simulation, and
 * branch misprediction flags from branch-predictor simulation.
 *
 * All analyses are memoized per configuration so feature precompute and
 * the Shapley engine touch each configuration at most once per region.
 * RegionAnalysis memo tables are internally locked (instances may be
 * shared through the AnalysisStore); AnalyzerCarryState is inherently
 * sequential and stays single-threaded.
 */

#ifndef CONCORDE_ANALYSIS_TRACE_ANALYZER_HH
#define CONCORDE_ANALYSIS_TRACE_ANALYZER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "analysis/memory_state_machine.hh"
#include "branch/predictor.hh"
#include "memory/hierarchy.hh"
#include "trace/instruction.hh"
#include "trace/program_model.hh"

namespace concorde
{

/** D-side analysis for one (L1d, L2, prefetch) configuration. */
struct DSideAnalysis
{
    /** Estimated execution latency per instruction (loads vary by level). */
    std::vector<int32_t> execLat;
    /** Cache level serving each load (L1 for non-loads). */
    std::vector<CacheLevel> loadLevel;
    HierarchyStats stats;
};

/** I-side analysis for one (L1i, L2) configuration. */
struct ISideAnalysis
{
    /** True when instruction i touches a new I-cache line. */
    std::vector<uint8_t> newLine;
    /** Line access latency at i (valid where newLine[i]; 1 = L1i hit). */
    std::vector<int32_t> lineLat;
    HierarchyStats stats;
};

/** Branch-prediction analysis for one predictor configuration. */
struct BranchAnalysis
{
    std::vector<uint8_t> mispredict;    ///< per instruction
    uint64_t numBranches = 0;
    uint64_t numMispredicts = 0;

    double
    mispredictRate() const
    {
        return numBranches ? static_cast<double>(numMispredicts)
            / static_cast<double>(numBranches) : 0.0;
    }
};

/** I-side fetch latency of an L1i hit (fetch-pipeline access). */
constexpr int kL1iHitLat = 1;

/**
 * Default warmup prefix, in chunks: the instructions immediately before
 * the region are replayed to warm caches and predictors before any
 * statistics are taken (both in trace analysis and in the reference
 * simulator), so a region's CPI approximates its steady-state CPI.
 */
constexpr uint32_t kDefaultWarmupChunks = 8;

/**
 * Branch-predictor seed convention shared by RegionAnalysis and the
 * stitched pipeline: a pure function of (program, trace, start chunk),
 * so the carried-state pass over a span and the unsplit analysis of the
 * same span draw identical Simple-predictor outcomes.
 */
uint64_t branchSeedFor(int program_id, int trace_id, uint64_t start_chunk);

/**
 * A region plus all of its memoized trace analyses. The paper's offline
 * stage 1; every downstream consumer (analytical models, the reference
 * simulator's branch flags) reads from here.
 *
 * The memo tables are internally locked: one instance may be shared
 * between threads (the AnalysisStore hands out shared_ptr snapshots),
 * and concurrent dside()/iside()/branches() calls compute each
 * configuration exactly once. Returned references stay valid for the
 * lifetime of the instance (entries are never removed).
 */
class RegionAnalysis
{
  public:
    /**
     * Generate and index a region. `warmup_chunks` extra chunks are
     * generated before the region and used to warm caches and predictors
     * (both trace analysis and the reference simulator use the same
     * warmup convention).
     */
    explicit RegionAnalysis(const RegionSpec &spec,
                            uint32_t warmup_chunks = kDefaultWarmupChunks);

    /**
     * Wrap pre-generated region instructions with an empty warmup. Used
     * by the stitched pipeline, which injects carried-state analyses via
     * adopt*(); any analysis computed on demand after this constructor
     * sees no warmup prefix.
     */
    RegionAnalysis(const RegionSpec &spec, std::vector<Instruction> instrs);

    const RegionSpec &spec() const { return regionSpec; }
    const std::vector<Instruction> &instrs() const { return region; }
    const std::vector<Instruction> &warmupInstrs() const { return warmup; }
    const LoadLineIndex &loadIndex() const { return loadLineIndex; }

    /** In-order D-cache simulation (memoized per d-side config). */
    const DSideAnalysis &dside(const MemoryConfig &config);
    /** In-order I-cache simulation (memoized per i-side config). */
    const ISideAnalysis &iside(const MemoryConfig &config);
    /** Branch-predictor simulation (memoized per predictor config). */
    const BranchAnalysis &branches(const BranchConfig &config);

    /**
     * Inject externally computed analyses (e.g. the pipeline's
     * carried-state per-shard results), replacing any memoized entry
     * for the same configuration.
     */
    void adoptDside(const MemoryConfig &config, DSideAnalysis analysis);
    void adoptIside(const MemoryConfig &config, ISideAnalysis analysis);
    void adoptBranches(const BranchConfig &config, BranchAnalysis analysis);

    /** Number of memoized d-side / i-side / branch analyses (for tests). */
    size_t numDsideAnalyses() const { return dsides.size(); }
    size_t numIsideAnalyses() const { return isides.size(); }
    size_t numBranchAnalyses() const { return branchAnalyses.size(); }

  private:
    RegionSpec regionSpec;
    std::vector<Instruction> warmup;
    std::vector<Instruction> region;
    LoadLineIndex loadLineIndex;
    uint64_t branchSeed;

    /**
     * Guards the memo maps below (held in a unique_ptr so the class
     * stays movable; moving while another thread uses the instance is
     * a caller bug, as with any object).
     */
    std::unique_ptr<std::mutex> memoMtx{std::make_unique<std::mutex>()};
    std::map<uint32_t, std::unique_ptr<DSideAnalysis>> dsides;
    std::map<uint32_t, std::unique_ptr<ISideAnalysis>> isides;
    std::map<uint32_t, std::unique_ptr<BranchAnalysis>> branchAnalyses;
};

/**
 * Carry-over analyzer state for stitched sharded analysis: one d-side
 * hierarchy, one i-side hierarchy, and one branch predictor whose state
 * flows across shard boundaries. Feeding a trace's shards through one
 * instance in order produces, shard by shard, exactly the
 * per-instruction results of a single unsplit pass over the whole trace
 * (the boundary-stitching invariant locked down by test_pipeline).
 *
 * One instance covers one (memory config, branch config) pair. Not
 * thread-safe, and inherently sequential: shards must be analyzed in
 * trace order.
 */
class AnalyzerCarryState
{
  public:
    AnalyzerCarryState(const MemoryConfig &mem, const BranchConfig &branch,
                       uint64_t branch_seed);

    /** Replay instructions into all structures without recording. */
    void warm(const std::vector<Instruction> &instrs);

    /** Analyze the next shard in trace order. */
    DSideAnalysis analyzeDside(const std::vector<Instruction> &shard);
    ISideAnalysis analyzeIside(const std::vector<Instruction> &shard);
    BranchAnalysis analyzeBranches(const std::vector<Instruction> &shard);

  private:
    DataHierarchy dHier;
    InstHierarchy iHier;
    uint64_t lastILine = ~0ULL;     ///< i-side line dedup, carried
    std::unique_ptr<BranchPredictor> predictor;
};

} // namespace concorde

#endif // CONCORDE_ANALYSIS_TRACE_ANALYZER_HH
