/**
 * @file
 * AnalysisPipeline: the end-to-end trace -> features -> prediction path
 * (Figure 3 run at program scale). A trace span is sharded into regions;
 * each shard goes through trace analysis (TraceAnalyzer + the memory
 * state machine) and analytical feature encoding (FeatureProvider), and
 * every region's CPI is evaluated in one batched MLP pass
 * (ConcordePredictor::predictCpiFromFeatures).
 *
 * Two execution modes and two state conventions:
 *
 *   ExecMode::Scalar    one region at a time, scalar MLP forward -- the
 *                       pre-pipeline region loop (baseline and golden
 *                       reference).
 *   ExecMode::Sharded   per-shard featurization fanned out on a
 *                       ThreadPool (shard-local FeatureProviders; see
 *                       the provider's thread-safety contract), one
 *                       batched GEMM for all regions.
 *
 *   StateMode::Independent   every region replays its own warmup prefix
 *                       (the RegionAnalysis convention; matches the
 *                       serve layer's per-region providers bitwise).
 *   StateMode::Carry    cache and branch-predictor state is stitched
 *                       across shard boundaries by a sequential
 *                       AnalyzerCarryState pass, so the sharded run
 *                       reproduces one unsplit pass over the span; each
 *                       instruction is analyzed exactly once, instead
 *                       of once per region plus once per overlapping
 *                       warmup replay.
 *
 * For a fixed StateMode, Scalar and Sharded produce bitwise-identical
 * per-region CPIs (gated by bench_pipeline_e2e and the golden corpus).
 */

#ifndef CONCORDE_PIPELINE_ANALYSIS_PIPELINE_HH
#define CONCORDE_PIPELINE_ANALYSIS_PIPELINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/analysis_store.hh"
#include "common/thread_pool.hh"
#include "core/concorde.hh"
#include "core/model_artifact.hh"

namespace concorde
{
namespace pipeline
{

/** How shards execute. */
enum class ExecMode { Scalar, Sharded };

/** How analyzer state crosses shard boundaries. */
enum class StateMode { Independent, Carry };

struct PipelineConfig
{
    uint32_t regionChunks = 8;      ///< shard length, in kChunkLen units
    uint32_t warmupChunks = kDefaultWarmupChunks;
    ExecMode mode = ExecMode::Sharded;
    StateMode state = StateMode::Independent;
    size_t threads = 0;             ///< feature workers (0 = hardware)
    size_t mlpThreads = 1;          ///< threads of the batched MLP pass
    bool keepFeatures = false;      ///< retain the feature matrix

    /**
     * Optional shared analysis cache for Independent-state runs:
     * region analyses are acquired from (and left in) the store, so
     * repeated runs over overlapping spans -- and any other layer that
     * touches the same regions -- skip trace analysis entirely. Results
     * are bitwise identical with or without it. Deliberately opt-in
     * (nullptr = analyze per run): the pipeline perf gates measure the
     * cold path, and Carry-state analyses are span-position-dependent
     * and never cached.
     */
    AnalysisStore *analysisStore = nullptr;
};

struct PipelineResult
{
    std::vector<RegionSpec> regions;
    std::vector<double> regionCpi;  ///< one per region, region order
    double programCpi = 0.0;        ///< instruction-weighted aggregate
    uint64_t instructions = 0;

    /** keepFeatures: row-major regions.size() x featureDim matrix. */
    std::vector<float> features;
    size_t featureDim = 0;

    double analyzeSeconds = 0.0;    ///< sequential stitch pass (Carry)
    double featureSeconds = 0.0;    ///< per-shard featurization
    double inferSeconds = 0.0;      ///< MLP pass
    double totalSeconds = 0.0;
};

/**
 * Instruction-weighted whole-program CPI over per-region CPIs, summed in
 * region order (all execution modes share this exact reduction).
 */
double aggregateCpi(const std::vector<RegionSpec> &regions,
                    const std::vector<double> &region_cpi,
                    uint64_t *instructions_out = nullptr);

class AnalysisPipeline
{
  public:
    /** The predictor must outlive the pipeline. */
    explicit AnalysisPipeline(const ConcordePredictor &predictor,
                              PipelineConfig config = PipelineConfig{});

    /**
     * Build from a versioned ModelArtifact: the pipeline owns the
     * predictor it constructs, so the artifact itself need not outlive
     * the pipeline.
     */
    explicit AnalysisPipeline(const ModelArtifact &artifact,
                              PipelineConfig config = PipelineConfig{});

    const PipelineConfig &config() const { return cfg; }

    /** Analyze a span end to end for one design point. */
    PipelineResult run(const TraceSpan &span, const UarchParams &params);

  private:
    /** Shard-local providers for the span, per the configured StateMode. */
    std::vector<std::unique_ptr<FeatureProvider>>
    buildProviders(const TraceSpan &span,
                   const std::vector<RegionSpec> &regions,
                   const UarchParams &params, double &analyze_seconds);

    /** Set by the artifact ctor; declared before `pred` so the reference
     *  can bind to it during construction. */
    std::shared_ptr<const ConcordePredictor> owned;
    const ConcordePredictor &pred;
    const PipelineConfig cfg;
    std::unique_ptr<ThreadPool> pool;   ///< Sharded mode only
};

} // namespace pipeline
} // namespace concorde

#endif // CONCORDE_PIPELINE_ANALYSIS_PIPELINE_HH
