#include "pipeline/analysis_pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stopwatch.hh"
#include "trace/workloads.hh"

namespace concorde
{
namespace pipeline
{

double
aggregateCpi(const std::vector<RegionSpec> &regions,
             const std::vector<double> &region_cpi,
             uint64_t *instructions_out)
{
    panic_if(regions.size() != region_cpi.size(),
             "%zu regions but %zu CPIs", regions.size(), region_cpi.size());
    // CPI aggregates as total cycles / total instructions, i.e. the
    // instruction-weighted mean of region CPIs, summed in region order.
    double cycles = 0.0;
    uint64_t instructions = 0;
    for (size_t i = 0; i < regions.size(); ++i) {
        const uint64_t instrs = regions[i].numInstructions();
        cycles += region_cpi[i] * static_cast<double>(instrs);
        instructions += instrs;
    }
    if (instructions_out)
        *instructions_out = instructions;
    return instructions
        ? cycles / static_cast<double>(instructions) : 0.0;
}

AnalysisPipeline::AnalysisPipeline(const ConcordePredictor &predictor,
                                   PipelineConfig config)
    : pred(predictor), cfg(config)
{
    if (cfg.mode == ExecMode::Sharded)
        pool = std::make_unique<ThreadPool>(cfg.threads);
}

AnalysisPipeline::AnalysisPipeline(const ModelArtifact &artifact,
                                   PipelineConfig config)
    : owned(std::make_shared<const ConcordePredictor>(artifact.predictor())),
      pred(*owned), cfg(config)
{
    if (cfg.mode == ExecMode::Sharded)
        pool = std::make_unique<ThreadPool>(cfg.threads);
}

std::vector<std::unique_ptr<FeatureProvider>>
AnalysisPipeline::buildProviders(const TraceSpan &span,
                                 const std::vector<RegionSpec> &regions,
                                 const UarchParams &params,
                                 double &analyze_seconds)
{
    // The sequential stitch pass: one carried hierarchy/predictor state
    // walks the span in trace order, so every instruction is analyzed
    // exactly once and the per-shard results concatenate to one unsplit
    // pass. The expensive featurization then fans out per shard.
    Stopwatch timer;
    std::vector<std::unique_ptr<FeatureProvider>> providers(regions.size());
    const ProgramModel &model = programModel(span.programId);

    AnalyzerCarryState carry(
        params.memory, params.branch,
        branchSeedFor(span.programId, span.traceId, span.startChunk));
    GenScratch gen_scratch;
    TraceColumns cols;
    if (cfg.warmupChunks > 0) {
        // Same warmup rule as RegionAnalysis, applied to the whole span:
        // the chunks immediately preceding it (falling back to replaying
        // its head when the span starts at the trace head).
        RegionSpec warm;
        warm.programId = span.programId;
        warm.traceId = span.traceId;
        warm.numChunks = cfg.warmupChunks;
        warm.startChunk = span.startChunk >= cfg.warmupChunks
            ? span.startChunk - cfg.warmupChunks : span.startChunk;
        model.generateRegionColumns(warm, cols, gen_scratch);
        carry.warm(cols);
    }

    for (size_t i = 0; i < regions.size(); ++i) {
        model.generateRegionColumns(regions[i], cols, gen_scratch);
        ShardAnalyses shard = carry.analyzeShard(cols);

        RegionAnalysis analysis(regions[i], std::move(cols));
        cols = TraceColumns{};
        analysis.adoptDside(params.memory, std::move(shard.dside));
        analysis.adoptIside(params.memory, std::move(shard.iside));
        analysis.adoptBranches(params.branch, std::move(shard.branches));
        providers[i] = std::make_unique<FeatureProvider>(
            std::move(analysis), pred.featureConfig());
    }
    analyze_seconds = timer.seconds();
    return providers;
}

PipelineResult
AnalysisPipeline::run(const TraceSpan &span, const UarchParams &params)
{
    Stopwatch total;
    PipelineResult res;
    res.regions = shardSpan(span, cfg.regionChunks);
    res.featureDim = pred.layout().dim();
    const size_t n = res.regions.size();
    if (n == 0) {
        res.totalSeconds = total.seconds();
        return res;
    }

    std::vector<std::unique_ptr<FeatureProvider>> providers(n);
    if (cfg.state == StateMode::Carry) {
        providers = buildProviders(span, res.regions, params,
                                   res.analyzeSeconds);
    }

    // Featurize every shard into one row-major matrix. Independent-state
    // providers are built inside the task, so their trace analysis (and
    // warmup replay) fans out with the featurization.
    Stopwatch feature_timer;
    std::vector<float> rows(n * res.featureDim, 0.0f);
    auto featurize = [&](size_t i) {
        if (!providers[i]) {
            // Independent-state analyses are the store's convention;
            // share them when a store is configured.
            providers[i] = cfg.analysisStore
                ? std::make_unique<FeatureProvider>(
                      cfg.analysisStore->acquire(res.regions[i],
                                                 cfg.warmupChunks),
                      pred.featureConfig())
                : std::make_unique<FeatureProvider>(
                      res.regions[i], pred.featureConfig(),
                      cfg.warmupChunks);
        }
        std::vector<float> row;
        row.reserve(res.featureDim);
        providers[i]->assemble(params, row);
        panic_if(row.size() != res.featureDim,
                 "assembled %zu features, layout dim %zu", row.size(),
                 res.featureDim);
        std::copy(row.begin(), row.end(),
                  rows.begin() + i * res.featureDim);
    };

    if (cfg.mode == ExecMode::Scalar) {
        for (size_t i = 0; i < n; ++i)
            featurize(i);
        res.featureSeconds = feature_timer.seconds();

        // The pre-pipeline region loop: one scalar MLP forward per
        // region (exactly what predictCpi runs on an assembled row).
        Stopwatch infer_timer;
        res.regionCpi.resize(n);
        for (size_t i = 0; i < n; ++i) {
            res.regionCpi[i] =
                pred.model().predict(&rows[i * res.featureDim]);
        }
        res.inferSeconds = infer_timer.seconds();
    } else {
        std::vector<std::future<void>> futures;
        futures.reserve(n);
        for (size_t i = 0; i < n; ++i)
            futures.push_back(pool->submit([&featurize, i] {
                featurize(i);
            }));
        for (auto &future : futures)
            future.get();
        res.featureSeconds = feature_timer.seconds();

        Stopwatch infer_timer;
        res.regionCpi =
            pred.predictCpiFromFeatures(rows, n, cfg.mlpThreads);
        res.inferSeconds = infer_timer.seconds();
    }

    res.programCpi =
        aggregateCpi(res.regions, res.regionCpi, &res.instructions);
    if (cfg.keepFeatures)
        res.features = std::move(rows);
    res.totalSeconds = total.seconds();
    return res;
}

} // namespace pipeline
} // namespace concorde
