#include "uarch/params.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace concorde
{

UarchParams
UarchParams::armN1()
{
    UarchParams p;           // defaults are the N1 column of Table 1
    p.branch.type = BranchConfig::Type::Tage;
    p.memory.l1dKb = 64;
    p.memory.l1iKb = 64;
    p.memory.l2Kb = 1024;
    p.memory.prefetchDegree = 0;
    return p;
}

UarchParams
UarchParams::bigCore()
{
    UarchParams p;
    p.robSize = 1024;
    p.commitWidth = 12;
    p.lqSize = 256;
    p.sqSize = 256;
    p.aluWidth = 8;
    p.fpWidth = 8;
    p.lsWidth = 8;
    p.lsPipes = 8;
    p.loadPipes = 8;
    p.fetchWidth = 12;
    p.decodeWidth = 12;
    p.renameWidth = 12;
    p.fetchBuffers = 8;
    p.maxIcacheFills = 32;
    p.branch.type = BranchConfig::Type::Simple;
    p.branch.simpleMispredictPct = 0;   // perfect branch prediction
    p.memory.l1dKb = 256;
    p.memory.l1iKb = 256;
    p.memory.l2Kb = 4096;
    p.memory.prefetchDegree = 4;
    return p;
}

UarchParams
UarchParams::sampleRandom(Rng &rng)
{
    UarchParams p;
    for (const auto &info : paramTable()) {
        const auto values = sweepValues(info.id, /*quantized=*/false);
        p.set(info.id, values[rng.nextBounded(values.size())]);
    }
    return p;
}

int64_t
UarchParams::get(ParamId id) const
{
    switch (id) {
      case ParamId::RobSize: return robSize;
      case ParamId::CommitWidth: return commitWidth;
      case ParamId::LqSize: return lqSize;
      case ParamId::SqSize: return sqSize;
      case ParamId::AluWidth: return aluWidth;
      case ParamId::FpWidth: return fpWidth;
      case ParamId::LsWidth: return lsWidth;
      case ParamId::LsPipes: return lsPipes;
      case ParamId::LoadPipes: return loadPipes;
      case ParamId::FetchWidth: return fetchWidth;
      case ParamId::DecodeWidth: return decodeWidth;
      case ParamId::RenameWidth: return renameWidth;
      case ParamId::FetchBuffers: return fetchBuffers;
      case ParamId::MaxIcacheFills: return maxIcacheFills;
      case ParamId::BranchPredictor:
        return branch.type == BranchConfig::Type::Tage ? 1 : 0;
      case ParamId::SimpleMispredictPct: return branch.simpleMispredictPct;
      case ParamId::L1dSize: return memory.l1dKb;
      case ParamId::L1iSize: return memory.l1iKb;
      case ParamId::L2Size: return memory.l2Kb;
      case ParamId::PrefetchDegree: return memory.prefetchDegree;
      default: panic("bad ParamId %d", static_cast<int>(id));
    }
}

void
UarchParams::set(ParamId id, int64_t value)
{
    const int v = static_cast<int>(value);
    switch (id) {
      case ParamId::RobSize: robSize = v; break;
      case ParamId::CommitWidth: commitWidth = v; break;
      case ParamId::LqSize: lqSize = v; break;
      case ParamId::SqSize: sqSize = v; break;
      case ParamId::AluWidth: aluWidth = v; break;
      case ParamId::FpWidth: fpWidth = v; break;
      case ParamId::LsWidth: lsWidth = v; break;
      case ParamId::LsPipes: lsPipes = v; break;
      case ParamId::LoadPipes: loadPipes = v; break;
      case ParamId::FetchWidth: fetchWidth = v; break;
      case ParamId::DecodeWidth: decodeWidth = v; break;
      case ParamId::RenameWidth: renameWidth = v; break;
      case ParamId::FetchBuffers: fetchBuffers = v; break;
      case ParamId::MaxIcacheFills: maxIcacheFills = v; break;
      case ParamId::BranchPredictor:
        branch.type = v ? BranchConfig::Type::Tage
                        : BranchConfig::Type::Simple;
        break;
      case ParamId::SimpleMispredictPct:
        branch.simpleMispredictPct = v;
        break;
      case ParamId::L1dSize: memory.l1dKb = static_cast<uint32_t>(v); break;
      case ParamId::L1iSize: memory.l1iKb = static_cast<uint32_t>(v); break;
      case ParamId::L2Size: memory.l2Kb = static_cast<uint32_t>(v); break;
      case ParamId::PrefetchDegree: memory.prefetchDegree = v; break;
      default: panic("bad ParamId %d", static_cast<int>(id));
    }
}

std::string
UarchParams::toString() const
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "rob=%d commit=%d lq=%d sq=%d alu=%d fp=%d ls=%d "
                  "lsp=%d lp=%d fetch=%d decode=%d rename=%d fbuf=%d "
                  "ifills=%d bp=%s(%d%%) l1d=%uk l1i=%uk l2=%uk pf=%d",
                  robSize, commitWidth, lqSize, sqSize, aluWidth, fpWidth,
                  lsWidth, lsPipes, loadPipes, fetchWidth, decodeWidth,
                  renameWidth, fetchBuffers, maxIcacheFills,
                  branch.type == BranchConfig::Type::Tage ? "TAGE"
                                                          : "Simple",
                  branch.simpleMispredictPct, memory.l1dKb, memory.l1iKb,
                  memory.l2Kb, memory.prefetchDegree);
    return buf;
}

uint64_t
UarchParams::hashKey() const
{
    // Simple-predictor mispredict rate only matters when the simple
    // predictor is selected, so normalize it out under TAGE (mirrors
    // BranchConfig::operator==).
    uint64_t h = hashMix(0x636f6e63ULL);
    for (int i = 0; i < kNumParams; ++i) {
        const auto id = static_cast<ParamId>(i);
        int64_t value = get(id);
        if (id == ParamId::SimpleMispredictPct
            && branch.type == BranchConfig::Type::Tage) {
            value = 0;
        }
        h = hashMix(h, static_cast<uint64_t>(i),
                    static_cast<uint64_t>(value));
    }
    return h;
}

void
UarchParams::save(BinaryWriter &out) const
{
    // Field-wise through the generic accessor, in stable ParamId order:
    // the on-disk layout depends only on the parameter table, never on
    // struct padding or nested-struct ABI.
    out.put<uint32_t>(kNumParams);
    for (int i = 0; i < kNumParams; ++i)
        out.put<int64_t>(get(static_cast<ParamId>(i)));
}

UarchParams
UarchParams::load(BinaryReader &in)
{
    const uint32_t count = in.get<uint32_t>();
    fatal_if(count != kNumParams,
             "design point with %u parameters, expected %d", count,
             kNumParams);
    UarchParams params;
    for (int i = 0; i < kNumParams; ++i)
        params.set(static_cast<ParamId>(i), in.get<int64_t>());
    return params;
}

bool
UarchParams::operator==(const UarchParams &o) const
{
    for (int i = 0; i < kNumParams; ++i) {
        const auto id = static_cast<ParamId>(i);
        if (get(id) != o.get(id))
            return false;
    }
    return true;
}

const std::vector<ParamInfo> &
paramTable()
{
    static const std::vector<ParamInfo> table = {
        {ParamId::RobSize, "ROB size", 1, 1024, 1024},
        {ParamId::CommitWidth, "Commit width", 1, 12, 12},
        {ParamId::LqSize, "Load queue size", 1, 256, 256},
        {ParamId::SqSize, "Store queue size", 1, 256, 256},
        {ParamId::AluWidth, "ALU issue width", 1, 8, 8},
        {ParamId::FpWidth, "Floating-point issue width", 1, 8, 8},
        {ParamId::LsWidth, "Load-store issue width", 1, 8, 8},
        {ParamId::LsPipes, "Number of load-store pipes", 1, 8, 8},
        {ParamId::LoadPipes, "Number of load pipes", 0, 8, 9},
        {ParamId::FetchWidth, "Fetch width", 1, 12, 12},
        {ParamId::DecodeWidth, "Decode width", 1, 12, 12},
        {ParamId::RenameWidth, "Rename width", 1, 12, 12},
        {ParamId::FetchBuffers, "Number of fetch buffers", 1, 8, 8},
        {ParamId::MaxIcacheFills, "Maximum I-cache fills", 1, 32, 32},
        {ParamId::BranchPredictor, "Branch predictor", 0, 1, 2},
        {ParamId::SimpleMispredictPct, "Percent misprediction (Simple BP)",
         0, 100, 101},
        {ParamId::L1dSize, "L1d cache size (kB)", 16, 256, 5},
        {ParamId::L1iSize, "L1i cache size (kB)", 16, 256, 5},
        {ParamId::L2Size, "L2 cache size (kB)", 512, 4096, 4},
        {ParamId::PrefetchDegree, "L1d stride prefetcher degree", 0, 4, 2},
    };
    return table;
}

std::vector<int64_t>
sweepValues(ParamId id, bool quantized)
{
    auto dense = [](int64_t lo, int64_t hi) {
        std::vector<int64_t> v;
        for (int64_t x = lo; x <= hi; ++x)
            v.push_back(x);
        return v;
    };
    auto pow2 = [](int64_t lo, int64_t hi) {
        std::vector<int64_t> v;
        for (int64_t x = lo; x <= hi; x *= 2)
            v.push_back(x);
        return v;
    };

    switch (id) {
      case ParamId::RobSize:
        return quantized ? pow2(1, 1024) : dense(1, 1024);
      case ParamId::LqSize:
      case ParamId::SqSize:
        return quantized ? pow2(1, 256) : dense(1, 256);
      case ParamId::CommitWidth:
      case ParamId::FetchWidth:
      case ParamId::DecodeWidth:
      case ParamId::RenameWidth:
        return dense(1, 12);
      case ParamId::AluWidth:
      case ParamId::FpWidth:
      case ParamId::LsWidth:
      case ParamId::LsPipes:
      case ParamId::FetchBuffers:
        return dense(1, 8);
      case ParamId::LoadPipes:
        return dense(0, 8);
      case ParamId::MaxIcacheFills:
        return quantized ? pow2(1, 32) : dense(1, 32);
      case ParamId::BranchPredictor:
        return {0, 1};
      case ParamId::SimpleMispredictPct:
        if (quantized) {
            std::vector<int64_t> v;
            for (int64_t x = 0; x <= 100; x += 5)
                v.push_back(x);
            return v;
        }
        return dense(0, 100);
      case ParamId::L1dSize:
      case ParamId::L1iSize:
        return {16, 32, 64, 128, 256};
      case ParamId::L2Size:
        return {512, 1024, 2048, 4096};
      case ParamId::PrefetchDegree:
        return {0, 4};
      default:
        panic("bad ParamId %d", static_cast<int>(id));
    }
}

double
designSpaceSize(bool quantized)
{
    double total = 1.0;
    for (const auto &info : paramTable())
        total *= static_cast<double>(sweepValues(info.id, quantized).size());
    return total;
}

void
encodeParams(const UarchParams &params, std::vector<float> &out)
{
    auto log_norm = [](int64_t v, int64_t max_v) {
        return static_cast<float>(std::log2(static_cast<double>(v) + 1.0)
                                  / std::log2(static_cast<double>(max_v)
                                              + 1.0));
    };
    auto lin_norm = [](int64_t v, int64_t max_v) {
        return static_cast<float>(static_cast<double>(v)
                                  / static_cast<double>(max_v));
    };

    // 18 scalar parameters (branch type and prefetch state are one-hot).
    out.push_back(log_norm(params.robSize, 1024));
    out.push_back(lin_norm(params.commitWidth, 12));
    out.push_back(log_norm(params.lqSize, 256));
    out.push_back(log_norm(params.sqSize, 256));
    out.push_back(lin_norm(params.aluWidth, 8));
    out.push_back(lin_norm(params.fpWidth, 8));
    out.push_back(lin_norm(params.lsWidth, 8));
    out.push_back(lin_norm(params.lsPipes, 8));
    out.push_back(lin_norm(params.loadPipes, 8));
    out.push_back(lin_norm(params.fetchWidth, 12));
    out.push_back(lin_norm(params.decodeWidth, 12));
    out.push_back(lin_norm(params.renameWidth, 12));
    out.push_back(lin_norm(params.fetchBuffers, 8));
    out.push_back(log_norm(params.maxIcacheFills, 32));
    const bool simple = params.branch.type == BranchConfig::Type::Simple;
    out.push_back(simple
                  ? lin_norm(params.branch.simpleMispredictPct, 100)
                  : 0.0f);
    out.push_back(log_norm(params.memory.l1dKb, 256));
    out.push_back(log_norm(params.memory.l1iKb, 256));
    out.push_back(log_norm(params.memory.l2Kb, 4096));

    // One-hot: branch predictor type.
    out.push_back(simple ? 1.0f : 0.0f);
    out.push_back(simple ? 0.0f : 1.0f);
    // One-hot: prefetcher state.
    const bool pf = params.memory.prefetchDegree > 0;
    out.push_back(pf ? 0.0f : 1.0f);
    out.push_back(pf ? 1.0f : 0.0f);
}

} // namespace concorde
