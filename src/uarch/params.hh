/**
 * @file
 * The 20-parameter microarchitecture design space of Table 1, with the
 * ARM-N1-based core, the "big core" attribution baseline (Section 6),
 * uniform random sampling, sweep grids, and the MLP parameter encoding.
 */

#ifndef CONCORDE_UARCH_PARAMS_HH
#define CONCORDE_UARCH_PARAMS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "branch/predictor.hh"
#include "common/rng.hh"
#include "memory/hierarchy.hh"

namespace concorde
{

/** Identifier for each of the 20 Table-1 parameters. */
enum class ParamId : int
{
    RobSize = 0,
    CommitWidth,
    LqSize,
    SqSize,
    AluWidth,
    FpWidth,
    LsWidth,
    LsPipes,
    LoadPipes,
    FetchWidth,
    DecodeWidth,
    RenameWidth,
    FetchBuffers,
    MaxIcacheFills,
    BranchPredictor,
    SimpleMispredictPct,
    L1dSize,
    L1iSize,
    L2Size,
    PrefetchDegree,
    NumParams,
};

constexpr int kNumParams = static_cast<int>(ParamId::NumParams);

/** One microarchitecture design point (the paper's p-vector). */
struct UarchParams
{
    int robSize = 128;          ///< 1..1024
    int commitWidth = 8;        ///< 1..12
    int lqSize = 12;            ///< 1..256
    int sqSize = 18;            ///< 1..256
    int aluWidth = 3;           ///< 1..8
    int fpWidth = 2;            ///< 1..8
    int lsWidth = 2;            ///< 1..8
    int lsPipes = 2;            ///< 1..8
    int loadPipes = 0;          ///< 0..8
    int fetchWidth = 4;         ///< 1..12
    int decodeWidth = 4;        ///< 1..12
    int renameWidth = 4;        ///< 1..12
    int fetchBuffers = 1;       ///< 1..8
    int maxIcacheFills = 8;     ///< 1..32
    BranchConfig branch;
    MemoryConfig memory;

    /** The ARM N1 design point of Table 1. */
    static UarchParams armN1();

    /**
     * The "big core" attribution baseline (Section 6): every parameter at
     * its maximum, perfect branch prediction (Simple @ 0%), prefetch on.
     */
    static UarchParams bigCore();

    /** Independent uniform draw from every Table-1 range. */
    static UarchParams sampleRandom(Rng &rng);

    /** Generic accessors used by the Shapley engine and encoders. */
    int64_t get(ParamId id) const;
    void set(ParamId id, int64_t value);

    /** Human-readable one-line summary. */
    std::string toString() const;

    /**
     * Stable 64-bit key of the design point (equal params -> equal key);
     * used by the serve layer's prediction cache.
     */
    uint64_t hashKey() const;

    /**
     * Versioned field-wise serialization (no raw struct bytes, so the
     * on-disk layout is independent of padding and ABI).
     */
    void save(BinaryWriter &out) const;
    static UarchParams load(BinaryReader &in);

    bool operator==(const UarchParams &o) const;
};

/** Metadata for one parameter. */
struct ParamInfo
{
    ParamId id;
    const char *name;
    int64_t minValue;
    int64_t maxValue;
    int64_t cardinality;    ///< number of legal values
};

/** Stable table of all 20 parameters. */
const std::vector<ParamInfo> &paramTable();

/**
 * Sweep grid for one parameter. Quantized grids use powers of two for
 * the large ranges (ROB, LQ, SQ), matching Section 5.2.3's quantization.
 */
std::vector<int64_t> sweepValues(ParamId id, bool quantized);

/** Total number of parameter combinations (~2.2e23 full, 1.8e18 quantized). */
double designSpaceSize(bool quantized);

/**
 * Encode a design point for the ML model: 18 scalars normalized to [0, 1]
 * (log-scaled for the size-like parameters) + one-hot(2) branch-predictor
 * type + one-hot(2) prefetcher state = 22 values.
 */
void encodeParams(const UarchParams &params, std::vector<float> &out);

/** Number of values produced by encodeParams. */
constexpr size_t kParamEncodingDim = 22;

} // namespace concorde

#endif // CONCORDE_UARCH_PARAMS_HH
