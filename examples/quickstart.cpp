/**
 * @file
 * Quickstart: predict the CPI of a program region on ARM N1 with
 * Concorde, and compare against the reference cycle-level simulator.
 *
 * Run from the repository root (artifacts are created on first use; the
 * first run trains the model, later runs load it from artifacts/):
 *
 *   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "core/artifacts.hh"
#include "core/concorde.hh"
#include "sim/o3_core.hh"

using namespace concorde;

int
main()
{
    // 1. A trained Concorde predictor (cached under artifacts/).
    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());

    // 2. Pick a program region: 16k instructions of 557.xz_r.
    RegionSpec region;
    region.programId = programIdByCode("S7");
    region.traceId = 0;
    region.startChunk = 40;
    region.numChunks = artifacts::kShortRegionChunks;

    // 3. Precompute the region's performance distributions once...
    FeatureProvider provider(region, artifacts::featureConfig());

    // 4. ...then predict CPI for any design point almost instantly.
    const UarchParams n1 = UarchParams::armN1();
    const double predicted = predictor.predictCpi(provider, n1);

    // 5. Sanity check against the reference cycle-level simulator.
    const double simulated =
        simulateRegion(n1, provider.analysis()).cpi();

    std::printf("program S7 (557.xz_r), region @ chunk %llu\n",
                static_cast<unsigned long long>(region.startChunk));
    std::printf("  design point: %s\n", n1.toString().c_str());
    std::printf("  Concorde predicted CPI:  %.3f\n", predicted);
    std::printf("  cycle-level true CPI:    %.3f\n", simulated);
    std::printf("  relative error:          %.2f%%\n",
                100.0 * std::abs(predicted - simulated) / simulated);

    // Bonus: sweep one parameter for (almost) free.
    std::printf("\nROB-size sweep (one MLP evaluation each):\n");
    UarchParams p = n1;
    for (int rob : {32, 64, 128, 256, 512, 1024}) {
        p.robSize = rob;
        std::printf("  ROB %4d -> predicted CPI %.3f\n", rob,
                    predictor.predictCpi(provider, p));
    }
    return 0;
}
