/**
 * @file
 * Onboarding a new workload (paper Section 5.2.5): when a program is
 * unlike anything in training, Concorde's error rises; adding a modest
 * number of labeled samples from the new program recovers accuracy. This
 * example measures the OOD gap for one program and shows the recovery.
 *
 *   ./build/examples/example_onboarding_new_workload
 */

#include <cstdio>

#include "core/artifacts.hh"
#include "core/dataset.hh"
#include "ml/trainer.hh"

using namespace concorde;

namespace
{

double
meanError(const TrainedModel &model, const Dataset &data)
{
    return model.meanRelativeError(data.features, data.labels, data.dim);
}

} // anonymous namespace

int
main()
{
    const char *code = "O3";    // the paper's hardest OOD case
    const int pid = programIdByCode(code);

    // Training corpus without the new program.
    const Dataset &full_train = artifacts::mainTrain();
    std::vector<size_t> keep;
    for (size_t i = 0; i < full_train.size(); ++i) {
        if (full_train.meta[i].region.programId != pid)
            keep.push_back(i);
    }
    const Dataset loo_train = full_train.subset(keep);

    // Samples of the new program: first 384 for onboarding, rest to
    // evaluate.
    const Dataset pool = artifacts::onboardPool(pid, 512);
    std::vector<size_t> onboard_idx, eval_idx;
    for (size_t i = 0; i < pool.size(); ++i)
        (i < 384 ? onboard_idx : eval_idx).push_back(i);
    const Dataset eval = pool.subset(eval_idx);

    std::printf("onboarding study for %s\n",
                workloadCorpus()[pid].profile.name.c_str());

    const TrainedModel ood =
        artifacts::trainOn(loo_train, std::string("ood_") + code);
    std::printf("  zero samples (OOD):        %.2f%% error\n",
                100 * meanError(ood, eval));

    for (size_t count : {64u, 384u}) {
        Dataset onboarded = loo_train;
        for (size_t i = 0; i < count; ++i) {
            onboarded.features.insert(onboarded.features.end(),
                                      pool.row(i),
                                      pool.row(i) + pool.dim);
            onboarded.labels.push_back(pool.labels[i]);
            onboarded.meta.push_back(pool.meta[i]);
        }
        const TrainedModel model = artifacts::trainOn(
            onboarded,
            std::string("onboard_") + code + "_" + std::to_string(count));
        std::printf("  +%zu new-program samples:  %.2f%% error\n", count,
                    100 * meanError(model, eval));
    }

    const TrainedModel &reference = artifacts::fullModel();
    std::printf("  full-corpus reference:     %.2f%% error\n",
                100 * meanError(reference, eval));
    return 0;
}
