/**
 * @file
 * Fine-grained performance attribution (paper Section 6): why is my
 * program slow on ARM N1? Shapley values attribute the CPI gap between an
 * idealized "big core" and N1 to individual microarchitectural
 * components, fairly and order-independently.
 *
 *   ./build/examples/example_perf_attribution [program-code]
 */

#include <algorithm>
#include <cstdio>

#include "core/artifacts.hh"
#include "core/concorde.hh"
#include "core/shapley.hh"

using namespace concorde;

int
main(int argc, char **argv)
{
    const char *code = argc > 1 ? argv[1] : "S1";
    const int pid = programIdByCode(code);
    if (pid < 0) {
        std::fprintf(stderr, "unknown program '%s' (use P1..P13, C1, C2, "
                     "O1..O4, S1..S10)\n", code);
        return 1;
    }

    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());
    RegionSpec spec{pid, 0, 16, artifacts::kShortRegionChunks};
    FeatureProvider provider(spec, artifacts::featureConfig());
    // Batched evaluator: all Shapley permutation scan points go through
    // one blocked-GEMM inference pass.
    const BatchEval eval = [&](const std::vector<UarchParams> &pts) {
        return predictor.predictCpiBatch(provider, pts);
    };

    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    const auto endpoints = predictor.predictCpiBatch(
        provider, std::vector<UarchParams>{base, target});
    const double base_cpi = endpoints[0];
    const double target_cpi = endpoints[1];

    std::printf("CPI attribution for %s on ARM N1 (vs idealized big "
                "core)\n", workloadCorpus()[pid].profile.name.c_str());
    std::printf("  big-core CPI: %.3f    ARM N1 CPI: %.3f    gap: "
                "%.3f\n\n", base_cpi, target_cpi, target_cpi - base_cpi);

    ShapleyConfig config;
    config.numPermutations = 64;
    const auto &components = attributionComponents();
    const auto phi =
        shapleyAttribution(base, target, components, eval, config);

    std::vector<size_t> order(components.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return phi[a] > phi[b]; });

    std::printf("  %-30s %10s %8s\n", "component", "dCPI", "share");
    for (size_t i : order) {
        if (std::abs(phi[i]) < 0.005)
            continue;
        std::printf("  %-30s %+10.3f %7.1f%%\n",
                    components[i].name.c_str(), phi[i],
                    100.0 * phi[i] / (target_cpi - base_cpi));
    }
    std::printf("\n(Shapley values sum to the total CPI gap; positive "
                "means the component slows N1 down relative to the big "
                "core.)\n");
    return 0;
}
