/**
 * @file
 * Design-space exploration: the use case Concorde exists for. Search a
 * budget-constrained space of thousands of design points for the best
 * geometric-mean CPI over a workload mix -- each evaluation is one MLP
 * call, so the whole sweep takes seconds instead of simulator-days.
 *
 *   ./build/examples/example_design_space_exploration
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/stopwatch.hh"
#include "common/thread_pool.hh"
#include "core/artifacts.hh"
#include "core/concorde.hh"

using namespace concorde;

namespace
{

/** A crude area model: bigger structures cost more "budget units". */
double
areaCost(const UarchParams &p)
{
    return 0.004 * p.robSize + 0.05 * (p.lqSize + p.sqSize)
        + 0.8 * (p.aluWidth + p.fpWidth + p.lsWidth)
        + 0.6 * (p.lsPipes + p.loadPipes)
        + 0.4 * (p.fetchWidth + p.decodeWidth + p.renameWidth)
        + 0.002 * (p.memory.l1dKb + p.memory.l1iKb)
        + 0.0008 * p.memory.l2Kb;
}

} // anonymous namespace

int
main()
{
    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());

    // Workload mix: one region from each of four programs.
    const std::vector<const char *> mix = {"S7", "S1", "P5", "C1"};
    std::vector<std::unique_ptr<FeatureProvider>> providers;
    for (const char *code : mix) {
        RegionSpec spec{programIdByCode(code), 0, 24,
                        artifacts::kShortRegionChunks};
        providers.push_back(std::make_unique<FeatureProvider>(
            spec, artifacts::featureConfig()));
        // Warm the one-time analytical precompute per region.
        std::vector<float> scratch;
        providers.back()->assemble(UarchParams::armN1(), scratch);
    }

    const double budget = areaCost(UarchParams::armN1()) * 1.15;
    std::printf("exploring designs under area budget %.1f "
                "(ARM N1 costs %.1f)\n", budget,
                areaCost(UarchParams::armN1()));

    Stopwatch timer;
    const size_t candidates = 4000;
    Rng rng(0xDE5160);

    struct Best
    {
        double score = 1e30;
        UarchParams params;
    } best;
    // Uniform draws over the full Table-1 space are almost always far
    // bigger than the budget, so rejection-sample until enough feasible
    // candidates are found (sampling is just RNG, the expensive part is
    // the prediction pass below).
    std::vector<UarchParams> feasible;
    size_t attempts = 0;
    const size_t max_attempts = 400 * candidates;
    while (feasible.size() < candidates && attempts < max_attempts) {
        ++attempts;
        const UarchParams params = UarchParams::sampleRandom(rng);
        if (areaCost(params) <= budget)
            feasible.push_back(params);
    }

    // One batched-inference pass per workload: all feasible candidates
    // are assembled into one feature matrix and evaluated through the
    // blocked-GEMM engine.
    std::vector<double> log_sum(feasible.size(), 0.0);
    for (auto &provider : providers) {
        const auto cpis = predictor.predictCpiBatch(*provider, feasible);
        for (size_t i = 0; i < feasible.size(); ++i)
            log_sum[i] += std::log(cpis[i]);
    }
    for (size_t i = 0; i < feasible.size(); ++i) {
        const double geomean = std::exp(log_sum[i] / providers.size());
        if (geomean < best.score) {
            best.score = geomean;
            best.params = feasible[i];
        }
    }

    std::printf("evaluated %zu feasible designs (of %zu sampled) in "
                "%.2fs\n", feasible.size(), attempts, timer.seconds());

    double n1_log = 0.0;
    for (auto &provider : providers) {
        n1_log += std::log(
            predictor.predictCpi(*provider, UarchParams::armN1()));
    }
    std::printf("\nARM N1 geomean CPI:  %.3f\n",
                std::exp(n1_log / providers.size()));
    std::printf("best found geomean:  %.3f\n", best.score);
    std::printf("best design: %s\n", best.params.toString().c_str());
    std::printf("best design area: %.1f\n", areaCost(best.params));
    return 0;
}
