/**
 * @file
 * net_loadgen: multi-client load generator for the serve wire protocol.
 * Point it at a listening server (`concorde_cli serve <pid> listen=PORT`
 * or any NetServer); each client thread opens its own connection and
 * drives pipelined bursts of randomized design points over a region
 * set, split between the interactive and bulk request classes. Reports
 * throughput, end-to-end latency percentiles, and per-status counts.
 *
 * Burst latency semantics: a burst goes out as one write, and each
 * request's latency is measured from burst send to its response frame.
 * --burst 1 therefore measures true single-request round trips;
 * larger bursts measure the pipelined serving rate.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/stopwatch.hh"
#include "serve/net_client.hh"
#include "serve/wire.hh"
#include "uarch/params.hh"

using namespace concorde;
using namespace concorde::serve;

namespace
{

struct Options
{
    std::string host = "127.0.0.1";
    int port = 0;
    std::string model = "default";
    size_t clients = 4;
    size_t requests = 2000;     ///< per client
    size_t burst = 32;
    int program = 0;
    int trace = 0;
    size_t regions = 4;
    uint64_t start = 16;
    uint32_t chunks = 8;
    int bulkPct = 50;           ///< share of requests in the Bulk class
    uint32_t timeoutUs = 0;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: net_loadgen --port P [--host H] [--model NAME]\n"
        "                   [--clients N] [--requests N] [--burst B]\n"
        "                   [--program PID] [--trace T] [--regions R]\n"
        "                   [--start CHUNK] [--chunks C]\n"
        "                   [--bulk-pct PCT] [--timeout-us US]\n");
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        if (i + 1 >= argc)
            return false;
        const char *value = argv[++i];
        if (key == "--host") {
            opt.host = value;
        } else if (key == "--model") {
            opt.model = value;
        } else if (key == "--port") {
            opt.port = std::atoi(value);
        } else if (key == "--clients") {
            opt.clients = std::strtoull(value, nullptr, 10);
        } else if (key == "--requests") {
            opt.requests = std::strtoull(value, nullptr, 10);
        } else if (key == "--burst") {
            opt.burst = std::strtoull(value, nullptr, 10);
        } else if (key == "--program") {
            opt.program = std::atoi(value);
        } else if (key == "--trace") {
            opt.trace = std::atoi(value);
        } else if (key == "--regions") {
            opt.regions = std::strtoull(value, nullptr, 10);
        } else if (key == "--start") {
            opt.start = std::strtoull(value, nullptr, 10);
        } else if (key == "--chunks") {
            opt.chunks = static_cast<uint32_t>(std::atoi(value));
        } else if (key == "--bulk-pct") {
            opt.bulkPct = std::atoi(value);
        } else if (key == "--timeout-us") {
            opt.timeoutUs = static_cast<uint32_t>(std::atoi(value));
        } else {
            return false;
        }
    }
    return opt.port > 0 && opt.clients > 0 && opt.requests > 0 &&
           opt.burst > 0 && opt.regions > 0;
}

struct ClientResult
{
    std::vector<double> latencyUs;
    std::vector<uint64_t> byStatus =
        std::vector<uint64_t>(kNumServeStatuses, 0);
    bool failed = false;
    std::string error;
};

void
runClient(const Options &opt, size_t index,
          const std::vector<RegionSpec> &regions, ClientResult &result)
{
    try {
        NetClient client(opt.host, static_cast<uint16_t>(opt.port));
        Rng rng(9000 + index);
        UarchParams point = UarchParams::armN1();
        result.latencyUs.reserve(opt.requests);
        uint64_t nextId = 1;
        size_t sent = 0;
        std::vector<uint8_t> bytes;
        while (sent < opt.requests) {
            const size_t n = std::min(opt.burst, opt.requests - sent);
            bytes.clear();
            std::unordered_map<uint64_t, bool> expect;
            expect.reserve(n);
            for (size_t i = 0; i < n; ++i) {
                wire::RequestFrame frame;
                frame.requestId = nextId++;
                frame.request.model = opt.model;
                frame.request.region =
                    regions[rng.nextBounded(regions.size())];
                point.set(ParamId::RobSize, 1 + rng.nextBounded(1024));
                point.set(ParamId::CommitWidth, 1 + rng.nextBounded(12));
                point.set(ParamId::LqSize, 1 + rng.nextBounded(256));
                frame.request.params = point;
                frame.request.cls =
                    static_cast<int>(rng.nextBounded(100)) < opt.bulkPct
                        ? RequestClass::Bulk
                        : RequestClass::Interactive;
                frame.request.timeout =
                    std::chrono::microseconds(opt.timeoutUs);
                expect.emplace(frame.requestId, true);
                wire::encodeRequest(frame, bytes);
            }
            Stopwatch burstClock;
            client.sendRaw(bytes.data(), bytes.size());
            wire::ResponseFrame reply;
            for (size_t i = 0; i < n; ++i) {
                if (!client.recvResponse(reply))
                    throw std::runtime_error("server closed connection");
                if (!expect.count(reply.requestId))
                    throw std::runtime_error("unexpected response id");
                expect.erase(reply.requestId);
                result.latencyUs.push_back(burstClock.seconds() * 1e6);
                ++result.byStatus[static_cast<size_t>(
                    reply.response.status)];
            }
            sent += n;
        }
    } catch (const std::exception &e) {
        result.failed = true;
        result.error = e.what();
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return usage();

    std::vector<RegionSpec> regions;
    for (size_t r = 0; r < opt.regions; ++r) {
        RegionSpec spec;
        spec.programId = opt.program;
        spec.traceId = opt.trace;
        spec.startChunk = opt.start + 8 * r;
        spec.numChunks = opt.chunks;
        regions.push_back(spec);
    }

    std::printf("net_loadgen: %zu clients x %zu requests (burst %zu, "
                "%d%% bulk) -> %s:%d\n",
                opt.clients, opt.requests, opt.burst, opt.bulkPct,
                opt.host.c_str(), opt.port);

    std::vector<ClientResult> results(opt.clients);
    Stopwatch wall;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < opt.clients; ++c) {
        threads.emplace_back([&, c]() {
            runClient(opt, c, regions, results[c]);
        });
    }
    for (auto &t : threads)
        t.join();
    const double elapsed = wall.seconds();

    std::vector<double> all;
    std::vector<uint64_t> byStatus(kNumServeStatuses, 0);
    bool failed = false;
    for (size_t c = 0; c < results.size(); ++c) {
        if (results[c].failed) {
            failed = true;
            std::fprintf(stderr, "client %zu failed: %s\n", c,
                         results[c].error.c_str());
            continue;
        }
        all.insert(all.end(), results[c].latencyUs.begin(),
                   results[c].latencyUs.end());
        for (size_t s = 0; s < kNumServeStatuses; ++s)
            byStatus[s] += results[c].byStatus[s];
    }
    if (all.empty()) {
        std::fprintf(stderr, "no responses received\n");
        return 1;
    }

    sortSamples(all);
    std::printf("  %zu responses in %.3fs -> %.0f QPS\n", all.size(),
                elapsed, static_cast<double>(all.size()) / elapsed);
    std::printf("  latency p50 %.0fus  p90 %.0fus  p99 %.0fus  "
                "max %.0fus\n",
                percentile(all, 0.50), percentile(all, 0.90),
                percentile(all, 0.99), all.back());
    std::printf("  status:");
    for (size_t s = 0; s < kNumServeStatuses; ++s) {
        if (byStatus[s]) {
            std::printf(" %s=%llu",
                        serveStatusName(static_cast<ServeStatus>(s)),
                        static_cast<unsigned long long>(byStatus[s]));
        }
    }
    std::printf("\n");
    return failed ? 1 : 0;
}
