#!/bin/sh
# Render the flat BENCH_*.json files our benches write as a Markdown
# table, one row per (bench, key) pair of interest. Used two ways:
#
#   tools/bench_summary.sh BENCH_*.json            # stdout (check.sh)
#   tools/bench_summary.sh BENCH_*.json >> "$GITHUB_STEP_SUMMARY"
#
# The benches write strictly flat one-key-per-line JSON, so a tiny
# sed/awk parse is enough -- no jq/python dependency.
set -eu

[ "$#" -gt 0 ] || { echo "usage: $0 BENCH_*.json" >&2; exit 2; }

echo ""
echo "### Bench results"
echo ""
echo "| bench | metric | value |"
echo "|---|---|---|"
for f in "$@"; do
    [ -f "$f" ] || continue
    bench=$(sed -n 's/^ *"bench": *"\([^"]*\)".*/\1/p' "$f")
    # Every scalar field except the identity ones, in file order.
    sed -n 's/^ *"\([a-z_0-9]*\)": *"\{0,1\}\([^",]*\)"\{0,1\},\{0,1\}$/\1 \2/p' "$f" \
    | while read -r key value; do
        case "$key" in
            bench) continue ;;
        esac
        echo "| $bench | $key | $value |"
    done
    # Derived: how much a primed AnalysisStore buys over the cold
    # stitched path (both keys written by bench_pipeline_e2e).
    cold=$(sed -n 's/^ *"stitched_cold_minstr_s": *\([0-9.]*\).*/\1/p' "$f")
    warmv=$(sed -n 's/^ *"stitched_warm_minstr_s": *\([0-9.]*\).*/\1/p' "$f")
    if [ -n "$cold" ] && [ -n "$warmv" ]; then
        ratio=$(awk -v c="$cold" -v w="$warmv" \
            'BEGIN { if (c > 0) printf "%.2fx", w / c }')
        [ -n "$ratio" ] && echo "| $bench | warm_over_cold | $ratio |"
    fi
done
echo ""
