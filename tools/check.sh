#!/bin/sh
# Offline CI equivalent: mirrors .github/workflows/ci.yml for machines
# without GitHub Actions.
#
#   stage 1  configure (warnings fatal) + build everything + full ctest
#   stage 2  ASan+UBSan build + full ctest        (SKIP_SANITIZE=1 skips)
#   stage 3  bench smoke + perf-regression gates  (SKIP_BENCH=1 skips)
#
# Env knobs: BUILD_TYPE (default Release), JOBS (default nproc).
set -eu

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
BUILD_TYPE="${BUILD_TYPE:-Release}"

echo "== stage 1: build (${BUILD_TYPE}, -Werror) + tests =="
cmake -B build -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE" -DCONCORDE_WERROR=ON
cmake --build build -j "$JOBS"
cmake --build build --target bench -j "$JOBS"
# Golden tests run in their own labeled stage below, not twice.
ctest --test-dir build -LE golden --output-on-failure -j "$JOBS"

echo "== stage 1b: golden corpus (diff only, never regenerated) =="
ctest --test-dir build -L golden --output-on-failure -j "$JOBS"

if [ "${SKIP_SANITIZE:-0}" != "1" ]; then
    echo "== stage 2: ASan+UBSan tests =="
    cmake -B build-asan -S . -DCONCORDE_SANITIZE=address,undefined \
        -DCONCORDE_WERROR=ON
    cmake --build build-asan -j "$JOBS"
    ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
        ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

if [ "${SKIP_BENCH:-0}" != "1" ]; then
    echo "== stage 3: bench smoke + perf gates =="
    # Serve-layer gate: dynamic batching must beat the scalar path with
    # identical predictions, and the socket front end must hold the
    # tail-latency SLO (p99/p50 <= 2.0 on a mixed hot/cold workload at
    # >= 0.9x in-process QPS, bitwise-identical replies). The bench
    # exits nonzero otherwise.
    CONCORDE_SMOKE=1 CONCORDE_BENCH_JSON=BENCH_serve.json \
        ./build/bench/bench_serve_throughput

    # End-to-end pipeline gate: sharded/stitched execution must keep up
    # with (resp. beat) the scalar region loop, bitwise identical.
    CONCORDE_SMOKE=1 CONCORDE_BENCH_JSON=BENCH_pipeline.json \
        ./build/bench/bench_pipeline_e2e

    # Cold-analysis gate: the fused columnar sweep must match the legacy
    # per-side row passes bitwise and never lose to them.
    CONCORDE_BENCH_JSON=BENCH_analysis.json \
        ./build/bench/bench_analysis_cold

    # Ground-truth labeling gate: the scratch-reusing simulator fast
    # path must stay bitwise-identical to the fresh-engine reference on
    # golden + seeded-random regions across randomized design points,
    # and hold >= 1.3x its throughput.
    CONCORDE_BENCH_JSON=BENCH_sim.json \
        ./build/bench/bench_sim_labeler

    # Design-space-sweep gate: predictSweep (shared analysis, one
    # provider, one GEMM) must beat the naive per-config predictCpi
    # loop >= 3x with bitwise-identical CPIs.
    CONCORDE_SMOKE=1 CONCORDE_BENCH_JSON=BENCH_sweep.json \
        ./build/bench/bench_sweep_dse

    # Scale-out gate: N-worker dataset builds and sweep merges must be
    # bitwise-identical to serial runs (including crash-injected workers
    # under the respawn loop), and the supervised build must not regress
    # past half the serial wall-clock. Real scaling is reported only --
    # CI boxes may be single-core.
    CONCORDE_SMOKE=1 CONCORDE_BENCH_JSON=BENCH_scaleout.json \
        ./build/bench/bench_scaleout

    # Model-lifecycle accuracy gate: sharded dataset -> checkpointed
    # training -> versioned artifact -> serve registry; the trained
    # model must beat the untrained stub on held-out data by a wide,
    # timing-free margin.
    rm -rf accuracy-artifacts
    CONCORDE_BENCH_JSON=BENCH_accuracy.json \
        ./build/bench/bench_accuracy

    # Uncertainty-serving gate: conformal coverage >= 1 - alpha - tol on
    # held-out data, v1 (pre-calibration) artifacts load and predict
    # bitwise-identically, the OOD envelope classifies exactly, and
    # simulator-fallback answers + durable feedback labels are bitwise
    # equal to direct simulateRegion. All timing-free.
    rm -rf uncertainty-artifacts
    CONCORDE_SMOKE=1 CONCORDE_BENCH_JSON=BENCH_uncertainty.json \
        ./build/bench/bench_uncertainty

    # Batched-inference smoke at reduced sizes (trains a small model
    # into a scratch artifact dir on first run).
    if [ -x build/bench/bench_fig10_speed ]; then
        env CONCORDE_ARTIFACTS=bench-artifacts \
            CONCORDE_TRAIN_SAMPLES=1200 CONCORDE_TEST_SAMPLES=200 \
            CONCORDE_LONG_TRAIN_SAMPLES=200 CONCORDE_LONG_TEST_SAMPLES=50 \
            CONCORDE_SPEC_SAMPLES=200 CONCORDE_EPOCHS=4 \
            ./build/bench/bench_fig10_speed --benchmark_min_time=0.05s \
            | tee fig10.log
        speedup=$(awk '/batched speedup:/ {print $3}' fig10.log | tr -d 'x')
        echo "batched speedup: ${speedup}"
        awk -v s="$speedup" 'BEGIN { exit !(s >= 1.0) }' || {
            echo "FAIL: batched inference slower than scalar path"
            exit 1
        }
    else
        echo "bench_fig10_speed not built (no google-benchmark); skipping"
    fi

    # Human-readable roll-up of every BENCH_*.json written above (the
    # same summary CI posts to the job page).
    sh tools/bench_summary.sh BENCH_*.json || true
fi

echo "== all checks passed =="
