#!/bin/sh
# Offline CI equivalent: configure, build everything (library, CLI,
# examples, tests, benches), and run the test suites. Mirrors
# .github/workflows/ci.yml for machines without GitHub Actions.
set -eu

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j "$JOBS"
cmake --build build --target bench -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"
