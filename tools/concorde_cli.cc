/**
 * @file
 * Command-line front end for the Concorde library.
 *
 *   concorde_cli predict <program> [param=value ...]
 *   concorde_cli sweep <program> <param> [param=value ...]
 *   concorde_cli attribute <program> [permutations] [param=value ...]
 *   concorde_cli simulate <program> [param=value ...]
 *   concorde_cli serve <program> [--model <artifact>] [clients=4
 *                                 requests=2000 batch=64 deadline_us=200
 *                                 cache=65536 burst=32 regions=4
 *                                 inflight=0 listen=<port>
 *                                 param=value ...]
 *   concorde_cli pipeline <program> [chunks=64 region=8 warmup=8 start=16
 *                                    threads=0 mode=sharded|scalar|service
 *                                    state=carry|independent
 *                                    param=value ...]
 *   concorde_cli dataset out=<dir> [samples=512 shard=128 chunks=8
 *                                   seed=99 threads=0 program=<code>
 *                                   max_shards=0 workers=0 respawns=3]
 *   concorde_cli dataset-worker out=<dir> shards=<i,j,...> [samples=
 *                                   shard= chunks= seed= threads=
 *                                   program=<code>]
 *   concorde_cli sweep-worker <program> <param> part=<w> nparts=<n>
 *                                   out=<file> [model=<artifact>
 *                                   param=value ...]
 *   concorde_cli train data=<dir|file> out=<artifact> [epochs=12 val=0.1
 *                                   batch=256 seed=1234 threads=0
 *                                   checkpoint=<file> max_epochs=0]
 *   concorde_cli eval model=<artifact> data=<dir|file>
 *   concorde_cli list
 *
 * The model lifecycle runs end to end through `dataset`, `train`, and
 * `eval`: `dataset` generates a sharded, resumable dataset directory
 * (kill it and rerun; completed shards are kept and the result is
 * bitwise-identical), `train` fits the MLP with a held-out validation
 * split and per-epoch checkpointing, and writes a versioned
 * ModelArtifact with provenance, and `eval` reports held-out relative
 * CPI error. `serve --model <artifact>` hot-loads such an artifact into
 * the serving registry.
 *
 * Multi-process scale-out: `dataset workers=N` and `sweep <program>
 * <param> workers=N out=<file>` fork N `dataset-worker` /
 * `sweep-worker` children, stride-partition the work across them,
 * respawn crashed workers (bounded by respawns=), and merge results
 * bitwise-identically to a 1-worker run. The worker subcommands are
 * the internal protocol and are usable standalone for external
 * schedulers.
 *
 * Programs are Table-2 codes (P1..P13, C1, C2, O1..O4, S1..S10).
 * Parameters use the short names printed by `list` (e.g. rob=256
 * l1d=128 bp=simple pct=10 pf=4). Unspecified parameters default to
 * ARM N1. Models and datasets are cached under artifacts/ (the first
 * invocation trains them).
 *
 * Unknown subcommands, unknown parameters, and malformed values all
 * exit with status 2 and a usage message, so shell scripts and CI can
 * rely on the exit code.
 */

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analysis_store.hh"
#include "common/process_pool.hh"
#include "common/serialize.hh"
#include "common/stopwatch.hh"
#include "core/artifacts.hh"
#include "core/concorde.hh"
#include "core/model_artifact.hh"
#include "core/shapley.hh"
#include "pipeline/analysis_pipeline.hh"
#include "serve/net_server.hh"
#include "serve/prediction_service.hh"
#include "sim/o3_core.hh"

using namespace concorde;

namespace
{

const std::map<std::string, ParamId> kShortNames = {
    {"rob", ParamId::RobSize},
    {"commit", ParamId::CommitWidth},
    {"lq", ParamId::LqSize},
    {"sq", ParamId::SqSize},
    {"alu", ParamId::AluWidth},
    {"fp", ParamId::FpWidth},
    {"ls", ParamId::LsWidth},
    {"lsp", ParamId::LsPipes},
    {"lp", ParamId::LoadPipes},
    {"fetch", ParamId::FetchWidth},
    {"decode", ParamId::DecodeWidth},
    {"rename", ParamId::RenameWidth},
    {"fbuf", ParamId::FetchBuffers},
    {"ifills", ParamId::MaxIcacheFills},
    {"bp", ParamId::BranchPredictor},
    {"pct", ParamId::SimpleMispredictPct},
    {"l1d", ParamId::L1dSize},
    {"l1i", ParamId::L1iSize},
    {"l2", ParamId::L2Size},
    {"pf", ParamId::PrefetchDegree},
};

int
usage()
{
    std::fprintf(stderr,
        "usage: concorde_cli <command> [args]\n"
        "  predict <program> [param=value ...]\n"
        "  sweep <program> <param> [workers= respawns= out=<file> "
        "model=<artifact>\n"
        "                   param=value ...]\n"
        "  attribute <program> [permutations] [param=value ...]\n"
        "  simulate <program> [param=value ...]\n"
        "  serve <program> [--model <artifact>] [clients= requests= "
        "batch=\n"
        "                   deadline_us= cache= burst= regions= threads= "
        "inflight=\n"
        "                   listen=<port> alpha= max_width= fallback=0|1\n"
        "                   fallback_budget= fallback_reject=0|1 "
        "feedback=<file>\n"
        "                   param=value ...]\n"
        "  pipeline <program> [chunks= region= warmup= start= threads=\n"
        "                      mode=sharded|scalar|service "
        "state=carry|independent param=value ...]\n"
        "  dataset out=<dir> [samples= shard= chunks= seed= threads= "
        "program=<code>\n"
        "                      max_shards= workers= respawns=]\n"
        "  dataset-worker out=<dir> shards=<i,j,...> [samples= shard= "
        "chunks= seed=\n"
        "                      threads= program=<code>]\n"
        "  sweep-worker <program> <param> part= nparts= out=<file> "
        "[model=<artifact>\n"
        "                      param=value ...]\n"
        "  train data=<dir|file> out=<artifact> [epochs= val= batch= "
        "seed= threads=\n"
        "                      checkpoint=<file> max_epochs= "
        "feedback=<file>]\n"
        "  eval model=<artifact> data=<dir|file>\n"
        "  list\n"
        "run with 'list' for programs and parameter names\n");
    return 2;
}

/** Strict double parse: the whole string must be a finite number. */
bool
parseDouble(const std::string &text, double &value)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    value = std::strtod(text.c_str(), &end);
    return end && *end == '\0' && errno != ERANGE
        && std::isfinite(value);
}

/** Strict integer parse: the whole string must be an in-range number. */
bool
parseInt(const std::string &text, int64_t &value)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    value = std::strtoll(text.c_str(), &end, 10);
    return end && *end == '\0' && errno != ERANGE;
}

/**
 * Apply one param=value override. Returns false (with a diagnostic) on
 * an unknown parameter or malformed value.
 */
bool
applyOverride(UarchParams &params, const std::string &arg)
{
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
        std::fprintf(stderr, "malformed argument '%s' (expected "
                     "param=value)\n", arg.c_str());
        return false;
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto it = kShortNames.find(key);
    if (it == kShortNames.end()) {
        std::fprintf(stderr, "unknown parameter '%s'\n", key.c_str());
        return false;
    }
    if (it->second == ParamId::BranchPredictor) {
        if (value != "tage" && value != "simple") {
            std::fprintf(stderr, "bad bp value '%s' (tage|simple)\n",
                         value.c_str());
            return false;
        }
        params.set(it->second, value == "tage" ? 1 : 0);
        return true;
    }
    int64_t parsed = 0;
    if (!parseInt(value, parsed)) {
        std::fprintf(stderr, "bad value '%s' for parameter '%s'\n",
                     value.c_str(), key.c_str());
        return false;
    }
    const ParamInfo &info = paramTable()[static_cast<int>(it->second)];
    if (parsed < info.minValue || parsed > info.maxValue) {
        std::fprintf(stderr, "value %lld for '%s' outside [%lld, %lld]\n",
                     static_cast<long long>(parsed), key.c_str(),
                     static_cast<long long>(info.minValue),
                     static_cast<long long>(info.maxValue));
        return false;
    }
    params.set(it->second, parsed);
    return true;
}

RegionSpec
regionFor(int pid)
{
    RegionSpec spec;
    spec.programId = pid;
    spec.traceId = 0;
    spec.startChunk = 16;
    spec.numChunks = artifacts::kShortRegionChunks;
    return spec;
}

/**
 * Split args into serve-layer options (consumed into `options`,
 * `double_options`, `string_options`) and uarch overrides (applied to
 * `params`). `--model <path>` / `model=<path>` is consumed into
 * `model_path` when given. Returns false on any unknown key or
 * malformed value.
 */
bool
parseServeArgs(int argc, char **argv, int first,
               std::map<std::string, int64_t> &options, UarchParams &params,
               std::string *model_path,
               std::map<std::string, double> *double_options = nullptr,
               std::map<std::string, std::string> *string_options = nullptr)
{
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (model_path && arg == "--model") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--model needs an artifact path\n");
                return false;
            }
            *model_path = argv[++i];
            continue;
        }
        const auto eq = arg.find('=');
        const std::string key =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        if (model_path && key == "model") {
            if (eq == std::string::npos || eq + 1 == arg.size()) {
                std::fprintf(stderr, "bad value for serve option "
                             "'model'\n");
                return false;
            }
            *model_path = arg.substr(eq + 1);
            continue;
        }
        if (options.count(key)) {
            int64_t value = 0;
            if (eq == std::string::npos
                || !parseInt(arg.substr(eq + 1), value) || value < 0) {
                std::fprintf(stderr, "bad value for serve option '%s'\n",
                             key.c_str());
                return false;
            }
            options[key] = value;
            continue;
        }
        if (double_options && double_options->count(key)) {
            double value = 0.0;
            if (eq == std::string::npos
                || !parseDouble(arg.substr(eq + 1), value) || value < 0.0) {
                std::fprintf(stderr, "bad value for serve option '%s'\n",
                             key.c_str());
                return false;
            }
            (*double_options)[key] = value;
            continue;
        }
        if (string_options && string_options->count(key)) {
            if (eq == std::string::npos || eq + 1 == arg.size()) {
                std::fprintf(stderr, "bad value for serve option '%s'\n",
                             key.c_str());
                return false;
            }
            (*string_options)[key] = arg.substr(eq + 1);
            continue;
        }
        if (!applyOverride(params, arg))
            return false;
    }
    return true;
}

std::atomic<bool> g_stopServing{false};

void
onStopSignal(int)
{
    g_stopServing.store(true);
}

int
runServe(int pid, const char *code, int argc, char **argv)
{
    std::map<std::string, int64_t> opt = {
        {"clients", 4},   {"requests", 2000}, {"batch", 64},
        {"deadline_us", 200}, {"cache", 65536}, {"burst", 32},
        {"regions", 4},   {"threads", 0},     {"listen", -1},
        {"inflight", 0},  {"fallback", 0},    {"fallback_budget", 2},
        {"fallback_reject", 0},
    };
    std::map<std::string, double> dopt = {
        {"alpha", 0.1}, {"max_width", 0.0},
    };
    std::map<std::string, std::string> sopt = {
        {"feedback", ""},
    };
    UarchParams base = UarchParams::armN1();
    std::string model_path;
    if (!parseServeArgs(argc, argv, 3, opt, base, &model_path, &dopt,
                        &sopt))
        return usage();
    if (dopt["alpha"] <= 0.0 || dopt["alpha"] >= 1.0) {
        std::fprintf(stderr, "alpha must be in (0, 1)\n");
        return usage();
    }
    const size_t clients = std::max<int64_t>(1, opt["clients"]);
    const size_t requests = std::max<int64_t>(1, opt["requests"]);
    const size_t num_regions = std::max<int64_t>(1, opt["regions"]);
    const size_t burst = std::max<int64_t>(1, opt["burst"]);

    serve::ServeConfig config;
    const size_t maxBatch =
        static_cast<size_t>(std::max<int64_t>(1, opt["batch"]));
    const auto maxAge = std::chrono::microseconds(opt["deadline_us"]);
    // The batch/deadline knobs set the bulk (throughput) class; the
    // interactive class stays on small, young batches so the tail is
    // never gated on filling a bulk-sized batch.
    config.batching.policy(serve::RequestClass::Bulk) = {maxBatch, maxAge};
    config.batching.policy(serve::RequestClass::Interactive) = {
        std::max<size_t>(1, maxBatch / 4),
        std::min(maxAge, std::chrono::microseconds(50))};
    config.batching.maxInFlightPerKey =
        static_cast<size_t>(opt["inflight"]);
    config.cacheCapacity = static_cast<size_t>(opt["cache"]);
    config.poolThreads = opt["threads"] == 0
        ? defaultThreads() : static_cast<size_t>(opt["threads"]);
    config.uncertainty.alpha = dopt["alpha"];
    config.uncertainty.maxRelWidth = dopt["max_width"];
    config.uncertainty.fallbackEnabled = opt["fallback"] != 0;
    config.uncertainty.maxFallbackInFlight =
        static_cast<size_t>(opt["fallback_budget"]);
    config.uncertainty.rejectOnBudget = opt["fallback_reject"] != 0;
    config.uncertainty.feedbackPath = sopt["feedback"];

    serve::PredictionService service(config);
    if (model_path.empty()) {
        service.registry().add(
            "default", ConcordePredictor(artifacts::fullModel(),
                                         artifacts::featureConfig()));
    } else {
        if (!fileExists(model_path)) {
            std::fprintf(stderr, "model artifact '%s' not found\n",
                         model_path.c_str());
            return 1;
        }
        const serve::ModelHandle handle =
            service.loadModel("default", model_path);
        std::printf("loaded artifact %s (trained %llu epochs, held-out "
                    "rel-err %.4f, %s)\n", model_path.c_str(),
                    static_cast<unsigned long long>(
                        handle.provenance->trainedEpochs),
                    handle.provenance->heldOutRelErr,
                    handle.provenance->gitDescribe.c_str());
    }
    if (service.registry().get("default").calibrated()) {
        std::printf("uncertainty: calibrated (alpha=%.3g max_width=%.3g "
                    "fallback=%s budget=%zu reject=%s%s%s)\n",
                    config.uncertainty.alpha,
                    config.uncertainty.maxRelWidth,
                    config.uncertainty.fallbackEnabled ? "on" : "off",
                    config.uncertainty.maxFallbackInFlight,
                    config.uncertainty.rejectOnBudget ? "overloaded"
                                                      : "flag-only",
                    config.uncertainty.feedbackPath.empty()
                        ? "" : " feedback=",
                    config.uncertainty.feedbackPath.c_str());
    } else {
        std::printf("uncertainty: model is uncalibrated -> point-only "
                    "responses (train with val>0 for intervals)\n");
    }

    // Each client sweeps random design points over a handful of regions
    // of the program (warm regions are the serving common case).
    std::vector<RegionSpec> regions;
    for (size_t r = 0; r < num_regions; ++r) {
        RegionSpec spec = regionFor(pid);
        spec.startChunk = 16 + 8 * r;
        regions.push_back(spec);
    }
    std::printf("serving %s: %zu clients x %zu requests, bulk<=%zu/"
                "%lldus, interactive<=%zu/%lldus, cache %zu\n", code,
                clients, requests,
                config.batching.policy(serve::RequestClass::Bulk).maxBatch,
                static_cast<long long>(
                    config.batching.policy(serve::RequestClass::Bulk)
                        .maxAge.count()),
                config.batching.policy(serve::RequestClass::Interactive)
                    .maxBatch,
                static_cast<long long>(
                    config.batching.policy(serve::RequestClass::Interactive)
                        .maxAge.count()),
                config.cacheCapacity);

    // Warm path: build the region analyses and provider state, and
    // pre-answer the base point, so the measured phase (or the first
    // network client) sees steady-state serving.
    (void)service.warmRegions("default", regions, {base});

    if (opt["listen"] >= 0) {
        // Network mode: expose the warmed service over the wire
        // protocol and block until SIGINT/SIGTERM.
        serve::NetServerConfig netCfg;
        netCfg.port = static_cast<uint16_t>(opt["listen"]);
        serve::NetServer server(service, netCfg);
        server.start();
        std::printf("listening on %s:%u (ctrl-c to stop)\n",
                    netCfg.host.c_str(), server.port());
        std::fflush(stdout);
        std::signal(SIGINT, onStopSignal);
        std::signal(SIGTERM, onStopSignal);
        while (!g_stopServing.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        server.stop();
        const serve::NetServerStats net = server.stats();
        const serve::ServeStats sstats = service.stats();
        std::printf("  %llu connections, %llu frames in / %llu out, "
                    "%llu protocol errors (%llu unsupported-version)\n",
                    static_cast<unsigned long long>(
                        net.connectionsAccepted),
                    static_cast<unsigned long long>(net.framesIn),
                    static_cast<unsigned long long>(net.framesOut),
                    static_cast<unsigned long long>(net.protocolErrors),
                    static_cast<unsigned long long>(
                        net.unsupportedVersionFrames));
        std::printf("  service latency p50 %.0fus  p90 %.0fus  "
                    "p99 %.0fus\n", sstats.latency.p50Us,
                    sstats.latency.p90Us, sstats.latency.p99Us);
        std::printf("  routes: fast=%llu fallback_sim=%llu "
                    "flagged_ood=%llu fallback_rejected=%llu "
                    "feedback_appended=%llu\n",
                    static_cast<unsigned long long>(sstats.servedFast),
                    static_cast<unsigned long long>(
                        sstats.servedFallbackSim),
                    static_cast<unsigned long long>(sstats.flaggedOod),
                    static_cast<unsigned long long>(
                        sstats.fallbackRejectedOverload),
                    static_cast<unsigned long long>(
                        sstats.feedbackAppended));
        return 0;
    }

    std::vector<std::vector<double>> latencies(clients);
    Stopwatch wall;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
            Rng rng(1000 + c);
            UarchParams point = base;
            auto &lat = latencies[c];
            size_t sent = 0;
            while (sent < requests) {
                const size_t n = std::min(burst, requests - sent);
                std::vector<std::future<serve::PredictResponse>> futures;
                std::vector<Stopwatch> timers(n);
                for (size_t i = 0; i < n; ++i) {
                    // Randomize a few axes around the base point.
                    point.set(ParamId::RobSize,
                              1 + rng.nextBounded(1024));
                    point.set(ParamId::CommitWidth,
                              1 + rng.nextBounded(12));
                    point.set(ParamId::LqSize, 1 + rng.nextBounded(256));
                    serve::PredictRequest request;
                    request.model = "default";
                    request.region =
                        regions[rng.nextBounded(regions.size())];
                    request.params = point;
                    timers[i] = Stopwatch();
                    futures.push_back(service.submit(std::move(request)));
                }
                for (size_t i = 0; i < n; ++i) {
                    // Non-OK outcomes (e.g. OVERLOADED under a tight
                    // inflight= cap) land in the per-status counters
                    // printed below; the drive loop just keeps going.
                    (void)futures[i].get();
                    lat.push_back(timers[i].seconds() * 1e6);
                }
                sent += n;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const double elapsed = wall.seconds();

    std::vector<double> all;
    for (const auto &lat : latencies)
        all.insert(all.end(), lat.begin(), lat.end());
    std::sort(all.begin(), all.end());
    const auto q = [&](double p) {
        return all.empty()
            ? 0.0 : all[static_cast<size_t>(p * (all.size() - 1))];
    };
    const serve::ServeStats stats = service.stats();

    std::printf("  %zu predictions in %.3fs -> %.0f QPS\n", all.size(),
                elapsed, static_cast<double>(all.size()) / elapsed);
    std::printf("  latency p50 %.0fus  p90 %.0fus  p99 %.0fus\n", q(0.5),
                q(0.9), q(0.99));
    std::printf("  batches %llu (size %llu / deadline %llu / shutdown "
                "%llu flushes)\n",
                static_cast<unsigned long long>(stats.queue.batches),
                static_cast<unsigned long long>(stats.queue.flushOnSize),
                static_cast<unsigned long long>(
                    stats.queue.flushOnDeadline),
                static_cast<unsigned long long>(
                    stats.queue.flushOnShutdown));
    std::printf("  batch-size histogram:");
    for (size_t s = 1; s < stats.queue.batchSizeCounts.size(); ++s) {
        if (stats.queue.batchSizeCounts[s]) {
            std::printf(" %zu:%llu", s, static_cast<unsigned long long>(
                            stats.queue.batchSizeCounts[s]));
        }
    }
    std::printf("\n  cache: %llu hits / %llu misses (%.1f%% hit rate, "
                "%zu entries)\n",
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.misses),
                100.0 * stats.cache.hitRate(), stats.cache.entries);
    std::printf("  service latency p50 %.0fus  p90 %.0fus  p99 %.0fus;"
                " status:", stats.latency.p50Us, stats.latency.p90Us,
                stats.latency.p99Us);
    for (size_t s = 0; s < serve::kNumServeStatuses; ++s) {
        if (stats.byStatus[s]) {
            std::printf(" %s=%llu",
                        serve::serveStatusName(
                            static_cast<serve::ServeStatus>(s)),
                        static_cast<unsigned long long>(
                            stats.byStatus[s]));
        }
    }
    std::printf("\n  routes: fast=%llu fallback_sim=%llu flagged_ood=%llu "
                "fallback_rejected=%llu feedback_appended=%llu\n",
                static_cast<unsigned long long>(stats.servedFast),
                static_cast<unsigned long long>(stats.servedFallbackSim),
                static_cast<unsigned long long>(stats.flaggedOod),
                static_cast<unsigned long long>(
                    stats.fallbackRejectedOverload),
                static_cast<unsigned long long>(stats.feedbackAppended));
    return 0;
}

int
runPipeline(int pid, const char *code, int argc, char **argv)
{
    std::map<std::string, int64_t> opt = {
        {"chunks", 64}, {"region", 8}, {"warmup", 8}, {"start", 16},
        {"threads", 0},
    };
    std::string mode = "sharded";
    std::string state;      // default: carry (independent for service)
    bool warmup_set = false;
    UarchParams params = UarchParams::armN1();
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        if (key == "mode" || key == "state") {
            if (eq == std::string::npos)
                return usage();
            const std::string value = arg.substr(eq + 1);
            if (key == "mode") {
                if (value != "scalar" && value != "sharded"
                    && value != "service") {
                    std::fprintf(stderr, "bad mode '%s' (scalar|sharded|"
                                 "service)\n", value.c_str());
                    return 2;
                }
                mode = value;
            } else {
                if (value != "independent" && value != "carry") {
                    std::fprintf(stderr, "bad state '%s' (independent|"
                                 "carry)\n", value.c_str());
                    return 2;
                }
                state = value;
            }
            continue;
        }
        if (opt.count(key)) {
            int64_t value = 0;
            if (eq == std::string::npos
                || !parseInt(arg.substr(eq + 1), value) || value < 0) {
                std::fprintf(stderr, "bad value for pipeline option "
                             "'%s'\n", key.c_str());
                return 2;
            }
            opt[key] = value;
            if (key == "warmup")
                warmup_set = true;
            continue;
        }
        if (!applyOverride(params, arg))
            return 2;
    }
    if (opt["chunks"] < 1 || opt["region"] < 1) {
        std::fprintf(stderr, "chunks and region must be positive\n");
        return 2;
    }
    // The service endpoint serves independent regions with the default
    // warmup convention; only reject options the user explicitly set.
    if (state.empty())
        state = mode == "service" ? "independent" : "carry";
    if (mode == "service" && state == "carry") {
        std::fprintf(stderr, "the service endpoint serves independent "
                     "regions; use state=independent\n");
        return 2;
    }
    if (mode == "service" && warmup_set
        && opt["warmup"] != kDefaultWarmupChunks) {
        std::fprintf(stderr, "the service endpoint always uses the "
                     "default warmup (%u chunks); warmup= applies to "
                     "scalar/sharded modes\n", kDefaultWarmupChunks);
        return 2;
    }

    TraceSpan span;
    span.programId = pid;
    span.traceId = 0;
    span.startChunk = static_cast<uint64_t>(opt["start"]);
    span.numChunks = static_cast<uint64_t>(opt["chunks"]);

    pipeline::PipelineConfig config;
    config.regionChunks = static_cast<uint32_t>(opt["region"]);
    config.warmupChunks = static_cast<uint32_t>(opt["warmup"]);
    config.mode = mode == "scalar" ? pipeline::ExecMode::Scalar
        : pipeline::ExecMode::Sharded;
    config.state = state == "carry" ? pipeline::StateMode::Carry
        : pipeline::StateMode::Independent;
    config.threads = static_cast<size_t>(opt["threads"]);

    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());
    std::printf("pipeline over %s: %llu chunks (%.1fk instructions), "
                "regions of %lld chunks, mode %s/%s\n", code,
                static_cast<unsigned long long>(span.numChunks),
                static_cast<double>(span.numInstructions()) / 1000.0,
                static_cast<long long>(opt["region"]), mode.c_str(),
                state.c_str());

    // Independent-state runs share region analyses with the rest of the
    // process through the global store (Carry analyses are never cached).
    config.analysisStore = &AnalysisStore::global();

    pipeline::PipelineResult result;
    if (mode == "service") {
        serve::ServeConfig sc;
        sc.poolThreads = config.threads == 0
            ? defaultThreads() : config.threads;
        serve::PredictionService service(sc);
        service.registry().add("default", std::move(predictor));
        result = service.predictSpan("default", span, config.regionChunks,
                                     params);
    } else {
        pipeline::AnalysisPipeline pipe(predictor, config);
        result = pipe.run(span, params);
    }

    std::printf("  program CPI %.4f over %zu regions (%llu "
                "instructions)\n", result.programCpi,
                result.regions.size(),
                static_cast<unsigned long long>(result.instructions));
    double lo = 0.0, hi = 0.0;
    if (!result.regionCpi.empty()) {
        const auto [min_it, max_it] = std::minmax_element(
            result.regionCpi.begin(), result.regionCpi.end());
        lo = *min_it;
        hi = *max_it;
    }
    std::printf("  region CPI min %.4f / max %.4f\n", lo, hi);
    const double rate = static_cast<double>(result.instructions) / 1e6
        / std::max(result.totalSeconds, 1e-9);
    if (mode == "service") {
        // The service path has no per-phase breakdown (work happens
        // inside batched dispatches).
        std::printf("  %.3fs total -> %.2f Minstr/s\n",
                    result.totalSeconds, rate);
    } else {
        std::printf("  %.3fs total (analyze %.3fs, features %.3fs, "
                    "inference %.3fs) -> %.2f Minstr/s\n",
                    result.totalSeconds, result.analyzeSeconds,
                    result.featureSeconds, result.inferSeconds, rate);
    }
    return 0;
}

/**
 * Load a training/eval dataset from either a sharded directory (with a
 * manifest) or a single .bin file. Returns false (with a diagnostic) if
 * neither exists; `manifest_hash_out` identifies the dataset for
 * artifact provenance.
 */
bool
loadDatasetArg(const std::string &path, Dataset &data,
               uint64_t &manifest_hash_out)
{
    if (fileExists(path)) {
        data = Dataset::load(path);
        manifest_hash_out = fileHash(path);
        return true;
    }
    if (fileExists(DatasetManifest::manifestFile(path))) {
        data = loadDatasetShards(path);
        manifest_hash_out = datasetManifestHash(path);
        return true;
    }
    std::fprintf(stderr, "no dataset at '%s' (expected a .bin file or a "
                 "sharded directory with manifest.bin)\n", path.c_str());
    return false;
}

// ---- multi-process scale-out plumbing ----

/**
 * The path workers are exec'd from: the running binary itself, so a
 * supervisor always spawns workers of its own build (argv[0] as the
 * fallback where /proc is unavailable).
 */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/**
 * Deterministic crash injection for the supervisor tests: a
 * dataset-worker with CONCORDE_WORKER_CRASH_AFTER_SHARDS=<n> set dies
 * (exit 42) after publishing n new shards, forcing the respawn path
 * without SIGKILL timing races. 0 = disabled.
 */
size_t
crashAfterShardsEnv()
{
    const char *env = std::getenv("CONCORDE_WORKER_CRASH_AFTER_SHARDS");
    if (!env || !*env)
        return 0;
    int64_t parsed = 0;
    if (!parseInt(env, parsed) || parsed < 1)
        return 0;
    return static_cast<size_t>(parsed);
}

/** Parse a comma-separated shard-index list ("0,3,7"). */
bool
parseShardList(const std::string &text, std::vector<size_t> &shards)
{
    size_t at = 0;
    while (at <= text.size()) {
        const auto comma = text.find(',', at);
        const std::string item = text.substr(
            at, comma == std::string::npos ? std::string::npos : comma - at);
        int64_t parsed = 0;
        if (!parseInt(item, parsed) || parsed < 0)
            return false;
        shards.push_back(static_cast<size_t>(parsed));
        if (comma == std::string::npos)
            break;
        at = comma + 1;
    }
    return !shards.empty();
}

int
runDataset(int argc, char **argv)
{
    std::map<std::string, int64_t> opt = {
        {"samples", 512}, {"shard", 128}, {"chunks", 8}, {"seed", 99},
        {"threads", 0},   {"max_shards", 0}, {"workers", 0},
        {"respawns", 3},
    };
    std::string out_dir;
    std::string program;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq + 1 == arg.size()) {
            std::fprintf(stderr, "malformed argument '%s' (expected "
                         "key=value)\n", arg.c_str());
            return usage();
        }
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (key == "out") {
            out_dir = value;
            continue;
        }
        if (key == "program") {
            program = value;
            continue;
        }
        const auto it = opt.find(key);
        int64_t parsed = 0;
        if (it == opt.end()) {
            std::fprintf(stderr, "unknown dataset option '%s'\n",
                         key.c_str());
            return usage();
        }
        if (!parseInt(value, parsed) || parsed < 0) {
            std::fprintf(stderr, "bad value '%s' for dataset option "
                         "'%s'\n", value.c_str(), key.c_str());
            return usage();
        }
        it->second = parsed;
    }
    if (out_dir.empty()) {
        std::fprintf(stderr, "dataset requires out=<dir>\n");
        return usage();
    }
    if (opt["samples"] < 1 || opt["shard"] < 1 || opt["chunks"] < 1) {
        std::fprintf(stderr, "samples, shard, and chunks must be "
                     "positive\n");
        return usage();
    }

    DatasetConfig config;
    config.numSamples = static_cast<size_t>(opt["samples"]);
    config.regionChunks = static_cast<uint32_t>(opt["chunks"]);
    config.seed = static_cast<uint64_t>(opt["seed"]);
    config.features = artifacts::featureConfig();
    config.threads = static_cast<size_t>(opt["threads"]);
    if (!program.empty()) {
        const int pid = programIdByCode(program);
        if (pid < 0) {
            std::fprintf(stderr, "unknown program '%s'\n",
                         program.c_str());
            return 2;
        }
        config.programFilter = {pid};
    }

    if (opt["workers"] > 0) {
        if (opt["max_shards"] > 0) {
            std::fprintf(stderr, "max_shards= bounds one in-process run; "
                         "it does not combine with workers=\n");
            return usage();
        }
        // Supervisor: plan the build serially (manifest + crash-debris
        // repair), stride-partition the missing shards across a worker
        // pool, and respawn any worker that dies until the directory is
        // complete or the respawn budget runs out. Workers resume from
        // published shards, so a respawn never redoes finished work.
        Stopwatch timer;
        const DatasetManifest manifest = ensureDatasetManifest(
            config, out_dir, static_cast<size_t>(opt["shard"]));
        repairDatasetDir(out_dir, manifest);
        const std::vector<size_t> missing =
            missingDatasetShards(out_dir, manifest);
        if (missing.empty()) {
            std::printf("dataset %s: already complete (manifest hash "
                        "%016llx)\n", out_dir.c_str(),
                        static_cast<unsigned long long>(
                            datasetManifestHash(out_dir)));
            return 0;
        }
        const size_t n = std::min<size_t>(
            static_cast<size_t>(opt["workers"]), missing.size());
        const std::string exe = selfExePath(argv[0]);
        std::vector<std::vector<std::string>> argvs(n);
        for (size_t w = 0; w < n; ++w) {
            std::string shards_arg;
            for (size_t i = w; i < missing.size(); i += n) {
                if (!shards_arg.empty())
                    shards_arg.push_back(',');
                shards_arg += std::to_string(missing[i]);
            }
            argvs[w] = {exe, "dataset-worker", "out=" + out_dir,
                        "samples=" + std::to_string(opt["samples"]),
                        "shard=" + std::to_string(opt["shard"]),
                        "chunks=" + std::to_string(opt["chunks"]),
                        "seed=" + std::to_string(opt["seed"]),
                        "threads=" + std::to_string(opt["threads"])};
            if (!program.empty())
                argvs[w].push_back("program=" + program);
            argvs[w].push_back("shards=" + shards_arg);
        }
        std::printf("dataset %s: %zu missing shards across %zu "
                    "workers\n", out_dir.c_str(), missing.size(), n);
        std::fflush(stdout);
        ProcessPool pool;
        const bool ok = pool.superviseAll(
            argvs, static_cast<size_t>(opt["respawns"]));
        const std::vector<size_t> still_missing =
            missingDatasetShards(out_dir, manifest);
        if (!ok || !still_missing.empty()) {
            std::fprintf(stderr, "dataset %s: %zu shards still missing "
                         "after supervision\n", out_dir.c_str(),
                         still_missing.size());
            return 1;
        }
        std::printf("dataset %s: complete via %zu workers (%.1fs), "
                    "manifest hash %016llx\n", out_dir.c_str(), n,
                    timer.seconds(), static_cast<unsigned long long>(
                        datasetManifestHash(out_dir)));
        return 0;
    }

    Stopwatch timer;
    const ShardedBuildResult result = buildDatasetShards(
        config, out_dir, static_cast<size_t>(opt["shard"]),
        static_cast<size_t>(opt["max_shards"]));
    std::printf("dataset %s: %zu shards built, %zu resumed from disk "
                "(%.1fs)\n", out_dir.c_str(), result.shardsBuilt,
                result.shardsSkipped, timer.seconds());
    if (!result.complete()) {
        std::printf("  %zu shards remaining -- rerun the same command "
                    "to resume\n", result.shardsRemaining);
    } else {
        std::printf("  complete: %lld samples of %lld chunks, manifest "
                    "hash %016llx\n",
                    static_cast<long long>(opt["samples"]),
                    static_cast<long long>(opt["chunks"]),
                    static_cast<unsigned long long>(
                        datasetManifestHash(out_dir)));
    }
    return 0;
}

/**
 * Worker half of the `dataset workers=N` protocol: build exactly the
 * assigned shard indices of an existing plan. Exit 0 when every
 * assigned shard is published (resumable: shards already on disk are
 * skipped), so a respawned worker converges instead of redoing work.
 */
int
runDatasetWorker(int argc, char **argv)
{
    std::map<std::string, int64_t> opt = {
        {"samples", 512}, {"shard", 128}, {"chunks", 8}, {"seed", 99},
        {"threads", 0},
    };
    std::string out_dir, program, shards_arg;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq + 1 == arg.size()) {
            std::fprintf(stderr, "malformed argument '%s' (expected "
                         "key=value)\n", arg.c_str());
            return usage();
        }
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (key == "out") {
            out_dir = value;
            continue;
        }
        if (key == "program") {
            program = value;
            continue;
        }
        if (key == "shards") {
            shards_arg = value;
            continue;
        }
        const auto it = opt.find(key);
        int64_t parsed = 0;
        if (it == opt.end()) {
            std::fprintf(stderr, "unknown dataset-worker option '%s'\n",
                         key.c_str());
            return usage();
        }
        if (!parseInt(value, parsed) || parsed < 0) {
            std::fprintf(stderr, "bad value '%s' for dataset-worker "
                         "option '%s'\n", value.c_str(), key.c_str());
            return usage();
        }
        it->second = parsed;
    }
    if (out_dir.empty() || shards_arg.empty()) {
        std::fprintf(stderr, "dataset-worker requires out=<dir> and "
                     "shards=<i,j,...>\n");
        return usage();
    }
    std::vector<size_t> shards;
    if (!parseShardList(shards_arg, shards)) {
        std::fprintf(stderr, "bad shard list '%s'\n", shards_arg.c_str());
        return usage();
    }
    if (opt["samples"] < 1 || opt["shard"] < 1 || opt["chunks"] < 1) {
        std::fprintf(stderr, "samples, shard, and chunks must be "
                     "positive\n");
        return usage();
    }

    DatasetConfig config;
    config.numSamples = static_cast<size_t>(opt["samples"]);
    config.regionChunks = static_cast<uint32_t>(opt["chunks"]);
    config.seed = static_cast<uint64_t>(opt["seed"]);
    config.features = artifacts::featureConfig();
    config.threads = static_cast<size_t>(opt["threads"]);
    if (!program.empty()) {
        const int pid = programIdByCode(program);
        if (pid < 0) {
            std::fprintf(stderr, "unknown program '%s'\n",
                         program.c_str());
            return 2;
        }
        config.programFilter = {pid};
    }

    const size_t crash_after = crashAfterShardsEnv();
    const ShardedBuildResult result = buildDatasetShardSet(
        config, out_dir, static_cast<size_t>(opt["shard"]), shards,
        crash_after);
    if (crash_after > 0 && !result.complete()) {
        // Injected crash (see crashAfterShardsEnv): die abruptly, the
        // way a real worker loss looks to the supervisor.
        ::_exit(42);
    }
    return result.complete() ? 0 : 1;
}

int
runTrain(int argc, char **argv)
{
    std::map<std::string, int64_t> opt = {
        {"epochs", 12}, {"batch", 256}, {"seed", 1234}, {"threads", 0},
        {"max_epochs", 0},
    };
    std::string data_path, out_path, checkpoint, feedback_path;
    double val_fraction = 0.1;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq + 1 == arg.size()) {
            std::fprintf(stderr, "malformed argument '%s' (expected "
                         "key=value)\n", arg.c_str());
            return usage();
        }
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (key == "data") {
            data_path = value;
            continue;
        }
        if (key == "out") {
            out_path = value;
            continue;
        }
        if (key == "checkpoint") {
            checkpoint = value;
            continue;
        }
        if (key == "feedback") {
            feedback_path = value;
            continue;
        }
        if (key == "val") {
            if (!parseDouble(value, val_fraction) || val_fraction < 0.0
                || val_fraction >= 1.0) {
                std::fprintf(stderr, "bad value '%s' for 'val' (need "
                             "[0, 1))\n", value.c_str());
                return usage();
            }
            continue;
        }
        const auto it = opt.find(key);
        int64_t parsed = 0;
        if (it == opt.end()) {
            std::fprintf(stderr, "unknown train option '%s'\n",
                         key.c_str());
            return usage();
        }
        if (!parseInt(value, parsed) || parsed < 0) {
            std::fprintf(stderr, "bad value '%s' for train option "
                         "'%s'\n", value.c_str(), key.c_str());
            return usage();
        }
        it->second = parsed;
    }
    if (data_path.empty() || out_path.empty()) {
        std::fprintf(stderr, "train requires data=<dir|file> and "
                     "out=<artifact>\n");
        return usage();
    }
    if (opt["epochs"] < 1 || opt["batch"] < 1) {
        std::fprintf(stderr, "epochs and batch must be positive\n");
        return usage();
    }
    if (opt["max_epochs"] > 0 && checkpoint.empty()) {
        // Without a checkpoint the partial run's work would be lost.
        std::fprintf(stderr, "max_epochs= requires checkpoint= (a "
                     "partial run persists nothing otherwise)\n");
        return usage();
    }

    Dataset data;
    uint64_t manifest_hash = 0;
    if (!loadDatasetArg(data_path, data, manifest_hash))
        return 1;
    fatal_if(FeatureLayout(artifacts::featureConfig()).dim() != data.dim,
             "dataset dim %zu does not match the feature layout",
             data.dim);
    if (!feedback_path.empty()) {
        // Active-learning loop: fold the serving layer's fallback
        // feedback file (simulator-labeled OOD requests) into this run.
        if (!fileExists(feedback_path)) {
            std::fprintf(stderr, "feedback file '%s' not found\n",
                         feedback_path.c_str());
            return 1;
        }
        const Dataset feedback = Dataset::load(feedback_path);
        fatal_if(feedback.dim != data.dim,
                 "feedback dim %zu does not match dataset dim %zu",
                 feedback.dim, data.dim);
        data.append(feedback);
        std::printf("folded %zu feedback samples from %s into the "
                    "training set\n", feedback.size(),
                    feedback_path.c_str());
    }

    TrainConfig tc;
    tc.epochs = static_cast<size_t>(opt["epochs"]);
    tc.batchSize = static_cast<size_t>(opt["batch"]);
    tc.seed = static_cast<uint64_t>(opt["seed"]);
    tc.threads = static_cast<size_t>(opt["threads"]);
    tc.valFraction = val_fraction;
    tc.verbose = true;

    std::printf("training on %zu samples (dim %zu, val fraction %.2f, "
                "%zu epochs)\n", data.size(), data.dim, val_fraction,
                tc.epochs);
    Stopwatch timer;
    const TrainRun run = trainMlpResumable(
        data.features, data.labels, data.dim, tc, nullptr, checkpoint,
        static_cast<size_t>(opt["max_epochs"]));
    if (!run.finished) {
        std::printf("stopped after %zu/%zu epochs (%.1fs); rerun with "
                    "the same checkpoint to resume\n",
                    run.epochsCompleted(), tc.epochs, timer.seconds());
        return 0;
    }

    ModelArtifact artifact;
    artifact.features = artifacts::featureConfig();
    artifact.model = run.model;
    // Ship the conformal calibration (fitted on the held-out split)
    // with the weights: the serving layer reads it for intervals and
    // the OOD guardrail. val=0 -> an uncalibrated (point-only) artifact.
    artifact.calibration = run.calibration;
    artifact.provenance.datasetManifestHash = manifest_hash;
    artifact.provenance.datasetPath = data_path;
    artifact.provenance.gitDescribe = buildGitDescribe();
    artifact.provenance.trainConfig = tc;
    artifact.provenance.trainedEpochs = run.epochsCompleted();
    if (!run.history.empty())
        artifact.provenance.heldOutRelErr = run.history.back().valRelErr;
    artifact.save(out_path);
    if (artifact.calibrated()) {
        std::printf("calibrated: %zu held-out conformity scores travel "
                    "with the artifact\n",
                    artifact.calibration.scores.size());
    }
    if (run.history.back().valRelErr >= 0.0) {
        std::printf("trained in %.1fs: train rel-err %.4f, held-out "
                    "rel-err %.4f\n", timer.seconds(),
                    run.history.back().trainRelErr,
                    run.history.back().valRelErr);
    } else {
        std::printf("trained in %.1fs: train rel-err %.4f (no "
                    "validation split)\n", timer.seconds(),
                    run.history.back().trainRelErr);
    }
    std::printf("wrote %s (dataset %016llx, %s)\n", out_path.c_str(),
                static_cast<unsigned long long>(manifest_hash),
                artifact.provenance.gitDescribe.c_str());
    return 0;
}

int
runEval(int argc, char **argv)
{
    std::string model_path, data_path;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq + 1 == arg.size()) {
            std::fprintf(stderr, "malformed argument '%s' (expected "
                         "key=value)\n", arg.c_str());
            return usage();
        }
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (key == "model") {
            model_path = value;
        } else if (key == "data") {
            data_path = value;
        } else {
            std::fprintf(stderr, "unknown eval option '%s'\n",
                         key.c_str());
            return usage();
        }
    }
    if (model_path.empty() || data_path.empty()) {
        std::fprintf(stderr, "eval requires model=<artifact> and "
                     "data=<dir|file>\n");
        return usage();
    }
    if (!fileExists(model_path)) {
        std::fprintf(stderr, "model artifact '%s' not found\n",
                     model_path.c_str());
        return 1;
    }

    const ModelArtifact artifact = ModelArtifact::load(model_path);
    Dataset data;
    uint64_t manifest_hash = 0;
    if (!loadDatasetArg(data_path, data, manifest_hash))
        return 1;
    fatal_if(artifact.model.inputDim() != data.dim,
             "artifact expects %zu-dim features, dataset holds %zu",
             artifact.model.inputDim(), data.dim);

    const double trained_err =
        artifact.model.meanRelativeError(data.features, data.labels,
                                         data.dim);
    // Same layout, random weights: the floor any real training must
    // clear.
    const TrainedModel stub = artifacts::untrainedModel(
        artifact.features, 2026, artifact.provenance.trainConfig
        .hiddenSizes.empty() ? std::vector<size_t>{192, 96}
        : artifact.provenance.trainConfig.hiddenSizes);
    const double stub_err =
        stub.meanRelativeError(data.features, data.labels, data.dim);

    std::printf("artifact %s\n", model_path.c_str());
    std::printf("  provenance: dataset %016llx at '%s', %llu epochs, "
                "%s\n",
                static_cast<unsigned long long>(
                    artifact.provenance.datasetManifestHash),
                artifact.provenance.datasetPath.c_str(),
                static_cast<unsigned long long>(
                    artifact.provenance.trainedEpochs),
                artifact.provenance.gitDescribe.c_str());
    if (artifact.provenance.heldOutRelErr >= 0.0) {
        std::printf("  ship-time held-out rel-err: %.4f\n",
                    artifact.provenance.heldOutRelErr);
    }
    std::printf("eval over %zu samples (%s, dataset %016llx):\n",
                data.size(), data_path.c_str(),
                static_cast<unsigned long long>(manifest_hash));
    std::printf("  trained model mean rel CPI err:  %.4f\n", trained_err);
    std::printf("  untrained stub mean rel CPI err: %.4f\n", stub_err);
    return 0;
}

// ---- sweep (in-process and scaled-out) ----

/** Merged sweep result file: magic + the CPI vector in grid order. */
constexpr uint64_t kSweepMergedMagic = 0x31304d5753434e43ULL; // "CNCSWM01"
/** One worker's contribution: its (index, CPI) pairs plus geometry. */
constexpr uint64_t kSweepPartMagic = 0x3130505753434e43ULL;   // "CNCSWP01"

std::string
sweepPartPath(const std::string &out_path, size_t part)
{
    return out_path + ".part" + std::to_string(part);
}

void
writeSweepResult(const std::string &path, const std::vector<double> &cpis)
{
    const std::string tmp = uniqueTmpName(path);
    {
        BinaryWriter out(tmp);
        out.put<uint64_t>(kSweepMergedMagic);
        out.putVector(cpis);
    }
    publishFile(tmp, path);
}

void
printSweepTable(ParamId id, const char *code,
                const std::vector<int64_t> &values,
                const std::vector<double> &cpis)
{
    std::printf("sweep of %s for %s:\n",
                paramTable()[static_cast<int>(id)].name, code);
    for (size_t i = 0; i < values.size(); ++i) {
        std::printf("  %6lld -> CPI %.4f\n",
                    static_cast<long long>(values[i]), cpis[i]);
    }
}

/**
 * The predictor a sweep evaluates: an explicit artifact when model= is
 * given (what scaled-out workers use, so none of them trains), else the
 * cached full model.
 */
ConcordePredictor
sweepPredictor(const std::string &model_path)
{
    if (model_path.empty()) {
        return ConcordePredictor(artifacts::fullModel(),
                                 artifacts::featureConfig());
    }
    const ModelArtifact artifact = ModelArtifact::load(model_path);
    return ConcordePredictor(artifact.model, artifact.features);
}

/**
 * Parse the shared sweep/sweep-worker argument tail: option keys into
 * `opt`/`out_path`/`model_path`, everything else as a uarch override
 * (raw strings also collected for forwarding to workers).
 */
bool
parseSweepArgs(int argc, char **argv, std::map<std::string, int64_t> &opt,
               UarchParams &params, std::string &out_path,
               std::string &model_path,
               std::vector<std::string> &override_args)
{
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        if (key == "out" || key == "model") {
            if (eq == std::string::npos || eq + 1 == arg.size()) {
                std::fprintf(stderr, "bad value for sweep option '%s'\n",
                             key.c_str());
                return false;
            }
            (key == "out" ? out_path : model_path) = arg.substr(eq + 1);
            continue;
        }
        if (opt.count(key)) {
            int64_t value = 0;
            if (eq == std::string::npos
                || !parseInt(arg.substr(eq + 1), value) || value < 0) {
                std::fprintf(stderr, "bad value for sweep option '%s'\n",
                             key.c_str());
                return false;
            }
            opt[key] = value;
            continue;
        }
        if (!applyOverride(params, arg))
            return false;
        override_args.push_back(arg);
    }
    return true;
}

int
runSweep(int pid, const char *code, int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const auto it = kShortNames.find(argv[3]);
    if (it == kShortNames.end()) {
        std::fprintf(stderr, "unknown parameter '%s'\n", argv[3]);
        return 2;
    }
    UarchParams params = UarchParams::armN1();
    std::map<std::string, int64_t> opt = {{"workers", 0}, {"respawns", 3}};
    std::string out_path, model_path;
    std::vector<std::string> override_args;
    if (!parseSweepArgs(argc, argv, opt, params, out_path, model_path,
                        override_args))
        return usage();
    if (!model_path.empty() && !fileExists(model_path)) {
        std::fprintf(stderr, "model artifact '%s' not found\n",
                     model_path.c_str());
        return 1;
    }

    const auto values = sweepValues(it->second, true);
    std::vector<UarchParams> points;
    points.reserve(values.size());
    for (int64_t value : values) {
        params.set(it->second, value);
        points.push_back(params);
    }

    if (opt["workers"] == 0) {
        // The DSE fast path: one store-shared analysis, one provider's
        // memo caches across the grid, one batched-inference pass.
        const ConcordePredictor predictor = sweepPredictor(model_path);
        const auto cpis = predictor.predictSweep(regionFor(pid), points);
        if (!out_path.empty())
            writeSweepResult(out_path, cpis);
        printSweepTable(it->second, code, values, cpis);
        return 0;
    }

    // Supervisor: stride-partition the grid over a worker pool, respawn
    // crashed workers, and merge the part files into the same bytes a
    // 1-worker run writes (predictSweep is batch-composition-invariant,
    // so per-point CPIs do not depend on the partitioning).
    if (out_path.empty()) {
        std::fprintf(stderr, "sweep workers= requires out=<file> (the "
                     "merge target)\n");
        return usage();
    }
    if (model_path.empty()) {
        // Train-or-load the shared model cache before forking: fresh
        // workers would otherwise race to train it.
        (void)artifacts::fullModel();
    }
    const size_t n = std::min<size_t>(
        static_cast<size_t>(opt["workers"]), points.size());
    const std::string exe = selfExePath(argv[0]);
    std::vector<std::vector<std::string>> argvs(n);
    for (size_t w = 0; w < n; ++w) {
        argvs[w] = {exe, "sweep-worker", code, argv[3],
                    "part=" + std::to_string(w),
                    "nparts=" + std::to_string(n),
                    "out=" + sweepPartPath(out_path, w)};
        if (!model_path.empty())
            argvs[w].push_back("model=" + model_path);
        for (const auto &override_arg : override_args)
            argvs[w].push_back(override_arg);
    }
    ProcessPool pool;
    if (!pool.superviseAll(argvs, static_cast<size_t>(opt["respawns"]))) {
        std::fprintf(stderr, "sweep: a partition never completed\n");
        return 1;
    }

    std::vector<double> cpis(points.size(), 0.0);
    std::vector<char> filled(points.size(), 0);
    for (size_t w = 0; w < n; ++w) {
        const std::string path = sweepPartPath(out_path, w);
        fatal_if(!fileExists(path),
                 "sweep part '%s' missing after supervision",
                 path.c_str());
        BinaryReader in(path);
        fatal_if(in.get<uint64_t>() != kSweepPartMagic,
                 "'%s' is not a sweep part file", path.c_str());
        fatal_if(in.get<uint64_t>() != n || in.get<uint64_t>() != w
                 || in.get<uint64_t>() != points.size(),
                 "sweep part '%s' was written for a different "
                 "partitioning", path.c_str());
        const uint64_t count = in.get<uint64_t>();
        for (uint64_t k = 0; k < count; ++k) {
            const uint64_t index = in.get<uint64_t>();
            const double cpi = in.get<double>();
            fatal_if(index >= points.size() || filled[index],
                     "sweep part '%s' holds an out-of-range or duplicate "
                     "point", path.c_str());
            cpis[index] = cpi;
            filled[index] = 1;
        }
    }
    for (size_t i = 0; i < filled.size(); ++i) {
        fatal_if(!filled[i], "sweep point %zu is missing from every "
                 "part file", i);
    }
    writeSweepResult(out_path, cpis);
    for (size_t w = 0; w < n; ++w)
        ::unlink(sweepPartPath(out_path, w).c_str());
    printSweepTable(it->second, code, values, cpis);
    return 0;
}

/**
 * Worker half of the `sweep workers=N` protocol: recompute the same
 * grid, evaluate the points of one stride partition, and publish them
 * as an (index, CPI) part file for the supervisor to merge.
 */
int
runSweepWorker(int pid, const char *code, int argc, char **argv)
{
    (void)code;
    if (argc < 4)
        return usage();
    const auto it = kShortNames.find(argv[3]);
    if (it == kShortNames.end()) {
        std::fprintf(stderr, "unknown parameter '%s'\n", argv[3]);
        return 2;
    }
    UarchParams params = UarchParams::armN1();
    std::map<std::string, int64_t> opt = {{"part", -1}, {"nparts", 0}};
    std::string out_path, model_path;
    std::vector<std::string> override_args;
    if (!parseSweepArgs(argc, argv, opt, params, out_path, model_path,
                        override_args))
        return usage();
    if (out_path.empty() || opt["part"] < 0 || opt["nparts"] < 1
        || opt["part"] >= opt["nparts"]) {
        std::fprintf(stderr, "sweep-worker requires out=<file>, part=, "
                     "and nparts= with part < nparts\n");
        return usage();
    }
    if (!model_path.empty() && !fileExists(model_path)) {
        std::fprintf(stderr, "model artifact '%s' not found\n",
                     model_path.c_str());
        return 1;
    }
    const size_t part = static_cast<size_t>(opt["part"]);
    const size_t nparts = static_cast<size_t>(opt["nparts"]);

    const auto values = sweepValues(it->second, true);
    std::vector<uint64_t> indices;
    std::vector<UarchParams> points;
    for (size_t i = part; i < values.size(); i += nparts) {
        params.set(it->second, values[i]);
        indices.push_back(i);
        points.push_back(params);
    }

    const ConcordePredictor predictor = sweepPredictor(model_path);
    const auto cpis = predictor.predictSweep(regionFor(pid), points);

    const std::string tmp = uniqueTmpName(out_path);
    {
        BinaryWriter out(tmp);
        out.put<uint64_t>(kSweepPartMagic);
        out.put<uint64_t>(nparts);
        out.put<uint64_t>(part);
        out.put<uint64_t>(values.size());
        out.put<uint64_t>(indices.size());
        for (size_t k = 0; k < indices.size(); ++k) {
            out.put<uint64_t>(indices[k]);
            out.put<double>(cpis[k]);
        }
    }
    publishFile(tmp, out_path);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    if (command == "list") {
        if (argc > 2) {
            std::fprintf(stderr, "'list' takes no arguments\n");
            return usage();
        }
        std::printf("programs:\n");
        for (const auto &info : workloadCorpus()) {
            std::printf("  %-5s %s (%s)\n", info.code().c_str(),
                        info.profile.name.c_str(),
                        info.profile.group.c_str());
        }
        std::printf("\nparameters (short=long, ARM N1 default):\n");
        const UarchParams n1 = UarchParams::armN1();
        for (const auto &[name, id] : kShortNames) {
            std::printf("  %-8s %-38s %lld\n", name.c_str(),
                        paramTable()[static_cast<int>(id)].name,
                        static_cast<long long>(n1.get(id)));
        }
        return 0;
    }

    // Lifecycle subcommands take key=value args, not a <program>.
    if (command == "dataset")
        return runDataset(argc, argv);
    if (command == "dataset-worker")
        return runDatasetWorker(argc, argv);
    if (command == "train")
        return runTrain(argc, argv);
    if (command == "eval")
        return runEval(argc, argv);

    if (command != "predict" && command != "sweep" && command != "attribute"
        && command != "simulate" && command != "serve"
        && command != "pipeline" && command != "sweep-worker") {
        std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
        return usage();
    }

    if (argc < 3)
        return usage();
    const int pid = programIdByCode(argv[2]);
    if (pid < 0) {
        std::fprintf(stderr, "unknown program '%s'\n", argv[2]);
        return 2;
    }

    if (command == "serve")
        return runServe(pid, argv[2], argc, argv);
    if (command == "pipeline")
        return runPipeline(pid, argv[2], argc, argv);
    if (command == "sweep")
        return runSweep(pid, argv[2], argc, argv);
    if (command == "sweep-worker")
        return runSweepWorker(pid, argv[2], argc, argv);

    UarchParams params = UarchParams::armN1();
    int first_override = 3;
    int permutations = 48;
    if (command == "attribute" && argc > 3) {
        // Optional positional permutation count before the overrides.
        int64_t parsed = 0;
        if (parseInt(argv[3], parsed)) {
            if (parsed < 1 || parsed > 1000000) {
                std::fprintf(stderr,
                             "permutations must be in [1, 1000000]\n");
                return 2;
            }
            permutations = static_cast<int>(parsed);
            first_override = 4;
        }
    }
    for (int i = first_override; i < argc; ++i) {
        if (!applyOverride(params, argv[i]))
            return 2;
    }

    if (command == "simulate") {
        RegionAnalysis analysis(regionFor(pid));
        const SimResult result = simulateRegion(params, analysis);
        std::printf("cycle-level simulation of %s @ %s\n", argv[2],
                    params.toString().c_str());
        std::printf("  CPI %.4f (%llu cycles, %llu instructions, "
                    "%llu mispredicts)\n", result.cpi(),
                    static_cast<unsigned long long>(result.cycles),
                    static_cast<unsigned long long>(result.instructions),
                    static_cast<unsigned long long>(
                        result.branchMispredicts));
        return 0;
    }

    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());
    // All three prediction subcommands share the region analysis through
    // the process-wide AnalysisStore, the same cache the serve layer and
    // dataset generation use.
    FeatureProvider provider(
        AnalysisStore::global().acquire(regionFor(pid)),
        artifacts::featureConfig());

    if (command == "predict") {
        const double cpi = predictor.predictCpi(provider, params);
        std::printf("%s @ %s\n  predicted CPI %.4f\n", argv[2],
                    params.toString().c_str(), cpi);
        return 0;
    }

    // command == "attribute"
    // Every permutation scan point is evaluated through one batched
    // inference pass instead of thousands of scalar predictions, against
    // the store-shared region analysis.
    const BatchEval eval = [&](const std::vector<UarchParams> &pts) {
        return predictor.predictCpiBatch(provider, pts);
    };
    const UarchParams base = UarchParams::bigCore();
    ShapleyConfig config;
    config.numPermutations = permutations;
    const auto &components = attributionComponents();
    const auto phi =
        shapleyAttribution(base, params, components, eval, config);
    const auto endpoints = predictor.predictCpiBatch(
        provider, std::vector<UarchParams>{base, params});
    std::printf("CPI attribution for %s (target vs big core):\n", argv[2]);
    std::printf("  big core %.3f -> target %.3f\n", endpoints[0],
                endpoints[1]);
    for (size_t c = 0; c < components.size(); ++c) {
        if (std::abs(phi[c]) >= 0.005) {
            std::printf("  %-30s %+8.3f\n", components[c].name.c_str(),
                        phi[c]);
        }
    }
    return 0;
}
