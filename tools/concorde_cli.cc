/**
 * @file
 * Command-line front end for the Concorde library.
 *
 *   concorde_cli predict <program> [param=value ...]
 *   concorde_cli sweep <program> <param> [param=value ...]
 *   concorde_cli attribute <program> [permutations]
 *   concorde_cli simulate <program> [param=value ...]
 *   concorde_cli list
 *
 * Programs are Table-2 codes (P1..P13, C1, C2, O1..O4, S1..S10).
 * Parameters use the short names printed by `list` (e.g. rob=256
 * l1d=128 bp=simple pct=10 pf=4). Unspecified parameters default to
 * ARM N1. Models and datasets are cached under artifacts/ (the first
 * invocation trains them).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/artifacts.hh"
#include "core/concorde.hh"
#include "core/shapley.hh"
#include "sim/o3_core.hh"

using namespace concorde;

namespace
{

const std::map<std::string, ParamId> kShortNames = {
    {"rob", ParamId::RobSize},
    {"commit", ParamId::CommitWidth},
    {"lq", ParamId::LqSize},
    {"sq", ParamId::SqSize},
    {"alu", ParamId::AluWidth},
    {"fp", ParamId::FpWidth},
    {"ls", ParamId::LsWidth},
    {"lsp", ParamId::LsPipes},
    {"lp", ParamId::LoadPipes},
    {"fetch", ParamId::FetchWidth},
    {"decode", ParamId::DecodeWidth},
    {"rename", ParamId::RenameWidth},
    {"fbuf", ParamId::FetchBuffers},
    {"ifills", ParamId::MaxIcacheFills},
    {"bp", ParamId::BranchPredictor},
    {"pct", ParamId::SimpleMispredictPct},
    {"l1d", ParamId::L1dSize},
    {"l1i", ParamId::L1iSize},
    {"l2", ParamId::L2Size},
    {"pf", ParamId::PrefetchDegree},
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: concorde_cli <predict|sweep|attribute|simulate|"
                 "list> <program> [args]\n"
                 "run with 'list' for programs and parameter names\n");
    return 2;
}

bool
applyOverride(UarchParams &params, const std::string &arg)
{
    const auto eq = arg.find('=');
    if (eq == std::string::npos)
        return false;
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto it = kShortNames.find(key);
    if (it == kShortNames.end()) {
        std::fprintf(stderr, "unknown parameter '%s'\n", key.c_str());
        return false;
    }
    if (it->second == ParamId::BranchPredictor) {
        params.set(it->second, value == "tage" ? 1 : 0);
    } else {
        params.set(it->second, std::atoll(value.c_str()));
    }
    return true;
}

RegionSpec
regionFor(int pid)
{
    RegionSpec spec;
    spec.programId = pid;
    spec.traceId = 0;
    spec.startChunk = 16;
    spec.numChunks = artifacts::kShortRegionChunks;
    return spec;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    if (command == "list") {
        std::printf("programs:\n");
        for (const auto &info : workloadCorpus()) {
            std::printf("  %-5s %s (%s)\n", info.code().c_str(),
                        info.profile.name.c_str(),
                        info.profile.group.c_str());
        }
        std::printf("\nparameters (short=long, ARM N1 default):\n");
        const UarchParams n1 = UarchParams::armN1();
        for (const auto &[name, id] : kShortNames) {
            std::printf("  %-8s %-38s %lld\n", name.c_str(),
                        paramTable()[static_cast<int>(id)].name,
                        static_cast<long long>(n1.get(id)));
        }
        return 0;
    }

    if (argc < 3)
        return usage();
    const int pid = programIdByCode(argv[2]);
    if (pid < 0) {
        std::fprintf(stderr, "unknown program '%s'\n", argv[2]);
        return 2;
    }

    UarchParams params = UarchParams::armN1();
    int first_override = command == "sweep" ? 4 : 3;
    for (int i = first_override; i < argc; ++i) {
        if (!applyOverride(params, argv[i]) && command != "attribute")
            return 2;
    }

    if (command == "simulate") {
        RegionAnalysis analysis(regionFor(pid));
        const SimResult result = simulateRegion(params, analysis);
        std::printf("cycle-level simulation of %s @ %s\n", argv[2],
                    params.toString().c_str());
        std::printf("  CPI %.4f (%llu cycles, %llu instructions, "
                    "%llu mispredicts)\n", result.cpi(),
                    static_cast<unsigned long long>(result.cycles),
                    static_cast<unsigned long long>(result.instructions),
                    static_cast<unsigned long long>(
                        result.branchMispredicts));
        return 0;
    }

    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());
    FeatureProvider provider(regionFor(pid), artifacts::featureConfig());

    if (command == "predict") {
        const double cpi = predictor.predictCpi(provider, params);
        std::printf("%s @ %s\n  predicted CPI %.4f\n", argv[2],
                    params.toString().c_str(), cpi);
        return 0;
    }

    if (command == "sweep") {
        if (argc < 4)
            return usage();
        const auto it = kShortNames.find(argv[3]);
        if (it == kShortNames.end()) {
            std::fprintf(stderr, "unknown parameter '%s'\n", argv[3]);
            return 2;
        }
        std::printf("sweep of %s for %s:\n",
                    paramTable()[static_cast<int>(it->second)].name,
                    argv[2]);
        // One batched-inference pass over the whole sweep grid.
        const auto values = sweepValues(it->second, true);
        std::vector<UarchParams> points;
        points.reserve(values.size());
        for (int64_t value : values) {
            params.set(it->second, value);
            points.push_back(params);
        }
        const auto cpis = predictor.predictCpiBatch(provider, points);
        for (size_t i = 0; i < values.size(); ++i) {
            std::printf("  %6lld -> CPI %.4f\n",
                        static_cast<long long>(values[i]), cpis[i]);
        }
        return 0;
    }

    if (command == "attribute") {
        const int permutations = argc > 3 ? std::atoi(argv[3]) : 48;
        // Every permutation scan point is evaluated through one batched
        // inference pass instead of thousands of scalar predictions.
        const BatchEval eval = [&](const std::vector<UarchParams> &pts) {
            return predictor.predictCpiBatch(provider, pts);
        };
        const UarchParams base = UarchParams::bigCore();
        ShapleyConfig config;
        config.numPermutations = permutations;
        const auto &components = attributionComponents();
        const auto phi =
            shapleyAttribution(base, params, components, eval, config);
        const auto endpoints = predictor.predictCpiBatch(
            provider, std::vector<UarchParams>{base, params});
        std::printf("CPI attribution for %s (target vs big core):\n",
                    argv[2]);
        std::printf("  big core %.3f -> target %.3f\n", endpoints[0],
                    endpoints[1]);
        for (size_t c = 0; c < components.size(); ++c) {
            if (std::abs(phi[c]) >= 0.005) {
                std::printf("  %-30s %+8.3f\n",
                            components[c].name.c_str(), phi[c]);
            }
        }
        return 0;
    }
    return usage();
}
