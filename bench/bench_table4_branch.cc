/**
 * @file
 * Table 4 (Section 5.2.1): Concorde's accuracy bucketed by the number of
 * branch mispredictions per region -- the auxiliary stall features are
 * sufficient for the model to learn branch effects. Paper buckets are per
 * 100k instructions; ours are scaled to 16k-instruction regions.
 */

#include "bench_util.hh"

using namespace concorde;

int
main()
{
    const Dataset &test = artifacts::mainTest();
    const TrainedModel &model = artifacts::fullModel();
    const auto errors = benchutil::relativeErrors(model, test);

    // Paper buckets [0,1000), [1000,5000), [5000,inf) per 100k
    // instructions scale by 16384/100000.
    struct Bucket
    {
        const char *label;
        uint32_t lo, hi;
        std::vector<double> errs;
    };
    std::vector<Bucket> buckets = {
        {"[0, 160) mispredicts", 0, 160, {}},
        {"[160, 800) mispredicts", 160, 800, {}},
        {"[800, inf) mispredicts", 800, ~0u, {}},
    };
    for (size_t i = 0; i < test.size(); ++i) {
        for (auto &bucket : buckets) {
            if (test.meta[i].mispredicts >= bucket.lo
                && test.meta[i].mispredicts < bucket.hi) {
                bucket.errs.push_back(errors[i]);
            }
        }
    }

    std::printf("=== Table 4: error vs branch-misprediction count ===\n");
    for (auto &bucket : buckets)
        benchutil::printErrorRow(bucket.label,
                                 benchutil::summarize(bucket.errs));
    std::printf("  paper: 2.16%% / 2.12%% / 1.82%% average error -- "
                "accuracy does not degrade with more mispredicts\n");
    return 0;
}
