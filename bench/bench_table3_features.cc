/**
 * @file
 * Table 3: the ML model's input layout -- every feature block with its
 * width, grouped as in the paper (per-resource throughput distributions,
 * pipeline-stall features, latency distributions, target
 * microarchitecture).
 */

#include <cstdio>

#include "analytical/feature_provider.hh"
#include "core/artifacts.hh"

using namespace concorde;

int
main()
{
    const FeatureConfig config = artifacts::featureConfig();
    const FeatureLayout layout(config);

    std::printf("=== Table 3: ML model input layout ===\n");
    std::printf("  distribution encoding: %zu values "
                "(%zu percentiles + %zu size-weighted + mean); paper: 101\n",
                layout.encDim(), config.numPercentiles,
                config.numPercentiles);
    std::printf("  %-32s %8s\n", "Block", "width");
    for (const auto &[name, width] : layout.blocks())
        std::printf("  %-32s %8zu\n", name.c_str(), width);

    auto group_width = [&](FeatureGroup g) {
        const auto range = layout.group(g);
        return range.end - range.begin;
    };
    std::printf("\n  group totals (paper Table 3: 1111 + 416 + 2323 + 23 "
                "= 3873):\n");
    std::printf("  per-resource throughput: %zu\n",
                group_width(FeatureGroup::Primary));
    std::printf("  pipeline stalls:         %zu\n",
                group_width(FeatureGroup::MispredRate)
                    + group_width(FeatureGroup::Stalls));
    std::printf("  latency distributions:   %zu\n",
                group_width(FeatureGroup::Latency));
    std::printf("  target microarchitecture:%zu\n",
                group_width(FeatureGroup::Params));
    std::printf("  total input dimension:   %zu\n", layout.dim());
    return 0;
}
