/**
 * @file
 * Figure 17 (Section 6): zooming the attribution into a single program --
 * per-region CPI attribution for Search3 (P9), sorted by cache
 * sensitivity. A minority of regions (the scatter phase) shows high cache
 * sensitivity even though the program average looks insensitive.
 */

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "core/concorde.hh"
#include "core/shapley.hh"

using namespace concorde;

int
main()
{
    const size_t num_regions = 96;
    const int pid = programIdByCode("P9");
    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    const auto &components = attributionComponents();
    const size_t cache_idx = 0;     // "L1i/L1d/L2 caches"

    struct RegionResult
    {
        double cacheShap = 0.0;
        double totalDelta = 0.0;
        double targetCpi = 0.0;
    };
    std::vector<RegionResult> results(num_regions);

    parallelFor(num_regions, [&](size_t r) {
        Rng rng(hashMix(0xF17, r));
        const RegionSpec spec = sampleRegionFromProgram(
            rng, pid, artifacts::kShortRegionChunks);
        FeatureProvider provider(spec, artifacts::featureConfig());
        const BatchEval eval = [&](const std::vector<UarchParams> &pts) {
            return predictor.predictCpiBatch(provider, pts, 1);
        };
        ShapleyConfig config;
        config.numPermutations = 16;
        config.seed = r;
        const auto phi = shapleyAttribution(base, target, components,
                                            eval, config);
        const auto ends = predictor.predictCpiBatch(
            provider, std::vector<UarchParams>{base, target}, 1);
        results[r].cacheShap = phi[cache_idx];
        results[r].targetCpi = ends[1];
        results[r].totalDelta = ends[1] - ends[0];
    });

    std::sort(results.begin(), results.end(),
              [](const RegionResult &a, const RegionResult &b) {
                  return a.cacheShap < b.cacheShap;
              });

    std::printf("=== Figure 17: per-region attribution for P9 (Search3) "
                "===\n");
    std::printf("  regions sorted by cache-size sensitivity "
                "(Shapley dCPI of the cache group):\n");
    std::printf("  %-10s %12s %12s %12s\n", "percentile", "cache dCPI",
                "total dCPI", "N1 CPI");
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0}) {
        const size_t i = std::min(
            num_regions - 1,
            static_cast<size_t>(q * (num_regions - 1)));
        std::printf("  p%-9.0f %12.3f %12.3f %12.3f\n", 100 * q,
                    results[i].cacheShap, results[i].totalDelta,
                    results[i].targetCpi);
    }

    double avg_cache = 0.0;
    size_t sensitive = 0;
    for (const auto &result : results) {
        avg_cache += result.cacheShap;
        sensitive += result.cacheShap > 3.0 * std::max(
            0.02, avg_cache / num_regions);
    }
    avg_cache /= num_regions;
    size_t high = 0;
    for (const auto &result : results)
        high += result.cacheShap > 2.0 * std::max(avg_cache, 0.05);
    std::printf("\n  average cache attribution: %.3f CPI; %zu/%zu "
                "regions exceed 2x the average\n", avg_cache, high,
                num_regions);
    std::printf("  paper: ~10%% of P9 regions are highly cache "
                "sensitive (phase behavior) despite a modest average\n");
    return 0;
}
