/**
 * @file
 * Cold region-analysis microbench and CI regression gate.
 *
 * Times, over a set of freshly generated regions (warmup + region, the
 * dataset-generation shape where every region is analysis-cold):
 *
 *   legacy   the pre-fusion cold path: row-oriented (AoS) instructions
 *            and three independent per-side passes (d-side, i-side,
 *            branches), each replaying the warmup and re-iterating the
 *            region on its own -- six row sweeps per region
 *   fused    the columnar path: one warmup replay plus ONE sweep
 *            feeding the data hierarchy, the instruction hierarchy, and
 *            the branch predictor simultaneously (analyzeShard)
 *
 * Both run through AnalyzerCarryState with the same branch seed, so the
 * outputs must be bitwise identical. Trace generation, the AoS
 * materialization, and analyzer construction happen off the clock; only
 * the sweeps are timed.
 *
 * Gates (exit 1 on failure; margins are 1-core-VM safe):
 *   - fused analyses bitwise-identical to the per-side passes
 *     (max |diff| == 0 over every analysis vector)
 *   - fused >= 1.0x legacy: the cache/predictor simulation itself is
 *     identical work in both variants and dominates the sweep, so the
 *     fusion's streaming win is real but bounded (~1.1x on a 1-core
 *     VM); the gate just pins that one columnar sweep never loses to
 *     six row sweeps
 *
 * Writes a JSON summary to $CONCORDE_BENCH_JSON (default
 * BENCH_analysis.json). Needs no model artifacts; always smoke-fast.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/trace_analyzer.hh"
#include "common/stopwatch.hh"
#include "trace/workloads.hh"

using namespace concorde;

namespace
{

constexpr int kReps = 3;
constexpr uint64_t kStartChunk = 16;
constexpr uint32_t kRegionChunks = 2;
constexpr size_t kNumRegions = 12;

/** One region's pre-generated traces, in both layouts (built off-clock). */
struct BenchRegion
{
    RegionSpec spec;
    uint64_t branchSeed = 0;
    TraceColumns warmupCols;
    TraceColumns regionCols;
    std::vector<Instruction> warmupRows;
    std::vector<Instruction> regionRows;
};

std::vector<BenchRegion>
benchRegions()
{
    std::vector<BenchRegion> regions;
    for (size_t i = 0; i < kNumRegions; ++i) {
        BenchRegion r;
        r.spec.programId = programIdByCode(i % 2 == 0 ? "S7" : "P1");
        r.spec.traceId = 0;
        r.spec.startChunk = kStartChunk + i * kRegionChunks;
        r.spec.numChunks = kRegionChunks;
        r.branchSeed = branchSeedFor(r.spec.programId, r.spec.traceId,
                                     r.spec.startChunk);

        const ProgramModel &model = programModel(r.spec.programId);
        RegionSpec warm = r.spec;
        warm.startChunk = r.spec.startChunk - kDefaultWarmupChunks;
        warm.numChunks = kDefaultWarmupChunks;
        r.warmupCols = model.generateRegionColumns(warm);
        r.regionCols = model.generateRegionColumns(r.spec);
        r.warmupRows = r.warmupCols.toInstructions();
        r.regionRows = r.regionCols.toInstructions();
        regions.push_back(std::move(r));
    }
    return regions;
}

template <typename A, typename B>
double
vectorDiff(const std::vector<A> &a, const std::vector<B> &b)
{
    if (a.size() != b.size())
        return 1e30;
    double diff = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        diff = std::max(diff, std::abs(static_cast<double>(a[i])
                                       - static_cast<double>(b[i])));
    }
    return diff;
}

double
shardDiff(const ShardAnalyses &fused, const DSideAnalysis &d,
          const ISideAnalysis &i, const BranchAnalysis &b)
{
    double diff = std::max(
        {vectorDiff(fused.dside.execLat, d.execLat),
         vectorDiff(fused.iside.newLine, i.newLine),
         vectorDiff(fused.iside.lineLat, i.lineLat),
         vectorDiff(fused.branches.mispredict, b.mispredict),
         std::abs(static_cast<double>(fused.branches.numBranches)
                  - static_cast<double>(b.numBranches)),
         std::abs(static_cast<double>(fused.branches.numMispredicts)
                  - static_cast<double>(b.numMispredicts))});
    if (fused.dside.loadLevel != d.loadLevel)
        diff = std::max(diff, 1e30);
    return diff;
}

} // anonymous namespace

int
main()
{
    std::printf("=== cold region analysis: fused columnar vs per-side "
                "rows ===\n");

    const std::vector<BenchRegion> regions = benchRegions();
    const MemoryConfig mem;
    const BranchConfig branch;
    uint64_t instructions = 0;
    for (const BenchRegion &r : regions)
        instructions += r.spec.numInstructions();
    const double minstr = static_cast<double>(instructions) / 1e6;

    double legacy_s = 1e30;
    double fused_s = 1e30;
    double max_diff = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        std::vector<ShardAnalyses> legacy(regions.size());
        std::vector<ShardAnalyses> fused(regions.size());

        // One analyzer per legacy side (the pre-fusion code kept one
        // d-hierarchy, one i-hierarchy, and one predictor per region,
        // each warming independently), one for the fused sweep; all
        // constructed off the clock.
        std::vector<AnalyzerCarryState> d_carries, i_carries, b_carries;
        std::vector<AnalyzerCarryState> fused_carries;
        for (const BenchRegion &r : regions) {
            d_carries.emplace_back(mem, branch, r.branchSeed);
            i_carries.emplace_back(mem, branch, r.branchSeed);
            b_carries.emplace_back(mem, branch, r.branchSeed);
            fused_carries.emplace_back(mem, branch, r.branchSeed);
        }

        Stopwatch legacy_timer;
        for (size_t i = 0; i < regions.size(); ++i) {
            const BenchRegion &r = regions[i];
            // Each side replays the warmup on its own pass (results
            // discarded), exactly like the lazy per-side memo builds.
            d_carries[i].analyzeDside(r.warmupRows);
            legacy[i].dside = d_carries[i].analyzeDside(r.regionRows);
            i_carries[i].analyzeIside(r.warmupRows);
            legacy[i].iside = i_carries[i].analyzeIside(r.regionRows);
            b_carries[i].analyzeBranches(r.warmupRows);
            legacy[i].branches =
                b_carries[i].analyzeBranches(r.regionRows);
        }
        legacy_s = std::min(legacy_s, legacy_timer.seconds());

        Stopwatch fused_timer;
        for (size_t i = 0; i < regions.size(); ++i) {
            const BenchRegion &r = regions[i];
            fused_carries[i].warm(r.warmupCols);
            fused[i] = fused_carries[i].analyzeShard(r.regionCols);
        }
        fused_s = std::min(fused_s, fused_timer.seconds());

        for (size_t i = 0; i < regions.size(); ++i) {
            max_diff = std::max(
                max_diff, shardDiff(fused[i], legacy[i].dside,
                                    legacy[i].iside, legacy[i].branches));
        }
    }

    const double legacy_rate = minstr / legacy_s;
    const double fused_rate = minstr / fused_s;
    const double speedup = legacy_s / fused_s;
    std::printf("  legacy per-side rows:    %8.2f Minstr/s  (%zu regions, "
                "%.4fs)\n", legacy_rate, regions.size(), legacy_s);
    std::printf("  fused columnar sweep:    %8.2f Minstr/s  (%.2fx, "
                "%.4fs)\n", fused_rate, speedup, fused_s);
    std::printf("  max |legacy - fused|:    %.2e\n", max_diff);

    bool pass = true;
    if (max_diff != 0.0) {
        std::printf("  GATE FAIL: fused analyses diverge from the "
                    "per-side passes\n");
        pass = false;
    }
    if (speedup < 1.0) {
        std::printf("  GATE FAIL: fused sweep (%.2f Minstr/s) slower "
                    "than the per-side passes (%.2f)\n", fused_rate,
                    legacy_rate);
        pass = false;
    }

    const char *json_env = std::getenv("CONCORDE_BENCH_JSON");
    const std::string json_path =
        json_env && *json_env ? json_env : "BENCH_analysis.json";
    FILE *f = std::fopen(json_path.c_str(), "w");
    if (f) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"analysis_cold\",\n");
        std::fprintf(f, "  \"regions\": %zu,\n", regions.size());
        std::fprintf(f, "  \"instructions\": %llu,\n",
                     static_cast<unsigned long long>(instructions));
        std::fprintf(f, "  \"legacy_minstr_s\": %.3f,\n", legacy_rate);
        std::fprintf(f, "  \"fused_minstr_s\": %.3f,\n", fused_rate);
        std::fprintf(f, "  \"fused_speedup\": %.3f,\n", speedup);
        std::fprintf(f, "  \"max_abs_diff\": %.3e,\n", max_diff);
        std::fprintf(f, "  \"gate_pass\": %s\n", pass ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("  wrote %s\n", json_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }

    std::printf(pass ? "  GATE PASS\n" : "  GATE FAIL\n");
    return pass ? 0 : 1;
}
