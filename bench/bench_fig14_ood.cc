/**
 * @file
 * Figure 14 (Section 5.2.5): out-of-distribution generalization across
 * programs. Top: leave-one-program-out error for a representative set of
 * programs (the paper's hardest cases). Bottom: the onboarding curve --
 * error vs number of new-program samples added back to training.
 */

#include "bench_util.hh"

using namespace concorde;

namespace
{

Dataset
withoutProgram(const Dataset &data, int program_id)
{
    std::vector<size_t> keep;
    for (size_t i = 0; i < data.size(); ++i) {
        if (data.meta[i].region.programId != program_id)
            keep.push_back(i);
    }
    return data.subset(keep);
}

Dataset
concatenate(const Dataset &a, const Dataset &b, size_t b_count)
{
    Dataset out = a;
    for (size_t i = 0; i < std::min(b_count, b.size()); ++i) {
        out.features.insert(out.features.end(), b.row(i),
                            b.row(i) + b.dim);
        out.labels.push_back(b.labels[i]);
        out.meta.push_back(b.meta[i]);
    }
    return out;
}

} // anonymous namespace

int
main()
{
    const Dataset &train = artifacts::mainTrain();
    // OOD programs: the paper's red bars (synthetic microbenchmarks) and
    // orange bars (distinctive real workloads).
    const std::vector<const char *> ood_codes = {"O3", "S1", "C2"};

    std::printf("=== Figure 14 (top): leave-one-program-out error ===\n");
    std::printf("  %-6s %14s %14s\n", "Code", "in-dist err(%)",
                "OOD err(%)");

    const TrainedModel &full = artifacts::fullModel();
    for (const char *code : ood_codes) {
        const int pid = programIdByCode(code);
        // Held-out evaluation pool for this program.
        const Dataset eval_pool = artifacts::onboardPool(pid, 512);
        std::vector<size_t> eval_idx;
        for (size_t i = 384; i < eval_pool.size(); ++i)
            eval_idx.push_back(i);
        const Dataset eval = eval_pool.subset(eval_idx);

        const Dataset loo = withoutProgram(train, pid);
        const TrainedModel ood_model =
            artifacts::trainOn(loo, std::string("ood_") + code);

        const auto in_dist =
            benchutil::summarize(benchutil::relativeErrors(full, eval));
        const auto ood = benchutil::summarize(
            benchutil::relativeErrors(ood_model, eval));
        std::printf("  %-6s %14.2f %14.2f\n", code, 100 * in_dist.mean,
                    100 * ood.mean);
    }
    std::printf("  paper: OOD error rises, most for synthetic "
                "microbenchmarks (O3/O4)\n");

    std::printf("\n=== Figure 14 (bottom): onboarding new programs ===\n");
    std::printf("  %-6s", "Code");
    const std::vector<size_t> onboard_counts = {32, 128, 384};
    for (size_t count : onboard_counts)
        std::printf("  err@%-4zu(%%)", count);
    std::printf("\n");

    for (const char *code : {"O3"}) {
        const int pid = programIdByCode(code);
        const Dataset pool = artifacts::onboardPool(pid, 512);
        std::vector<size_t> eval_idx;
        for (size_t i = 384; i < pool.size(); ++i)
            eval_idx.push_back(i);
        const Dataset eval = pool.subset(eval_idx);
        const Dataset loo = withoutProgram(train, pid);

        std::printf("  %-6s", code);
        for (size_t count : onboard_counts) {
            const Dataset onboarded = concatenate(loo, pool, count);
            const TrainedModel model = artifacts::trainOn(
                onboarded, std::string("onboard_") + code + "_"
                    + std::to_string(count));
            const auto stats = benchutil::summarize(
                benchutil::relativeErrors(model, eval));
            std::printf("  %10.2f ", 100 * stats.mean);
        }
        std::printf("\n");
    }
    std::printf("  paper: a few thousand samples recover most of the "
                "error floor\n");
    return 0;
}
