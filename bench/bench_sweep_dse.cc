/**
 * @file
 * Design-space-sweep benchmark and CI regression gate: the Section 5.2.3
 * claim that per-region analysis is paid once and amortized across the
 * whole microarchitecture design space.
 *
 * One region is swept across every Table-1 parameter's (quantized) grid
 * two ways:
 *
 *   scalar   one predictCpi(region, params) call per design point -- a
 *            fresh FeatureProvider (trace generation, warmup replay,
 *            d/i-side + branch analysis, every analytical model) per
 *            point; the naive DSE loop
 *   sweep    ConcordePredictor::predictSweep -- one AnalysisStore-shared
 *            region analysis, one provider whose memoized model runs and
 *            encoded blocks are reused across all points, one batched
 *            GEMM
 *
 * Gates (exit 1 on failure; margins are 1-core-VM safe):
 *   - sweep CPIs identical to the scalar loop (max |diff| == 0)
 *   - sweep throughput >= 3x the scalar loop
 *
 * Modes: default uses the full model from artifacts/ (trains on first
 * run); --smoke or CONCORDE_SMOKE=1 uses an untrained model of the
 * production layout (no artifacts, seconds). Writes a JSON summary to
 * $CONCORDE_BENCH_JSON (default BENCH_sweep.json).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/stopwatch.hh"
#include "core/concorde.hh"

using namespace concorde;

namespace
{

struct RunConfig
{
    bool smoke = false;
    uint32_t regionChunks = 4;
    int scalarReps = 2;
    int sweepReps = 3;
};

/**
 * Every (parameter, quantized grid value) design point around the ARM N1
 * base: the per-parameter sweeps of Section 5.2.3, covering all 20
 * Table-1 axes.
 */
std::vector<UarchParams>
designSpacePoints()
{
    std::vector<UarchParams> points;
    const UarchParams base = UarchParams::armN1();
    for (const ParamInfo &info : paramTable()) {
        for (int64_t value : sweepValues(info.id, /*quantized=*/true)) {
            UarchParams point = base;
            point.set(info.id, value);
            points.push_back(point);
        }
    }
    return points;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    RunConfig cfg;
    const char *smoke_env = std::getenv("CONCORDE_SMOKE");
    cfg.smoke = smoke_env && *smoke_env && std::strcmp(smoke_env, "0") != 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            cfg.smoke = true;
        } else {
            std::fprintf(stderr, "usage: bench_sweep_dse [--smoke]\n");
            return 2;
        }
    }
    if (cfg.smoke) {
        cfg.regionChunks = 2;
        cfg.scalarReps = 1;
    }

    std::printf("=== design-space sweep throughput (%s mode) ===\n",
                cfg.smoke ? "smoke" : "full");

    const FeatureConfig feature_cfg = cfg.smoke
        ? FeatureConfig{} : artifacts::featureConfig();
    const ConcordePredictor predictor = cfg.smoke
        ? ConcordePredictor(artifacts::untrainedModel(feature_cfg, 2028),
                            feature_cfg)
        : ConcordePredictor(artifacts::fullModel(), feature_cfg);

    RegionSpec region;
    region.programId = programIdByCode("S7");
    region.traceId = 0;
    region.startChunk = 16;
    region.numChunks = cfg.regionChunks;

    const std::vector<UarchParams> points = designSpacePoints();
    std::printf("  region %u chunks, %zu design points over %d "
                "parameters\n", cfg.regionChunks, points.size(),
                kNumParams);

    // ---- scalar baseline: a fresh provider per design point ----
    std::vector<double> scalar_cpis(points.size());
    double scalar_s = 1e30;
    for (int r = 0; r < cfg.scalarReps; ++r) {
        Stopwatch timer;
        for (size_t i = 0; i < points.size(); ++i)
            scalar_cpis[i] = predictor.predictCpi(region, points[i]);
        scalar_s = std::min(scalar_s, timer.seconds());
    }
    const double scalar_rate =
        static_cast<double>(points.size()) / scalar_s;
    std::printf("  scalar per-config loop:  %8.1f predictions/s "
                "(%.3fs)\n", scalar_rate, scalar_s);

    // ---- sweep fast path: shared analysis, one provider, one GEMM ----
    std::vector<double> sweep_cpis;
    double sweep_s = 1e30;
    for (int r = 0; r < cfg.sweepReps; ++r) {
        Stopwatch timer;
        sweep_cpis = predictor.predictSweep(region, points);
        sweep_s = std::min(sweep_s, timer.seconds());
    }
    const double sweep_rate = static_cast<double>(points.size()) / sweep_s;
    const double speedup = sweep_rate / scalar_rate;
    std::printf("  predictSweep fast path:  %8.1f predictions/s "
                "(%.3fs, %.1fx)\n", sweep_rate, sweep_s, speedup);

    const AnalysisStoreStats store = AnalysisStore::global().stats();
    std::printf("  analysis store: %llu built, %llu hits\n",
                static_cast<unsigned long long>(store.built),
                static_cast<unsigned long long>(store.hits));

    double max_diff = 0.0;
    for (size_t i = 0; i < points.size(); ++i)
        max_diff = std::max(max_diff,
                            std::abs(scalar_cpis[i] - sweep_cpis[i]));
    std::printf("  max |scalar - sweep| CPI: %.2e\n", max_diff);

    // ---- gates ----
    bool pass = true;
    if (max_diff != 0.0) {
        std::printf("  GATE FAIL: sweep CPIs diverge from the per-config "
                    "loop\n");
        pass = false;
    }
    if (speedup < 3.0) {
        std::printf("  GATE FAIL: predictSweep (%.1f pred/s) not >= 3x "
                    "the per-config loop (%.1f)\n", sweep_rate,
                    scalar_rate);
        pass = false;
    }

    const char *json_env = std::getenv("CONCORDE_BENCH_JSON");
    const std::string json_path =
        json_env && *json_env ? json_env : "BENCH_sweep.json";
    FILE *f = std::fopen(json_path.c_str(), "w");
    if (f) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"sweep_dse\",\n");
        std::fprintf(f, "  \"mode\": \"%s\",\n",
                     cfg.smoke ? "smoke" : "full");
        std::fprintf(f, "  \"region_chunks\": %u,\n", cfg.regionChunks);
        std::fprintf(f, "  \"design_points\": %zu,\n", points.size());
        std::fprintf(f, "  \"scalar_pred_s\": %.1f,\n", scalar_rate);
        std::fprintf(f, "  \"sweep_pred_s\": %.1f,\n", sweep_rate);
        std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
        std::fprintf(f, "  \"store_built\": %llu,\n",
                     static_cast<unsigned long long>(store.built));
        std::fprintf(f, "  \"store_hits\": %llu,\n",
                     static_cast<unsigned long long>(store.hits));
        std::fprintf(f, "  \"max_abs_diff\": %.3e,\n", max_diff);
        std::fprintf(f, "  \"gate_pass\": %s\n", pass ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("  wrote %s\n", json_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }

    std::printf(pass ? "  GATE PASS\n" : "  GATE FAIL\n");
    return pass ? 0 : 1;
}
