/**
 * @file
 * Section 5.2.3: preprocessing cost. Measures trace analysis (cache and
 * branch-predictor simulations) and per-resource analytical modeling for
 * one long region, for both the quantized sweep (powers of two; paper:
 * 1.8e18 designs, 7 cycle-level-sim equivalents) and an estimate of the
 * full sweep (2.2e23 designs).
 */

#include "analytical/feature_provider.hh"
#include "bench_util.hh"
#include "common/stopwatch.hh"
#include "sim/o3_core.hh"

using namespace concorde;

int
main()
{
    RegionSpec spec{programIdByCode("S7"), 0, 0,
                    artifacts::kLongRegionChunks};

    std::printf("=== Section 5.2.3: preprocessing cost (one %llu-instr "
                "region) ===\n",
                static_cast<unsigned long long>(spec.numInstructions()));

    // Reference cost unit: one cycle-level simulation of the region.
    double sim_seconds;
    {
        RegionAnalysis analysis(spec);
        Stopwatch sim_timer;
        (void)simulateRegion(UarchParams::armN1(), analysis);
        sim_seconds = sim_timer.seconds();
        std::printf("  one cycle-level simulation: %.3fs\n", sim_seconds);
    }

    // Trace analysis: all 40 d-side + 20 i-side + TAGE simulations.
    Stopwatch trace_timer;
    FeatureProvider provider(spec, artifacts::featureConfig());
    for (const auto &config : allDataConfigs())
        provider.analysis().dside(config);
    for (const auto &config : allInstConfigs())
        provider.analysis().iside(config);
    BranchConfig tage;
    tage.type = BranchConfig::Type::Tage;
    provider.analysis().branches(tage);
    const double trace_seconds = trace_timer.seconds();
    std::printf("  trace analysis (40 D + 20 I + TAGE sims): %.2fs\n",
                trace_seconds);

    // Analytical models, quantized grid.
    Stopwatch sweep_timer;
    const size_t runs = provider.precomputeAll(true);
    const double sweep_seconds = sweep_timer.seconds();
    std::printf("  analytical models, quantized grid: %.2fs "
                "(%zu model invocations)\n", sweep_seconds, runs);

    const double total = trace_seconds + sweep_seconds;
    std::printf("  quantized total: %.2fs = %.1f cycle-level sims; "
                "covers %.2e designs (paper: 7 sims for 1.8e18)\n", total,
                total / sim_seconds, designSpaceSize(true));

    // Full-granularity sweep estimate: scale the dominant ROB/LQ/SQ model
    // cost by the grid ratio (the paper's 3959s / 107 sims analogue).
    const double per_run = sweep_seconds / static_cast<double>(runs);
    double full_runs = 0;
    full_runs += 40.0 * 1024;   // ROB sizes per d-config
    full_runs += 40.0 * 256;    // LQ
    full_runs += 256;           // SQ
    full_runs += 20.0 * 32;     // icache fills
    full_runs += 20.0 * 8;      // fetch buffers
    const double full_estimate = trace_seconds + per_run * full_runs;
    std::printf("  full-granularity estimate: %.1fs = %.1f cycle-level "
                "sims; covers %.2e designs (paper: 107 sims for "
                "2.2e23)\n", full_estimate, full_estimate / sim_seconds,
                designSpaceSize(false));
    return 0;
}
