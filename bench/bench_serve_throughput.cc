/**
 * @file
 * Serving-throughput benchmark and CI regression gate for the serve
 * layer (src/serve), including the network front end.
 *
 * Phase A issues the same set of unique (region, design point) requests
 * two ways -- a scalar predictCpi loop (the pre-serve one-at-a-time
 * path) and the PredictionService with N concurrent clients -- checks
 * the predictions agree, and fails (exit 1) if the service is not
 * faster. Phase B replays the requests to measure cache-hit serving.
 * Phase C starts a NetServer on an ephemeral port and drives a mixed
 * hot/cold workload over real sockets against warm-path regions
 * (analysis pre-populated via warmRegions): alternating hot requests
 * (already-served points -- prediction-cache hits, Interactive class)
 * and cold requests (fresh design points -- full feature assembly +
 * inference, Bulk class). The latency metric is burst-completion
 * time: clients pipeline bursts of `socketBurst` requests and each
 * burst contributes ONE sample, the time from burst send to its last
 * response -- the latency an interactive design-loop client sees for
 * a batch of candidate configs (per-request timestamps inside a
 * pipelined burst would only measure queue position). The
 * tail-latency SLO gate is p99/p50 <= 2.0 on that distribution at
 * >= 0.9x the in-process serve QPS, with socket replies
 * bitwise-identical to in-process predict(). The latency run takes
 * the best of up to four attempts (fresh cold points each attempt, so
 * no attempt rides the previous one's cache).
 *
 * Modes:
 *   default        full model from artifacts/ (trains on first run)
 *   --smoke or CONCORDE_SMOKE=1
 *                  untrained model of the production layout; no
 *                  artifacts needed, runs in seconds (CI smoke gate)
 *
 * Writes a JSON summary to $CONCORDE_BENCH_JSON (default
 * BENCH_serve.json) for the CI bench stage to archive.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/stopwatch.hh"
#include "core/concorde.hh"
#include "ml/mlp.hh"
#include "serve/net_client.hh"
#include "serve/net_server.hh"
#include "serve/prediction_service.hh"
#include "serve/wire.hh"

using namespace concorde;

namespace
{

struct RunConfig
{
    bool smoke = false;
    size_t requests = 4096;
    size_t clients = 4;
    size_t maxBatch = 128;          ///< bulk class
    size_t deadlineUs = 200;        ///< bulk class
    size_t interactiveBatch = 32;
    size_t interactiveUs = 50;
    size_t socketBurst = 32;        ///< pipelined frames per client burst
    size_t hotEvery = 2;            ///< every Nth socket request is hot
    size_t socketAttempts = 4;
    uint32_t regionChunks = artifacts::kShortRegionChunks;
};

ConcordePredictor
smokePredictor(const FeatureConfig &cfg)
{
    // Production-shape network (Table 3 layout, 192x96 hidden) with
    // random weights: exercises the full serving pipeline at the real
    // per-request cost without training artifacts.
    return ConcordePredictor(artifacts::untrainedModel(cfg, 2026), cfg);
}

std::vector<UarchParams>
uniquePoints(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::unordered_set<uint64_t> seen;
    std::vector<UarchParams> points;
    points.reserve(n);
    const auto pow2 = [](int64_t v) {
        int64_t p = 1;
        while (p * 2 <= v)
            p *= 2;
        return p;
    };
    while (points.size() < n) {
        UarchParams p = UarchParams::sampleRandom(rng);
        // Quantize the large ranges to powers of two, the same
        // quantization the paper's design-space precompute uses
        // (Section 5.2.3) and the pattern a serving deployment sees.
        p.set(ParamId::RobSize, pow2(p.get(ParamId::RobSize)));
        p.set(ParamId::LqSize, pow2(p.get(ParamId::LqSize)));
        p.set(ParamId::SqSize, pow2(p.get(ParamId::SqSize)));
        if (seen.insert(p.hashKey()).second)
            points.push_back(p);
    }
    return points;
}

RegionSpec
benchRegion(uint64_t start_chunk, uint32_t chunks)
{
    RegionSpec spec;
    spec.programId = programIdByCode("S7");
    spec.traceId = 0;
    spec.startChunk = start_chunk;
    spec.numChunks = chunks;
    return spec;
}

struct ServeRun
{
    double seconds = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    std::vector<double> predictions;
};

/**
 * Drive the service in-process with `clients` threads, each submitting
 * bursts of `burst` requests round-robin over the point list (via the
 * legacy predictAsync shim, i.e. the Bulk class).
 */
ServeRun
driveService(serve::PredictionService &service,
             const std::vector<RegionSpec> &regions,
             const std::vector<UarchParams> &points, size_t clients,
             size_t burst)
{
    ServeRun run;
    run.predictions.assign(points.size(), 0.0);
    std::vector<std::vector<double>> latencies(clients);
    const size_t per_client = (points.size() + clients - 1) / clients;

    Stopwatch wall;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
            const size_t begin = c * per_client;
            const size_t end = std::min(points.size(), begin + per_client);
            auto &lat = latencies[c];
            size_t i = begin;
            while (i < end) {
                const size_t n = std::min(burst, end - i);
                std::vector<std::future<double>> futures;
                futures.reserve(n);
                std::vector<Stopwatch> timers(n);
                for (size_t k = 0; k < n; ++k) {
                    timers[k] = Stopwatch();
                    futures.push_back(service.predictAsync(
                        "default", regions[(i + k) % regions.size()],
                        points[i + k]));
                }
                for (size_t k = 0; k < n; ++k) {
                    run.predictions[i + k] = futures[k].get();
                    lat.push_back(timers[k].micros());
                }
                i += n;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    run.seconds = wall.seconds();

    std::vector<double> all;
    for (const auto &lat : latencies)
        all.insert(all.end(), lat.begin(), lat.end());
    if (!all.empty()) {
        sortSamples(all);
        run.p50Us = percentile(all, 0.50);
        run.p99Us = percentile(all, 0.99);
    }
    return run;
}

// ---- phase C: mixed hot/cold workload over real sockets ----

struct SocketRun
{
    bool ok = false;
    std::string error;
    double seconds = 0.0;
    double qps = 0.0;
    double p50Us = 0.0;
    double p90Us = 0.0;
    double p99Us = 0.0;
    size_t responses = 0;
    size_t samples = 0;
    size_t hotRequests = 0;
    size_t coldRequests = 0;
    size_t nonOk = 0;
};

/**
 * One client connection driving pipelined bursts. Each burst yields ONE
 * latency sample -- send to last response. Per-request timestamps
 * inside a pipelined burst would mostly measure the request's position
 * in the drain order (a uniform spread that pins p99/p50 near 2x by
 * construction); burst completion is what the submitting client
 * actually waits for.
 */
void
runSocketClient(uint16_t port, const std::vector<serve::PredictRequest>
                &workload, size_t burst, std::vector<double> &latencies,
                size_t &non_ok, std::string &error)
{
    try {
        serve::NetClient client("127.0.0.1", port);
        uint64_t nextId = 1;
        std::vector<uint8_t> bytes;
        size_t sent = 0;
        while (sent < workload.size()) {
            const size_t n = std::min(burst, workload.size() - sent);
            bytes.clear();
            std::unordered_map<uint64_t, bool> expect;
            expect.reserve(n);
            for (size_t i = 0; i < n; ++i) {
                serve::wire::RequestFrame frame;
                frame.requestId = nextId++;
                frame.request = workload[sent + i];
                expect.emplace(frame.requestId, true);
                serve::wire::encodeRequest(frame, bytes);
            }
            Stopwatch burstClock;
            client.sendRaw(bytes.data(), bytes.size());
            serve::wire::ResponseFrame reply;
            for (size_t i = 0; i < n; ++i) {
                if (!client.recvResponse(reply))
                    throw std::runtime_error("server closed connection");
                if (!expect.count(reply.requestId))
                    throw std::runtime_error("unexpected response id");
                expect.erase(reply.requestId);
                if (reply.response.status != serve::ServeStatus::OK)
                    ++non_ok;
            }
            latencies.push_back(burstClock.micros());
            sent += n;
        }
    } catch (const std::exception &e) {
        error = e.what();
    }
}

/**
 * One socket attempt over the pre-warmed regions: every `hotEvery`-th
 * request is hot -- an already-served phase-A point (prediction-cache
 * hit, Interactive class, answered straight off the decode path) --
 * and the rest are cold: fresh design points paying full feature
 * assembly + inference on the Bulk class. The gate checks that the
 * per-class batcher keeps burst completion flat across that mix, i.e.
 * bulk inference never starves the interactive repeat traffic sharing
 * the connection.
 */
SocketRun
socketAttempt(uint16_t port, const RunConfig &cfg,
              const std::vector<RegionSpec> &regions,
              const std::vector<UarchParams> &hot_points,
              const std::vector<UarchParams> &fresh_points)
{
    SocketRun run;
    const size_t total = fresh_points.size();
    const size_t per_client = (total + cfg.clients - 1) / cfg.clients;
    std::vector<std::vector<serve::PredictRequest>> workloads(cfg.clients);
    for (size_t c = 0; c < cfg.clients; ++c) {
        const size_t begin = c * per_client;
        const size_t end = std::min(total, begin + per_client);
        for (size_t i = begin; i < end; ++i) {
            serve::PredictRequest request;
            request.model = "default";
            if (i % cfg.hotEvery == 0) {
                // Phase A served hot_points[j] against regions[j % 2],
                // so the same pairing here is a guaranteed cache hit.
                const size_t j = i % hot_points.size();
                request.region = regions[j % regions.size()];
                request.params = hot_points[j];
                request.cls = serve::RequestClass::Interactive;
                ++run.hotRequests;
            } else {
                request.region = regions[i % regions.size()];
                request.params = fresh_points[i];
                request.cls = serve::RequestClass::Bulk;
                ++run.coldRequests;
            }
            workloads[c].push_back(std::move(request));
        }
    }

    std::vector<std::vector<double>> latencies(cfg.clients);
    std::vector<size_t> nonOk(cfg.clients, 0);
    std::vector<std::string> errors(cfg.clients);
    Stopwatch wall;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < cfg.clients; ++c) {
        threads.emplace_back([&, c]() {
            runSocketClient(port, workloads[c], cfg.socketBurst,
                            latencies[c], nonOk[c], errors[c]);
        });
    }
    for (auto &t : threads)
        t.join();
    run.seconds = wall.seconds();

    std::vector<double> all;
    for (size_t c = 0; c < cfg.clients; ++c) {
        if (!errors[c].empty()) {
            run.error = errors[c];
            return run;
        }
        all.insert(all.end(), latencies[c].begin(), latencies[c].end());
        run.nonOk += nonOk[c];
    }
    if (all.empty()) {
        run.error = "no responses";
        return run;
    }
    sortSamples(all);
    // Throughput counts individual requests; the latency percentiles
    // are over burst-completion samples.
    run.responses = run.hotRequests + run.coldRequests;
    run.samples = all.size();
    run.qps = static_cast<double>(run.responses) / run.seconds;
    run.p50Us = percentile(all, 0.50);
    run.p90Us = percentile(all, 0.90);
    run.p99Us = percentile(all, 0.99);
    run.ok = true;
    return run;
}

void
writeJson(const std::string &path, const RunConfig &cfg, double scalar_qps,
          double serve_qps, double hit_qps, double max_diff,
          const ServeRun &run, const SocketRun &socket,
          size_t socket_attempts, bool socket_bitwise,
          const serve::ServeStats &stats, bool pass)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"serve_throughput\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", cfg.smoke ? "smoke" : "full");
    std::fprintf(f, "  \"requests\": %zu,\n", cfg.requests);
    std::fprintf(f, "  \"clients\": %zu,\n", cfg.clients);
    std::fprintf(f, "  \"bulk_max_batch\": %zu,\n", cfg.maxBatch);
    std::fprintf(f, "  \"bulk_deadline_us\": %zu,\n", cfg.deadlineUs);
    std::fprintf(f, "  \"interactive_max_batch\": %zu,\n",
                 cfg.interactiveBatch);
    std::fprintf(f, "  \"interactive_deadline_us\": %zu,\n",
                 cfg.interactiveUs);
    std::fprintf(f, "  \"scalar_qps\": %.1f,\n", scalar_qps);
    std::fprintf(f, "  \"serve_qps\": %.1f,\n", serve_qps);
    std::fprintf(f, "  \"cache_hit_qps\": %.1f,\n", hit_qps);
    std::fprintf(f, "  \"speedup\": %.3f,\n", serve_qps / scalar_qps);
    std::fprintf(f, "  \"max_abs_diff\": %.3e,\n", max_diff);
    std::fprintf(f, "  \"latency_p50_us\": %.1f,\n", run.p50Us);
    std::fprintf(f, "  \"latency_p99_us\": %.1f,\n", run.p99Us);
    // Flat socket_* keys: tools/bench_summary.sh renders one-key-per-
    // line JSON, and these record the hot/cold split of the SLO run.
    // The socket percentiles are burst-completion latencies (one
    // sample per pipelined burst of socket_burst requests).
    std::fprintf(f, "  \"socket_qps\": %.1f,\n", socket.qps);
    std::fprintf(f, "  \"socket_p50_us\": %.1f,\n", socket.p50Us);
    std::fprintf(f, "  \"socket_p90_us\": %.1f,\n", socket.p90Us);
    std::fprintf(f, "  \"socket_p99_us\": %.1f,\n", socket.p99Us);
    std::fprintf(f, "  \"socket_p99_over_p50\": %.3f,\n",
                 socket.p50Us > 0.0 ? socket.p99Us / socket.p50Us : 0.0);
    std::fprintf(f, "  \"socket_qps_vs_inprocess\": %.3f,\n",
                 serve_qps > 0.0 ? socket.qps / serve_qps : 0.0);
    std::fprintf(f, "  \"socket_hot_requests\": %zu,\n",
                 socket.hotRequests);
    std::fprintf(f, "  \"socket_cold_requests\": %zu,\n",
                 socket.coldRequests);
    std::fprintf(f, "  \"socket_burst\": %zu,\n", cfg.socketBurst);
    std::fprintf(f, "  \"socket_burst_samples\": %zu,\n", socket.samples);
    std::fprintf(f, "  \"socket_attempts\": %zu,\n", socket_attempts);
    std::fprintf(f, "  \"socket_bitwise_identical\": %s,\n",
                 socket_bitwise ? "true" : "false");
    std::fprintf(f, "  \"service_latency_p50_us\": %.1f,\n",
                 stats.latency.p50Us);
    std::fprintf(f, "  \"service_latency_p90_us\": %.1f,\n",
                 stats.latency.p90Us);
    std::fprintf(f, "  \"service_latency_p99_us\": %.1f,\n",
                 stats.latency.p99Us);
    for (size_t s = 0; s < serve::kNumServeStatuses; ++s) {
        std::fprintf(f, "  \"status_%s\": %llu,\n",
                     serve::serveStatusName(
                         static_cast<serve::ServeStatus>(s)),
                     static_cast<unsigned long long>(stats.byStatus[s]));
    }
    std::fprintf(f, "  \"served_fast\": %llu,\n",
                 static_cast<unsigned long long>(stats.servedFast));
    std::fprintf(f, "  \"served_fallback_sim\": %llu,\n",
                 static_cast<unsigned long long>(stats.servedFallbackSim));
    std::fprintf(f, "  \"flagged_ood\": %llu,\n",
                 static_cast<unsigned long long>(stats.flaggedOod));
    std::fprintf(f, "  \"fallback_rejected_overload\": %llu,\n",
                 static_cast<unsigned long long>(
                     stats.fallbackRejectedOverload));
    std::fprintf(f, "  \"batches\": %llu,\n",
                 static_cast<unsigned long long>(stats.queue.batches));
    std::fprintf(f, "  \"batch_size_histogram\": {");
    bool first = true;
    for (size_t s = 1; s < stats.queue.batchSizeCounts.size(); ++s) {
        if (!stats.queue.batchSizeCounts[s])
            continue;
        std::fprintf(f, "%s\"%zu\": %llu", first ? "" : ", ", s,
                     static_cast<unsigned long long>(
                         stats.queue.batchSizeCounts[s]));
        first = false;
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(stats.cache.hits));
    std::fprintf(f, "  \"cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(stats.cache.misses));
    std::fprintf(f, "  \"gate_pass\": %s\n", pass ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    RunConfig cfg;
    const char *smoke_env = std::getenv("CONCORDE_SMOKE");
    cfg.smoke = smoke_env && *smoke_env && std::strcmp(smoke_env, "0") != 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            cfg.smoke = true;
        } else {
            std::fprintf(stderr, "usage: bench_serve_throughput "
                         "[--smoke]\n");
            return 2;
        }
    }
    if (cfg.smoke) {
        cfg.requests = 768;
        cfg.clients = 2;
        cfg.regionChunks = 2;
    }

    std::printf("=== serve-layer throughput (%s mode) ===\n",
                cfg.smoke ? "smoke" : "full");

    const FeatureConfig feature_cfg = cfg.smoke
        ? FeatureConfig{} : artifacts::featureConfig();
    ConcordePredictor predictor = cfg.smoke
        ? smokePredictor(feature_cfg)
        : ConcordePredictor(artifacts::fullModel(), feature_cfg);

    std::vector<RegionSpec> regions;
    for (int r = 0; r < 2; ++r)
        regions.push_back(benchRegion(16 + 8 * r, cfg.regionChunks));

    // One unique-point pool, sliced so the socket attempts never replay
    // a point an earlier phase (or attempt) already cached.
    const size_t attempts_budget = 1 + cfg.socketAttempts;
    const auto pool =
        uniquePoints(cfg.requests * (1 + attempts_budget), 77);
    const std::vector<UarchParams> points(pool.begin(),
                                          pool.begin() + cfg.requests);

    // ---- scalar baseline: the same requests, one at a time ----
    std::vector<double> scalar_cpis(points.size());
    double scalar_s;
    {
        std::vector<FeatureProvider> providers;
        for (const auto &region : regions)
            providers.emplace_back(region, feature_cfg);
        // Warm the per-region analysis so both paths measure serving
        // cost, not one-time trace analysis.
        for (auto &provider : providers)
            (void)predictor.predictCpi(provider, points[0]);
        Stopwatch t;
        for (size_t i = 0; i < points.size(); ++i) {
            scalar_cpis[i] = predictor.predictCpi(
                providers[i % providers.size()], points[i]);
        }
        scalar_s = t.seconds();
    }
    const double n = static_cast<double>(points.size());
    const double scalar_qps = n / scalar_s;
    std::printf("  scalar predictCpi loop:  %9.0f QPS\n", scalar_qps);

    // ---- dynamic-batching service, same requests ----
    serve::ServeConfig sc;
    sc.batching.policy(serve::RequestClass::Bulk) = {
        cfg.maxBatch, std::chrono::microseconds(cfg.deadlineUs)};
    sc.batching.policy(serve::RequestClass::Interactive) = {
        cfg.interactiveBatch, std::chrono::microseconds(cfg.interactiveUs)};
    sc.cacheCapacity = 1 << 16;
    sc.poolThreads = 1;
    serve::PredictionService service(sc);
    service.registry().add("default", std::move(predictor));
    // The warm path: pre-populate analysis for the hot regions.
    if (service.warmRegions("default", regions) != serve::ServeStatus::OK) {
        std::fprintf(stderr, "warmRegions failed\n");
        return 1;
    }

    const ServeRun run = driveService(service, regions, points,
                                      cfg.clients, cfg.maxBatch);
    const double serve_qps = n / run.seconds;
    std::printf("  batched serve layer:     %9.0f QPS  (%.2fx, p50 "
                "%.0fus p99 %.0fus)\n", serve_qps, serve_qps / scalar_qps,
                run.p50Us, run.p99Us);

    double max_diff = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
        max_diff = std::max(max_diff, std::abs(scalar_cpis[i]
                                               - run.predictions[i]));
    }
    std::printf("  max |scalar - served| CPI diff: %.2e\n", max_diff);

    // ---- cache replay: identical requests become memory lookups ----
    const ServeRun replay = driveService(service, regions, points,
                                         cfg.clients, cfg.maxBatch);
    const double hit_qps = n / replay.seconds;
    double replay_diff = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
        replay_diff = std::max(replay_diff, std::abs(scalar_cpis[i]
                                                     - replay.predictions[i]));
    }
    const serve::ServeStats mid_stats = service.stats();
    std::printf("  cache-hit replay:        %9.0f QPS  (%llu hits, "
                "%llu misses, diff %.1e)\n", hit_qps,
                static_cast<unsigned long long>(mid_stats.cache.hits),
                static_cast<unsigned long long>(mid_stats.cache.misses),
                replay_diff);

    // ---- socket front end: mixed hot/cold tail-latency SLO ----
    serve::NetServer server(service);
    server.start();
    SocketRun best;
    size_t attempts_used = 0;
    for (size_t attempt = 0; attempt < cfg.socketAttempts; ++attempt) {
        // Fresh cold points per attempt, so no attempt rides an earlier
        // attempt's prediction cache. The hot side is the phase-A point
        // set, cached by construction.
        const size_t slice = cfg.requests * (1 + attempt);
        const std::vector<UarchParams> fresh(
            pool.begin() + static_cast<ptrdiff_t>(slice),
            pool.begin() + static_cast<ptrdiff_t>(slice + cfg.requests));
        const SocketRun sr =
            socketAttempt(server.port(), cfg, regions, points, fresh);
        ++attempts_used;
        if (!sr.ok) {
            std::printf("  socket attempt %zu failed: %s\n", attempt + 1,
                        sr.error.c_str());
            continue;
        }
        std::printf("  socket mixed hot/cold:   %9.0f QPS  (burst p50 "
                    "%.0fus p90 %.0fus p99 %.0fus, ratio %.2f, %zu hot "
                    "/ %zu cold)\n", sr.qps, sr.p50Us, sr.p90Us,
                    sr.p99Us, sr.p50Us > 0.0 ? sr.p99Us / sr.p50Us : 0.0,
                    sr.hotRequests, sr.coldRequests);
        if (!best.ok || sr.p99Us / sr.p50Us < best.p99Us / best.p50Us)
            best = sr;
        if (best.p99Us <= 2.0 * best.p50Us &&
            best.qps >= 0.9 * serve_qps)
            break;      // both socket gates already satisfied
    }

    // Socket replay of phase-A points: every reply must be bitwise
    // identical to the in-process predictions (cache-key identity
    // through the wire codec).
    bool socket_bitwise = true;
    {
        const size_t check = std::min<size_t>(points.size(), 256);
        std::vector<serve::PredictRequest> requests;
        for (size_t i = 0; i < check; ++i) {
            serve::PredictRequest request;
            request.model = "default";
            request.region = regions[i % regions.size()];
            request.params = points[i];
            requests.push_back(std::move(request));
        }
        try {
            serve::NetClient client("127.0.0.1", server.port());
            const auto replies = client.predictBurst(requests);
            for (size_t i = 0; i < check; ++i) {
                if (replies[i].status != serve::ServeStatus::OK ||
                    replies[i].cpi != run.predictions[i])
                    socket_bitwise = false;
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "socket replay failed: %s\n", e.what());
            socket_bitwise = false;
        }
    }
    server.stop();
    const serve::ServeStats stats = service.stats();

    // ---- gate ----
    // Identical predictions (the batched GEMM matches the scalar MLP to
    // float round-off; anything above 1e-6 CPI means a real divergence)
    // and strictly higher throughput than the scalar path.
    bool pass = true;
    if (max_diff > 1e-6 || replay_diff > 1e-6) {
        std::printf("  GATE FAIL: served predictions diverge from "
                    "scalar path\n");
        pass = false;
    }
    if (serve_qps <= scalar_qps) {
        std::printf("  GATE FAIL: dynamic batching (%.0f QPS) not "
                    "faster than scalar loop (%.0f QPS)\n", serve_qps,
                    scalar_qps);
        pass = false;
    }
    // The replay phase must actually have been served from the cache.
    if (mid_stats.cache.hits < points.size()) {
        std::printf("  GATE FAIL: cache served %llu hits, expected >= "
                    "%zu\n",
                    static_cast<unsigned long long>(mid_stats.cache.hits),
                    points.size());
        pass = false;
    }
    // Tail-latency SLO over the socket: burst-completion p99 within 2x
    // of p50 on the mixed hot/cold workload, at no worse than 0.9x
    // in-process QPS.
    if (!best.ok) {
        std::printf("  GATE FAIL: no successful socket attempt\n");
        pass = false;
    } else {
        const double ratio =
            best.p50Us > 0.0 ? best.p99Us / best.p50Us : 1e9;
        if (ratio > 2.0) {
            std::printf("  GATE FAIL: socket p99/p50 = %.2f > 2.0\n",
                        ratio);
            pass = false;
        }
        if (best.qps < 0.9 * serve_qps) {
            std::printf("  GATE FAIL: socket QPS %.0f < 0.9x in-process "
                        "%.0f\n", best.qps, serve_qps);
            pass = false;
        }
        if (best.nonOk > 0) {
            std::printf("  GATE FAIL: %zu socket requests not OK\n",
                        best.nonOk);
            pass = false;
        }
    }
    if (!socket_bitwise) {
        std::printf("  GATE FAIL: socket replies not bitwise identical "
                    "to in-process predictions\n");
        pass = false;
    }

    const char *json_env = std::getenv("CONCORDE_BENCH_JSON");
    const std::string json_path =
        json_env && *json_env ? json_env : "BENCH_serve.json";
    writeJson(json_path, cfg, scalar_qps, serve_qps, hit_qps, max_diff,
              run, best, attempts_used, socket_bitwise, stats, pass);
    std::printf("  wrote %s\n", json_path.c_str());
    std::printf(pass ? "  GATE PASS\n" : "  GATE FAIL\n");
    return pass ? 0 : 1;
}
