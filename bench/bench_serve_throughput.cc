/**
 * @file
 * Serving-throughput benchmark and CI regression gate for the dynamic
 * batching layer (src/serve).
 *
 * Phase A issues the same set of unique (region, design point) requests
 * two ways -- a scalar predictCpi loop (the pre-serve one-at-a-time
 * path) and the PredictionService with N concurrent clients -- checks
 * the predictions agree, and fails (exit 1) if the service is not
 * faster. Phase B replays the requests to measure cache-hit serving.
 *
 * Modes:
 *   default        full model from artifacts/ (trains on first run)
 *   --smoke or CONCORDE_SMOKE=1
 *                  untrained model of the production layout; no
 *                  artifacts needed, runs in seconds (CI smoke gate)
 *
 * Writes a JSON summary to $CONCORDE_BENCH_JSON (default
 * BENCH_serve.json) for the CI bench stage to archive.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util.hh"
#include "common/stopwatch.hh"
#include "core/concorde.hh"
#include "ml/mlp.hh"
#include "serve/prediction_service.hh"

using namespace concorde;

namespace
{

struct RunConfig
{
    bool smoke = false;
    size_t requests = 4096;
    size_t clients = 4;
    size_t maxBatch = 128;
    size_t deadlineUs = 200;
    uint32_t regionChunks = artifacts::kShortRegionChunks;
};

ConcordePredictor
smokePredictor(const FeatureConfig &cfg)
{
    // Production-shape network (Table 3 layout, 192x96 hidden) with
    // random weights: exercises the full serving pipeline at the real
    // per-request cost without training artifacts.
    return ConcordePredictor(artifacts::untrainedModel(cfg, 2026), cfg);
}

std::vector<UarchParams>
uniquePoints(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::unordered_set<uint64_t> seen;
    std::vector<UarchParams> points;
    points.reserve(n);
    const auto pow2 = [](int64_t v) {
        int64_t p = 1;
        while (p * 2 <= v)
            p *= 2;
        return p;
    };
    while (points.size() < n) {
        UarchParams p = UarchParams::sampleRandom(rng);
        // Quantize the large ranges to powers of two, the same
        // quantization the paper's design-space precompute uses
        // (Section 5.2.3) and the pattern a serving deployment sees.
        p.set(ParamId::RobSize, pow2(p.get(ParamId::RobSize)));
        p.set(ParamId::LqSize, pow2(p.get(ParamId::LqSize)));
        p.set(ParamId::SqSize, pow2(p.get(ParamId::SqSize)));
        if (seen.insert(p.hashKey()).second)
            points.push_back(p);
    }
    return points;
}

struct ServeRun
{
    double seconds = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    std::vector<double> predictions;
};

/**
 * Drive the service with `clients` threads, each submitting bursts of
 * maxBatch requests round-robin over the point list.
 */
ServeRun
driveService(serve::PredictionService &service,
             const std::vector<RegionSpec> &regions,
             const std::vector<UarchParams> &points, size_t clients,
             size_t burst)
{
    ServeRun run;
    run.predictions.assign(points.size(), 0.0);
    std::vector<std::vector<double>> latencies(clients);
    const size_t per_client = (points.size() + clients - 1) / clients;

    Stopwatch wall;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
            const size_t begin = c * per_client;
            const size_t end = std::min(points.size(), begin + per_client);
            auto &lat = latencies[c];
            size_t i = begin;
            while (i < end) {
                const size_t n = std::min(burst, end - i);
                std::vector<std::future<double>> futures;
                futures.reserve(n);
                std::vector<Stopwatch> timers(n);
                for (size_t k = 0; k < n; ++k) {
                    timers[k] = Stopwatch();
                    futures.push_back(service.predictAsync(
                        "default", regions[(i + k) % regions.size()],
                        points[i + k]));
                }
                for (size_t k = 0; k < n; ++k) {
                    run.predictions[i + k] = futures[k].get();
                    lat.push_back(timers[k].micros());
                }
                i += n;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    run.seconds = wall.seconds();

    std::vector<double> all;
    for (const auto &lat : latencies)
        all.insert(all.end(), lat.begin(), lat.end());
    std::sort(all.begin(), all.end());
    if (!all.empty()) {
        run.p50Us = all[all.size() / 2];
        run.p99Us = all[static_cast<size_t>(0.99 * (all.size() - 1))];
    }
    return run;
}

void
writeJson(const std::string &path, const RunConfig &cfg, double scalar_qps,
          double serve_qps, double hit_qps, double max_diff,
          const ServeRun &run, const serve::ServeStats &stats, bool pass)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"serve_throughput\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", cfg.smoke ? "smoke" : "full");
    std::fprintf(f, "  \"requests\": %zu,\n", cfg.requests);
    std::fprintf(f, "  \"clients\": %zu,\n", cfg.clients);
    std::fprintf(f, "  \"max_batch\": %zu,\n", cfg.maxBatch);
    std::fprintf(f, "  \"deadline_us\": %zu,\n", cfg.deadlineUs);
    std::fprintf(f, "  \"scalar_qps\": %.1f,\n", scalar_qps);
    std::fprintf(f, "  \"serve_qps\": %.1f,\n", serve_qps);
    std::fprintf(f, "  \"cache_hit_qps\": %.1f,\n", hit_qps);
    std::fprintf(f, "  \"speedup\": %.3f,\n", serve_qps / scalar_qps);
    std::fprintf(f, "  \"max_abs_diff\": %.3e,\n", max_diff);
    std::fprintf(f, "  \"latency_p50_us\": %.1f,\n", run.p50Us);
    std::fprintf(f, "  \"latency_p99_us\": %.1f,\n", run.p99Us);
    std::fprintf(f, "  \"batches\": %llu,\n",
                 static_cast<unsigned long long>(stats.queue.batches));
    std::fprintf(f, "  \"batch_size_histogram\": {");
    bool first = true;
    for (size_t s = 1; s < stats.queue.batchSizeCounts.size(); ++s) {
        if (!stats.queue.batchSizeCounts[s])
            continue;
        std::fprintf(f, "%s\"%zu\": %llu", first ? "" : ", ", s,
                     static_cast<unsigned long long>(
                         stats.queue.batchSizeCounts[s]));
        first = false;
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(stats.cache.hits));
    std::fprintf(f, "  \"cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(stats.cache.misses));
    std::fprintf(f, "  \"gate_pass\": %s\n", pass ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    RunConfig cfg;
    const char *smoke_env = std::getenv("CONCORDE_SMOKE");
    cfg.smoke = smoke_env && *smoke_env && std::strcmp(smoke_env, "0") != 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            cfg.smoke = true;
        } else {
            std::fprintf(stderr, "usage: bench_serve_throughput "
                         "[--smoke]\n");
            return 2;
        }
    }
    if (cfg.smoke) {
        cfg.requests = 768;
        cfg.clients = 2;
        cfg.regionChunks = 2;
    }

    std::printf("=== serve-layer throughput (%s mode) ===\n",
                cfg.smoke ? "smoke" : "full");

    const FeatureConfig feature_cfg = cfg.smoke
        ? FeatureConfig{} : artifacts::featureConfig();
    ConcordePredictor predictor = cfg.smoke
        ? smokePredictor(feature_cfg)
        : ConcordePredictor(artifacts::fullModel(), feature_cfg);

    std::vector<RegionSpec> regions;
    for (int r = 0; r < 2; ++r) {
        RegionSpec spec;
        spec.programId = programIdByCode("S7");
        spec.traceId = 0;
        spec.startChunk = 16 + 8 * r;
        spec.numChunks = cfg.regionChunks;
        regions.push_back(spec);
    }
    const auto points = uniquePoints(cfg.requests, 77);

    // ---- scalar baseline: the same requests, one at a time ----
    std::vector<double> scalar_cpis(points.size());
    double scalar_s;
    {
        std::vector<FeatureProvider> providers;
        for (const auto &region : regions)
            providers.emplace_back(region, feature_cfg);
        // Warm the per-region analysis so both paths measure serving
        // cost, not one-time trace analysis.
        for (auto &provider : providers)
            (void)predictor.predictCpi(provider, points[0]);
        Stopwatch t;
        for (size_t i = 0; i < points.size(); ++i) {
            scalar_cpis[i] = predictor.predictCpi(
                providers[i % providers.size()], points[i]);
        }
        scalar_s = t.seconds();
    }
    const double n = static_cast<double>(points.size());
    const double scalar_qps = n / scalar_s;
    std::printf("  scalar predictCpi loop:  %9.0f QPS\n", scalar_qps);

    // ---- dynamic-batching service, same requests ----
    serve::ServeConfig sc;
    sc.batching.maxBatch = cfg.maxBatch;
    sc.batching.maxDelay = std::chrono::microseconds(cfg.deadlineUs);
    sc.cacheCapacity = 1 << 16;
    sc.poolThreads = 1;
    serve::PredictionService service(sc);
    service.registry().add("default", std::move(predictor));
    for (const auto &region : regions)
        (void)service.predict("default", region, points[0]);

    const ServeRun run = driveService(service, regions, points,
                                      cfg.clients, cfg.maxBatch);
    const double serve_qps = n / run.seconds;
    std::printf("  batched serve layer:     %9.0f QPS  (%.2fx, p50 "
                "%.0fus p99 %.0fus)\n", serve_qps, serve_qps / scalar_qps,
                run.p50Us, run.p99Us);

    double max_diff = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
        max_diff = std::max(max_diff, std::abs(scalar_cpis[i]
                                               - run.predictions[i]));
    }
    std::printf("  max |scalar - served| CPI diff: %.2e\n", max_diff);

    // ---- cache replay: identical requests become memory lookups ----
    const ServeRun replay = driveService(service, regions, points,
                                         cfg.clients, cfg.maxBatch);
    const double hit_qps = n / replay.seconds;
    double replay_diff = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
        replay_diff = std::max(replay_diff, std::abs(scalar_cpis[i]
                                                     - replay.predictions[i]));
    }
    const serve::ServeStats stats = service.stats();
    std::printf("  cache-hit replay:        %9.0f QPS  (%llu hits, "
                "%llu misses, diff %.1e)\n", hit_qps,
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.misses),
                replay_diff);

    // ---- gate ----
    // Identical predictions (the batched GEMM matches the scalar MLP to
    // float round-off; anything above 1e-6 CPI means a real divergence)
    // and strictly higher throughput than the scalar path.
    bool pass = true;
    if (max_diff > 1e-6 || replay_diff > 1e-6) {
        std::printf("  GATE FAIL: served predictions diverge from "
                    "scalar path\n");
        pass = false;
    }
    if (serve_qps <= scalar_qps) {
        std::printf("  GATE FAIL: dynamic batching (%.0f QPS) not "
                    "faster than scalar loop (%.0f QPS)\n", serve_qps,
                    scalar_qps);
        pass = false;
    }
    // The replay phase must actually have been served from the cache.
    if (stats.cache.hits < points.size()) {
        std::printf("  GATE FAIL: cache served %llu hits, expected >= "
                    "%zu\n",
                    static_cast<unsigned long long>(stats.cache.hits),
                    points.size());
        pass = false;
    }

    const char *json_env = std::getenv("CONCORDE_BENCH_JSON");
    const std::string json_path =
        json_env && *json_env ? json_env : "BENCH_serve.json";
    writeJson(json_path, cfg, scalar_qps, serve_qps, hit_qps, max_diff,
              run, stats, pass);
    std::printf("  wrote %s\n", json_path.c_str());
    std::printf(pass ? "  GATE PASS\n" : "  GATE FAIL\n");
    return pass ? 0 : 1;
}
