/**
 * @file
 * Table 1: the microarchitectural design space -- every parameter, its
 * range, the ARM N1 value, and the total combination counts (full and
 * quantized grids, Section 5.2.3).
 */

#include <cstdio>

#include "uarch/params.hh"

using namespace concorde;

int
main()
{
    std::printf("=== Table 1: design-parameter space ===\n");
    std::printf("  %-38s %-18s %10s %10s\n", "Parameter", "Range",
                "#values", "ARM N1");
    const UarchParams n1 = UarchParams::armN1();
    for (const auto &info : paramTable()) {
        char range[32];
        std::snprintf(range, sizeof(range), "%lld..%lld",
                      static_cast<long long>(info.minValue),
                      static_cast<long long>(info.maxValue));
        std::printf("  %-38s %-18s %10lld %10lld\n", info.name, range,
                    static_cast<long long>(info.cardinality),
                    static_cast<long long>(n1.get(info.id)));
    }
    std::printf("\n  total parameter combinations (full sweep):      "
                "%.2e (paper: ~2.2e23)\n", designSpaceSize(false));
    std::printf("  total parameter combinations (quantized sweep): "
                "%.2e (paper: ~1.8e18)\n", designSpaceSize(true));
    return 0;
}
