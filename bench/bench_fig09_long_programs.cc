/**
 * @file
 * Figure 9: estimating the CPI of long programs by averaging Concorde's
 * predictions over randomly sampled regions, vs the ground truth from
 * simulating the full program. Sweeps the number of sampled regions.
 */

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "core/concorde.hh"
#include "sim/o3_core.hh"

using namespace concorde;

int
main()
{
    // The paper's ten programs at 1B instructions each; ours are the same
    // programs at ~1M instructions (512 chunks).
    const std::vector<const char *> codes = {"P12", "P9", "P2", "P11",
                                             "O4", "P7", "S5", "O2", "S7",
                                             "S6"};
    const std::vector<int> sample_counts = {10, 30, 100};
    const uint64_t program_chunks = 512;
    const UarchParams n1 = UarchParams::armN1();

    // As in the paper, the long-region model is the building block for
    // long-program estimation.
    ConcordePredictor predictor(artifacts::longModel(),
                                artifacts::featureConfig());

    std::vector<double> true_cpis(codes.size(), 0.0);
    std::vector<std::vector<double>> errs(
        codes.size(), std::vector<double>(sample_counts.size(), 0.0));

    parallelFor(codes.size() * (1 + sample_counts.size()), [&](size_t w) {
        const size_t p = w / (1 + sample_counts.size());
        const size_t k = w % (1 + sample_counts.size());
        const int pid = programIdByCode(codes[p]);
        if (k == 0) {
            // Ground truth: simulate the whole program in one pass.
            RegionSpec whole{pid, 0, 0,
                             static_cast<uint32_t>(program_chunks)};
            RegionAnalysis analysis(whole, 0);
            true_cpis[p] = simulateRegion(n1, analysis).cpi();
        } else {
            errs[p][k - 1] = predictor.predictLongProgram(
                n1, pid, 0, program_chunks, sample_counts[k - 1],
                artifacts::kLongRegionChunks, 42 + k);
        }
    });

    std::printf("=== Figure 9: long-program CPI via region sampling "
                "===\n");
    std::printf("  %-6s %10s", "Code", "true CPI");
    for (int s : sample_counts)
        std::printf("  err@%-3d(%%)", s);
    std::printf("\n");

    std::vector<double> avg(sample_counts.size(), 0.0);
    for (size_t p = 0; p < codes.size(); ++p) {
        std::printf("  %-6s %10.3f", codes[p], true_cpis[p]);
        for (size_t k = 0; k < sample_counts.size(); ++k) {
            const double err =
                std::abs(errs[p][k] - true_cpis[p]) / true_cpis[p];
            avg[k] += err;
            std::printf("  %9.2f ", 100 * err);
        }
        std::printf("\n");
    }
    std::printf("  averages:        ");
    for (size_t k = 0; k < sample_counts.size(); ++k)
        std::printf("  %9.2f ", 100 * avg[k] / codes.size());
    std::printf("\n  paper: ~3.5%% average error at 100 samples, "
                "improving with more samples\n");
    return 0;
}
