/**
 * @file
 * Figure 6: CPI-prediction error broken down by benchmark (average and
 * 90th percentile per program).
 */

#include <map>

#include "bench_util.hh"

using namespace concorde;

int
main()
{
    const Dataset &test = artifacts::mainTest();
    const TrainedModel &model = artifacts::fullModel();
    const auto errors = benchutil::relativeErrors(model, test);

    std::map<int, std::vector<double>> per_program;
    for (size_t i = 0; i < test.size(); ++i)
        per_program[test.meta[i].region.programId].push_back(errors[i]);

    std::printf("=== Figure 6: error breakdown across benchmarks ===\n");
    std::printf("  %-6s %-24s %10s %10s %6s\n", "Code", "Program",
                "avg err(%)", "p90 err(%)", "n");
    double worst_avg = 0.0, worst_p90 = 0.0;
    for (const auto &[pid, errs] : per_program) {
        const auto stats = benchutil::summarize(errs);
        const auto &info = workloadCorpus()[pid];
        std::printf("  %-6s %-24s %10.2f %10.2f %6zu\n",
                    info.code().c_str(), info.profile.name.c_str(),
                    100 * stats.mean, 100 * stats.p90, stats.count);
        worst_avg = std::max(worst_avg, stats.mean);
        worst_p90 = std::max(worst_p90, stats.p90);
    }
    std::printf("  worst program: avg %.2f%%, p90 %.2f%% "
                "(paper: capped at 4.2%% / 8.9%%)\n", 100 * worst_avg,
                100 * worst_p90);
    return 0;
}
