/**
 * @file
 * Figure 4: average instruction overlap between each test region and its
 * closest training region (the training region with maximum instruction
 * overlap), per program. Low overlap rules out memorization.
 */

#include <map>

#include "bench_util.hh"

using namespace concorde;

int
main()
{
    const Dataset &train = artifacts::mainTrain();
    const Dataset &test = artifacts::mainTest();

    // Index train regions by (program, trace).
    std::map<std::pair<int, int>, std::vector<std::pair<uint64_t, uint64_t>>>
        train_intervals;
    for (const auto &meta : train.meta) {
        train_intervals[{meta.region.programId, meta.region.traceId}]
            .emplace_back(meta.region.startChunk,
                          meta.region.startChunk + meta.region.numChunks);
    }

    std::map<int, std::pair<double, size_t>> per_program; // sum, count
    for (const auto &meta : test.meta) {
        const uint64_t begin = meta.region.startChunk;
        const uint64_t end = begin + meta.region.numChunks;
        double best = 0.0;
        auto it = train_intervals.find(
            {meta.region.programId, meta.region.traceId});
        if (it != train_intervals.end()) {
            for (const auto &[tb, te] : it->second) {
                const uint64_t lo = std::max(begin, tb);
                const uint64_t hi = std::min(end, te);
                if (hi > lo) {
                    best = std::max(
                        best, static_cast<double>(hi - lo)
                            / static_cast<double>(end - begin));
                }
            }
        }
        auto &[sum, count] = per_program[meta.region.programId];
        sum += best;
        ++count;
    }

    std::printf("=== Figure 4: average test/train region overlap ===\n");
    std::printf("  %-6s %-24s %10s %8s\n", "Code", "Program",
                "overlap(%)", "n");
    double total = 0.0;
    size_t total_n = 0;
    for (const auto &[pid, acc] : per_program) {
        const auto &info = workloadCorpus()[pid];
        std::printf("  %-6s %-24s %10.2f %8zu\n", info.code().c_str(),
                    info.profile.name.c_str(), 100.0 * acc.first
                        / static_cast<double>(acc.second), acc.second);
        total += acc.first;
        total_n += acc.second;
    }
    std::printf("  corpus average overlap: %.2f%% (paper: 16.86%%)\n",
                100.0 * total / static_cast<double>(total_n));
    return 0;
}
