/**
 * @file
 * Multi-process scale-out benchmark and CI regression gate for the
 * dataset/sweep supervisor-worker protocol (concorde_cli dataset
 * workers=N / sweep workers=N).
 *
 * Three phases, all driving the real CLI binary:
 *
 *   dataset   time an in-process serial build vs a 2-worker supervised
 *             build of the same directory (best-of-N, fresh directories
 *             per attempt so resume never short-circuits an attempt),
 *             then byte-compare manifest + every shard across serial,
 *             scaled, and an in-process API reference
 *   crash     crash-inject every worker (CONCORDE_WORKER_CRASH_AFTER_
 *             SHARDS=1) and require the supervisor's respawn loop to
 *             converge to the same bytes
 *   sweep     serial `sweep out=` vs `sweep workers=2 out=`; the merged
 *             result files must be bitwise-identical
 *
 * Gates (exit 1 on failure):
 *   - all three byte-identity checks
 *   - scaled wall-clock not a regression: speedup >= 0.5 (this box may
 *     have a single core, so real scaling is *reported*, not gated)
 *
 * Modes: --smoke or CONCORDE_SMOKE=1 shrinks sizes and attempts. Writes
 * a JSON summary to $CONCORDE_BENCH_JSON (default BENCH_scaleout.json).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "common/stopwatch.hh"
#include "core/artifacts.hh"
#include "core/concorde.hh"
#include "core/dataset.hh"
#include "core/model_artifact.hh"

using namespace concorde;

namespace
{

struct RunConfig
{
    bool smoke = false;
    size_t samples = 96;
    size_t shardSamples = 8;
    size_t workers = 2;
    int attempts = 3;
};

int
run(const std::string &cmd)
{
    const std::string full = cmd + " >/dev/null 2>&1";
    const int status = std::system(full.c_str());
    return status == -1 ? -1 : WEXITSTATUS(status);
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return "<unreadable:" + path + ">";
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = "/tmp/concorde_bench_scaleout_" + name;
    run("rm -rf '" + dir + "' && mkdir -p '" + dir + "'");
    return dir;
}

/** Manifest + every shard of `dir` byte-identical to `ref`. */
bool
dirsIdentical(const std::string &dir, const std::string &ref,
              size_t num_shards)
{
    if (fileBytes(DatasetManifest::manifestFile(dir)) !=
        fileBytes(DatasetManifest::manifestFile(ref)))
        return false;
    for (size_t s = 0; s < num_shards; ++s) {
        if (fileBytes(DatasetManifest::shardFile(dir, s)) !=
            fileBytes(DatasetManifest::shardFile(ref, s)))
            return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    RunConfig cfg;
    const char *smoke_env = std::getenv("CONCORDE_SMOKE");
    cfg.smoke = smoke_env && *smoke_env && std::strcmp(smoke_env, "0") != 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            cfg.smoke = true;
        } else {
            std::fprintf(stderr, "usage: bench_scaleout [--smoke]\n");
            return 2;
        }
    }
    if (cfg.smoke) {
        cfg.samples = 48;
        cfg.attempts = 2;
    }

    std::printf("=== multi-process scale-out (%s mode) ===\n",
                cfg.smoke ? "smoke" : "full");

    const std::string cli = CONCORDE_CLI_PATH;
    const uint64_t seed = 9001;
    const std::string sizes =
        " samples=" + std::to_string(cfg.samples) +
        " shard=" + std::to_string(cfg.shardSamples) +
        " chunks=2 seed=" + std::to_string(seed);

    // In-process API reference for the identity checks (not timed).
    DatasetConfig ref_config;
    ref_config.numSamples = cfg.samples;
    ref_config.regionChunks = 2;
    ref_config.seed = seed;
    ref_config.features = artifacts::featureConfig();
    const std::string ref = freshDir("ref");
    buildDatasetShards(ref_config, ref, cfg.shardSamples);
    const size_t num_shards =
        DatasetManifest::load(DatasetManifest::manifestFile(ref))
            .numShards();
    std::printf("  %zu samples in %zu shards, %zu workers\n", cfg.samples,
                num_shards, cfg.workers);

    // ---- phase 1: serial vs scaled wall-clock + byte identity ----
    // Fresh directories every attempt: a resumed directory is a no-op
    // and would make later attempts measure nothing.
    const std::string serial_dir = freshDir("serial");
    const std::string multi_dir = freshDir("multi");
    double serial_s = 1e30;
    double multi_s = 1e30;
    bool runs_ok = true;
    for (int r = 0; r < cfg.attempts; ++r) {
        freshDir("serial");
        freshDir("multi");
        Stopwatch serial_timer;
        runs_ok &= run(cli + " dataset out=" + serial_dir + sizes) == 0;
        serial_s = std::min(serial_s, serial_timer.seconds());
        Stopwatch multi_timer;
        runs_ok &= run(cli + " dataset out=" + multi_dir + sizes +
                       " workers=" + std::to_string(cfg.workers)) == 0;
        multi_s = std::min(multi_s, multi_timer.seconds());
    }
    const double speedup = serial_s / multi_s;
    const bool dataset_identical = runs_ok &&
        dirsIdentical(serial_dir, ref, num_shards) &&
        dirsIdentical(multi_dir, ref, num_shards);
    std::printf("  serial build:    %.3fs\n", serial_s);
    std::printf("  %zu-worker build: %.3fs (%.2fx; informational on "
                "small machines)\n", cfg.workers, multi_s, speedup);
    std::printf("  dataset bytes identical: %s\n",
                dataset_identical ? "yes" : "NO");

    // ---- phase 2: crash-injected workers must converge ----
    const std::string crash_dir = freshDir("crash");
    ::setenv("CONCORDE_WORKER_CRASH_AFTER_SHARDS", "1", 1);
    const int crash_code = run(cli + " dataset out=" + crash_dir + sizes +
                               " workers=" + std::to_string(cfg.workers) +
                               " respawns=" + std::to_string(num_shards));
    ::unsetenv("CONCORDE_WORKER_CRASH_AFTER_SHARDS");
    const bool crash_resume_identical =
        crash_code == 0 && dirsIdentical(crash_dir, ref, num_shards);
    std::printf("  crash-injected supervised build identical: %s\n",
                crash_resume_identical ? "yes" : "NO");

    // ---- phase 3: sweep merge identity ----
    const std::string sweep_dir = freshDir("sweep");
    const std::string model_path = sweep_dir + "/model.bin";
    {
        ModelArtifact artifact;
        artifact.features = FeatureConfig{};
        artifact.model = artifacts::untrainedModel(artifact.features, 2028);
        artifact.save(model_path);
    }
    const std::string sweep_base =
        cli + " sweep S7 rob model=" + model_path + " out=" + sweep_dir;
    Stopwatch sweep_serial_timer;
    const bool sweep_serial_ok = run(sweep_base + "/serial.bin") == 0;
    const double sweep_serial_s = sweep_serial_timer.seconds();
    Stopwatch sweep_multi_timer;
    const bool sweep_multi_ok =
        run(sweep_base + "/multi.bin workers=" +
            std::to_string(cfg.workers)) == 0;
    const double sweep_multi_s = sweep_multi_timer.seconds();
    const bool sweep_identical = sweep_serial_ok && sweep_multi_ok &&
        fileBytes(sweep_dir + "/serial.bin") ==
            fileBytes(sweep_dir + "/multi.bin");
    std::printf("  sweep serial %.3fs, %zu-worker %.3fs, merged bytes "
                "identical: %s\n", sweep_serial_s, cfg.workers,
                sweep_multi_s, sweep_identical ? "yes" : "NO");

    // ---- gates ----
    bool pass = true;
    if (!dataset_identical) {
        std::printf("  GATE FAIL: scaled dataset build diverges from the "
                    "serial bytes\n");
        pass = false;
    }
    if (!crash_resume_identical) {
        std::printf("  GATE FAIL: crash-injected build did not converge "
                    "to the serial bytes\n");
        pass = false;
    }
    if (!sweep_identical) {
        std::printf("  GATE FAIL: scaled sweep merge diverges from the "
                    "serial result\n");
        pass = false;
    }
    if (speedup < 0.5) {
        std::printf("  GATE FAIL: %zu-worker build (%.3fs) regressed to "
                    "under half the serial speed (%.3fs)\n", cfg.workers,
                    multi_s, serial_s);
        pass = false;
    }

    const char *json_env = std::getenv("CONCORDE_BENCH_JSON");
    const std::string json_path =
        json_env && *json_env ? json_env : "BENCH_scaleout.json";
    FILE *f = std::fopen(json_path.c_str(), "w");
    if (f) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"scaleout\",\n");
        std::fprintf(f, "  \"mode\": \"%s\",\n",
                     cfg.smoke ? "smoke" : "full");
        std::fprintf(f, "  \"samples\": %zu,\n", cfg.samples);
        std::fprintf(f, "  \"shards\": %zu,\n", num_shards);
        std::fprintf(f, "  \"workers\": %zu,\n", cfg.workers);
        std::fprintf(f, "  \"serial_s\": %.3f,\n", serial_s);
        std::fprintf(f, "  \"multi_s\": %.3f,\n", multi_s);
        std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
        std::fprintf(f, "  \"sweep_serial_s\": %.3f,\n", sweep_serial_s);
        std::fprintf(f, "  \"sweep_multi_s\": %.3f,\n", sweep_multi_s);
        std::fprintf(f, "  \"dataset_identical\": %s,\n",
                     dataset_identical ? "true" : "false");
        std::fprintf(f, "  \"crash_resume_identical\": %s,\n",
                     crash_resume_identical ? "true" : "false");
        std::fprintf(f, "  \"sweep_identical\": %s,\n",
                     sweep_identical ? "true" : "false");
        std::fprintf(f, "  \"gate_pass\": %s\n", pass ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("  wrote %s\n", json_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }

    std::printf(pass ? "  GATE PASS\n" : "  GATE FAIL\n");
    return pass ? 0 : 1;
}
