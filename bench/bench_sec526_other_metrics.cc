/**
 * @file
 * Section 5.2.6: predicting metrics other than CPI. Retrains the same ML
 * model (unchanged hyperparameters, same features) to predict average ROB
 * occupancy and average rename-queue occupancy; labels come from the
 * reference simulator.
 */

#include "bench_util.hh"

using namespace concorde;

namespace
{

/** Occupancy percentages can be ~0; floor them for the relative loss. */
std::vector<float>
floored(std::vector<float> labels)
{
    for (float &y : labels)
        y = std::max(y, 1.0f);
    return labels;
}

} // anonymous namespace

int
main()
{
    const Dataset &train = artifacts::mainTrain();
    const Dataset &test = artifacts::mainTest();

    std::printf("=== Section 5.2.6: predicting non-CPI metrics ===\n");

    auto report = [&](const char *name, const char *cache,
                      std::vector<float> train_labels,
                      std::vector<float> test_labels,
                      const char *paper) {
        const auto floored_train = floored(std::move(train_labels));
        const TrainedModel model =
            artifacts::trainOn(train, cache, nullptr, &floored_train);
        const auto floored_test = floored(std::move(test_labels));
        const double rel = model.meanRelativeError(
            test.features, floored_test, test.dim);
        // Absolute error in percentage points: occupancies near zero make
        // relative error misleading.
        const auto preds = model.predictBatch(test.features, test.dim);
        double mae = 0.0;
        for (size_t i = 0; i < preds.size(); ++i)
            mae += std::abs(preds[i] - floored_test[i]);
        mae /= static_cast<double>(preds.size());
        std::printf("  %s: mean relative error %.2f%%, mean absolute "
                    "error %.2f points (paper: %s relative)\n", name,
                    100 * rel, mae, paper);
    };
    report("avg ROB occupancy (%)", "rob_occupancy",
           train.robOccLabels(), test.robOccLabels(), "2.23%");
    report("avg rename-queue occupancy (%)", "rename_occupancy",
           train.renameOccLabels(), test.renameOccLabels(), "2.50%");
    std::printf("  same features, same hyperparameters -- only the "
                "labels changed.\n");
    return 0;
}
