/**
 * @file
 * Figure 1: per-resource analytical throughput bounds vs ground-truth IPC
 * over 400-instruction windows for two contrasting programs, as
 * timeseries and as CDFs. Program A is backend/frontend mixed; program B
 * is memory bound (its I-cache-fill and decode bounds sit far above IPC).
 */

#include "analytical/feature_provider.hh"
#include "bench_util.hh"
#include "sim/o3_core.hh"
#include "trace/workloads.hh"

using namespace concorde;

namespace
{

void
showProgram(const char *code, const char *tag)
{
    const int pid = programIdByCode(code);
    RegionSpec spec{pid, 0, 8, 4};
    FeatureConfig config;
    FeatureProvider provider(spec, config);
    const UarchParams n1 = UarchParams::armN1();

    const auto &rob = provider.robWindows(n1.robSize, n1.memory);
    const auto &lq = provider.lqWindows(n1.lqSize, n1.memory);
    const auto &fills =
        provider.icacheFillWindows(n1.maxIcacheFills, n1.memory);
    const double decode = n1.decodeWidth;

    const SimResult sim =
        simulateRegion(n1, provider.analysis(), config.windowK);
    const auto truth =
        throughputFromBoundaries(sim.windowCommitCycles, config.windowK);

    std::printf("\nProgram %s (%s) -- first 16 windows of 400 instrs, "
                "IPC bounds vs ground truth:\n", tag, code);
    std::printf("  %-8s %8s %8s %8s %8s %10s\n", "window", "ROB", "LQ",
                "IcFills", "Decode", "trueIPC");
    const size_t show = std::min<size_t>({16, rob.size(), truth.size()});
    for (size_t j = 0; j < show; ++j) {
        std::printf("  %-8zu %8.2f %8.2f %8.2f %8.2f %10.2f\n", j, rob[j],
                    lq[j], fills[j], decode, truth[j]);
    }

    benchutil::printCdf("CDF ROB bound", rob);
    benchutil::printCdf("CDF LQ bound", lq);
    benchutil::printCdf("CDF icache-fills bound", fills);
    benchutil::printCdf("CDF ground-truth IPC",
                        std::vector<double>(truth.begin(), truth.end()));
    std::printf("  region IPC: %.3f (CPI %.3f)\n", sim.ipc(), sim.cpi());
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 1: per-resource bounds explain IPC trends "
                "===\n");
    showProgram("S3", "A (frontend/backend mixed)");
    showProgram("S1", "B (memory bound)");
    std::printf("\nNote: the minimum of the bounds tracks but does not "
                "equal the true IPC -- the gap is what the ML stage "
                "learns (Section 2).\n");
    return 0;
}
