/**
 * @file
 * Figure 11 (Section 5.2.1): how discrepancies between trace-analysis
 * load-time estimates and actual timing-simulation load times shape the
 * error tail. Buckets test samples by the actual/estimated execution-time
 * ratio and reports error per bucket.
 */

#include "bench_util.hh"

using namespace concorde;

int
main()
{
    const Dataset &test = artifacts::mainTest();
    const TrainedModel &model = artifacts::fullModel();
    const auto errors = benchutil::relativeErrors(model, test);

    std::vector<double> ratios;
    for (const auto &meta : test.meta)
        ratios.push_back(meta.execRatio);

    std::printf("=== Figure 11: execution-time discrepancy vs error "
                "===\n");
    benchutil::printCdf("actual/estimated load-time ratio", ratios);

    struct Bucket
    {
        const char *label;
        double lo, hi;
        std::vector<double> errs;
    };
    std::vector<Bucket> buckets = {
        {"ratio [0.0, 1.1)", 0.0, 1.1, {}},
        {"ratio [1.1, 1.5)", 1.1, 1.5, {}},
        {"ratio [1.5, inf)", 1.5, 1e9, {}},
    };
    for (size_t i = 0; i < test.size(); ++i) {
        for (auto &bucket : buckets) {
            if (ratios[i] >= bucket.lo && ratios[i] < bucket.hi)
                bucket.errs.push_back(errors[i]);
        }
    }
    for (auto &bucket : buckets)
        benchutil::printErrorRow(bucket.label,
                                 benchutil::summarize(bucket.errs));

    // Tail composition: what share of >10% errors comes from high-ratio
    // samples (paper: 41.5% of tail cases have ratio > 1.5, vs ~10% of
    // all samples)?
    size_t tail = 0, tail_high_ratio = 0, high_ratio = 0;
    for (size_t i = 0; i < test.size(); ++i) {
        const bool high = ratios[i] >= 1.5;
        high_ratio += high;
        if (errors[i] > 0.10) {
            ++tail;
            tail_high_ratio += high;
        }
    }
    std::printf("  samples with ratio>=1.5: %.1f%% of all, %.1f%% of the "
                ">10%%-error tail (paper: ~10%% vs 41.5%%)\n",
                100.0 * high_ratio / test.size(),
                tail ? 100.0 * tail_high_ratio / tail : 0.0);
    return 0;
}
