/**
 * @file
 * Figure 8 (plus the "Accuracy on ARM N1" paragraph of Section 5.1):
 * Concorde vs the TAO-style sequence baseline on SPEC2017 programs at the
 * fixed ARM N1 design point. Concorde is trained on random
 * microarchitectures; TAO is trained specifically for N1.
 */

#include <map>

#include "bench_util.hh"
#include "common/thread_pool.hh"

using namespace concorde;

int
main()
{
    const Dataset &test = artifacts::specN1Test();
    const TrainedModel &concorde_model = artifacts::fullModel();
    TaoModel tao = benchutil::taoArtifact();

    // Concorde errors.
    const auto concorde_errors =
        benchutil::relativeErrors(concorde_model, test);

    // TAO errors (sequence model re-reads each region).
    std::vector<double> tao_errors(test.size());
    parallelFor(test.size(), [&](size_t i) {
        RegionAnalysis analysis(test.meta[i].region);
        const double pred = tao.predictCpi(analysis);
        tao_errors[i] = std::abs(pred - test.labels[i])
            / std::max(test.labels[i], 1e-6f);
    });

    std::map<int, std::pair<std::vector<double>, std::vector<double>>>
        per_program;
    for (size_t i = 0; i < test.size(); ++i) {
        auto &bucket = per_program[test.meta[i].region.programId];
        bucket.first.push_back(concorde_errors[i]);
        bucket.second.push_back(tao_errors[i]);
    }

    std::printf("=== Figure 8: Concorde vs TAO on SPEC2017 @ ARM N1 "
                "===\n");
    std::printf("  %-6s %-22s %14s %14s\n", "Code", "Program",
                "Concorde err(%)", "TAO err(%)");
    int concorde_wins = 0;
    for (const auto &[pid, bucket] : per_program) {
        const auto c = benchutil::summarize(bucket.first);
        const auto t = benchutil::summarize(bucket.second);
        const auto &info = workloadCorpus()[pid];
        std::printf("  %-6s %-22s %14.2f %14.2f%s\n", info.code().c_str(),
                    info.profile.name.c_str(), 100 * c.mean, 100 * t.mean,
                    c.mean < t.mean ? "" : "   <-- TAO wins");
        concorde_wins += c.mean < t.mean;
    }
    benchutil::printErrorRow("Concorde overall @ N1",
                             benchutil::summarize(concorde_errors));
    benchutil::printErrorRow("TAO overall @ N1",
                             benchutil::summarize(tao_errors));
    std::printf("  Concorde wins %d/%zu programs "
                "(paper: all, 3.5%% vs 7.8%%)\n", concorde_wins,
                per_program.size());
    return 0;
}
