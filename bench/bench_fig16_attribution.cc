/**
 * @file
 * Figure 16 (Section 6): large-scale fine-grained CPI attribution for the
 * ARM-N1-based core vs the "big core" baseline, across every program in
 * the corpus, using Monte Carlo Shapley values over 17 components.
 *
 * Scale knobs (paper: 2000 regions x 200 permutations x 29 programs =
 * 143M evaluations): CONCORDE_SHAPLEY_REGIONS (default 12),
 * CONCORDE_SHAPLEY_PERMS (default 20).
 */

#include <cstdlib>

#include "bench_util.hh"
#include "common/stopwatch.hh"
#include "common/thread_pool.hh"
#include "core/concorde.hh"
#include "core/shapley.hh"

using namespace concorde;

namespace
{

size_t
envOr(const char *name, size_t fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? static_cast<size_t>(std::atoll(v)) : fallback;
}

} // anonymous namespace

int
main()
{
    const size_t regions_per_program =
        envOr("CONCORDE_SHAPLEY_REGIONS", 12);
    const size_t permutations = envOr("CONCORDE_SHAPLEY_PERMS", 20);

    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    const auto &components = attributionComponents();

    std::printf("=== Figure 16: CPI attribution, ARM N1 vs big core "
                "===\n");
    std::printf("  %zu regions/program x %zu permutations x %zu "
                "components -> %zu CPI evaluations\n",
                regions_per_program, permutations, components.size(),
                workloadCorpus().size() * regions_per_program
                    * permutations * (components.size() + 1));

    Stopwatch total;
    const size_t num_programs = workloadCorpus().size();
    std::vector<double> base_cpi(num_programs, 0.0);
    std::vector<double> target_cpi(num_programs, 0.0);
    std::vector<std::vector<double>> attribution(
        num_programs, std::vector<double>(components.size(), 0.0));
    uint64_t evals_total = 0;

    parallelFor(num_programs, [&](size_t pid) {
        Rng rng(hashMix(0xF16, pid));
        ShapleyConfig config;
        config.numPermutations = static_cast<int>(permutations);
        for (size_t r = 0; r < regions_per_program; ++r) {
            const RegionSpec spec = sampleRegionFromProgram(
                rng, static_cast<int>(pid),
                artifacts::kShortRegionChunks);
            FeatureProvider provider(spec, artifacts::featureConfig());
            const BatchEval eval =
                [&](const std::vector<UarchParams> &pts) {
                    return predictor.predictCpiBatch(provider, pts, 1);
                };
            config.seed = rng.next();
            const auto phi = shapleyAttribution(base, target, components,
                                                eval, config);
            const auto ends = predictor.predictCpiBatch(
                provider, std::vector<UarchParams>{base, target}, 1);
            base_cpi[pid] += ends[0];
            target_cpi[pid] += ends[1];
            for (size_t c = 0; c < components.size(); ++c)
                attribution[pid][c] += phi[c];
        }
        const double inv = 1.0 / regions_per_program;
        base_cpi[pid] *= inv;
        target_cpi[pid] *= inv;
        for (double &phi : attribution[pid])
            phi *= inv;
    });
    evals_total = num_programs * regions_per_program * permutations
        * (components.size() + 1);

    // Report: per program, baseline CPI and the top-4 contributors.
    std::printf("\n  %-6s %8s %8s   top contributors (Shapley dCPI)\n",
                "Code", "baseCPI", "N1 CPI");
    for (size_t pid = 0; pid < num_programs; ++pid) {
        std::vector<size_t> order(components.size());
        for (size_t c = 0; c < order.size(); ++c)
            order[c] = c;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return attribution[pid][a] > attribution[pid][b];
        });
        std::printf("  %-6s %8.2f %8.2f   ",
                    workloadCorpus()[pid].code().c_str(), base_cpi[pid],
                    target_cpi[pid]);
        for (size_t k = 0; k < 4; ++k) {
            const size_t c = order[k];
            if (attribution[pid][c] <= 0.005)
                break;
            std::printf("%s %+0.2f  ", components[c].name.c_str(),
                        attribution[pid][c]);
        }
        std::printf("\n");
    }

    // Corpus-level component totals (the legend ordering of Figure 16).
    std::printf("\n  corpus-average attribution per component:\n");
    for (size_t c = 0; c < components.size(); ++c) {
        double avg = 0.0;
        for (size_t pid = 0; pid < num_programs; ++pid)
            avg += attribution[pid][c];
        avg /= static_cast<double>(num_programs);
        std::printf("  %-28s %+8.3f CPI\n", components[c].name.c_str(),
                    avg);
    }
    std::printf("\n  %llu CPI evaluations in %.1fs (paper: 143M in ~1h "
                "on a TPU host)\n",
                static_cast<unsigned long long>(evals_total),
                total.seconds());
    return 0;
}
