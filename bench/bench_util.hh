/**
 * @file
 * Shared helpers for the evaluation benches: error statistics, CDF
 * printing, and the cached TAO baseline artifact.
 */

#ifndef CONCORDE_BENCH_BENCH_UTIL_HH
#define CONCORDE_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/tao.hh"
#include "core/artifacts.hh"
#include "core/dataset.hh"
#include "ml/trainer.hh"

namespace concorde
{
namespace benchutil
{

/** Summary statistics of a relative-error sample. */
struct ErrorStats
{
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double fracAbove10pct = 0.0;
    size_t count = 0;
};

inline ErrorStats
summarize(std::vector<double> errors)
{
    ErrorStats stats;
    stats.count = errors.size();
    if (errors.empty())
        return stats;
    std::sort(errors.begin(), errors.end());
    double sum = 0.0;
    size_t above = 0;
    for (double e : errors) {
        sum += e;
        above += e > 0.10;
    }
    auto q = [&](double p) {
        const double pos = p * static_cast<double>(errors.size() - 1);
        const size_t lo = static_cast<size_t>(pos);
        const size_t hi = std::min(lo + 1, errors.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return errors[lo] * (1 - frac) + errors[hi] * frac;
    };
    stats.mean = sum / static_cast<double>(errors.size());
    stats.p50 = q(0.5);
    stats.p90 = q(0.9);
    stats.p99 = q(0.99);
    stats.fracAbove10pct =
        static_cast<double>(above) / static_cast<double>(errors.size());
    return stats;
}

/** Per-sample relative CPI errors of a model over a dataset. */
inline std::vector<double>
relativeErrors(const TrainedModel &model, const Dataset &data)
{
    const auto preds = model.predictBatch(data.features, data.dim);
    std::vector<double> errors(preds.size());
    for (size_t i = 0; i < preds.size(); ++i) {
        errors[i] = std::abs(preds[i] - data.labels[i])
            / std::max(data.labels[i], 1e-6f);
    }
    return errors;
}

/** Print a one-line error summary. */
inline void
printErrorRow(const std::string &label, const ErrorStats &stats)
{
    std::printf("  %-28s avg %6.2f%%  p50 %6.2f%%  p90 %6.2f%%  "
                "p99 %7.2f%%  >10%%: %5.2f%%  (n=%zu)\n",
                label.c_str(), 100 * stats.mean, 100 * stats.p50,
                100 * stats.p90, 100 * stats.p99,
                100 * stats.fracAbove10pct, stats.count);
}

/** Print an inline CDF (selected percentiles) of arbitrary values. */
inline void
printCdf(const std::string &label, std::vector<double> values,
         const char *unit = "")
{
    if (values.empty())
        return;
    std::sort(values.begin(), values.end());
    auto q = [&](double p) {
        return values[static_cast<size_t>(
            p * static_cast<double>(values.size() - 1))];
    };
    std::printf("  %-28s p5 %9.3g%s  p25 %9.3g%s  p50 %9.3g%s  "
                "p75 %9.3g%s  p95 %9.3g%s\n",
                label.c_str(), q(0.05), unit, q(0.25), unit, q(0.5), unit,
                q(0.75), unit, q(0.95), unit);
}

/** Cached TAO baseline trained on the SPEC@N1 dataset. */
inline TaoModel
taoArtifact()
{
    const TaoConfig default_config;
    const std::string path = artifacts::dir() + "/model_tao_h"
        + std::to_string(default_config.hidden) + "s"
        + std::to_string(default_config.seqLen) + "e"
        + std::to_string(default_config.epochs) + "_"
        + std::to_string(artifacts::specN1Train().size()) + ".bin";
    if (fileExists(path))
        return TaoModel::load(path);

    const Dataset &train = artifacts::specN1Train();
    std::vector<RegionSpec> regions;
    std::vector<float> labels;
    for (size_t i = 0; i < train.size(); ++i) {
        regions.push_back(train.meta[i].region);
        labels.push_back(train.labels[i]);
    }
    TaoConfig config;
    TaoModel model(config, UarchParams::armN1());
    std::printf("training TAO baseline on %zu SPEC@N1 regions...\n",
                regions.size());
    const double final_loss = model.train(regions, labels);
    std::printf("TAO final train rel-err: %.4f\n", final_loss);
    model.save(path);
    return model;
}

/** Indices of dataset samples belonging to one program. */
inline std::vector<size_t>
samplesOfProgram(const Dataset &data, int program_id)
{
    std::vector<size_t> indices;
    for (size_t i = 0; i < data.size(); ++i) {
        if (data.meta[i].region.programId == program_id)
            indices.push_back(i);
    }
    return indices;
}

} // namespace benchutil
} // namespace concorde

#endif // CONCORDE_BENCH_BENCH_UTIL_HH
