/**
 * @file
 * Ground-truth labeling microbench and CI regression gate.
 *
 * Times the dataset-generation hot loop -- many design points simulated
 * against each region -- in both simulator builds:
 *
 *   reference  simulateTraceReference: fresh engine per call (every
 *              container allocated from scratch), per-call warmup+region
 *              rebase into a combined trace
 *   fast       simulateRegion over one reused SimScratch: allocation-free
 *              steady state, cached combined trace + per-branch-config
 *              mispredict flags on the RegionAnalysis
 *
 * Region analyses (branch runs, combined traces, flag layouts) are
 * prewarmed off the clock -- they are computed once per region in
 * production and shared by every design point; only the simulation calls
 * are timed. Timing is best-of-kReps with a fresh SimScratch per attempt
 * (scratch reuse happens across the calls WITHIN an attempt, which is the
 * labelRange shape).
 *
 * Gates (exit 1 on failure; margins are 1-core-VM safe):
 *   - fast results bitwise-identical to the reference engine on every
 *     (region, design point) pair -- golden-corpus regions plus seeded
 *     random draws, including randomized memory/prefetch configs
 *   - fast >= 1.3x reference throughput
 *
 * Writes a JSON summary to $CONCORDE_BENCH_JSON (default
 * BENCH_sim.json). Needs no model artifacts; always smoke-fast.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/trace_analyzer.hh"
#include "common/stopwatch.hh"
#include "sim/o3_core.hh"
#include "trace/workloads.hh"

using namespace concorde;

namespace
{

constexpr int kReps = 3;
constexpr size_t kGoldenRegions = 4;
constexpr size_t kRandomRegions = 4;
constexpr size_t kDesignPoints = 12;
constexpr uint32_t kRegionChunks = 2;
constexpr uint64_t kStartChunk = 16;

std::vector<RegionAnalysis>
benchAnalyses()
{
    std::vector<RegionAnalysis> analyses;
    analyses.reserve(kGoldenRegions + kRandomRegions);
    for (size_t i = 0; i < kGoldenRegions; ++i) {
        RegionSpec spec;
        spec.programId = programIdByCode(i % 2 == 0 ? "S7" : "P1");
        spec.traceId = 0;
        spec.startChunk = kStartChunk + i * kRegionChunks;
        spec.numChunks = kRegionChunks;
        analyses.emplace_back(spec, 1);
    }
    Rng rng(2025);
    for (size_t i = 0; i < kRandomRegions; ++i)
        analyses.emplace_back(sampleRegion(rng, kRegionChunks), 1);
    return analyses;
}

std::vector<UarchParams>
designPoints()
{
    std::vector<UarchParams> points;
    points.push_back(UarchParams::armN1());
    points.push_back(UarchParams::bigCore());
    Rng rng(4242);
    while (points.size() < kDesignPoints)
        points.push_back(UarchParams::sampleRandom(rng));
    // Pin both prefetcher settings into the corpus.
    points[0].memory.prefetchDegree = 4;
    points[1].memory.prefetchDegree = 0;
    return points;
}

bool
identical(const SimResult &a, const SimResult &b)
{
    return a.cycles == b.cycles && a.instructions == b.instructions
        && a.avgRobOccupancy == b.avgRobOccupancy
        && a.avgRenameQOccupancy == b.avgRenameQOccupancy
        && a.avgLqOccupancy == b.avgLqOccupancy
        && a.branchMispredicts == b.branchMispredicts
        && a.actualLoadLatencySum == b.actualLoadLatencySum
        && a.loadCount == b.loadCount
        && a.windowCommitCycles == b.windowCommitCycles;
}

SimResult
referenceLabel(const UarchParams &params, RegionAnalysis &analysis)
{
    const auto &branch_info = analysis.branches(params.branch);
    return simulateTraceReference(params, analysis.warmupInstrs(),
                                  analysis.instrs(),
                                  branch_info.mispredict);
}

} // anonymous namespace

int
main()
{
    std::printf("=== ground-truth labeling: scratch-reusing fast path vs "
                "fresh-engine reference ===\n");

    std::vector<RegionAnalysis> analyses = benchAnalyses();
    const std::vector<UarchParams> points = designPoints();

    // Prewarm every per-region memo both variants read (branch runs,
    // combined trace, flag layouts): computed once per region in
    // production, shared by all design points, off the clock here.
    uint64_t sim_instrs = 0;
    for (RegionAnalysis &analysis : analyses) {
        for (const UarchParams &p : points) {
            (void)analysis.branches(p.branch);
            (void)analysis.combinedFlags(p.branch);
        }
        (void)analysis.combinedInstrs();
        sim_instrs += static_cast<uint64_t>(analysis.warmupSize()
                                            + analysis.regionSize())
            * points.size();
    }
    const double minstr = static_cast<double>(sim_instrs) / 1e6;
    const size_t labels = analyses.size() * points.size();

    // Bitwise-identity gate, off the clock: every (region, point) pair.
    size_t mismatches = 0;
    {
        SimScratch scratch;
        for (RegionAnalysis &analysis : analyses) {
            for (const UarchParams &p : points) {
                const SimResult ref = referenceLabel(p, analysis);
                const SimResult fast =
                    simulateRegion(p, analysis, 0, &scratch);
                if (!identical(ref, fast))
                    ++mismatches;
            }
        }
    }

    double ref_s = 1e30;
    double fast_s = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch ref_timer;
        for (RegionAnalysis &analysis : analyses)
            for (const UarchParams &p : points)
                (void)referenceLabel(p, analysis);
        ref_s = std::min(ref_s, ref_timer.seconds());

        SimScratch scratch;     // fresh per attempt
        Stopwatch fast_timer;
        for (RegionAnalysis &analysis : analyses)
            for (const UarchParams &p : points)
                (void)simulateRegion(p, analysis, 0, &scratch);
        fast_s = std::min(fast_s, fast_timer.seconds());
    }

    const double ref_rate = minstr / ref_s;
    const double fast_rate = minstr / fast_s;
    const double speedup = ref_s / fast_s;
    std::printf("  corpus: %zu regions x %zu design points = %zu labels "
                "(%.2f Minstr simulated/pass)\n", analyses.size(),
                points.size(), labels, minstr);
    std::printf("  reference fresh engine:  %8.2f Minstr/s  (%.4fs)\n",
                ref_rate, ref_s);
    std::printf("  fast scratch-reusing:    %8.2f Minstr/s  (%.2fx, "
                "%.4fs)\n", fast_rate, speedup, fast_s);
    std::printf("  result mismatches:       %zu / %zu\n", mismatches,
                labels);

    bool pass = true;
    if (mismatches != 0) {
        std::printf("  GATE FAIL: fast path diverges from the reference "
                    "engine\n");
        pass = false;
    }
    if (speedup < 1.3) {
        std::printf("  GATE FAIL: fast path %.2fx reference (need >= "
                    "1.3x)\n", speedup);
        pass = false;
    }

    const char *json_env = std::getenv("CONCORDE_BENCH_JSON");
    const std::string json_path =
        json_env && *json_env ? json_env : "BENCH_sim.json";
    FILE *f = std::fopen(json_path.c_str(), "w");
    if (f) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"sim_labeler\",\n");
        std::fprintf(f, "  \"regions\": %zu,\n", analyses.size());
        std::fprintf(f, "  \"design_points\": %zu,\n", points.size());
        std::fprintf(f, "  \"instructions_per_pass\": %llu,\n",
                     static_cast<unsigned long long>(sim_instrs));
        std::fprintf(f, "  \"reference_minstr_s\": %.3f,\n", ref_rate);
        std::fprintf(f, "  \"fast_minstr_s\": %.3f,\n", fast_rate);
        std::fprintf(f, "  \"fast_speedup\": %.3f,\n", speedup);
        std::fprintf(f, "  \"result_mismatches\": %zu,\n", mismatches);
        std::fprintf(f, "  \"gate_pass\": %s\n", pass ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("  wrote %s\n", json_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }

    std::printf(pass ? "  GATE PASS\n" : "  GATE FAIL\n");
    return pass ? 0 : 1;
}
