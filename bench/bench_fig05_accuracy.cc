/**
 * @file
 * Figure 5: Concorde's CPI prediction error on unseen (test) pairs of
 * program regions and random microarchitectures -- the headline accuracy
 * result. Prints the error summary, the CPI and error distributions, and
 * an error-vs-CPI breakdown (the scatterplot's marginal views).
 */

#include "bench_util.hh"

using namespace concorde;

int
main()
{
    const Dataset &test = artifacts::mainTest();
    const TrainedModel &model = artifacts::fullModel();

    const auto errors = benchutil::relativeErrors(model, test);
    std::printf("=== Figure 5: accuracy on random microarchitectures "
                "===\n");
    benchutil::printErrorRow("Concorde (test split)",
                             benchutil::summarize(errors));
    std::printf("  paper reference: avg 2.03%%, 2.51%% of samples above "
                "10%% error\n\n");

    std::vector<double> cpis(test.labels.begin(), test.labels.end());
    benchutil::printCdf("ground-truth CPI distribution", cpis);
    benchutil::printCdf("relative error distribution", errors);

    // Error vs CPI deciles (the scatter's trend).
    std::vector<size_t> order(test.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return test.labels[a] < test.labels[b];
    });
    std::printf("\n  error by ground-truth-CPI decile:\n");
    const size_t deciles = 10;
    for (size_t d = 0; d < deciles; ++d) {
        const size_t begin = d * test.size() / deciles;
        const size_t end = (d + 1) * test.size() / deciles;
        std::vector<double> bucket;
        double cpi_lo = test.labels[order[begin]];
        double cpi_hi = test.labels[order[end - 1]];
        for (size_t i = begin; i < end; ++i)
            bucket.push_back(errors[order[i]]);
        const auto stats = benchutil::summarize(bucket);
        std::printf("  CPI [%6.2f, %6.2f]: avg err %6.2f%%  >10%%: "
                    "%5.2f%%\n", cpi_lo, cpi_hi, 100 * stats.mean,
                    100 * stats.fracAbove10pct);
    }
    return 0;
}
