/**
 * @file
 * Figure 7: Concorde is more accurate on longer program regions -- the
 * error CDF of the long-region model (64k instructions, the paper's 1M
 * analogue) vs the short-region model (16k, the 100k analogue).
 */

#include "bench_util.hh"

using namespace concorde;

int
main()
{
    const auto short_errors = benchutil::relativeErrors(
        artifacts::fullModel(), artifacts::mainTest());
    const auto long_errors = benchutil::relativeErrors(
        artifacts::longModel(), artifacts::longTest());

    std::printf("=== Figure 7: longer regions are easier ===\n");
    benchutil::printErrorRow("16k-instruction regions",
                             benchutil::summarize(short_errors));
    benchutil::printErrorRow("64k-instruction regions",
                             benchutil::summarize(long_errors));
    benchutil::printCdf("error CDF, short regions", short_errors);
    benchutil::printCdf("error CDF, long regions", long_errors);

    // The paper attributes the gap to lower CPI variance in long regions.
    auto cpi_variance = [](const Dataset &data) {
        double mean = 0.0;
        for (float y : data.labels)
            mean += y;
        mean /= static_cast<double>(data.size());
        double var = 0.0;
        for (float y : data.labels)
            var += (y - mean) * (y - mean);
        return var / static_cast<double>(data.size());
    };
    std::printf("  CPI variance: short %.2f vs long %.2f (longer regions "
                "average out phases)\n",
                cpi_variance(artifacts::mainTest()),
                cpi_variance(artifacts::longTest()));
    return 0;
}
