/**
 * @file
 * Builds every shared artifact (datasets, trained models, the TAO
 * baseline) up front so the remaining benches run from cache. Safe to
 * re-run; everything is cached on disk under artifacts/.
 */

#include "bench_util.hh"
#include "common/stopwatch.hh"

using namespace concorde;

int
main()
{
    std::printf("=== bench_00_prepare: building shared artifacts ===\n");
    std::printf("artifact dir: %s\n", artifacts::dir().c_str());
    std::printf("sizes: train=%zu test=%zu long-train=%zu long-test=%zu "
                "spec=%zu epochs=%zu\n",
                artifacts::trainSamples(), artifacts::testSamples(),
                artifacts::longTrainSamples(), artifacts::longTestSamples(),
                artifacts::specSamples(), artifacts::epochs());

    Stopwatch total;
    artifacts::ensurePrepared();
    benchutil::taoArtifact();

    const auto &model = artifacts::fullModel();
    const auto errors =
        benchutil::relativeErrors(model, artifacts::mainTest());
    benchutil::printErrorRow("full model on test split",
                             benchutil::summarize(errors));
    std::printf("prepared all artifacts in %.1fs\n", total.seconds());
    return 0;
}
