/**
 * @file
 * Figure 13 (Section 5.2.4): Concorde's accuracy as a function of the
 * training-set size. Trains on nested subsets of the main dataset and
 * evaluates each on the shared test split.
 */

#include <numeric>

#include "bench_util.hh"

using namespace concorde;

int
main()
{
    const Dataset &train = artifacts::mainTrain();
    const Dataset &test = artifacts::mainTest();

    std::printf("=== Figure 13: accuracy vs training-set size ===\n");
    std::printf("  %-14s %12s %12s\n", "train samples", "avg err(%)",
                ">10%% (%)");

    for (double frac : {1.0 / 6, 1.0 / 2, 1.0}) {
        const size_t n = static_cast<size_t>(frac * train.size());
        TrainedModel model;
        if (frac == 1.0) {
            model = artifacts::fullModel();
        } else {
            std::vector<size_t> indices(n);
            std::iota(indices.begin(), indices.end(), 0);
            const Dataset subset = train.subset(indices);
            model = artifacts::trainOn(subset,
                                       "size_sweep_" + std::to_string(n));
        }
        const auto stats = benchutil::summarize(
            benchutil::relativeErrors(model, test));
        std::printf("  %-14zu %12.2f %12.2f\n", n, 100 * stats.mean,
                    100 * stats.fracAbove10pct);
    }
    std::printf("  paper: 789k -> 2.01%%, 200k -> 3.07%%, 100k -> 4.67%% "
                "(same monotone shape)\n");
    return 0;
}
