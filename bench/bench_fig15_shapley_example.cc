/**
 * @file
 * Figure 15 (Section 6): the ablation-order fallacy. Reducing cache sizes
 * and the load-queue size in different orders attributes the CPI increase
 * to entirely different components; the Shapley value gives a fair,
 * order-independent attribution.
 */

#include <memory>

#include "bench_util.hh"
#include "core/concorde.hh"
#include "core/shapley.hh"

using namespace concorde;

namespace
{

/** Copy the cache and/or LQ parameters of `from` into `p`. */
void
applyLike(UarchParams &p, const UarchParams &from, bool caches, bool lq)
{
    if (caches) {
        p.memory.l1dKb = from.memory.l1dKb;
        p.memory.l1iKb = from.memory.l1iKb;
        p.memory.l2Kb = from.memory.l2Kb;
    }
    if (lq)
        p.lqSize = from.lqSize;
}

} // anonymous namespace

int
main()
{
    // Baseline: the "big core". Target: big core with small caches
    // (64kB L1, 1MB L2) and a small load queue (12), as in the paper.
    const UarchParams base = UarchParams::bigCore();
    UarchParams target = base;
    target.memory.l1dKb = 64;
    target.memory.l1iKb = 64;
    target.memory.l2Kb = 1024;
    target.lqSize = 12;

    const std::vector<ShapleyComponent> components = {
        {"Caches (L1i/L1d/L2)",
         {ParamId::L1dSize, ParamId::L1iSize, ParamId::L2Size}},
        {"Load queue", {ParamId::LqSize}},
    };

    // A memory-intensive region where caches and the load queue jointly
    // matter: scan candidate regions from cache-sensitive programs and
    // keep the one with the largest base->target CPI jump.
    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());
    std::unique_ptr<FeatureProvider> provider;
    {
        // Corner designs: caches/LQ each at base or target value.
        UarchParams cache_small = base;
        applyLike(cache_small, target, /*caches=*/true, /*lq=*/false);
        UarchParams lq_small = base;
        applyLike(lq_small, target, /*caches=*/false, /*lq=*/true);

        double best_interaction = -1.0;
        Rng rng(0xF15);
        for (const char *code :
             {"P9", "S10", "P2", "S1", "S3", "C1", "P6", "S2"}) {
            for (int trial = 0; trial < 3; ++trial) {
                const RegionSpec spec = sampleRegionFromProgram(
                    rng, programIdByCode(code),
                    artifacts::kShortRegionChunks);
                auto candidate = std::make_unique<FeatureProvider>(
                    spec, artifacts::featureConfig());
                const double bb = predictor.predictCpi(*candidate, base);
                const double tt =
                    predictor.predictCpi(*candidate, target);
                const double tb =
                    predictor.predictCpi(*candidate, cache_small);
                const double bt =
                    predictor.predictCpi(*candidate, lq_small);
                // Super-additive joint effect (the paper's scenario).
                const double interaction = (tt - bb) - (tb - bb)
                    - (bt - bb);
                if (tt > bb && interaction > best_interaction) {
                    best_interaction = interaction;
                    provider = std::move(candidate);
                }
            }
        }
    }
    auto eval = [&](const UarchParams &p) {
        return predictor.predictCpi(*provider, p);
    };

    const double base_cpi = eval(base);
    const double target_cpi = eval(target);
    std::printf("=== Figure 15: order-dependent ablations vs Shapley "
                "===\n");
    std::printf("  baseline (big core) CPI: %.3f\n", base_cpi);
    std::printf("  target (small caches + small LQ) CPI: %.3f "
                "(+%.0f%%)\n", target_cpi,
                100 * (target_cpi - base_cpi) / base_cpi);

    const auto cache_first =
        orderedAblation(base, target, components, {0, 1}, eval);
    const auto lq_first =
        orderedAblation(base, target, components, {1, 0}, eval);
    ShapleyConfig config;
    config.exhaustive = true;
    const auto shapley =
        shapleyAttribution(base, target, components, eval, config);

    auto pct = [&](double delta) { return 100.0 * delta / base_cpi; };
    std::printf("\n  %-26s %12s %12s\n", "attribution (%% of base CPI)",
                "Caches", "Load queue");
    std::printf("  %-26s %11.1f%% %11.1f%%\n", "order: Cache -> LQ",
                pct(cache_first[0]), pct(cache_first[1]));
    std::printf("  %-26s %11.1f%% %11.1f%%\n", "order: LQ -> Cache",
                pct(lq_first[0]), pct(lq_first[1]));
    std::printf("  %-26s %11.1f%% %11.1f%%\n", "Shapley", pct(shapley[0]),
                pct(shapley[1]));
    std::printf("\n  paper's reading: the two orders disagree wildly "
                "(53%%/458%% vs 501%%/~0%%); the Shapley value splits "
                "the joint effect fairly (277%%/234%%).\n");
    return 0;
}
