/**
 * @file
 * End-to-end pipeline benchmark and CI regression gate (trace ->
 * features -> prediction over a whole span).
 *
 * Four executions of the same span are timed (best of N runs):
 *
 *   scalar    the pre-pipeline region loop (Independent state, scalar
 *             MLP forward per region) -- the baseline
 *   sharded   ThreadPool featurization + one batched GEMM
 *             (Independent state; must match scalar bitwise)
 *   stitched  sharded + carried analyzer state (Carry; every
 *             instruction analyzed once instead of once per region
 *             plus once per overlapping warmup replay; must match the
 *             scalar Carry run bitwise) -- the COLD number
 *   warm      sharded with every region analysis already resident in
 *             an AnalysisStore (trace analysis skipped entirely; must
 *             match scalar bitwise) -- the WARM number
 *
 * Gates (exit 1 on failure; margins are 1-core-VM safe):
 *   - sharded per-region CPIs identical to scalar (max |diff| == 0)
 *   - stitched per-region CPIs identical to scalar Carry (== 0)
 *   - sharded throughput >= 0.90x scalar (same work, batched GEMM)
 *   - stitched throughput >= 1.0x scalar (warmup elision must win)
 *
 * Modes: default uses the full model from artifacts/ (trains on first
 * run); --smoke or CONCORDE_SMOKE=1 uses an untrained model of the
 * production layout (no artifacts, seconds). Writes a JSON summary to
 * $CONCORDE_BENCH_JSON (default BENCH_pipeline.json).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/stopwatch.hh"
#include "pipeline/analysis_pipeline.hh"

using namespace concorde;
using pipeline::AnalysisPipeline;
using pipeline::ExecMode;
using pipeline::PipelineConfig;
using pipeline::PipelineResult;
using pipeline::StateMode;

namespace
{

struct RunConfig
{
    bool smoke = false;
    uint64_t spanChunks = 64;
    uint32_t regionChunks = 4;
    int reps = 3;
};

struct TimedRun
{
    double seconds = 0.0;           ///< best over reps
    PipelineResult result;          ///< last run (results are identical)
};

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    double diff = a.size() == b.size() ? 0.0 : 1e30;
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i)
        diff = std::max(diff, std::abs(a[i] - b[i]));
    return diff;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    RunConfig cfg;
    const char *smoke_env = std::getenv("CONCORDE_SMOKE");
    cfg.smoke = smoke_env && *smoke_env && std::strcmp(smoke_env, "0") != 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            cfg.smoke = true;
        } else {
            std::fprintf(stderr, "usage: bench_pipeline_e2e [--smoke]\n");
            return 2;
        }
    }
    if (cfg.smoke) {
        cfg.spanChunks = 24;
        cfg.regionChunks = 2;
    }

    std::printf("=== end-to-end pipeline throughput (%s mode) ===\n",
                cfg.smoke ? "smoke" : "full");

    const FeatureConfig feature_cfg = cfg.smoke
        ? FeatureConfig{} : artifacts::featureConfig();
    const ConcordePredictor predictor = cfg.smoke
        ? ConcordePredictor(artifacts::untrainedModel(feature_cfg, 2027),
                            feature_cfg)
        : ConcordePredictor(artifacts::fullModel(), feature_cfg);

    TraceSpan span;
    span.programId = programIdByCode("S7");
    span.traceId = 0;
    span.startChunk = 16;
    span.numChunks = cfg.spanChunks;
    const UarchParams params = UarchParams::armN1();
    const double minstr = static_cast<double>(span.numInstructions()) / 1e6;

    auto best_run = [&](ExecMode mode, StateMode state,
                        AnalysisStore *store = nullptr) {
        PipelineConfig config;
        config.regionChunks = cfg.regionChunks;
        config.mode = mode;
        config.state = state;
        config.analysisStore = store;
        AnalysisPipeline pipe(predictor, config);
        if (store)
            pipe.run(span, params);    // prime the store off the clock
        TimedRun run;
        run.seconds = 1e30;
        for (int r = 0; r < cfg.reps; ++r) {
            Stopwatch timer;
            run.result = pipe.run(span, params);
            run.seconds = std::min(run.seconds, timer.seconds());
        }
        return run;
    };

    const TimedRun scalar =
        best_run(ExecMode::Scalar, StateMode::Independent);
    const double scalar_rate = minstr / scalar.seconds;
    std::printf("  scalar region loop:      %8.2f Minstr/s  (%zu regions, "
                "%.3fs)\n", scalar_rate, scalar.result.regions.size(),
                scalar.seconds);

    const TimedRun sharded =
        best_run(ExecMode::Sharded, StateMode::Independent);
    const double sharded_rate = minstr / sharded.seconds;
    std::printf("  sharded pipeline:        %8.2f Minstr/s  (%.2fx)\n",
                sharded_rate, sharded_rate / scalar_rate);

    const TimedRun scalar_carry =
        best_run(ExecMode::Scalar, StateMode::Carry);
    const TimedRun stitched =
        best_run(ExecMode::Sharded, StateMode::Carry);
    const double stitched_rate = minstr / stitched.seconds;
    std::printf("  stitched sharded:        %8.2f Minstr/s  (%.2fx, "
                "analyze %.3fs of %.3fs)\n", stitched_rate,
                stitched_rate / scalar_rate,
                stitched.result.analyzeSeconds, stitched.seconds);

    // Warm path: the same sharded run with every region analysis already
    // resident in an AnalysisStore (Independent state; carried analyses
    // are span-position-dependent and never cached). The cold/warm split
    // separates the cost of trace analysis itself from featurization +
    // inference.
    AnalysisStore store;
    const TimedRun warm =
        best_run(ExecMode::Sharded, StateMode::Independent, &store);
    const double warm_rate = minstr / warm.seconds;
    std::printf("  warm (store-hit) sharded:%8.2f Minstr/s  (%.2fx)\n",
                warm_rate, warm_rate / scalar_rate);

    const double diff_indep =
        maxAbsDiff(scalar.result.regionCpi, sharded.result.regionCpi);
    const double diff_carry = maxAbsDiff(scalar_carry.result.regionCpi,
                                         stitched.result.regionCpi);
    const double diff_warm =
        maxAbsDiff(scalar.result.regionCpi, warm.result.regionCpi);
    std::printf("  max |scalar - sharded| CPI:  %.2e (independent), "
                "%.2e (carry), %.2e (warm)\n", diff_indep, diff_carry,
                diff_warm);

    // ---- gates ----
    bool pass = true;
    if (diff_indep != 0.0 || diff_carry != 0.0 || diff_warm != 0.0) {
        std::printf("  GATE FAIL: parallel pipeline CPIs diverge from "
                    "the scalar region loop\n");
        pass = false;
    }
    if (sharded_rate < 0.90 * scalar_rate) {
        std::printf("  GATE FAIL: sharded pipeline (%.2f Minstr/s) "
                    "slower than scalar loop (%.2f)\n", sharded_rate,
                    scalar_rate);
        pass = false;
    }
    if (stitched_rate < scalar_rate) {
        std::printf("  GATE FAIL: stitched pipeline (%.2f Minstr/s) not "
                    "faster than scalar loop (%.2f)\n", stitched_rate,
                    scalar_rate);
        pass = false;
    }

    const char *json_env = std::getenv("CONCORDE_BENCH_JSON");
    const std::string json_path =
        json_env && *json_env ? json_env : "BENCH_pipeline.json";
    FILE *f = std::fopen(json_path.c_str(), "w");
    if (f) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"pipeline_e2e\",\n");
        std::fprintf(f, "  \"mode\": \"%s\",\n",
                     cfg.smoke ? "smoke" : "full");
        std::fprintf(f, "  \"span_chunks\": %llu,\n",
                     static_cast<unsigned long long>(cfg.spanChunks));
        std::fprintf(f, "  \"region_chunks\": %u,\n", cfg.regionChunks);
        std::fprintf(f, "  \"regions\": %zu,\n",
                     scalar.result.regions.size());
        std::fprintf(f, "  \"instructions\": %llu,\n",
                     static_cast<unsigned long long>(
                         span.numInstructions()));
        std::fprintf(f, "  \"scalar_minstr_s\": %.3f,\n", scalar_rate);
        std::fprintf(f, "  \"sharded_minstr_s\": %.3f,\n", sharded_rate);
        std::fprintf(f, "  \"stitched_minstr_s\": %.3f,\n",
                     stitched_rate);
        // Cold = the stitched run above (every instruction analyzed this
        // run); warm = sharded with a primed AnalysisStore (analysis
        // skipped entirely). stitched_minstr_s stays the cold number so
        // its history remains comparable.
        std::fprintf(f, "  \"stitched_cold_minstr_s\": %.3f,\n",
                     stitched_rate);
        std::fprintf(f, "  \"stitched_warm_minstr_s\": %.3f,\n",
                     warm_rate);
        std::fprintf(f, "  \"sharded_speedup\": %.3f,\n",
                     sharded_rate / scalar_rate);
        std::fprintf(f, "  \"stitched_speedup\": %.3f,\n",
                     stitched_rate / scalar_rate);
        std::fprintf(f, "  \"max_abs_diff_independent\": %.3e,\n",
                     diff_indep);
        std::fprintf(f, "  \"max_abs_diff_carry\": %.3e,\n", diff_carry);
        std::fprintf(f, "  \"max_abs_diff_warm\": %.3e,\n", diff_warm);
        std::fprintf(f, "  \"gate_pass\": %s\n", pass ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("  wrote %s\n", json_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }

    std::printf(pass ? "  GATE PASS\n" : "  GATE FAIL\n");
    return pass ? 0 : 1;
}
