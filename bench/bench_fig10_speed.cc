/**
 * @file
 * Figure 10: running-time distributions of Concorde vs the cycle-level
 * simulator, on one CPU core. Uses google-benchmark for the tight-loop
 * measurements plus explicit distributions over sampled regions.
 *
 * Concorde's prediction cost is independent of region length (fixed-size
 * feature vector); the cycle-level simulator scales with instructions.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "common/stopwatch.hh"
#include "core/concorde.hh"
#include "sim/o3_core.hh"

using namespace concorde;

namespace
{

std::vector<RegionSpec>
sampledRegions(size_t n, uint32_t chunks, uint64_t seed)
{
    Rng rng(seed);
    std::vector<RegionSpec> specs;
    for (size_t i = 0; i < n; ++i)
        specs.push_back(sampleRegion(rng, chunks));
    return specs;
}

void
BM_ConcordePredictWarm(benchmark::State &state)
{
    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());
    RegionSpec spec{programIdByCode("S7"), 0, 16,
                    artifacts::kShortRegionChunks};
    FeatureProvider provider(spec, artifacts::featureConfig());
    UarchParams params = UarchParams::armN1();
    // Warm the memoization (the one-time offline precompute).
    benchmark::DoNotOptimize(predictor.predictCpi(provider, params));
    for (auto _ : state) {
        benchmark::DoNotOptimize(predictor.predictCpi(provider, params));
    }
}
BENCHMARK(BM_ConcordePredictWarm)->Unit(benchmark::kMicrosecond);

void
BM_CycleLevelSimulator16k(benchmark::State &state)
{
    RegionSpec spec{programIdByCode("S7"), 0, 16,
                    artifacts::kShortRegionChunks};
    RegionAnalysis analysis(spec);
    const UarchParams n1 = UarchParams::armN1();
    SimScratch scratch;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulateRegion(n1, analysis, 0, &scratch).cycles);
    }
}
BENCHMARK(BM_CycleLevelSimulator16k)->Unit(benchmark::kMillisecond);

void
BM_CycleLevelSimulator512k(benchmark::State &state)
{
    RegionSpec spec{programIdByCode("S7"), 0, 0, 256};
    RegionAnalysis analysis(spec, 0);
    const UarchParams n1 = UarchParams::armN1();
    SimScratch scratch;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulateRegion(n1, analysis, 0, &scratch).cycles);
    }
}
BENCHMARK(BM_CycleLevelSimulator512k)->Unit(benchmark::kMillisecond);

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::printf("=== Figure 10: running-time distributions ===\n");

    // Distributions over 40 random regions, single-threaded.
    const auto specs =
        sampledRegions(40, artifacts::kShortRegionChunks, 7);
    ConcordePredictor predictor(artifacts::fullModel(),
                                artifacts::featureConfig());
    const UarchParams n1 = UarchParams::armN1();

    std::vector<double> predict_us, sim_ms, precompute_ms;
    SimScratch scratch;     // reused across regions, the labeling shape
    for (const auto &spec : specs) {
        FeatureProvider provider(spec, artifacts::featureConfig());
        Stopwatch pre;
        (void)predictor.predictCpi(provider, n1);   // one-time analysis
        precompute_ms.push_back(pre.seconds() * 1e3);

        Stopwatch warm;
        const int reps = 20;
        for (int r = 0; r < reps; ++r)
            (void)predictor.predictCpi(provider, n1);
        predict_us.push_back(warm.seconds() * 1e6 / reps);

        Stopwatch sim;
        (void)simulateRegion(n1, provider.analysis(), 0, &scratch);
        sim_ms.push_back(sim.seconds() * 1e3);
    }

    benchutil::printCdf("Concorde predict (warm)", predict_us, "us");
    benchutil::printCdf("Concorde one-time precompute", precompute_ms,
                        "ms");
    benchutil::printCdf("cycle-level sim (16k instrs)", sim_ms, "ms");

    // ---- batched inference engine vs scalar prediction loop ----
    // The design-space-exploration serving pattern: one region, many
    // design points. The batched path assembles all feature rows into
    // one matrix and runs the MLP as a blocked GEMM.
    {
        std::printf("\n--- batched inference (batch=%d design points) "
                    "---\n", 512);
        RegionSpec spec{programIdByCode("S7"), 0, 16,
                        artifacts::kShortRegionChunks};
        FeatureProvider provider(spec, artifacts::featureConfig());
        Rng rng(21);
        std::vector<UarchParams> points;
        for (size_t i = 0; i < 512; ++i)
            points.push_back(UarchParams::sampleRandom(rng));

        // Warm the analytical memo caches (the one-time precompute) so
        // both paths measure prediction cost only.
        (void)predictor.predictCpiBatch(provider, points);

        const int reps = 5;
        double scalar_s = 1e30, batch_s = 1e30;
        std::vector<double> scalar_cpis(points.size());
        std::vector<double> batch_cpis;
        for (int r = 0; r < reps; ++r) {
            Stopwatch t1;
            for (size_t i = 0; i < points.size(); ++i)
                scalar_cpis[i] = predictor.predictCpi(provider, points[i]);
            scalar_s = std::min(scalar_s, t1.seconds());

            Stopwatch t2;
            batch_cpis = predictor.predictCpiBatch(provider, points);
            batch_s = std::min(batch_s, t2.seconds());
        }

        double max_diff = 0.0;
        for (size_t i = 0; i < points.size(); ++i) {
            max_diff = std::max(max_diff,
                                std::abs(scalar_cpis[i] - batch_cpis[i]));
        }
        const double n = static_cast<double>(points.size());
        std::printf("  scalar predictCpi loop:   %10.0f predictions/s\n",
                    n / scalar_s);
        std::printf("  batched predictCpiBatch:  %10.0f predictions/s\n",
                    n / batch_s);
        std::printf("  batched speedup: %.2fx  (max |scalar - batched| "
                    "CPI diff %.2e)\n", scalar_s / batch_s, max_diff);
    }

    double mean_us = 0, mean_sim = 0;
    for (double v : predict_us)
        mean_us += v;
    for (double v : sim_ms)
        mean_sim += v;
    mean_us /= predict_us.size();
    mean_sim /= sim_ms.size();
    std::printf("  mean speedup (warm predict vs cycle-level, 16k "
                "regions): %.0fx\n", mean_sim * 1e3 / mean_us);
    std::printf("  (paper: >2e5x for 1M regions; our simulator is much "
                "faster and regions shorter, so the ratio is smaller "
                "but the prediction cost is likewise "
                "length-independent)\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
