/**
 * @file
 * Section 8 (future work, implemented here): conformal confidence bounds
 * on Concorde's CPI predictions. Calibrates a split-conformal wrapper on
 * half of the test split and validates empirical coverage and interval
 * width on the other half, overall and per CPI decile.
 */

#include "bench_util.hh"
#include "ml/conformal.hh"

using namespace concorde;

int
main()
{
    const Dataset &test = artifacts::mainTest();
    const size_t half = test.size() / 2;
    std::vector<size_t> cal_idx, eval_idx;
    for (size_t i = 0; i < test.size(); ++i)
        (i < half ? cal_idx : eval_idx).push_back(i);
    const Dataset cal = test.subset(cal_idx);
    const Dataset eval = test.subset(eval_idx);

    const ConformalPredictor conformal(artifacts::fullModel(),
                                       cal.features, cal.labels, cal.dim);

    std::printf("=== Section 8 extension: conformal confidence bounds "
                "===\n");
    std::printf("  calibration samples: %zu, evaluation samples: %zu\n",
                cal.size(), eval.size());
    std::printf("  %-8s %12s %14s %16s\n", "alpha", "target cov",
                "empirical cov", "interval width");
    for (double alpha : {0.32, 0.20, 0.10, 0.05, 0.02}) {
        const double coverage = conformal.empiricalCoverage(
            eval.features, eval.labels, eval.dim, alpha);
        std::printf("  %-8.2f %11.1f%% %13.1f%% %15.1f%%\n", alpha,
                    100 * (1 - alpha), 100 * coverage,
                    100 * conformal.quantile(alpha) * 2);
    }

    // Flagging high-risk predictions: widest-interval samples should
    // carry a disproportionate share of the large errors.
    const auto errors = benchutil::relativeErrors(conformal.model(), eval);
    std::printf("\n  use case: crosscheck the widest-interval "
                "predictions with a detailed simulator.\n");
    std::printf("  tail errors (>10%%) overall: %.1f%%\n",
                100 * benchutil::summarize(errors).fracAbove10pct);
    return 0;
}
