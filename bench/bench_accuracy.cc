/**
 * @file
 * Model-lifecycle accuracy gate: runs the full dataset -> train ->
 * artifact -> registry path end to end and fails CI if training buys
 * nothing.
 *
 *   1. Generate sharded train/test datasets (deterministic seeds; a
 *      rerun resumes from completed shards).
 *   2. Train with a validation split and per-epoch checkpointing, and
 *      bundle the result into a versioned ModelArtifact.
 *   3. Reload the artifact, hot-load it into a PredictionService, and
 *      check the served predictions match the artifact's model.
 *   4. Gate: held-out mean relative CPI error of the trained model must
 *      beat an untrained stub of the same layout by a wide margin.
 *      Accuracy is timing-free, so the threshold is exact -- no VM
 *      noise allowance needed.
 *
 * Modes:
 *   default / CONCORDE_SMOKE=1   small sizes (CI bench-smoke, ~20 s)
 *   --full                       larger datasets and more epochs
 *
 * Writes a JSON summary to $CONCORDE_BENCH_JSON (default
 * BENCH_accuracy.json).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "common/stopwatch.hh"
#include "core/model_artifact.hh"
#include "serve/prediction_service.hh"

using namespace concorde;

namespace
{

/** Trained model must be at least this factor better than the stub. */
constexpr double kGateRatio = 0.5;

struct RunConfig
{
    bool full = false;
    size_t trainSamples = 512;
    size_t testSamples = 128;
    size_t shardSamples = 128;
    uint32_t regionChunks = 2;
    size_t epochs = 24;
    size_t batchSize = 64;
    double valFraction = 0.15;
};

void
writeJson(const std::string &path, const RunConfig &cfg,
          uint64_t train_hash, uint64_t test_hash, double trained_err,
          double val_err, double stub_err, double serve_diff,
          double dataset_s, double train_s, bool pass)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"accuracy\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", cfg.full ? "full" : "smoke");
    std::fprintf(f, "  \"train_samples\": %zu,\n", cfg.trainSamples);
    std::fprintf(f, "  \"test_samples\": %zu,\n", cfg.testSamples);
    std::fprintf(f, "  \"region_chunks\": %u,\n", cfg.regionChunks);
    std::fprintf(f, "  \"epochs\": %zu,\n", cfg.epochs);
    std::fprintf(f, "  \"train_manifest_hash\": \"%016llx\",\n",
                 static_cast<unsigned long long>(train_hash));
    std::fprintf(f, "  \"test_manifest_hash\": \"%016llx\",\n",
                 static_cast<unsigned long long>(test_hash));
    std::fprintf(f, "  \"val_rel_err\": %.6f,\n", val_err);
    std::fprintf(f, "  \"heldout_rel_err_trained\": %.6f,\n", trained_err);
    std::fprintf(f, "  \"heldout_rel_err_untrained\": %.6f,\n", stub_err);
    std::fprintf(f, "  \"ratio\": %.6f,\n",
                 stub_err > 0.0 ? trained_err / stub_err : 0.0);
    std::fprintf(f, "  \"gate_ratio\": %.3f,\n", kGateRatio);
    std::fprintf(f, "  \"serve_max_abs_diff\": %.3e,\n", serve_diff);
    std::fprintf(f, "  \"dataset_seconds\": %.2f,\n", dataset_s);
    std::fprintf(f, "  \"train_seconds\": %.2f,\n", train_s);
    std::fprintf(f, "  \"gate_pass\": %s\n", pass ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    RunConfig cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            cfg.full = true;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            cfg.full = false;
        } else {
            std::fprintf(stderr, "usage: bench_accuracy [--full]\n");
            return 2;
        }
    }
    if (cfg.full) {
        cfg.trainSamples = 4096;
        cfg.testSamples = 512;
        cfg.shardSamples = 512;
        cfg.regionChunks = artifacts::kShortRegionChunks;
        cfg.epochs = 40;
        cfg.batchSize = 256;
    }

    const char *dir_env = std::getenv("CONCORDE_ACCURACY_DIR");
    const std::string base =
        dir_env && *dir_env ? dir_env : "accuracy-artifacts";
    const std::string train_dir = base + "/train";
    const std::string test_dir = base + "/test";
    const std::string artifact_path = base + "/model.artifact";
    const std::string checkpoint_path = base + "/train.ckpt";

    std::printf("=== model-lifecycle accuracy gate (%s mode) ===\n",
                cfg.full ? "full" : "smoke");

    // ---- stage 1: sharded dataset generation (resumable) ----
    DatasetConfig dc;
    dc.numSamples = cfg.trainSamples;
    dc.regionChunks = cfg.regionChunks;
    dc.seed = 7341;
    dc.features = artifacts::featureConfig();
    Stopwatch dataset_timer;
    const auto train_built =
        buildDatasetShards(dc, train_dir, cfg.shardSamples);
    dc.numSamples = cfg.testSamples;
    dc.seed = 7342;
    const auto test_built =
        buildDatasetShards(dc, test_dir, cfg.shardSamples);
    const double dataset_s = dataset_timer.seconds();
    const Dataset train = loadDatasetShards(train_dir);
    const Dataset test = loadDatasetShards(test_dir);
    const uint64_t train_hash = datasetManifestHash(train_dir);
    const uint64_t test_hash = datasetManifestHash(test_dir);
    std::printf("  datasets: %zu train + %zu test samples in %.1fs "
                "(%zu shards built, %zu resumed)\n", train.size(),
                test.size(), dataset_s,
                train_built.shardsBuilt + test_built.shardsBuilt,
                train_built.shardsSkipped + test_built.shardsSkipped);

    // ---- stage 2: checkpointed training -> versioned artifact ----
    TrainConfig tc;
    tc.epochs = cfg.epochs;
    tc.batchSize = cfg.batchSize;
    tc.seed = 99;
    tc.valFraction = cfg.valFraction;
    Stopwatch train_timer;
    const TrainRun run = trainMlpResumable(
        train.features, train.labels, train.dim, tc, nullptr,
        checkpoint_path);
    const double train_s = train_timer.seconds();
    const double val_err = run.history.back().valRelErr;
    std::printf("  trained %zu epochs in %.1fs (val rel-err %.4f)\n",
                run.epochsCompleted(), train_s, val_err);

    ModelArtifact artifact;
    artifact.features = artifacts::featureConfig();
    artifact.model = run.model;
    artifact.provenance.datasetManifestHash = train_hash;
    artifact.provenance.datasetPath = train_dir;
    artifact.provenance.gitDescribe = buildGitDescribe();
    artifact.provenance.trainConfig = tc;
    artifact.provenance.trainedEpochs = run.epochsCompleted();
    artifact.provenance.heldOutRelErr = val_err;
    artifact.save(artifact_path);
    const ModelArtifact loaded = ModelArtifact::load(artifact_path);

    // ---- stage 3: held-out accuracy, artifact vs untrained stub ----
    const double trained_err = loaded.model.meanRelativeError(
        test.features, test.labels, test.dim);
    const TrainedModel stub =
        artifacts::untrainedModel(loaded.features, 2026);
    const double stub_err =
        stub.meanRelativeError(test.features, test.labels, test.dim);
    std::printf("  held-out mean rel CPI err: trained %.4f vs untrained "
                "stub %.4f (%.2fx better)\n", trained_err, stub_err,
                stub_err / std::max(trained_err, 1e-9));

    // ---- stage 4: the served artifact answers like the local model ----
    double serve_diff = 0.0;
    {
        serve::PredictionService service{};
        service.loadModel("prod", artifact_path);
        const ConcordePredictor direct = loaded.predictor();
        const size_t checks = std::min<size_t>(test.size(), 32);
        for (size_t i = 0; i < checks; ++i) {
            const auto &meta = test.meta[i];
            const double served =
                service.predict("prod", meta.region, meta.params);
            const double local =
                direct.predictCpi(meta.region, meta.params);
            serve_diff = std::max(serve_diff,
                                  std::abs(served - local));
        }
        service.shutdown();
    }
    std::printf("  serve-vs-local max |diff|: %.2e\n", serve_diff);

    // ---- gate ----
    bool pass = true;
    if (!(trained_err <= kGateRatio * stub_err)) {
        std::printf("  GATE FAIL: trained model (%.4f) does not beat "
                    "the untrained stub (%.4f) by the required %.1fx\n",
                    trained_err, stub_err, 1.0 / kGateRatio);
        pass = false;
    }
    if (serve_diff > 1e-6) {
        std::printf("  GATE FAIL: served predictions diverge from the "
                    "artifact's model\n");
        pass = false;
    }
    if (!run.finished) {
        std::printf("  GATE FAIL: training did not complete\n");
        pass = false;
    }

    const char *json_env = std::getenv("CONCORDE_BENCH_JSON");
    const std::string json_path =
        json_env && *json_env ? json_env : "BENCH_accuracy.json";
    writeJson(json_path, cfg, train_hash, test_hash, trained_err, val_err,
              stub_err, serve_diff, dataset_s, train_s, pass);
    std::printf("  wrote %s\n", json_path.c_str());
    std::printf(pass ? "  GATE PASS\n" : "  GATE FAIL\n");
    return pass ? 0 : 1;
}
