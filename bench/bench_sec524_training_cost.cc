/**
 * @file
 * Section 5.2.4: dataset-generation and training cost, measured on this
 * machine (the paper reports 19.4 CPU-hours for its 1M-region dataset and
 * 3 TPU-hours of training).
 */

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "common/stopwatch.hh"
#include "ml/trainer.hh"

using namespace concorde;

int
main()
{
    std::printf("=== Section 5.2.4: dataset & training cost ===\n");

    // Dataset-generation rate: time a 200-sample batch.
    {
        DatasetConfig config;
        config.numSamples = 200;
        config.regionChunks = artifacts::kShortRegionChunks;
        config.seed = 0xC057;
        Stopwatch timer;
        const Dataset batch = buildDataset(config);
        const double seconds = timer.seconds();
        std::printf("  dataset generation: %.1f samples/s "
                    "(labels + features, %zu threads); full %zu-sample "
                    "set ~%.0fs\n", batch.size() / seconds,
                    defaultThreads(), artifacts::trainSamples(),
                    artifacts::trainSamples() * seconds / batch.size());
    }

    // Training rate: time a short training run on the main dataset.
    {
        const Dataset &train = artifacts::mainTrain();
        TrainConfig config = artifacts::trainConfig();
        config.epochs = 4;
        Stopwatch timer;
        (void)trainMlp(train.features, train.labels, train.dim, config);
        const double per_epoch = timer.seconds() / 4.0;
        std::printf("  training: %.2fs/epoch on %zu samples "
                    "(full run: %zu epochs ~%.0fs)\n", per_epoch,
                    train.size(), artifacts::epochs(),
                    per_epoch * artifacts::epochs());
    }
    std::printf("  paper: 16.8h of cycle-level simulation + 2.2h trace "
                "analysis for 837k 1M-instr samples; 3h TPU training\n");
    return 0;
}
