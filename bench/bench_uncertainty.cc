/**
 * @file
 * Uncertainty-serving gate: runs the calibrated lifecycle end to end --
 * train with a validation split, ship the conformal calibration inside
 * the ModelArtifact, serve with intervals, OOD guardrails, and the
 * simulator fallback -- and fails CI when any of its guarantees break:
 *
 *   1. Coverage: the served (1 - alpha) conformal interval must cover
 *      at least (1 - alpha - tol) of a held-out test set. Exact: the
 *      dataset and training seeds are fixed, so there is no VM noise.
 *   2. Compatibility: a v1 (pre-calibration) artifact must load, report
 *      uncalibrated, and serve point-only responses whose predictions
 *      are bitwise identical to the v2 artifact's model -- the
 *      calibration section cannot perturb the model.
 *   3. OOD guardrail: the training-split envelope must score every
 *      training row 0.0 (in distribution) and an absurd synthetic row
 *      as OOD.
 *   4. Fallback: with a width SLO that flags everything, every served
 *      answer must come from the simulator, bitwise identical to a
 *      direct simulateRegion call, and the feedback file must hold
 *      exactly those (features, label) pairs, labels bitwise.
 *
 * Modes:
 *   default / CONCORDE_SMOKE=1   small sizes (CI bench-smoke)
 *   --full                       larger datasets and more epochs
 *
 * Writes a JSON summary to $CONCORDE_BENCH_JSON (default
 * BENCH_uncertainty.json).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analysis_store.hh"
#include "bench_util.hh"
#include "common/stopwatch.hh"
#include "core/model_artifact.hh"
#include "serve/prediction_service.hh"
#include "sim/o3_core.hh"

using namespace concorde;

namespace
{

/** Finite-sample slack on empirical held-out coverage. */
constexpr double kCoverageTol = 0.05;

struct RunConfig
{
    bool full = false;
    size_t trainSamples = 512;
    size_t testSamples = 128;
    size_t shardSamples = 128;
    uint32_t regionChunks = 2;
    size_t epochs = 8;
    size_t batchSize = 64;
    double valFraction = 0.2;
    double alpha = 0.1;
    size_t fallbackChecks = 12;
};

struct GateResults
{
    double coverage = 0.0;
    double meanRelWidth = 0.0;
    size_t calibrationScores = 0;
    double v1MaxPredDiff = 0.0;
    double maxTrainOod = 0.0;
    double syntheticOod = 0.0;
    double fallbackMaxDiff = 0.0;
    double feedbackMaxDiff = 0.0;
    uint64_t servedFallbackSim = 0;
    uint64_t feedbackAppended = 0;
    double trainSeconds = 0.0;
};

void
writeJson(const std::string &path, const RunConfig &cfg,
          const GateResults &r, bool pass)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"uncertainty\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", cfg.full ? "full" : "smoke");
    std::fprintf(f, "  \"train_samples\": %zu,\n", cfg.trainSamples);
    std::fprintf(f, "  \"test_samples\": %zu,\n", cfg.testSamples);
    std::fprintf(f, "  \"alpha\": %.3f,\n", cfg.alpha);
    std::fprintf(f, "  \"target_coverage\": %.3f,\n", 1.0 - cfg.alpha);
    std::fprintf(f, "  \"coverage_tolerance\": %.3f,\n", kCoverageTol);
    std::fprintf(f, "  \"empirical_coverage\": %.4f,\n", r.coverage);
    std::fprintf(f, "  \"mean_rel_interval_width\": %.4f,\n",
                 r.meanRelWidth);
    std::fprintf(f, "  \"calibration_scores\": %zu,\n",
                 r.calibrationScores);
    std::fprintf(f, "  \"v1_artifact_max_pred_diff\": %.3e,\n",
                 r.v1MaxPredDiff);
    std::fprintf(f, "  \"max_train_ood_score\": %.4f,\n", r.maxTrainOod);
    std::fprintf(f, "  \"synthetic_ood_score\": %.4f,\n", r.syntheticOod);
    std::fprintf(f, "  \"fallback_max_abs_diff\": %.3e,\n",
                 r.fallbackMaxDiff);
    std::fprintf(f, "  \"served_fallback_sim\": %llu,\n",
                 static_cast<unsigned long long>(r.servedFallbackSim));
    std::fprintf(f, "  \"feedback_appended\": %llu,\n",
                 static_cast<unsigned long long>(r.feedbackAppended));
    std::fprintf(f, "  \"feedback_label_max_abs_diff\": %.3e,\n",
                 r.feedbackMaxDiff);
    std::fprintf(f, "  \"train_seconds\": %.2f,\n", r.trainSeconds);
    std::fprintf(f, "  \"gate_pass\": %s\n", pass ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

/**
 * Forge a genuine v1 artifact file from an uncalibrated v2 save: the
 * v2 format is v1 plus the version bump and one trailing
 * has-calibration byte.
 */
bool
forgeV1Artifact(const ModelArtifact &artifact, const std::string &path)
{
    ModelArtifact uncal = artifact;
    uncal.calibration = ConformalCalibration{};
    const std::string staged = path + ".v2staged";
    uncal.save(staged);

    FILE *in = std::fopen(staged.c_str(), "rb");
    if (!in)
        return false;
    std::fseek(in, 0, SEEK_END);
    std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(in)));
    std::fseek(in, 0, SEEK_SET);
    const bool read_ok =
        std::fread(bytes.data(), 1, bytes.size(), in) == bytes.size();
    std::fclose(in);
    std::remove(staged.c_str());
    if (!read_ok || bytes.size() < 14)
        return false;
    bytes[8] = 1;       // u32 version field at offset 8, little-endian
    bytes.pop_back();   // drop the v2 has-calibration flag byte
    FILE *out = std::fopen(path.c_str(), "wb");
    if (!out)
        return false;
    const bool write_ok =
        std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size();
    std::fclose(out);
    return write_ok;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    RunConfig cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            cfg.full = true;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            cfg.full = false;
        } else {
            std::fprintf(stderr, "usage: bench_uncertainty [--full]\n");
            return 2;
        }
    }
    if (cfg.full) {
        cfg.trainSamples = 4096;
        cfg.testSamples = 512;
        cfg.shardSamples = 512;
        cfg.epochs = 24;
        cfg.batchSize = 256;
        cfg.fallbackChecks = 32;
    }

    const char *dir_env = std::getenv("CONCORDE_UNCERTAINTY_DIR");
    const std::string base =
        dir_env && *dir_env ? dir_env : "uncertainty-artifacts";
    const std::string train_dir = base + "/train";
    const std::string test_dir = base + "/test";
    const std::string artifact_path = base + "/model.artifact";
    const std::string v1_path = base + "/model.v1.artifact";
    const std::string feedback_path = base + "/feedback.dataset";

    std::printf("=== uncertainty-serving gate (%s mode) ===\n",
                cfg.full ? "full" : "smoke");
    GateResults r;
    bool pass = true;

    // ---- stage 1: datasets + calibrated training ----
    DatasetConfig dc;
    dc.numSamples = cfg.trainSamples;
    dc.regionChunks = cfg.regionChunks;
    dc.seed = 9171;
    dc.features = artifacts::featureConfig();
    buildDatasetShards(dc, train_dir, cfg.shardSamples);
    dc.numSamples = cfg.testSamples;
    dc.seed = 9172;
    buildDatasetShards(dc, test_dir, cfg.shardSamples);
    const Dataset train = loadDatasetShards(train_dir);
    const Dataset test = loadDatasetShards(test_dir);

    TrainConfig tc;
    tc.epochs = cfg.epochs;
    tc.batchSize = cfg.batchSize;
    tc.seed = 171;
    tc.valFraction = cfg.valFraction;
    Stopwatch train_timer;
    const TrainRun run =
        trainMlpResumable(train.features, train.labels, train.dim, tc);
    r.trainSeconds = train_timer.seconds();

    ModelArtifact artifact;
    artifact.features = dc.features;
    artifact.model = run.model;
    artifact.provenance.datasetManifestHash =
        datasetManifestHash(train_dir);
    artifact.provenance.trainConfig = tc;
    artifact.provenance.trainedEpochs = run.epochsCompleted();
    artifact.calibration = run.calibration;
    artifact.save(artifact_path);
    const ModelArtifact loaded = ModelArtifact::load(artifact_path);
    r.calibrationScores = loaded.calibration.size();
    std::printf("  trained %zu epochs in %.1fs; calibration ships %zu "
                "held-out conformity scores\n", run.epochsCompleted(),
                r.trainSeconds, r.calibrationScores);
    if (!loaded.calibrated()) {
        std::printf("  GATE FAIL: artifact round trip lost the "
                    "calibration\n");
        pass = false;
    }

    // ---- stage 2: held-out conformal coverage ----
    const auto preds = loaded.model.predictBatch(test.features, test.dim,
                                                 /*threads=*/1);
    size_t covered = 0;
    double width_sum = 0.0;
    for (size_t i = 0; i < test.size(); ++i) {
        double lo = 0.0, hi = 0.0;
        loaded.calibration.intervalAround(preds[i], cfg.alpha, lo, hi);
        if (test.labels[i] >= lo && test.labels[i] <= hi)
            ++covered;
        if (preds[i] > 0.0)
            width_sum += (hi - lo) / preds[i];
    }
    r.coverage = static_cast<double>(covered)
        / static_cast<double>(test.size());
    r.meanRelWidth = width_sum / static_cast<double>(test.size());
    std::printf("  coverage at alpha=%.2f: %.1f%% of %zu held-out "
                "samples (target >= %.1f%%), mean rel width %.1f%%\n",
                cfg.alpha, 100.0 * r.coverage, test.size(),
                100.0 * (1.0 - cfg.alpha - kCoverageTol),
                100.0 * r.meanRelWidth);
    if (r.coverage < 1.0 - cfg.alpha - kCoverageTol) {
        std::printf("  GATE FAIL: conformal intervals undercover\n");
        pass = false;
    }

    // ---- stage 3: v1 artifact compatibility, predictions bitwise ----
    if (!forgeV1Artifact(loaded, v1_path)) {
        std::printf("  GATE FAIL: could not forge the v1 artifact\n");
        pass = false;
    } else {
        const ModelArtifact v1 = ModelArtifact::load(v1_path);
        if (v1.calibrated()) {
            std::printf("  GATE FAIL: a v1 artifact claims to be "
                        "calibrated\n");
            pass = false;
        }
        const auto v1_preds =
            v1.model.predictBatch(test.features, test.dim, 1);
        for (size_t i = 0; i < v1_preds.size(); ++i) {
            r.v1MaxPredDiff =
                std::max(r.v1MaxPredDiff,
                         std::abs(static_cast<double>(v1_preds[i])
                                  - static_cast<double>(preds[i])));
        }
        std::printf("  v1-compat: loads uncalibrated, max |pred diff| "
                    "vs v2 = %.1e\n", r.v1MaxPredDiff);
        if (r.v1MaxPredDiff != 0.0) {
            std::printf("  GATE FAIL: calibration section perturbed "
                        "the model\n");
            pass = false;
        }
    }

    // ---- stage 4: OOD guardrail sanity ----
    // Exact check of the envelope math: an envelope fitted on the full
    // training set must score every training row 0.0 by construction.
    const ConformalCalibration full_env = fitConformalCalibration(
        {1.0f}, {1.0f}, train.features, train.dim);
    for (size_t i = 0; i < train.size(); ++i) {
        r.maxTrainOod = std::max(
            r.maxTrainOod, full_env.oodScore(train.row(i), train.dim));
    }
    // The shipped envelope covers the training *split* only (the
    // held-out split feeds the scores), so a few training rows may
    // poke slightly outside -- but almost all must stay clean at the
    // serving default threshold.
    const serve::UncertaintyConfig defaults;
    size_t flagged = 0;
    for (size_t i = 0; i < train.size(); ++i) {
        if (loaded.calibration.oodScore(train.row(i), train.dim)
            > defaults.oodThreshold)
            ++flagged;
    }
    const double flagged_frac =
        static_cast<double>(flagged) / static_cast<double>(train.size());
    const std::vector<float> absurd(train.dim, 1e9f);
    r.syntheticOod = loaded.calibration.oodScore(absurd.data(), train.dim);
    std::printf("  OOD: full-envelope max train score %.3f (must be 0); "
                "shipped envelope flags %.1f%% of train rows; synthetic "
                "far-out row scores %.3f\n", r.maxTrainOod,
                100.0 * flagged_frac, r.syntheticOod);
    if (r.maxTrainOod != 0.0 || r.syntheticOod < 0.5
        || flagged_frac > 0.10) {
        std::printf("  GATE FAIL: calibration envelope misclassifies\n");
        pass = false;
    }

    // ---- stage 5: fallback bitwise identity + durable feedback ----
    std::remove(feedback_path.c_str());
    {
        serve::ServeConfig sc;
        sc.cacheCapacity = 0;
        sc.uncertainty.alpha = cfg.alpha;
        // A width SLO nothing can meet: every request is flagged and,
        // with fallback on, answered by the simulator.
        sc.uncertainty.maxRelWidth = 1e-9;
        sc.uncertainty.fallbackEnabled = true;
        sc.uncertainty.maxFallbackInFlight = 2;
        sc.uncertainty.feedbackPath = feedback_path;
        serve::PredictionService service(sc);
        service.registry().addArtifact("prod", loaded);

        const size_t checks =
            std::min<size_t>(test.size(), cfg.fallbackChecks);
        for (size_t i = 0; i < checks; ++i) {
            const auto &meta = test.meta[i];
            serve::PredictRequest request;
            request.model = "prod";
            request.region = meta.region;
            request.params = meta.params;
            const serve::PredictResponse response =
                service.predict(request);
            if (!response.ok() || !response.fallback) {
                std::printf("  GATE FAIL: flagged request %zu did not "
                            "reach the simulator\n", i);
                pass = false;
                continue;
            }
            const auto analysis =
                AnalysisStore::global().acquire(meta.region);
            SimScratch scratch;
            const double direct =
                simulateRegion(meta.params, *analysis, 0, &scratch).cpi();
            r.fallbackMaxDiff = std::max(
                r.fallbackMaxDiff, std::abs(response.cpi - direct));
        }
        const serve::ServeStats stats = service.stats();
        r.servedFallbackSim = stats.servedFallbackSim;
        r.feedbackAppended = stats.feedbackAppended;
        service.shutdown();

        std::printf("  fallback: %llu simulator answers, max |diff| vs "
                    "direct simulateRegion = %.1e\n",
                    static_cast<unsigned long long>(r.servedFallbackSim),
                    r.fallbackMaxDiff);
        if (r.fallbackMaxDiff != 0.0 || r.servedFallbackSim != checks) {
            std::printf("  GATE FAIL: fallback answers are not the "
                        "simulator's\n");
            pass = false;
        }

        // The feedback file holds exactly the simulated pairs, labels
        // bitwise equal to the simulator's CPI.
        const Dataset feedback = Dataset::load(feedback_path);
        if (feedback.size() != checks || feedback.dim != test.dim) {
            std::printf("  GATE FAIL: feedback file has %zu x %zu, "
                        "expected %zu x %zu\n", feedback.size(),
                        feedback.dim, checks, test.dim);
            pass = false;
        }
        for (size_t i = 0; i < feedback.size(); ++i) {
            const auto analysis = AnalysisStore::global().acquire(
                feedback.meta[i].region);
            SimScratch scratch;
            const float direct = static_cast<float>(
                simulateRegion(feedback.meta[i].params, *analysis, 0,
                               &scratch)
                    .cpi());
            r.feedbackMaxDiff =
                std::max(r.feedbackMaxDiff,
                         static_cast<double>(
                             std::abs(feedback.labels[i] - direct)));
        }
        std::printf("  feedback: %llu rows appended durably, max label "
                    "|diff| = %.1e\n",
                    static_cast<unsigned long long>(r.feedbackAppended),
                    r.feedbackMaxDiff);
        if (r.feedbackMaxDiff != 0.0) {
            std::printf("  GATE FAIL: feedback labels diverge from the "
                        "simulator\n");
            pass = false;
        }
    }

    const char *json_env = std::getenv("CONCORDE_BENCH_JSON");
    const std::string json_path =
        json_env && *json_env ? json_env : "BENCH_uncertainty.json";
    writeJson(json_path, cfg, r, pass);
    std::printf("  wrote %s\n", json_path.c_str());
    std::printf(pass ? "  GATE PASS\n" : "  GATE FAIL\n");
    return pass ? 0 : 1;
}
