/**
 * @file
 * Table 2: the workload corpus -- 29 programs across four groups with
 * their trace counts and lengths (scaled from the paper's 5486B
 * instructions to laptop size; see DESIGN.md).
 */

#include <cstdio>

#include "trace/workloads.hh"

using namespace concorde;

int
main()
{
    std::printf("=== Table 2: workload corpus ===\n");
    std::printf("  %-6s %-24s %-12s %8s %14s\n", "Code", "Name", "Group",
                "Traces", "Instrs (M)");
    uint64_t total_chunks = 0;
    for (const auto &info : workloadCorpus()) {
        const uint64_t chunks = info.numTraces * info.chunksPerTrace;
        total_chunks += chunks;
        std::printf("  %-6s %-24s %-12s %8d %14.2f\n", info.code().c_str(),
                    info.profile.name.c_str(), info.profile.group.c_str(),
                    info.numTraces,
                    static_cast<double>(chunks) * kChunkLen / 1e6);
    }
    std::printf("  total: %.1fM instructions across %zu programs\n",
                static_cast<double>(total_chunks) * kChunkLen / 1e6,
                workloadCorpus().size());
    return 0;
}
